from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Neu10: hardware-assisted virtualization of neural processing "
        "units (MICRO 2024 reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis", "pyyaml"],
        # YAML scenario files for `repro run` (JSON works without it).
        "yaml": ["pyyaml"],
    },
    entry_points={
        "console_scripts": ["repro=repro.cli:main"],
    },
)
