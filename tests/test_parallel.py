"""Determinism and plumbing tests for repro.parallel.

The contract: for any worker count, :func:`parallel_map` returns the
same results in the same (input) order as a serial map, and the
simulation layers built on it (cluster churn) produce identical metrics
whether hosts are simulated serially or in a pool.
"""

import pytest

from repro.config import spawn_rng
from repro.errors import ConfigError
from repro.parallel import WORKERS_ENV, default_workers, parallel_map
from repro.traffic import (
    ChurnEvent,
    ClusterTrafficConfig,
    TrafficTenantSpec,
    run_cluster_traffic,
)


def _square(x):
    return x * x


def _seeded_draw(key):
    # Exercises the seeded-substream pattern workers rely on.
    return spawn_rng(99, key).random()


def _boom(x):
    raise ValueError(f"boom {x}")


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_map_matches_serial(workers):
    items = list(range(13))
    assert parallel_map(_square, items, max_workers=workers) == [
        _square(x) for x in items
    ]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_map_preserves_order_with_seeded_streams(workers):
    keys = [f"tenant-{i}" for i in range(9)]
    expected = [_seeded_draw(k) for k in keys]
    assert parallel_map(_seeded_draw, keys, max_workers=workers) == expected


def test_parallel_map_empty_and_single():
    assert parallel_map(_square, [], max_workers=4) == []
    assert parallel_map(_square, [3], max_workers=4) == [9]


def test_parallel_map_propagates_exceptions():
    with pytest.raises(ValueError, match="boom"):
        parallel_map(_boom, [1, 2], max_workers=2)
    with pytest.raises(ValueError, match="boom"):
        parallel_map(_boom, [1, 2], max_workers=1)


def test_parallel_map_rejects_bad_worker_count():
    with pytest.raises(ConfigError):
        parallel_map(_square, [1, 2], max_workers=0)


def test_default_workers_env_override(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "3")
    assert default_workers() == 3
    monkeypatch.setenv(WORKERS_ENV, "zero")
    with pytest.raises(ConfigError):
        default_workers()
    monkeypatch.setenv(WORKERS_ENV, "0")
    with pytest.raises(ConfigError):
        default_workers()
    monkeypatch.delenv(WORKERS_ENV)
    assert default_workers() >= 1


def _churn_metrics(max_workers):
    specs = [
        TrafficTenantSpec(model="MNIST", batch=8),
        TrafficTenantSpec(model="DLRM", batch=8),
    ]
    events = [
        ChurnEvent(0.0, "arrive", "a", spec=specs[0]),
        ChurnEvent(0.0, "arrive", "b", spec=specs[1]),
        ChurnEvent(0.0005, "arrive", "c", spec=specs[0]),
        ChurnEvent(0.00075, "depart", "b"),
    ]
    cfg = ClusterTrafficConfig(
        num_hosts=2, scheme="neu10", load=0.9, end_s=0.001, seed=17,
        max_workers=max_workers,
    )
    result = run_cluster_traffic(events, cfg)
    return (
        result.host_me_utilization,
        result.host_ve_utilization,
        result.admission_rate,
        result.segments,
        {
            name: (rep.offered, rep.completed, rep.attained,
                   rep.latencies_cycles)
            for name, rep in result.reports.items()
        },
    )


def test_cluster_traffic_identical_for_any_worker_count():
    serial = _churn_metrics(1)
    assert _churn_metrics(2) == serial
    assert _churn_metrics(4) == serial
