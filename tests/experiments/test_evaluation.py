"""Integration tests for the evaluation experiments (Figs. 12-27).

These run scaled-down versions (small request targets, subset pairs) and
assert the *shape* claims the paper makes, not absolute numbers.
"""

import functools

import pytest

from repro.experiments import expected
from repro.experiments.common import run_pair_cached
from repro.experiments.fig12_allocator import run as fig12_run
from repro.experiments.fig16_neuisa_overhead import run as fig16_run
from repro.experiments.fig23_harvest import run as fig23_run
from repro.experiments.fig24_assignment import run as fig24_run
from repro.experiments.fig27_llm import run as fig27_run
from repro.serving.server import SCHEME_NEU10, SCHEME_V10

TARGET = 2  # requests per tenant; keeps tests quick


@pytest.fixture(scope="module")
def dlrm_rtnt():
    return run_pair_cached("DLRM", "RtNt", target_requests=TARGET)


@pytest.fixture(scope="module")
def enet_tfmr():
    return run_pair_cached("ENet", "TFMR", target_requests=TARGET)


# ----------------------------------------------------------------------
# Fig. 12: allocator cost-effectiveness
# ----------------------------------------------------------------------
def test_fig12_allocator_near_optimal():
    sweep = fig12_run("BERT", batch=32, budgets=[4, 8])
    assert sweep.worst_efficiency() > 0.9
    # BERT is ME-heavy: the pick must lean ME.
    for point in sweep.points:
        assert point.selected[0] > point.selected[1]


def test_fig12_balanced_model_gets_balanced_split():
    sweep = fig12_run("ENet", batch=32, budgets=[8])
    (point,) = sweep.points
    assert abs(point.selected[0] - point.selected[1]) <= 2


# ----------------------------------------------------------------------
# Fig. 16: NeuISA overhead
# ----------------------------------------------------------------------
def test_fig16_overhead_small():
    result = fig16_run(models=["ResNet", "MNIST", "DLRM"], batches=[1, 32])
    assert abs(result.average()) < expected.CLAIMS.neuisa_overhead_avg + 0.01
    assert result.maximum() < expected.CLAIMS.neuisa_overhead_max


def test_fig16_overhead_shrinks_with_batch():
    result = fig16_run(models=["MNIST"], batches=[1, 32])
    per = result.overhead["MNIST"]
    assert per[32] <= per[1] + 1e-6


# ----------------------------------------------------------------------
# Figs. 19-21 shape claims (single low-contention pair)
# ----------------------------------------------------------------------
def test_fig19_neu10_beats_pmt_tail_latency(dlrm_rtnt):
    for which in (0, 1):
        assert dlrm_rtnt.norm_latency("neu10", which, "p95_latency_cycles") <= 1.05


def test_fig21_throughput_ordering(dlrm_rtnt):
    """Low contention: both V10 and Neu10 beat PMT significantly for the
    ME-intensive workload (overlap of ME and VE phases)."""
    for scheme in ("v10", "neu10"):
        assert dlrm_rtnt.norm_throughput(scheme, 1) > 1.3


def test_fig21_neu10_beats_v10_high_contention(enet_tfmr):
    """High contention: uTOp-level scheduling resolves the false ME
    contention of the VLIW ISA."""
    geo_v10 = (
        enet_tfmr.norm_throughput("v10", 0) * enet_tfmr.norm_throughput("v10", 1)
    ) ** 0.5
    geo_neu = (
        enet_tfmr.norm_throughput("neu10", 0)
        * enet_tfmr.norm_throughput("neu10", 1)
    ) ** 0.5
    assert geo_neu > geo_v10


def test_fig22_neu10_utilization_over_pmt(dlrm_rtnt):
    pmt = dlrm_rtnt.results["pmt"]
    neu = dlrm_rtnt.results["neu10"]
    assert neu.total_me_utilization > pmt.total_me_utilization


# ----------------------------------------------------------------------
# Fig. 23 / Table III: harvesting
# ----------------------------------------------------------------------
def test_fig23_harvest_benefit(dlrm_rtnt):
    breakdown = fig23_run("DLRM", "RtNt", target_requests=TARGET)
    # The ME-intensive workload (tenant 1) speeds up from harvesting.
    assert breakdown.median_speedup(1) > 1.0
    # Table III: blocked-time overhead stays small.
    assert breakdown.blocked[0] < 0.15
    assert breakdown.blocked[1] < 0.15


# ----------------------------------------------------------------------
# Fig. 24: assignment dynamics
# ----------------------------------------------------------------------
def test_fig24_me_assignment_fluctuates():
    trace = fig24_run("DLRM", "RtNt", target_requests=TARGET)
    rtnt = [n for n in trace.series if n == "RtNt"][0]
    lo, hi = trace.me_range(rtnt)
    assert hi > 2.0  # harvested beyond its home allocation
    assert trace.harvested_fraction(rtnt, home=2.0) > 0.1


# ----------------------------------------------------------------------
# Fig. 27: LLM collocation
# ----------------------------------------------------------------------
@functools.lru_cache(maxsize=1)
def _fig27_bert():
    return fig27_run("BERT", target_requests=1)


def test_fig27_llm_collocation_gain():
    result = _fig27_bert()
    assert result.collocated_gain() > 1.1
    assert result.llm_slowdown() > 0.85
    # Neu10 lifts total ME utilization (paper Fig. 27 right side).
    assert (
        result.utilization[SCHEME_NEU10][0]
        >= result.utilization[SCHEME_V10][0] * 0.95
    )


def test_fig27_pinned_after_llama_parameterization():
    """`build_llama` grew (batch, context, decode_steps) parameters for
    repro.llmserve calibration; at its defaults it must stay
    bit-identical to the fixed-shape builder Fig. 27 always used."""
    assert _fig27_bert().collocated_gain() == 1.3056018428680751
