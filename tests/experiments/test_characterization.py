"""Tests for the characterisation experiments (Figs. 2-7, hw cost)."""

import pytest

from repro.config import DEFAULT_CORE
from repro.experiments import expected, fig02_demand, fig04_intensity
from repro.experiments.fig06_ve_idle import run as fig06_run
from repro.experiments.fig07_hbm import run as fig07_run
from repro.experiments.fig05_utilization import run as fig05_run
from repro.experiments.hwcost import run as hwcost_run


# ----------------------------------------------------------------------
# Fig. 2/3: demand over time
# ----------------------------------------------------------------------
def test_fig02_demand_varies_over_time():
    trace = fig02_demand.run("BERT", batch=8)
    n_me_levels, n_ve_levels = trace.demand_variance()
    assert n_me_levels >= 2  # demand is not flat
    assert trace.duration_us > 0
    assert all(
        0 <= p.demanded_mes <= fig02_demand.FIG2_MAX_MES for p in trace.points
    )
    assert all(
        0 <= p.demanded_ves <= fig02_demand.FIG2_MAX_VES for p in trace.points
    )


def test_fig02_dlrm_is_ve_leaning():
    trace = fig02_demand.run("DLRM", batch=8)
    me_avg, ve_avg = trace.time_weighted_average()
    assert ve_avg > me_avg


def test_fig02_resnet_is_me_leaning():
    trace = fig02_demand.run("RsNt", batch=8)
    me_avg, ve_avg = trace.time_weighted_average()
    assert me_avg > ve_avg


# ----------------------------------------------------------------------
# Fig. 4: intensity ratios
# ----------------------------------------------------------------------
def test_fig04_structure():
    result = fig04_intensity.run(batches=[8], models=["DLRM", "ResNet", "NCF",
                                                      "EfficientNet"])
    assert "ResNet" in result.me_intensive(8)
    assert "DLRM" in result.ve_intensive(8)
    assert "NCF" in result.ve_intensive(8)


def test_fig04_excludes_large_batches_for_detection():
    result = fig04_intensity.run(batches=[8, 32], models=["Mask-RCNN"])
    assert 8 in result.ratios["Mask-RCNN"]
    assert 32 not in result.ratios["Mask-RCNN"]


# ----------------------------------------------------------------------
# Fig. 5: utilization over time
# ----------------------------------------------------------------------
def test_fig05_neither_engine_fully_utilised():
    trace = fig05_run("MNIST", batch=8, num_windows=10)
    assert 0 < trace.overall_me < 1.0
    assert 0 < trace.overall_ve < 1.0
    assert len(trace.windows) == 10


# ----------------------------------------------------------------------
# Fig. 6: VE idleness
# ----------------------------------------------------------------------
def test_fig06_ve_mostly_idle_under_vliw():
    result = fig06_run()
    assert result.vliw_ve_idle_fraction > 0.8
    assert result.neuisa_utops == 2


# ----------------------------------------------------------------------
# Fig. 7: HBM bandwidth
# ----------------------------------------------------------------------
def test_fig07_bandwidth_below_hardware_limit():
    trace = fig07_run("DLRM", 8)
    limit = DEFAULT_CORE.hbm_bandwidth_bytes_per_s / 1e9
    assert 0 < trace.average_gbps <= limit + 1e-6
    assert trace.peak_gbps <= limit + 1e-6


def test_fig07_bert_average_drops_with_batch():
    """Paper: BERT becomes more compute-intensive with batch, so its
    average bandwidth falls."""
    b8 = fig07_run("BERT", 8)
    b32 = fig07_run("BERT", 32)
    assert b32.average_gbps < b8.average_gbps


def test_fig07_dlrm_peaks_near_limit():
    trace = fig07_run("DLRM", 8)
    limit = DEFAULT_CORE.hbm_bandwidth_bytes_per_s / 1e9
    assert trace.peak_gbps > 0.8 * limit


# ----------------------------------------------------------------------
# Hardware cost (SectionIII-G)
# ----------------------------------------------------------------------
def test_hwcost_within_paper_bound():
    cost = hwcost_run()
    assert cost.die_fraction <= expected.CLAIMS.scheduler_area_fraction
