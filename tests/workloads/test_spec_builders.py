"""Tests for the layer-spec builder helpers."""

import pytest

from repro.compiler.graph import Graph
from repro.compiler.operators import (
    Conv2D,
    DepthwiseConv2D,
    Elementwise,
    LayerNorm,
    MatMul,
    Pooling,
    Softmax,
)
from repro.workloads.spec import (
    RELU,
    attention_block,
    conv_block,
    dwconv_block,
    embedding_bag,
    ffn_block,
    global_pool,
    linear,
    mlp_stack,
    residual_add,
    transformer_layer,
)


def test_conv_block_returns_output_size():
    g = Graph("g")
    out = conv_block(g, "c", batch=1, hw=32, in_ch=3, out_ch=8, stride=2)
    assert out == 16
    node = next(iter(g))
    assert isinstance(node.op, Conv2D)
    assert node.op.epilogue == [RELU]


def test_conv_block_without_activation():
    g = Graph("g")
    conv_block(g, "c", 1, 8, 3, 8, activation=None)
    assert next(iter(g)).op.epilogue == []


def test_dwconv_block_is_ve_op():
    g = Graph("g")
    out = dwconv_block(g, "dw", batch=1, hw=16, ch=8, stride=2)
    assert out == 8
    assert isinstance(next(iter(g)).op, DepthwiseConv2D)


def test_linear_emits_matmul():
    g = Graph("g")
    linear(g, "fc", rows=4, in_features=8, out_features=16)
    op = next(iter(g)).op
    assert isinstance(op, MatMul)
    assert (op.m, op.k, op.n) == (4, 8, 16)


def test_mlp_stack_layer_count_and_activations():
    g = Graph("g")
    mlp_stack(g, "mlp", rows=4, layer_sizes=[8, 16, 32, 2])
    ops = [n.op for n in g.topo_order()]
    assert len(ops) == 3
    assert ops[0].epilogue == [RELU]
    assert ops[-1].epilogue == []  # no activation on the output layer


def test_attention_block_structure():
    g = Graph("g")
    attention_block(g, "attn", batch=2, seq=16, hidden=64, heads=4)
    kinds = [type(n.op).__name__ for n in g.topo_order()]
    assert kinds.count("MatMul") == 4  # qkv, scores, context, proj
    assert "Softmax" in kinds
    assert "LayerNorm" in kinds


def test_attention_intermediate_matmuls_use_resident_weights():
    g = Graph("g")
    attention_block(g, "attn", batch=2, seq=16, hidden=64, heads=4)
    by_name = {n.op.name: n.op for n in g.topo_order()}
    assert by_name["attn.scores"].weight_bytes == 0
    assert by_name["attn.qkv"].weight_bytes > 0


def test_transformer_layer_composes():
    g = Graph("g")
    transformer_layer(g, "l0", batch=1, seq=8, hidden=64, heads=4,
                      ffn_inner=128)
    g.validate()
    assert len(g) > 8


def test_ffn_block_residual_and_norm():
    g = Graph("g")
    ffn_block(g, "ffn", rows=8, hidden=64, inner=128)
    kinds = [type(n.op).__name__ for n in g.topo_order()]
    assert kinds == ["MatMul", "MatMul", "Elementwise", "LayerNorm"]


def test_embedding_and_pool_helpers():
    g = Graph("g")
    embedding_bag(g, "emb", lookups=16, dim=8, table_bytes=1024)
    global_pool(g, "pool", batch=1, hw=4, ch=8)
    residual_add(g, "res", batch=1, hw=4, ch=8)
    kinds = [type(n.op).__name__ for n in g.topo_order()]
    assert kinds == ["EmbeddingLookup", "Pooling", "Elementwise"]
