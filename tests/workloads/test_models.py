"""Tests for the model zoo: structure, calibration targets (Fig. 4) and
the catalog (Table I)."""

import pytest

from repro.config import DEFAULT_CORE, GiB, MiB
from repro.errors import ConfigError
from repro.workloads.catalog import CATALOG, build_model, model_info, model_names
from repro.workloads.traces import build_trace


def test_catalog_covers_table1():
    names = model_names()
    assert len(names) == 11
    for name in ("BERT", "Transformer", "DLRM", "NCF", "Mask-RCNN",
                 "RetinaNet", "ShapeMask", "MNIST", "ResNet", "ResNet-RS",
                 "EfficientNet"):
        assert name in names
    assert "LLaMA" in model_names(include_llm=True)


def test_catalog_lookup_by_abbreviation_and_case():
    assert model_info("RtNt").name == "RetinaNet"
    assert model_info("retinanet").name == "RetinaNet"
    assert model_info("TFMR").name == "Transformer"
    with pytest.raises(ConfigError):
        model_info("NoSuchModel")


def test_table1_footprints_recorded():
    assert model_info("DLRM").hbm_footprint_bytes == int(22.38 * GiB)
    assert model_info("MNIST").hbm_footprint_bytes == int(10.59 * MiB)


def test_all_models_build_valid_graphs():
    for name in model_names(include_llm=True):
        graph = build_model(name, batch=8)
        graph.validate()
        assert len(graph) > 0
        assert graph.total_flops > 0


def test_batch_scales_work():
    small = build_model("ResNet", 8)
    large = build_model("ResNet", 32)
    assert large.total_flops == pytest.approx(small.total_flops * 4, rel=0.01)


def test_invalid_batch_rejected():
    with pytest.raises(ConfigError):
        build_model("BERT", 0)


# ----------------------------------------------------------------------
# Fig. 4 calibration: ME:VE intensity structure
# ----------------------------------------------------------------------
@pytest.mark.parametrize("model", ["ResNet", "ResNet-RS", "RetinaNet",
                                   "ShapeMask", "Mask-RCNN", "BERT"])
def test_me_intensive_models(model):
    batch = 8 if model in ("Mask-RCNN", "ShapeMask") else 32
    trace = build_trace(model, batch)
    assert trace.profile.me_ve_intensity_ratio > 5.0


@pytest.mark.parametrize("model", ["DLRM", "NCF"])
def test_ve_intensive_models(model):
    trace = build_trace(model, 32)
    assert trace.profile.me_ve_intensity_ratio < 1.0


def test_efficientnet_is_balanced():
    trace = build_trace("EfficientNet", 32)
    assert 0.5 < trace.profile.me_ve_intensity_ratio < 4.0


def test_dlrm_gets_more_ve_intensive_with_batch():
    """Paper: DLRM's VE gathers scale with batch while its MLP barely
    grows, so the intensity ratio falls."""
    r8 = build_trace("DLRM", 8).profile.me_ve_intensity_ratio
    r32 = build_trace("DLRM", 32).profile.me_ve_intensity_ratio
    assert r32 < r8


def test_llama_is_memory_bound():
    """LLaMA decode demands a large fraction of the HBM bandwidth."""
    trace = build_trace("LLaMA", 8)
    demand = trace.profile.average_hbm_bandwidth(DEFAULT_CORE)
    assert demand > 0.3 * DEFAULT_CORE.hbm_bandwidth_bytes_per_s


def test_profiles_satisfy_m_plus_v():
    for name in model_names():
        trace = build_trace(name, 8)
        assert trace.profile.m + trace.profile.v >= 1.0 - 1e-9


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def test_trace_carries_both_isas():
    trace = build_trace("MNIST", 8)
    assert trace.compiled("neuisa").isa == "neuisa"
    assert trace.compiled("vliw").isa == "vliw"
    with pytest.raises(ValueError):
        trace.compiled("riscv")


def test_trace_memoisation():
    a = build_trace("MNIST", 8)
    b = build_trace("MNIST", 8)
    assert a is b
    c = build_trace("MNIST", 16)
    assert c is not a


def test_neuisa_utops_bounded_by_core():
    trace = build_trace("ResNet", 8)
    for op in trace.neuisa.ops:
        for group in op.groups:
            assert group.num_me_utops <= DEFAULT_CORE.num_mes
