"""Tests for the command ring, SR-IOV, hypervisor and guest driver."""

import pytest

from repro.config import GiB, MiB, NpuCoreConfig
from repro.core.mapper import MappingMode
from repro.core.vnpu import VnpuConfig
from repro.errors import (
    CommandRingError,
    HypercallError,
    VirtualizationError,
)
from repro.runtime.command import Command, CommandOpcode, CommandRing
from repro.runtime.driver import VnpuDriver
from repro.runtime.hypervisor import Hypervisor
from repro.runtime.sriov import SriovRegistry
from repro.runtime.vm import GuestVm

CORE = NpuCoreConfig()


def _cfg(mes=2, ves=2):
    return VnpuConfig(
        num_mes_per_core=mes,
        num_ves_per_core=ves,
        sram_bytes_per_core=32 * MiB,
        hbm_bytes_per_core=8 * GiB,
    )


# ----------------------------------------------------------------------
# Command ring
# ----------------------------------------------------------------------
def test_ring_fifo_order():
    ring = CommandRing(capacity=4)
    a = Command(CommandOpcode.LAUNCH, program_id=1)
    b = Command(CommandOpcode.SYNC)
    ring.push(a)
    ring.push(b)
    assert ring.pop() is a
    assert ring.pop() is b
    assert ring.pop() is None


def test_ring_wraps_around():
    ring = CommandRing(capacity=2)
    for i in range(5):
        ring.push(Command(CommandOpcode.LAUNCH, program_id=i))
        cmd = ring.pop()
        assert cmd is not None and cmd.program_id == i


def test_ring_overflow():
    ring = CommandRing(capacity=2)
    ring.push(Command(CommandOpcode.SYNC))
    ring.push(Command(CommandOpcode.SYNC))
    assert ring.is_full
    with pytest.raises(CommandRingError):
        ring.push(Command(CommandOpcode.SYNC))


def test_double_completion_rejected():
    ring = CommandRing()
    cmd = Command(CommandOpcode.SYNC)
    ring.push(cmd)
    popped = ring.pop()
    ring.complete(popped)
    with pytest.raises(CommandRingError):
        ring.complete(popped)


# ----------------------------------------------------------------------
# SR-IOV
# ----------------------------------------------------------------------
def test_vf_assignment_and_release():
    sriov = SriovRegistry(num_vfs=2)
    vf1 = sriov.assign(10)
    vf2 = sriov.assign(11)
    assert vf1.bdf != vf2.bdf
    with pytest.raises(VirtualizationError):
        sriov.assign(12)  # pool exhausted
    sriov.release(10)
    sriov.assign(12)


def test_vf_double_assignment_rejected():
    sriov = SriovRegistry()
    sriov.assign(10)
    with pytest.raises(VirtualizationError):
        sriov.assign(10)


# ----------------------------------------------------------------------
# Hypervisor + driver
# ----------------------------------------------------------------------
def test_driver_full_lifecycle():
    hv = Hypervisor([CORE], mode=MappingMode.SPATIAL)
    vm = GuestVm("tenant")
    driver = VnpuDriver(vm, hv)
    handle = driver.open(_cfg())
    hierarchy = driver.query_hierarchy()
    assert hierarchy.num_mes_per_core == 2
    assert hierarchy.hbm_bytes == 8 * GiB
    driver.memcpy_to_device(0, 4096, 0)
    driver.launch(program_id=7)
    driver.sync()
    assert driver.poll_completed() == 3
    driver.close()
    assert hv.sriov.vf_of(handle.vnpu_id) is None


def test_driver_rejects_double_open():
    hv = Hypervisor([CORE])
    driver = VnpuDriver(GuestVm("t"), hv)
    driver.open(_cfg())
    with pytest.raises(VirtualizationError):
        driver.open(_cfg())


def test_driver_memcpy_bounds_checked():
    hv = Hypervisor([CORE])
    driver = VnpuDriver(GuestVm("t"), hv, dma_buffer_bytes=4096)
    driver.open(_cfg())
    with pytest.raises(VirtualizationError):
        driver.memcpy_to_device(4000, 200, 0)


def test_hypercall_create_rejects_infeasible():
    hv = Hypervisor([CORE])
    with pytest.raises(HypercallError):
        hv.hypercall_create(_cfg(mes=CORE.num_mes + 1))


def test_hypercall_reconfigure_rewires_iommu():
    hv = Hypervisor([CORE])
    handle = hv.hypercall_create(_cfg())
    new = hv.hypercall_reconfigure(
        handle.vnpu_id,
        VnpuConfig(
            num_mes_per_core=1,
            num_ves_per_core=1,
            sram_bytes_per_core=2 * MiB,
            hbm_bytes_per_core=1 * GiB,
        ),
    )
    assert new.vnpu_id == handle.vnpu_id
    bar = hv.bar_of(new.vnpu_id)
    from repro.runtime.mmio import Register

    assert bar.read(Register.NUM_MES_PER_CORE) == 1


def test_hypercall_destroy_cleans_up():
    hv = Hypervisor([CORE])
    handle = hv.hypercall_create(_cfg())
    hv.hypercall_destroy(handle.vnpu_id)
    with pytest.raises(HypercallError):
        hv.bar_of(handle.vnpu_id)
    with pytest.raises(HypercallError):
        hv.hypercall_destroy(handle.vnpu_id)


def test_two_tenants_isolated_dma():
    hv = Hypervisor([CORE])
    d1 = VnpuDriver(GuestVm("a"), hv)
    d2 = VnpuDriver(GuestVm("b"), hv)
    h1 = d1.open(_cfg())
    d2.open(_cfg())
    # Tenant 2's DMA buffer is invisible to tenant 1's vNPU.
    from repro.errors import DmaFault

    assert d2.dma_buffer is not None
    with pytest.raises(DmaFault):
        hv.iommu.check_dma(h1.vnpu_id, d2.dma_buffer.addr, 64)


# ----------------------------------------------------------------------
# Guest VM memory
# ----------------------------------------------------------------------
def test_guest_vm_allocation():
    vm = GuestVm("t", memory_bytes=1 << 20)
    a = vm.alloc(4096)
    assert vm.owns(a.addr, 4096)
    assert not vm.owns(a.addr + 4096, 1)
    vm.free(a)
    with pytest.raises(VirtualizationError):
        vm.free(a)


def test_guest_vm_out_of_memory():
    vm = GuestVm("t", memory_bytes=8192)
    with pytest.raises(VirtualizationError):
        vm.alloc(1 << 20)
