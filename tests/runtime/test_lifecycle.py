"""Control-plane lifecycle regressions: deterministic host addressing,
all-or-nothing ``driver.open``, and typed errors that survive ``-O``."""

import pytest

from repro.config import GiB, MiB, NpuCoreConfig
from repro.core.vnpu import VnpuConfig
from repro.errors import HypercallError, VirtualizationError
from repro.runtime.driver import VnpuDriver
from repro.runtime.hypervisor import Hypervisor
from repro.runtime.vm import (
    HOST_STRIDE,
    GuestVm,
    HostAddressSpace,
)

CORE = NpuCoreConfig()


def _cfg(mes=2, ves=2, sram=32 * MiB, hbm=8 * GiB):
    return VnpuConfig(
        num_mes_per_core=mes,
        num_ves_per_core=ves,
        sram_bytes_per_core=sram,
        hbm_bytes_per_core=hbm,
    )


# ----------------------------------------------------------------------
# Host address space ownership
# ----------------------------------------------------------------------
def test_address_space_is_deterministic_and_resettable():
    space = HostAddressSpace()
    a = GuestVm("a", address_space=space)
    b = GuestVm("b", address_space=space)
    assert a.host_base == 0
    assert b.host_base == HOST_STRIDE
    assert space.slots_allocated == 2
    space.reset()
    assert GuestVm("c", address_space=space).host_base == 0


def test_hypervisor_scoped_vms_do_not_depend_on_process_history():
    """Two hypervisors hand out identical host bases regardless of how
    many VMs any other owner created before them."""
    GuestVm("noise")  # default-space allocation must not leak into owners
    hv1 = Hypervisor([CORE])
    hv2 = Hypervisor([CORE])
    bases1 = [hv1.create_vm(f"t{i}").host_base for i in range(3)]
    bases2 = [hv2.create_vm(f"t{i}").host_base for i in range(3)]
    assert bases1 == bases2 == [0, HOST_STRIDE, 2 * HOST_STRIDE]


def test_vms_of_one_space_never_alias():
    space = HostAddressSpace()
    vms = [GuestVm(f"t{i}", address_space=space) for i in range(4)]
    allocs = [vm.alloc(64 * MiB) for vm in vms]
    spans = sorted((a.addr, a.addr + a.size) for a in allocs)
    for (_, hi), (lo, _) in zip(spans, spans[1:]):
        assert hi <= lo


# ----------------------------------------------------------------------
# driver.open unwinds on partial failure
# ----------------------------------------------------------------------
def _control_plane_idle(hv: Hypervisor) -> bool:
    return (
        hv.vf_in_use == 0
        and hv.iommu.mapping_count == 0
        and not hv.manager.instances()
    )


def test_open_unwinds_when_dma_alloc_fails():
    hv = Hypervisor([CORE])
    # 16 MiB of guest memory cannot hold the 256 MiB DMA buffer.
    vm = hv.create_vm("t", memory_bytes=16 * MiB)
    driver = VnpuDriver(vm, hv)
    with pytest.raises(VirtualizationError):
        driver.open(_cfg())
    assert _control_plane_idle(hv)
    assert driver.handle is None and driver.dma_buffer is None
    with pytest.raises(VirtualizationError):
        driver.query_hierarchy()  # still unbound, not half-bound
    assert vm.allocations == []


def test_open_unwinds_when_dma_registration_fails(monkeypatch):
    hv = Hypervisor([CORE])
    vm = hv.create_vm("t")
    driver = VnpuDriver(vm, hv)

    def boom(vnpu_id, addr, size):
        raise VirtualizationError("injected registration failure")

    monkeypatch.setattr(hv.iommu, "register_dma_buffer", boom)
    with pytest.raises(VirtualizationError):
        driver.open(_cfg())
    assert _control_plane_idle(hv)
    assert vm.allocations == []  # the DMA buffer was freed again
    # The driver is reusable once the fault is gone.
    monkeypatch.undo()
    handle = driver.open(_cfg())
    assert hv.sriov.vf_of(handle.vnpu_id) is not None
    driver.close()
    assert _control_plane_idle(hv)


def test_failed_open_restores_hypervisor_state_exactly():
    hv = Hypervisor([CORE])
    good = VnpuDriver(hv.create_vm("good"), hv)
    good.open(_cfg())
    vf_used = hv.vf_in_use
    mappings = hv.iommu.mapping_count
    bad = VnpuDriver(hv.create_vm("bad", memory_bytes=16 * MiB), hv)
    with pytest.raises(VirtualizationError):
        bad.open(_cfg())
    assert hv.vf_in_use == vf_used
    assert hv.iommu.mapping_count == mappings
    assert len(hv.manager.instances()) == 1


# ----------------------------------------------------------------------
# Typed errors instead of asserts (python -O safety)
# ----------------------------------------------------------------------
def test_vf_exhaustion_raises_hypercall_error_and_does_not_leak():
    hv = Hypervisor([CORE], num_vfs=1)
    hv.hypercall_create(_cfg(mes=1, ves=1, sram=0, hbm=0))
    with pytest.raises(HypercallError):
        hv.hypercall_create(_cfg(mes=1, ves=1, sram=0, hbm=0))
    # The rejected create must not leak a mapped vNPU in the manager.
    assert len(hv.manager.instances()) == 1
    assert hv.vf_in_use == 1


def test_vf_exhaustion_frees_capacity_for_retry():
    hv = Hypervisor([CORE], num_vfs=1)
    first = hv.hypercall_create(_cfg(mes=1, ves=1, sram=0, hbm=0))
    with pytest.raises(HypercallError):
        hv.hypercall_create(_cfg(mes=1, ves=1, sram=0, hbm=0))
    hv.hypercall_destroy(first.vnpu_id)
    retry = hv.hypercall_create(_cfg(mes=1, ves=1, sram=0, hbm=0))
    assert hv.sriov.vf_of(retry.vnpu_id) is not None


def test_rejected_reconfigure_is_a_no_op():
    hv = Hypervisor([CORE])
    handle = hv.hypercall_create(_cfg())
    with pytest.raises(HypercallError):
        # More MEs than the physical core has: infeasible.
        hv.hypercall_reconfigure(
            handle.vnpu_id, _cfg(mes=CORE.num_mes + 1)
        )
    survivor = hv.manager.get(handle.vnpu_id)
    assert survivor.config == handle.config
    assert hv.sriov.vf_of(handle.vnpu_id) is not None  # rewired
    assert hv.bar_of(handle.vnpu_id) is not None
    hv.hypercall_destroy(handle.vnpu_id)
    assert _control_plane_idle(hv)


def test_driver_reconfigure_keeps_the_data_path_alive():
    """Reconfigure re-assigns the VF but must not sever the DMA path:
    registrations survive and the driver re-arms the new BAR."""
    hv = Hypervisor([CORE])
    driver = VnpuDriver(hv.create_vm("t"), hv)
    driver.open(_cfg())
    assert hv.iommu.dma_buffer_count == 1
    handle = driver.reconfigure(_cfg(mes=1, ves=1))
    assert handle.config.num_mes_per_core == 1
    assert hv.iommu.dma_buffer_count == 1  # registration survived
    driver.memcpy_to_device(0, 4096, 0)  # would DmaFault if it had not
    driver.sync()
    assert driver.poll_completed() == 2
    assert driver.query_hierarchy().num_mes_per_core == 1  # fresh BAR
    driver.close()
    assert _control_plane_idle(hv)


def test_driver_rejected_reconfigure_leaves_binding_usable():
    hv = Hypervisor([CORE])
    driver = VnpuDriver(hv.create_vm("t"), hv)
    driver.open(_cfg())
    with pytest.raises(HypercallError):
        driver.reconfigure(_cfg(mes=CORE.num_mes + 1))
    # Old shape, live doorbell, intact DMA registration.
    assert driver.query_hierarchy().num_mes_per_core == 2
    driver.memcpy_to_device(0, 4096, 0)
    assert driver.poll_completed() == 1
    driver.close()
    assert _control_plane_idle(hv)


def test_doorbell_on_unbound_driver_raises():
    hv = Hypervisor([CORE])
    driver = VnpuDriver(hv.create_vm("t"), hv)
    with pytest.raises(VirtualizationError):
        driver._on_doorbell(1)


# ----------------------------------------------------------------------
# Hypercall telemetry
# ----------------------------------------------------------------------
def test_hypercall_counts_by_type():
    hv = Hypervisor([CORE])
    handle = hv.hypercall_create(_cfg())
    hv.hypercall_reconfigure(handle.vnpu_id, _cfg(mes=1, ves=1))
    hv.hypercall_destroy(handle.vnpu_id)
    assert hv.hypercall_counts == {
        "create": 1, "reconfigure": 1, "destroy": 1,
    }
    assert hv.hypercall_count == 3
