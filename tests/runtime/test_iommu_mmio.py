"""Tests for the IOMMU (segmentation + DMA remapping) and MMIO."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import HBM_SEGMENT_BYTES, SRAM_SEGMENT_BYTES
from repro.errors import DmaFault, MmioError, SegmentationFault
from repro.runtime.iommu import Iommu, MemoryKind
from repro.runtime.mmio import DeviceStatus, MmioRegisterFile, Register


# ----------------------------------------------------------------------
# Segmentation
# ----------------------------------------------------------------------
def test_translate_adds_segment_base():
    iommu = Iommu()
    iommu.attach_window(1, MemoryKind.HBM, base_segment=4, num_segments=2)
    phys = iommu.translate(1, MemoryKind.HBM, 100)
    assert phys == 4 * HBM_SEGMENT_BYTES + 100


def test_translate_rejects_out_of_window():
    iommu = Iommu()
    iommu.attach_window(1, MemoryKind.SRAM, base_segment=0, num_segments=2)
    limit = 2 * SRAM_SEGMENT_BYTES
    iommu.translate(1, MemoryKind.SRAM, limit - 1)
    with pytest.raises(SegmentationFault):
        iommu.translate(1, MemoryKind.SRAM, limit)
    assert iommu.fault_count == 1


def test_translate_requires_window():
    iommu = Iommu()
    with pytest.raises(SegmentationFault):
        iommu.translate(9, MemoryKind.HBM, 0)


def test_windows_are_per_vnpu():
    iommu = Iommu()
    iommu.attach_window(1, MemoryKind.HBM, 0, 1)
    iommu.attach_window(2, MemoryKind.HBM, 1, 1)
    a = iommu.translate(1, MemoryKind.HBM, 0)
    b = iommu.translate(2, MemoryKind.HBM, 0)
    assert a != b


def test_detach_removes_windows():
    iommu = Iommu()
    iommu.attach_window(1, MemoryKind.HBM, 0, 1)
    iommu.detach(1)
    with pytest.raises(SegmentationFault):
        iommu.translate(1, MemoryKind.HBM, 0)


@settings(max_examples=60, deadline=None)
@given(
    base=st.integers(0, 32),
    num=st.integers(1, 8),
    offset=st.integers(0, 2**34),
)
def test_translation_round_trip_property(base, num, offset):
    """Inside the window, translation is exactly base + offset and
    stays within the window's physical range."""
    iommu = Iommu()
    window = iommu.attach_window(7, MemoryKind.HBM, base, num)
    if offset < window.size_bytes:
        phys = iommu.translate(7, MemoryKind.HBM, offset)
        assert phys == window.base_bytes + offset
        assert window.base_bytes <= phys < window.base_bytes + window.size_bytes
    else:
        with pytest.raises(SegmentationFault):
            iommu.translate(7, MemoryKind.HBM, offset)


# ----------------------------------------------------------------------
# DMA remapping
# ----------------------------------------------------------------------
def test_dma_inside_registered_buffer():
    iommu = Iommu()
    iommu.register_dma_buffer(1, 0x1000, 0x1000)
    iommu.check_dma(1, 0x1800, 0x100)


def test_dma_outside_buffer_faults():
    iommu = Iommu()
    iommu.register_dma_buffer(1, 0x1000, 0x1000)
    with pytest.raises(DmaFault):
        iommu.check_dma(1, 0x3000, 8)
    with pytest.raises(DmaFault):
        iommu.check_dma(1, 0x1F00, 0x200)  # straddles the end


def test_dma_cross_tenant_blocked():
    iommu = Iommu()
    iommu.register_dma_buffer(1, 0x1000, 0x1000)
    with pytest.raises(DmaFault):
        iommu.check_dma(2, 0x1000, 8)


# ----------------------------------------------------------------------
# MMIO
# ----------------------------------------------------------------------
def test_mmio_identity_registers_read_only():
    bar = MmioRegisterFile()
    bar.load_identity(5, 1, 1, 2, 2, 1024, 2048)
    assert bar.read(Register.VNPU_ID) == 5
    with pytest.raises(MmioError):
        bar.write(Register.VNPU_ID, 9)


def test_mmio_unmapped_offset_rejected():
    bar = MmioRegisterFile()
    with pytest.raises(MmioError):
        bar.write(0xFFFF, 1)
    with pytest.raises(MmioError):
        bar.read(0xFFFF)


def test_mmio_doorbell_invokes_handler():
    bar = MmioRegisterFile()
    rung = []
    bar.doorbell_handler = rung.append
    bar.write(Register.DOORBELL, 3)
    assert rung == [3]


def test_mmio_completion_counter():
    bar = MmioRegisterFile()
    for _ in range(5):
        bar.bump_completed()
    assert bar.completed_count() == 5


def test_mmio_status_updates():
    bar = MmioRegisterFile()
    bar.set_status(DeviceStatus.RUNNING)
    assert bar.read(Register.STATUS) == int(DeviceStatus.RUNNING)


def test_mmio_64bit_identity_fields():
    bar = MmioRegisterFile()
    big = 64 * 10**9
    bar.load_identity(1, 1, 1, 1, 1, 2**33, big)
    lo = bar.read(Register.HBM_BYTES_LO)
    hi = bar.read(Register.HBM_BYTES_HI)
    assert (hi << 32) | lo == big
