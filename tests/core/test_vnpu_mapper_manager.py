"""Tests for the vNPU abstraction, mapper and manager."""

import pytest

from repro.config import GiB, MiB, NpuCoreConfig
from repro.core.mapper import MappingMode, VnpuMapper
from repro.core.manager import VnpuManager
from repro.core.vnpu import VnpuConfig, VnpuInstance, VnpuState
from repro.errors import AllocationError, ConfigError, LifecycleError, MappingError

CORE = NpuCoreConfig()


def _cfg(mes=2, ves=2, sram=32 * MiB, hbm=8 * GiB):
    return VnpuConfig(
        num_mes_per_core=mes,
        num_ves_per_core=ves,
        sram_bytes_per_core=sram,
        hbm_bytes_per_core=hbm,
    )


# ----------------------------------------------------------------------
# VnpuConfig / VnpuInstance
# ----------------------------------------------------------------------
def test_config_minimums():
    with pytest.raises(ConfigError):
        VnpuConfig(num_mes_per_core=0)
    with pytest.raises(ConfigError):
        VnpuConfig(num_ves_per_core=0)


def test_config_totals():
    cfg = VnpuConfig(num_chips=2, num_cores_per_chip=2,
                     num_mes_per_core=3, num_ves_per_core=1)
    assert cfg.total_cores == 4
    assert cfg.total_mes == 12
    assert cfg.total_eus == 16


def test_config_capped_by_physical():
    with pytest.raises(ConfigError):
        _cfg(mes=CORE.num_mes + 1).validate_against(CORE)
    with pytest.raises(ConfigError):
        _cfg(hbm=CORE.hbm_bytes * 2).validate_against(CORE)
    _cfg().validate_against(CORE)  # fits


def test_lifecycle_transitions():
    vnpu = VnpuInstance(config=_cfg())
    assert vnpu.state is VnpuState.REQUESTED
    vnpu.transition(VnpuState.MAPPED)
    vnpu.transition(VnpuState.ACTIVE)
    vnpu.transition(VnpuState.MAPPED)
    vnpu.transition(VnpuState.DESTROYED)
    with pytest.raises(LifecycleError):
        vnpu.transition(VnpuState.ACTIVE)


def test_lifecycle_rejects_skips():
    vnpu = VnpuInstance(config=_cfg())
    with pytest.raises(LifecycleError):
        vnpu.transition(VnpuState.ACTIVE)  # must map first


# ----------------------------------------------------------------------
# Mapper
# ----------------------------------------------------------------------
def test_spatial_mapping_respects_capacity():
    mapper = VnpuMapper([CORE], mode=MappingMode.SPATIAL)
    mapper.map(VnpuInstance(config=_cfg(mes=2, ves=2)))
    mapper.map(VnpuInstance(config=_cfg(mes=2, ves=2)))
    with pytest.raises(MappingError):
        mapper.map(VnpuInstance(config=_cfg(mes=1, ves=1)))


def test_temporal_mapping_allows_eu_oversubscription():
    mapper = VnpuMapper([CORE], mode=MappingMode.TEMPORAL)
    for _ in range(3):
        mapper.map(VnpuInstance(config=_cfg(mes=4, ves=4, hbm=4 * GiB)))
    # Memory is still partitioned.
    with pytest.raises(MappingError):
        mapper.map(VnpuInstance(config=_cfg(hbm=CORE.hbm_bytes)))


def test_mapper_balances_load():
    mapper = VnpuMapper([CORE, CORE], mode=MappingMode.SPATIAL)
    first = mapper.map(VnpuInstance(config=_cfg(mes=3, ves=3)))
    second = mapper.map(VnpuInstance(config=_cfg(mes=1, ves=1)))
    assert first.core_index != second.core_index


def test_segment_bases_are_disjoint():
    mapper = VnpuMapper([CORE], mode=MappingMode.SPATIAL)
    a = VnpuInstance(config=_cfg(mes=2, ves=2, hbm=8 * GiB))
    b = VnpuInstance(config=_cfg(mes=2, ves=2, hbm=8 * GiB))
    mapper.map(a)
    mapper.map(b)
    assert a.hbm_segment_base == 0
    assert b.hbm_segment_base == 8  # 8 x 1 GiB segments after a


def test_unmap_releases_resources():
    mapper = VnpuMapper([CORE], mode=MappingMode.SPATIAL)
    a = VnpuInstance(config=_cfg(mes=4, ves=4))
    mapper.map(a)
    mapper.unmap(a)
    assert a.state is VnpuState.DESTROYED
    b = VnpuInstance(config=_cfg(mes=4, ves=4))
    assert mapper.map(b) is not None


def test_unmap_unknown_rejected():
    mapper = VnpuMapper([CORE])
    with pytest.raises(MappingError):
        mapper.unmap(VnpuInstance(config=_cfg()))


# ----------------------------------------------------------------------
# Manager
# ----------------------------------------------------------------------
def test_manager_create_and_destroy():
    manager = VnpuManager([CORE])
    vnpu = manager.create(_cfg())
    assert vnpu.state is VnpuState.MAPPED
    assert manager.free_mes(0) == 2
    manager.destroy(vnpu.vnpu_id)
    assert manager.free_mes(0) == 4
    with pytest.raises(AllocationError):
        manager.get(vnpu.vnpu_id)


def test_manager_reconfigure_preserves_id():
    manager = VnpuManager([CORE])
    vnpu = manager.create(_cfg(mes=1, ves=1))
    replacement = manager.reconfigure(vnpu.vnpu_id, _cfg(mes=3, ves=3))
    assert replacement.vnpu_id == vnpu.vnpu_id
    assert replacement.config.num_mes_per_core == 3


def test_manager_collocation_query():
    manager = VnpuManager([CORE])
    a = manager.create(_cfg(mes=2, ves=2, hbm=4 * GiB))
    b = manager.create(_cfg(mes=2, ves=2, hbm=4 * GiB))
    assert [v.vnpu_id for v in manager.collocated_with(a.vnpu_id)] == [b.vnpu_id]


def test_manager_create_for_workload(me_graph):
    from repro.compiler.profiler import profile_graph

    manager = VnpuManager([CORE])
    profile = profile_graph(me_graph, CORE)
    vnpu = manager.create_for_workload(profile, total_eus=4)
    assert vnpu.config.num_mes_per_core >= vnpu.config.num_ves_per_core
