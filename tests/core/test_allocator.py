"""Tests for the Eq. 1-4 allocator, incl. brute-force optimality checks."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.profiler import profile_graph
from repro.config import NpuCoreConfig
from repro.core.allocator import (
    VnpuAllocator,
    execution_time,
    optimal_me_ve_ratio,
    split_eu_budget,
    utilization,
)
from repro.errors import AllocationError

from tests.conftest import make_me_graph, make_ve_graph

CORE = NpuCoreConfig(num_mes=8, num_ves=8)


# ----------------------------------------------------------------------
# Closed forms (Eqs. 1-4)
# ----------------------------------------------------------------------
def test_eq1_single_engine_baseline():
    """On 1 ME + 1 VE the normalised time is 1 by construction."""
    for m, v in [(0.9, 0.2), (0.3, 0.8), (0.6, 0.6)]:
        assert execution_time(m, v, 1, 1) == pytest.approx(1.0)


def test_eq1_monotone_in_engines():
    t1 = execution_time(0.9, 0.3, 1, 1)
    t2 = execution_time(0.9, 0.3, 2, 1)
    t4 = execution_time(0.9, 0.3, 4, 2)
    assert t4 < t2 < t1


def test_eq4_balanced_case():
    assert optimal_me_ve_ratio(0.6, 0.7) == 1.0
    assert optimal_me_ve_ratio(0.5, 0.5) == 1.0


def test_eq4_me_light_case():
    """m < 0.5 -> k = sqrt(m / (1 - m)) < 1 (fewer MEs than VEs)."""
    k = optimal_me_ve_ratio(0.2, 0.9)
    assert k == pytest.approx(math.sqrt(0.2 / 0.8))
    assert k < 1.0


def test_eq4_ve_light_case():
    """v < 0.5 -> k = sqrt((1 - v) / v) > 1 (more MEs than VEs)."""
    k = optimal_me_ve_ratio(0.95, 0.1)
    assert k == pytest.approx(math.sqrt(0.9 / 0.1))
    assert k > 1.0


def test_profile_validation():
    with pytest.raises(AllocationError):
        optimal_me_ve_ratio(0.2, 0.3)  # m + v < 1
    with pytest.raises(AllocationError):
        optimal_me_ve_ratio(1.5, 0.2)
    with pytest.raises(AllocationError):
        execution_time(0.9, 0.3, 0, 1)


def test_split_requires_two_eus():
    with pytest.raises(AllocationError):
        split_eu_budget(0.9, 0.2, 1)


def test_split_always_gives_both_types():
    """Every vNPU gets at least one ME and one VE (SectionIII-B)."""
    for m, v in [(0.99, 0.02), (0.02, 0.99)]:
        for total in range(2, 17):
            nm, nv = split_eu_budget(m, v, total)
            assert nm >= 1 and nv >= 1
            assert nm + nv == total


@settings(max_examples=200, deadline=None)
@given(
    m=st.floats(0.0, 1.0),
    v=st.floats(0.0, 1.0),
    total=st.integers(2, 16),
)
def test_split_matches_brute_force(m, v, total):
    """Eq. 4's closed form must (near-)maximise Eq. 2 utilisation over
    all integer splits of the same budget."""
    if m + v < 1.0:
        v = 1.0 - m  # make the profile feasible
    nm, nv = split_eu_budget(m, v, total)
    chosen = utilization(m, v, nm, nv)
    best = max(
        utilization(m, v, cm, total - cm) for cm in range(1, total)
    )
    assert chosen >= best - 1e-9


@settings(max_examples=100, deadline=None)
@given(m=st.floats(0.0, 1.0), v=st.floats(0.0, 1.0))
def test_utilization_bounded(m, v):
    if m + v < 1.0:
        v = 1.0 - m
    for nm, nv in [(1, 1), (2, 2), (4, 2), (3, 5)]:
        u = utilization(m, v, nm, nv)
        assert 0.0 < u <= 1.0 + 1e-9


# ----------------------------------------------------------------------
# VnpuAllocator
# ----------------------------------------------------------------------
def test_allocate_me_heavy_workload():
    profile = profile_graph(make_me_graph(), CORE)
    allocator = VnpuAllocator(CORE)
    result = allocator.allocate(profile, total_eus=8)
    assert result.num_mes > result.num_ves


def test_allocate_ve_heavy_workload():
    profile = profile_graph(make_ve_graph(), CORE)
    allocator = VnpuAllocator(CORE)
    result = allocator.allocate(profile, total_eus=8)
    assert result.num_ves >= result.num_mes


def test_allocate_caps_at_physical_core():
    profile = profile_graph(make_me_graph(), CORE)
    allocator = VnpuAllocator(CORE)
    result = allocator.allocate(profile, total_eus=100)
    assert result.num_mes <= CORE.num_mes
    assert result.num_ves <= CORE.num_ves


def test_sram_proportional_to_mes():
    profile = profile_graph(make_me_graph(), CORE)
    allocator = VnpuAllocator(CORE)
    small = allocator.allocate(profile, total_eus=2)
    large = allocator.allocate(profile, total_eus=10)
    assert large.sram_bytes > small.sram_bytes


def test_hbm_respects_footprint_override():
    profile = profile_graph(make_me_graph(), CORE)
    allocator = VnpuAllocator(CORE)
    result = allocator.allocate(
        profile, total_eus=4, hbm_footprint_bytes=5 * 2**30
    )
    assert result.hbm_bytes >= 5 * 2**30


def test_as_vnpu_config_round_trip():
    profile = profile_graph(make_me_graph(), CORE)
    result = VnpuAllocator(CORE).allocate(profile, total_eus=6)
    config = result.as_vnpu_config()
    assert config.num_mes_per_core == result.num_mes
    assert config.num_ves_per_core == result.num_ves


def test_sweep_covers_budgets():
    profile = profile_graph(make_me_graph(), CORE)
    sweep = VnpuAllocator(CORE).sweep(profile, max_eus=10)
    assert len(sweep) == 9
