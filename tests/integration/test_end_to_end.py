"""Cross-module integration tests.

Covers the paper's end-to-end flows: profile -> allocate -> place ->
simulate, inter-generational NeuISA compatibility (SectionIV), and
consistency between the analytical allocator and the simulator.
"""

import pytest

from repro.compiler.lowering import lower_graph_neuisa
from repro.compiler.profiler import profile_graph
from repro.config import NpuCoreConfig
from repro.core.allocator import VnpuAllocator, utilization
from repro.core.mapper import MappingMode
from repro.runtime.driver import VnpuDriver
from repro.runtime.hypervisor import Hypervisor
from repro.runtime.vm import GuestVm
from repro.serving.server import ServingConfig, WorkloadSpec, run_collocation
from repro.sim.engine import Simulator, Tenant
from repro.sim.sched_static import StaticPartitionScheduler

from tests.conftest import make_me_graph, make_ve_graph

CORE = NpuCoreConfig()


# ----------------------------------------------------------------------
# Inter-generational compatibility (paper SectionIV)
# ----------------------------------------------------------------------
def test_neuisa_binary_runs_on_any_engine_count():
    """One NeuISA compilation executes unmodified on cores with 1, 2, 4
    and 8 MEs -- 'NeuISA enables a DNN program to run on different
    numbers of MEs/VEs without recompilation'."""
    graph = make_me_graph(layers=2)
    compiled = lower_graph_neuisa(graph, CORE)  # compiled once, nx = 4
    latencies = {}
    for mes in (1, 2, 4, 8):
        core = CORE.with_engines(mes, 4)
        tenant = Tenant(0, "w", compiled, alloc_mes=mes, alloc_ves=4,
                        target_requests=1)
        result = Simulator(core, StaticPartitionScheduler(), [tenant]).run()
        latencies[mes] = result.tenant(0).mean_latency
    # More engines -> monotonically faster, up to the compiled tiling.
    assert latencies[2] < latencies[1]
    assert latencies[4] < latencies[2]
    # Beyond the compiled uTOp count (4) there is nothing more to run.
    assert latencies[8] == pytest.approx(latencies[4])


def test_vliw_binary_is_not_portable():
    """The contrast: a VLIW binary compiled for 4 MEs cannot run on a
    2-ME core at all (the coupled block does not fit)."""
    from repro.compiler.lowering import lower_graph_vliw
    from repro.errors import SimulationError
    from repro.baselines.pmt import PmtScheduler

    graph = make_me_graph(layers=1)
    compiled = lower_graph_vliw(graph, CORE, num_mes=4, num_ves=4)
    core = CORE.with_engines(2, 4)
    tenant = Tenant(0, "w", compiled, alloc_mes=2, alloc_ves=4,
                    target_requests=1)
    sim = Simulator(core, PmtScheduler(), [tenant])
    with pytest.raises(SimulationError):
        sim.run()  # deadlock: the 4-wide op never fits 2 engines


# ----------------------------------------------------------------------
# Allocator vs simulator consistency
# ----------------------------------------------------------------------
def test_allocator_prediction_matches_simulated_ranking():
    """Eq. 2's utilisation ranking must agree with simulated latency
    ranking across ME/VE splits for an ME-heavy workload."""
    graph = make_me_graph()
    profile = profile_graph(graph, CORE)
    compiled = lower_graph_neuisa(graph, CORE)
    sim_latency = {}
    for nm, nv in [(1, 3), (2, 2), (3, 1)]:
        tenant = Tenant(0, "w", compiled, alloc_mes=nm, alloc_ves=nv,
                        target_requests=1)
        result = Simulator(CORE, StaticPartitionScheduler(), [tenant]).run()
        sim_latency[(nm, nv)] = result.tenant(0).mean_latency
    predicted = {
        cfg: utilization(profile.m, profile.v, *cfg) for cfg in sim_latency
    }
    best_predicted = max(predicted, key=lambda c: predicted[c])
    assert best_predicted == (3, 1)
    # The predicted-best config must be simulated (co-)best.  Exact
    # strict ordering can tie because uTOp counts quantise into waves
    # (4 tiles on 3 engines take the same 2 waves as on 2 engines).
    assert sim_latency[best_predicted] == pytest.approx(
        min(sim_latency.values())
    )
    # And the ranking extremes agree strictly.
    assert sim_latency[(3, 1)] < sim_latency[(1, 3)]


# ----------------------------------------------------------------------
# Control plane -> data plane
# ----------------------------------------------------------------------
def test_full_stack_provision_and_serve():
    """Profile two workloads, provision vNPUs through the hypervisor,
    then run the collocation the placement implies."""
    hv = Hypervisor([CORE], mode=MappingMode.SPATIAL)
    profiles = {
        "me": profile_graph(make_me_graph(), CORE),
        "ve": profile_graph(make_ve_graph(), CORE),
    }
    handles = {}
    for name, profile in profiles.items():
        driver = VnpuDriver(GuestVm(name), hv)
        allocator = VnpuAllocator(CORE)
        result = allocator.allocate(profile, total_eus=4)
        handles[name] = driver.open(result.as_vnpu_config())
    me_cfg = handles["me"].config
    ve_cfg = handles["ve"].config
    # Complementary splits on one physical core.
    assert me_cfg.num_mes_per_core + ve_cfg.num_mes_per_core <= CORE.num_mes
    assert me_cfg.num_mes_per_core > ve_cfg.num_mes_per_core

    pair = run_collocation(
        [
            WorkloadSpec("MNIST", 8, alloc_mes=me_cfg.num_mes_per_core,
                         alloc_ves=me_cfg.num_ves_per_core),
            WorkloadSpec("DLRM", 8, alloc_mes=ve_cfg.num_mes_per_core,
                         alloc_ves=ve_cfg.num_ves_per_core),
        ],
        "neu10",
        ServingConfig(target_requests=2),
    )
    assert all(t.completed_requests >= 2 for t in pair.tenants)


def test_cli_lists_experiments(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig19" in out and "hwcost" in out
    assert cli_main(["no-such-experiment"]) == 2


def test_cli_runs_fast_experiment(capsys):
    from repro.cli import main as cli_main

    assert cli_main(["hwcost"]) == 0
    out = capsys.readouterr().out
    assert "uTOp scheduler" in out
