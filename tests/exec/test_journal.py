"""SweepJournal: manifest guard, append-only ledger, torn-tail tolerance."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.exec import JOURNAL_SCHEMA_VERSION, SweepJournal

KEYS = ["aaa", "bbb", "ccc"]


def test_fresh_journal_writes_manifest(tmp_path):
    with SweepJournal(tmp_path, "digest-1", KEYS) as journal:
        journal.record("aaa", {"x": 1})
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    assert manifest["schema_version"] == JOURNAL_SCHEMA_VERSION
    assert manifest["sweep_digest"] == "digest-1"
    assert manifest["shards"] == 3
    lines = (tmp_path / "journal.jsonl").read_text().splitlines()
    assert json.loads(lines[0]) == {"shard": "aaa", "result": {"x": 1}}


def test_resume_loads_completed_shards(tmp_path):
    with SweepJournal(tmp_path, "d", KEYS) as journal:
        journal.record("aaa", {"x": 1})
        journal.record("bbb", {"x": 2})
        journal.record_failure("ccc", {"key": "ccc", "error_type": "Boom"})
    resumed = SweepJournal(tmp_path, "d", KEYS, resume=True)
    assert resumed.completed == {"aaa": {"x": 1}, "bbb": {"x": 2}}
    assert resumed.prior_failures == [{"key": "ccc", "error_type": "Boom"}]
    assert resumed.skipped_lines == 0
    resumed.close()


def test_fresh_refuses_existing_nonempty_journal(tmp_path):
    with SweepJournal(tmp_path, "d", KEYS) as journal:
        journal.record("aaa", {"x": 1})
    with pytest.raises(ConfigError, match="--resume"):
        SweepJournal(tmp_path, "d", KEYS)


def test_resume_refuses_missing_manifest(tmp_path):
    with pytest.raises(ConfigError, match="does not exist"):
        SweepJournal(tmp_path, "d", KEYS, resume=True)


def test_resume_refuses_foreign_sweep(tmp_path):
    SweepJournal(tmp_path, "theirs", KEYS).close()
    with pytest.raises(ConfigError, match="different\\s+sweep"):
        SweepJournal(tmp_path, "ours", KEYS, resume=True)


def test_resume_refuses_unknown_schema(tmp_path):
    journal = SweepJournal(tmp_path, "d", KEYS)
    journal.close()
    manifest = json.loads((tmp_path / "manifest.json").read_text())
    manifest["schema_version"] = 999
    (tmp_path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(ConfigError, match="schema_version"):
        SweepJournal(tmp_path, "d", KEYS, resume=True)


def test_torn_tail_line_is_skipped_not_fatal(tmp_path):
    with SweepJournal(tmp_path, "d", KEYS) as journal:
        journal.record("aaa", {"x": 1})
    # Simulate a SIGKILL mid-append: a truncated JSON line at the tail.
    with open(tmp_path / "journal.jsonl", "a", encoding="utf-8") as fh:
        fh.write('{"shard": "bbb", "resu')
    resumed = SweepJournal(tmp_path, "d", KEYS, resume=True)
    assert resumed.completed == {"aaa": {"x": 1}}
    assert resumed.skipped_lines == 1  # bbb simply counts as not-done
    resumed.close()


def test_unknown_shard_keys_are_skipped(tmp_path):
    with SweepJournal(tmp_path, "d", KEYS) as journal:
        journal.record("aaa", {"x": 1})
    with open(tmp_path / "journal.jsonl", "a", encoding="utf-8") as fh:
        fh.write('{"shard": "zzz", "result": {"x": 9}}\n')
    resumed = SweepJournal(tmp_path, "d", KEYS, resume=True)
    assert "zzz" not in resumed.completed
    assert resumed.skipped_lines == 1
    resumed.close()


def test_resume_then_append_accumulates(tmp_path):
    with SweepJournal(tmp_path, "d", KEYS) as journal:
        journal.record("aaa", {"x": 1})
    with SweepJournal(tmp_path, "d", KEYS, resume=True) as journal:
        journal.record("bbb", {"x": 2})
    resumed = SweepJournal(tmp_path, "d", KEYS, resume=True)
    assert set(resumed.completed) == {"aaa", "bbb"}
    resumed.close()
