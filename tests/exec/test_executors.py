"""Executor backends: ordering, retries, timeouts, crash isolation."""

from __future__ import annotations

import warnings

import pytest

from repro.errors import ConfigError, ExecError
from repro.exec import (
    ExecSpec,
    ExecTask,
    LocalQueueExecutor,
    PoolExecutor,
    SerialExecutor,
    TaskOutcome,
)
from repro.exec.testing import (
    crashing_task,
    echo_task,
    flaky_task,
    sleepy_task,
)

BACKENDS = {
    "serial": SerialExecutor,
    "pool": PoolExecutor,
    "local-queue": LocalQueueExecutor,
}


def make(backend: str, **kwargs) -> object:
    spec = ExecSpec(backend=backend, **kwargs)
    return BACKENDS[backend](spec)


def tasks_for(payloads):
    return [ExecTask(key=f"t{i}", payload=p) for i, p in enumerate(payloads)]


# ----------------------------------------------------------------------
# Contract: outcomes in task order, on every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_echo_outcomes_in_task_order(backend):
    executor = make(backend, max_workers=2)
    outcomes = executor.map_tasks(echo_task, tasks_for(range(7)))
    assert [o.value for o in outcomes] == list(range(7))
    assert [o.key for o in outcomes] == [f"t{i}" for i in range(7)]
    assert all(o.ok and o.attempts == 1 for o in outcomes)


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_empty_task_list(backend):
    assert make(backend).map_tasks(echo_task, []) == []


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_completion_hook_fires_once_per_task(backend):
    seen = []
    executor = make(backend, max_workers=2)
    executor.map_tasks(
        echo_task, tasks_for(range(5)), on_complete=seen.append
    )
    assert sorted(o.key for o in seen) == [f"t{i}" for i in range(5)]
    assert all(isinstance(o, TaskOutcome) for o in seen)


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_flaky_task_retried_to_success(backend, tmp_path):
    executor = make(backend, max_workers=2, retries=2, retry_backoff_s=0.0)
    payloads = [
        {"scratch": str(tmp_path / backend), "key": f"k{i}",
         "fail_times": i % 3, "value": i * 10}
        for i in range(6)
    ]
    outcomes = executor.map_tasks(flaky_task, tasks_for(payloads))
    assert [o.value for o in outcomes] == [0, 10, 20, 30, 40, 50]
    assert [o.attempts for o in outcomes] == [1, 2, 3, 1, 2, 3]


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_retries_exhausted_aborts_with_exec_error(backend, tmp_path):
    executor = make(backend, max_workers=2, retries=1, retry_backoff_s=0.0)
    payloads = [{"scratch": str(tmp_path), "key": "dead",
                 "fail_times": 99, "value": 1}]
    with pytest.raises(ExecError, match="dead|t0"):
        executor.map_tasks(flaky_task, tasks_for(payloads))


@pytest.mark.parametrize("backend", sorted(BACKENDS))
def test_keep_going_records_structured_failure(backend, tmp_path):
    executor = make(
        backend, max_workers=2, retries=1, retry_backoff_s=0.0,
        keep_going=True,
    )
    payloads = [
        {"scratch": str(tmp_path), "key": "bad", "fail_times": 99,
         "value": None},
        {"scratch": str(tmp_path), "key": "good", "fail_times": 0,
         "value": "fine"},
    ]
    outcomes = executor.map_tasks(flaky_task, tasks_for(payloads))
    assert not outcomes[0].ok
    failure = outcomes[0].failure
    assert failure.error_type == "RuntimeError"
    assert failure.attempts == 2
    assert not failure.timed_out
    assert "deterministic flake" in failure.message
    assert outcomes[1].ok and outcomes[1].value == "fine"


def test_backoff_schedule():
    spec = ExecSpec(retries=3, retry_backoff_s=0.1)
    assert spec.max_attempts == 4
    assert spec.backoff_before(1) == 0.0
    assert spec.backoff_before(2) == pytest.approx(0.1)
    assert spec.backoff_before(3) == pytest.approx(0.2)
    assert spec.backoff_before(4) == pytest.approx(0.4)


# ----------------------------------------------------------------------
# Timeouts
# ----------------------------------------------------------------------
def test_local_queue_timeout_kills_and_retries(tmp_path):
    executor = make(
        "local-queue", max_workers=2, task_timeout_s=0.4, retries=2,
        retry_backoff_s=0.0,
    )
    payloads = [
        # Stuck on attempt 1, returns on attempt 2.
        {"scratch": str(tmp_path), "key": "slow", "sleep_s": 30.0,
         "slow_times": 1, "value": "woke"},
        {"scratch": str(tmp_path), "key": "fast", "sleep_s": 0.0,
         "slow_times": 0, "value": "quick"},
    ]
    outcomes = executor.map_tasks(sleepy_task, tasks_for(payloads))
    assert outcomes[0].value == "woke" and outcomes[0].attempts == 2
    assert outcomes[1].value == "quick" and outcomes[1].attempts == 1


def test_local_queue_timeout_exhausted_is_structured(tmp_path):
    executor = make(
        "local-queue", max_workers=1, task_timeout_s=0.3, retries=1,
        retry_backoff_s=0.0, keep_going=True,
    )
    payloads = [{"scratch": str(tmp_path), "key": "stuck",
                 "sleep_s": 30.0, "value": None}]
    outcomes = executor.map_tasks(sleepy_task, tasks_for(payloads))
    failure = outcomes[0].failure
    assert failure is not None
    assert failure.timed_out
    assert failure.error_type == "TimeoutError"
    assert failure.attempts == 2


@pytest.mark.parametrize("backend", ["serial", "pool"])
def test_timeout_unenforceable_backends_warn(backend):
    executor = make(backend, max_workers=1, task_timeout_s=1.0)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        outcomes = executor.map_tasks(echo_task, tasks_for([1]))
    assert [o.value for o in outcomes] == [1]
    assert any(
        "task_timeout_s" in str(w.message)
        and issubclass(w.category, RuntimeWarning)
        for w in caught
    )


# ----------------------------------------------------------------------
# Crash isolation (the local-queue reason for existing)
# ----------------------------------------------------------------------
def test_local_queue_survives_worker_death(tmp_path):
    executor = make(
        "local-queue", max_workers=2, retries=2, retry_backoff_s=0.0,
    )
    payloads = [
        {"scratch": str(tmp_path), "key": "boom", "crash_times": 1,
         "value": "ok-after-crash"},
        {"scratch": str(tmp_path), "key": "calm", "crash_times": 0,
         "value": "calm"},
    ]
    outcomes = executor.map_tasks(crashing_task, tasks_for(payloads))
    assert outcomes[0].value == "ok-after-crash"
    assert outcomes[0].attempts == 2
    assert outcomes[1].value == "calm" and outcomes[1].attempts == 1


def test_local_queue_permanent_crash_keep_going(tmp_path):
    executor = make(
        "local-queue", max_workers=1, retries=1, retry_backoff_s=0.0,
        keep_going=True,
    )
    payloads = [{"scratch": str(tmp_path), "key": "always", "crash_times": 99,
                 "value": None}]
    outcomes = executor.map_tasks(crashing_task, tasks_for(payloads))
    failure = outcomes[0].failure
    assert failure is not None
    assert failure.error_type == "WorkerDied"
    assert "19" in failure.message


def test_pool_worker_death_raises_exec_error(tmp_path):
    executor = make("pool", max_workers=2, retries=0)
    payloads = [
        {"scratch": str(tmp_path), "key": f"c{i}", "crash_times": 99,
         "value": None}
        for i in range(2)
    ]
    with pytest.raises(ExecError, match="local-queue"):
        executor.map_tasks(crashing_task, tasks_for(payloads))


# ----------------------------------------------------------------------
# Spec validation
# ----------------------------------------------------------------------
def test_spec_validation():
    with pytest.raises(ConfigError):
        ExecSpec(backend="")
    with pytest.raises(ConfigError):
        ExecSpec(max_workers=0)
    with pytest.raises(ConfigError):
        ExecSpec(task_timeout_s=0)
    with pytest.raises(ConfigError):
        ExecSpec(retries=-1)
    with pytest.raises(ConfigError):
        ExecSpec(retry_backoff_s=-0.1)
    with pytest.raises(ConfigError):
        ExecTask(key="", payload=None)
