"""Executor-backed sweeps: bit-identical results, checkpoints, resume."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.api import (
    EXECUTOR_FIELD_DOCS,
    EXECUTORS,
    Scenario,
    ScenarioChurn,
    ScenarioExecutor,
    ScenarioTenant,
    run_scenario,
    sweep_scenario,
    sweep_scenario_report,
)
from repro.errors import ConfigError

BACKENDS = ("serial", "pool", "local-queue")


@pytest.fixture(scope="module")
def tiny():
    return Scenario(
        name="tiny", kind="open_loop", scheme="neu10",
        tenants=(ScenarioTenant(model="MNIST", batch=8),),
        load=0.8, duration_s=0.0004, seed=7,
    )


@pytest.fixture(scope="module")
def reference(tiny):
    """The legacy sweep path's results (the bit-identity reference)."""
    return [
        r.to_dict()
        for r in sweep_scenario(
            tiny, param="load", values=[0.5, 0.9], max_workers=1
        )
    ]


# ----------------------------------------------------------------------
# Differential: every backend == the legacy sweep, modulo provenance
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_matches_legacy_sweep(tiny, reference, backend):
    report = sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9], executor=backend,
        max_workers=2,
    )
    assert report.ok
    assert report.backend == backend
    assert (report.total, report.executed, report.resumed) == (2, 2, 0)
    for got, want in zip(
        [r.to_dict() for r in report.results], reference
    ):
        assert got["provenance"].pop("executor") == {"backend": backend}
        assert got == want


def test_sweep_scenario_routes_executor_block(tiny, reference):
    routed = tiny.replaced(executor=ScenarioExecutor(backend="serial"))
    results = sweep_scenario(routed, param="load", values=[0.5, 0.9])
    assert [r.provenance["executor"] for r in results] == [
        {"backend": "serial"}
    ] * 2
    # The executor block changes the spec (and so its digest) but must
    # never change the simulated metrics.
    assert [r.metrics for r in results] == [r["metrics"] for r in reference]


# ----------------------------------------------------------------------
# Checkpoint + resume
# ----------------------------------------------------------------------
def test_checkpoint_then_full_resume_is_bit_identical(tiny, tmp_path):
    ck = tmp_path / "ck"
    first = sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9], executor="serial",
        checkpoint=ck,
    )
    again = sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9], executor="serial",
        checkpoint=ck, resume=True,
    )
    assert (again.resumed, again.executed) == (2, 0)
    assert [r.to_dict() for r in again.results] == [
        r.to_dict() for r in first.results
    ]


def test_partial_journal_resume_runs_only_missing(tiny, tmp_path):
    ck = tmp_path / "ck"
    full = sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9, 1.1], executor="serial",
        checkpoint=ck,
    )
    # Drop the journal's tail line: the third shard becomes not-done.
    journal = ck / "journal.jsonl"
    lines = journal.read_text().splitlines()
    journal.write_text("\n".join(lines[:2]) + "\n")
    resumed = sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9, 1.1], executor="serial",
        checkpoint=ck, resume=True,
    )
    assert (resumed.resumed, resumed.executed) == (2, 1)
    assert [r.to_dict() for r in resumed.results] == [
        r.to_dict() for r in full.results
    ]


def test_resume_across_backends_is_bit_identical(tiny, tmp_path):
    ck = tmp_path / "ck"
    sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9], executor="pool",
        checkpoint=ck, max_workers=2,
    )
    resumed = sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9], executor="local-queue",
        checkpoint=ck, resume=True,
    )
    one_shot = sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9], executor="local-queue",
    )
    assert resumed.executed == 0
    assert [r.to_dict() for r in resumed.results] == [
        r.to_dict() for r in one_shot.results
    ]


def test_resume_without_checkpoint_rejected(tiny):
    with pytest.raises(ConfigError, match="--checkpoint"):
        sweep_scenario_report(
            tiny, param="load", values=[0.5], executor="serial",
            resume=True,
        )


def test_checkpoint_guards_against_foreign_sweep(tiny, tmp_path):
    ck = tmp_path / "ck"
    sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9], executor="serial",
        checkpoint=ck,
    )
    with pytest.raises(ConfigError, match="different\\s+sweep"):
        sweep_scenario_report(
            tiny, param="load", values=[0.5, 1.3], executor="serial",
            checkpoint=ck, resume=True,
        )


def test_progress_hook_sees_every_shard(tiny, tmp_path):
    ticks = []
    sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9], executor="serial",
        checkpoint=tmp_path / "ck",
        on_progress=lambda done, total, outcome: ticks.append(
            (done, total, None if outcome is None else outcome.ok)
        ),
    )
    assert ticks == [(1, 2, True), (2, 2, True)]
    ticks.clear()
    sweep_scenario_report(
        tiny, param="load", values=[0.5, 0.9], executor="serial",
        checkpoint=tmp_path / "ck", resume=True,
        on_progress=lambda done, total, outcome: ticks.append(
            (done, total, None if outcome is None else outcome.ok)
        ),
    )
    # One up-front resume tick (outcome None), nothing left to run.
    assert ticks == [(2, 2, None)]


# ----------------------------------------------------------------------
# keep_going failure accounting
# ----------------------------------------------------------------------
def test_keep_going_isolates_failed_points(tiny):
    # "trace" passes validation (it is a registered arrival kind) but
    # fails inside the worker: replaying a trace needs timestamps.
    report = sweep_scenario_report(
        tiny, param="arrival", values=["poisson", "trace"],
        executor="serial", keep_going=True,
    )
    assert len(report.results) == 1
    assert len(report.failures) == 1
    assert report.failures[0].error_type == "ConfigError"
    assert report.results[0].metadata["arrival"] == "poisson"


def test_failed_point_aborts_without_keep_going(tiny):
    from repro.errors import ExecError

    with pytest.raises(ExecError):
        sweep_scenario_report(
            tiny, param="arrival", values=["poisson", "trace"],
            executor="serial",
        )


# ----------------------------------------------------------------------
# Scenario surface
# ----------------------------------------------------------------------
def test_executor_block_round_trips(tiny):
    sc = tiny.replaced(
        executor=ScenarioExecutor(
            backend="local-queue", max_workers=3, task_timeout_s=10.0,
            retries=1, keep_going=True,
        )
    )
    assert Scenario.from_dict(json.loads(sc.to_json())) == sc
    payload = sc.to_dict()["executor"]
    assert payload["backend"] == "local-queue"
    assert payload["task_timeout_s"] == 10.0


def test_executor_block_defaults_omitted_from_dict(tiny):
    assert "executor" not in tiny.to_dict()
    sc = tiny.replaced(executor=ScenarioExecutor())
    assert sc.to_dict()["executor"] == {"backend": "pool"}


def test_unknown_backend_rejected_by_validate(tiny):
    sc = tiny.replaced(executor=ScenarioExecutor(backend="nope"))
    with pytest.raises(ConfigError, match="nope"):
        sc.validate()


def test_executor_field_docs_pinned_to_fields():
    fields = {f.name for f in dataclasses.fields(ScenarioExecutor)}
    assert set(EXECUTOR_FIELD_DOCS) == fields


def test_registry_lists_builtin_backends():
    assert set(BACKENDS) <= set(EXECUTORS.names())


# ----------------------------------------------------------------------
# Cluster fan-out
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def cluster():
    return Scenario(
        name="cl", kind="cluster", scheme="neu10", hosts=2,
        duration_s=0.0008, load=0.5,
        churn=(
            ScenarioChurn(time_s=0.0, action="arrive", name="a",
                          model="MNIST"),
            ScenarioChurn(time_s=0.0, action="arrive", name="b",
                          model="DLRM"),
        ),
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_cluster_executor_metrics_identical(cluster, backend):
    want = run_scenario(cluster).to_dict()
    got = run_scenario(
        cluster.replaced(executor=ScenarioExecutor(backend=backend))
    ).to_dict()
    assert got["provenance"].pop("executor") == {"backend": backend}
    assert got["metrics"] == want["metrics"]
    assert got["metadata"] == want["metadata"]
