"""CLI surface of executor sweeps: flags, progress, failure accounting."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main

TINY = {
    "name": "tiny",
    "kind": "open_loop",
    "scheme": "neu10",
    "duration_s": 0.0004,
    "load": 0.8,
    "seed": 7,
    "tenants": [{"model": "MNIST", "batch": 8}],
    "sweep": {"param": "load", "values": [0.5, 1.0]},
}


@pytest.fixture
def tiny_file(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(TINY), encoding="utf-8")
    return str(path)


def test_sweep_executor_flag_json(tiny_file, capsys):
    assert cli_main(["sweep", tiny_file, "--executor", "serial",
                     "--json"]) == 0
    captured = capsys.readouterr()
    payload = json.loads(captured.out)
    assert len(payload) == 2
    assert all(
        r["provenance"]["executor"] == {"backend": "serial"}
        for r in payload
    )
    # --json suppresses the progress ticks by default.
    assert "shard" not in captured.err


def test_sweep_progress_ticks_on_stderr(tiny_file, capsys):
    assert cli_main(["sweep", tiny_file, "--executor", "serial"]) == 0
    err = capsys.readouterr().err
    assert "[1/2] shard" in err and "[2/2] shard" in err
    assert "sweep done: 2/2" in err


def test_sweep_no_progress_flag(tiny_file, capsys):
    assert cli_main(["sweep", tiny_file, "--executor", "serial",
                     "--no-progress"]) == 0
    assert "shard" not in capsys.readouterr().err


def test_sweep_checkpoint_resume_cycle(tiny_file, tmp_path, capsys):
    ck = str(tmp_path / "ck")
    assert cli_main(["sweep", tiny_file, "--executor", "serial",
                     "--checkpoint", ck, "--json"]) == 0
    first = json.loads(capsys.readouterr().out)
    assert cli_main(["sweep", tiny_file, "--checkpoint", ck,
                     "--resume", "--json"]) == 0
    captured = capsys.readouterr()
    again = json.loads(captured.out)
    # Resume skipped everything; results differ only in the executor
    # stamp (the resume run defaulted to the pool backend).
    for a, b in zip(again, first):
        assert a["provenance"].pop("executor") == {"backend": "pool"}
        assert b["provenance"].pop("executor") == {"backend": "serial"}
        assert a == b


def test_sweep_fresh_checkpoint_refuses_old_journal(tiny_file, tmp_path,
                                                    capsys):
    ck = str(tmp_path / "ck")
    assert cli_main(["sweep", tiny_file, "--executor", "serial",
                     "--checkpoint", ck]) == 0
    capsys.readouterr()
    assert cli_main(["sweep", tiny_file, "--executor", "serial",
                     "--checkpoint", ck]) == 1
    assert "--resume" in capsys.readouterr().err


def test_sweep_keep_going_exit_code_and_summary(tiny_file, capsys):
    # "trace" validates (registered arrival) but fails in the worker.
    code = cli_main(["sweep", tiny_file, "--executor", "serial",
                     "--param", "arrival", "--values", "poisson,trace",
                     "--keep-going", "--json"])
    captured = capsys.readouterr()
    assert code == 1
    payload = json.loads(captured.out)
    assert payload["metadata"]["arrival"] == "poisson"
    assert "1 sweep point(s) failed permanently (of 2)" in captured.err
    assert "sweep point failed:" in captured.err


def test_sweep_without_keep_going_aborts(tiny_file, capsys):
    code = cli_main(["sweep", tiny_file, "--executor", "serial",
                     "--param", "arrival", "--values", "poisson,trace"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_list_documents_executors(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Executor backends" in out
    assert "local-queue" in out and "serial" in out and "pool" in out
    assert "task_timeout_s" in out


def test_list_json_documents_executors(capsys):
    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["executors"]) >= {"serial", "pool", "local-queue"}
    assert "backend" in payload["executor"]
    assert "keep_going" in payload["executor"]
