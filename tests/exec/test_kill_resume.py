"""Kill a checkpointed sweep mid-flight (SIGKILL), resume, compare.

The acceptance test for the checkpoint/resume design: a ``repro sweep
--executor local-queue --checkpoint DIR`` process is SIGKILLed as soon
as the journal shows progress, then the sweep is resumed -- and the
merged results must be bit-identical to an uninterrupted serial run.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
VALUES = ",".join(str(round(0.4 + 0.05 * i, 2)) for i in range(12))

SCENARIO = {
    "name": "killer",
    "kind": "open_loop",
    "scheme": "neu10",
    "duration_s": 0.0012,
    "load": 0.8,
    "seed": 11,
    "tenants": [{"model": "MNIST", "batch": 8}],
}


def _sweep_cmd(scenario_file, extra):
    return [
        sys.executable, "-m", "repro.cli", "sweep", str(scenario_file),
        "--param", "load", "--values", VALUES, *extra,
    ]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _wait_for_journal(journal: Path, min_lines: int, timeout_s: float,
                      proc) -> int:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return -1  # finished before we could interrupt it
        if journal.exists():
            lines = [
                line for line in
                journal.read_text(encoding="utf-8").splitlines()
                if '"result"' in line
            ]
            if len(lines) >= min_lines:
                return len(lines)
        time.sleep(0.05)
    return 0


def test_sigkill_mid_sweep_then_resume_matches_serial(tmp_path):
    scenario_file = tmp_path / "killer.json"
    scenario_file.write_text(json.dumps(SCENARIO), encoding="utf-8")
    ck = tmp_path / "ck"

    # Uninterrupted serial reference, no checkpoint involved.
    ref_out = tmp_path / "ref.json"
    subprocess.run(
        _sweep_cmd(scenario_file,
                   ["--executor", "serial", "--json",
                    "--output", str(ref_out)]),
        check=True, env=_env(), cwd=REPO_ROOT, timeout=300,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    reference = json.loads(ref_out.read_text(encoding="utf-8"))
    assert len(reference) == 12

    # Checkpointed local-queue run, SIGKILLed once >= 2 shards landed.
    proc = subprocess.Popen(
        _sweep_cmd(scenario_file,
                   ["--executor", "local-queue", "--workers", "2",
                    "--checkpoint", str(ck), "--json"]),
        env=_env(), cwd=REPO_ROOT, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        landed = _wait_for_journal(ck / "journal.jsonl", 2, 120.0, proc)
        if landed > 0:
            # Kill the whole process group: the parent AND its spawned
            # workers die instantly, mid-whatever-they-were-doing.
            os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup only
            os.killpg(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
    assert landed != 0, "no shard completed within the polling window"

    if landed > 0:
        done = [
            line for line in
            (ck / "journal.jsonl").read_text(encoding="utf-8").splitlines()
            if '"result"' in line
        ]
        assert len(done) < 12, "sweep finished before the kill landed"

    # Resume on a different backend; merged output must be identical.
    resumed_out = tmp_path / "resumed.json"
    resumed = subprocess.run(
        _sweep_cmd(scenario_file,
                   ["--executor", "serial", "--checkpoint", str(ck),
                    "--resume", "--json", "--output", str(resumed_out)]),
        env=_env(), cwd=REPO_ROOT, timeout=300,
        capture_output=True, text=True,
    )
    assert resumed.returncode == 0, resumed.stderr
    merged = json.loads(resumed_out.read_text(encoding="utf-8"))

    # Bit-identical to the uninterrupted serial run, byte for byte:
    # same metrics, same metadata, same provenance (both ran with
    # --executor serial, so even the executor stamp matches).
    assert merged == reference
