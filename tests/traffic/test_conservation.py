"""Request conservation across the traffic engines.

The headline regression: an arrival drawn at exactly ``horizon_cycles``
is generated but never issued by the engine, so SLO reports built from
``result.offered_requests`` under-counted offered work -- systematic in
cluster segments, where the hypercall-cost hold clamps arrival times to
the segment end.  ``build_slo_report`` now accepts the generator-side
``offered`` count and takes the max.
"""

from repro.api import run_scenario, sweep_scenario_report
from repro.api.scenario import Scenario, ScenarioChurn, ScenarioTenant
from repro.api.scenario import ScenarioVirtualization


def _open_loop(drain: bool, seed: int = 3) -> Scenario:
    return Scenario(
        name="cons-ol", kind="open_loop", scheme="neu10",
        tenants=(
            ScenarioTenant(model="MNIST", batch=8),
            ScenarioTenant(model="NCF", batch=4, weight=2.0),
        ),
        load=0.8, duration_s=0.001, seed=seed, drain=drain,
    )


def test_open_loop_drain_conserves_every_request():
    result = run_scenario(_open_loop(drain=True))
    for t in result.metrics["tenants"]:
        assert t["completed"] == t["offered"] > 0
        assert 0 <= t["attained"] <= t["completed"]


def test_open_loop_no_drain_never_overcounts():
    result = run_scenario(_open_loop(drain=False))
    for t in result.metrics["tenants"]:
        assert 0 <= t["attained"] <= t["completed"] <= t["offered"]
        if t["offered"]:
            assert abs(
                t["attainment"] - t["attained"] / t["offered"]
            ) < 1e-9


def test_slo_report_offered_override():
    """The report trusts the generator count when the engine issued
    fewer requests (the horizon-arrival leak), and never lowers it."""
    from repro.traffic.slo import build_slo_report

    result = run_scenario(_open_loop(drain=True))

    class _FakeResult:
        def __init__(self, inner):
            self._m = inner.metrics["tenants"][0]

        offered_requests = property(lambda self: self._m["offered"])
        completed_requests = property(lambda self: self._m["completed"])
        latencies_cycles = property(lambda self: [])
        queueing_cycles = property(lambda self: [])

    fake = _FakeResult(result)
    engine_offered = fake.offered_requests
    report = build_slo_report(
        "t", "neu10", 1000.0, fake, 0.001, offered=engine_offered + 1
    )
    assert report.offered == engine_offered + 1
    # The override is a floor, not a cap: a stale generator count can
    # never hide requests the engine demonstrably issued.
    report = build_slo_report(
        "t", "neu10", 1000.0, fake, 0.001, offered=0
    )
    assert report.offered == engine_offered


def test_cluster_hypercall_hold_conserves():
    """Cluster segments clamp held arrivals to the segment end -- the
    shape that leaked offered requests before the fix."""
    sc = Scenario(
        name="cons-cluster", kind="cluster", scheme="neu10",
        load=0.7, duration_s=0.002, seed=17, hosts=2,
        virtualization=ScenarioVirtualization(
            num_vfs=4, hypercall_cost_s=0.0002,
        ),
        churn=(
            ScenarioChurn(0.0, "arrive", "a", model="MNIST", batch=4,
                          num_mes=2, num_ves=2),
            # Admitted late in the run: its onboarding hold pushes
            # arrivals right up against the final segment boundary.
            ScenarioChurn(0.0017, "arrive", "late", model="NCF", batch=4,
                          num_mes=2, num_ves=2),
        ),
    )
    result = run_scenario(sc)
    tenants = {t["name"]: t for t in result.metrics["tenants"]}
    assert "late" in tenants
    for t in result.metrics["tenants"]:
        assert 0 <= t["attained"] <= t["completed"] <= t["offered"]


def test_llm_drain_conserves_per_tenant_and_headline():
    from repro.api.scenario import ScenarioLlm, ScenarioLlmTenant

    sc = Scenario(
        name="cons-llm", kind="llm", scheme="neu10",
        load=0.7, duration_s=0.001, seed=23, drain=True,
        llm=ScenarioLlm(
            tenants=(
                ScenarioLlmTenant(name="a", prompt_tokens=64,
                                  decode_tokens=16),
                ScenarioLlmTenant(name="b", prompt_tokens=128,
                                  decode_tokens=32, weight=2.0),
            ),
            batch_tokens=512, m_total=1024,
            step_overhead_cycles=2000.0, cycles_per_token=20.0,
        ),
    )
    result = run_scenario(sc)
    headline = result.metrics["requests"]
    per_tenant = result.metrics["tenants"]
    assert headline["completed"] == headline["arrived"]
    assert sum(t["arrived"] for t in per_tenant.values()) == (
        headline["arrived"]
    )
    assert sum(t["completed"] for t in per_tenant.values()) == (
        headline["completed"]
    )


def test_keep_going_sweep_accounts_for_every_point():
    """Executor failures must not lose sweep points: results plus
    structured failures always add up to the requested total, and the
    surviving results still conserve requests."""
    report = sweep_scenario_report(
        _open_loop(drain=True),
        param="arrival",
        values=["poisson", "trace", "bursty"],  # "trace" fails in-worker
        executor="serial", keep_going=True,
    )
    assert len(report.results) + len(report.failures) == report.total == 3
    assert len(report.failures) == 1
    for result in report.results:
        for t in result.metrics["tenants"]:
            assert t["completed"] == t["offered"]
