"""Cluster-scale open-loop simulation under tenant churn."""

import pytest

from repro.errors import ConfigError
from repro.traffic import (
    ChurnEvent,
    ClusterTrafficConfig,
    SloSpec,
    TrafficTenantSpec,
    run_cluster_traffic,
)

from repro.traffic.cluster_sim import ClusterSimulation

MNIST = TrafficTenantSpec(model="MNIST", batch=8)
DLRM = TrafficTenantSpec(model="DLRM", batch=8)


def test_failed_boundary_leaves_the_simulation_intact():
    """A boundary that cannot apply must apply *nothing*.

    The depart of "b" and the conflicting re-arrival of "a" share one
    boundary; the bad arrival must be rejected before the depart lands,
    so the run stays consistent and the error is retry-stable instead
    of double-applying the depart.
    """
    events = [
        ChurnEvent(0.0, "arrive", "a", spec=MNIST),
        ChurnEvent(0.0, "arrive", "b", spec=MNIST),
        ChurnEvent(0.0005, "depart", "b"),
        ChurnEvent(0.0005, "arrive", "a", spec=MNIST),
    ]
    cfg = ClusterTrafficConfig(num_hosts=2, load=0.5, end_s=0.001, seed=4)
    sim = ClusterSimulation(events, cfg)
    sim.step_segment()
    assert set(sim.residents) == {"a", "b"}
    before = sim.segments_completed
    for _ in range(2):  # the retry fails identically
        with pytest.raises(ConfigError, match="already resident"):
            sim.step_segment()
        assert set(sim.residents) == {"a", "b"}
        assert sim.segments_completed == before


def _script(end_s: float):
    return [
        ChurnEvent(0.0, "arrive", "mnist-a", spec=MNIST),
        ChurnEvent(0.0, "arrive", "dlrm-a", spec=DLRM),
        ChurnEvent(end_s / 2, "depart", "mnist-a"),
        ChurnEvent(end_s / 2, "arrive", "mnist-b", spec=MNIST),
    ]


def test_churn_script_end_to_end():
    cfg = ClusterTrafficConfig(num_hosts=2, load=0.5, end_s=0.001, seed=1)
    result = run_cluster_traffic(_script(cfg.end_s), cfg)
    assert result.segments == 2
    assert set(result.reports) <= {"mnist-a", "dlrm-a", "mnist-b"}
    assert "mnist-a" in result.reports and "mnist-b" in result.reports
    assert result.reports["mnist-a"].offered > 0
    for name, report in result.reports.items():
        assert 0.0 <= report.attainment <= 1.0, name
    assert 0.0 <= result.cluster_me_utilization <= 1.0
    assert result.admission_rate == 1.0
    assert result.rejected == []


def test_departure_frees_capacity_for_later_arrival():
    """One tiny host: the second tenant only fits after the first leaves."""
    big = TrafficTenantSpec(model="MNIST", batch=8)
    events = [
        ChurnEvent(0.0, "arrive", "a", spec=big, num_mes=4, num_ves=4),
        ChurnEvent(0.0005, "depart", "a"),
        ChurnEvent(0.0005, "arrive", "b", spec=big, num_mes=4, num_ves=4),
    ]
    cfg = ClusterTrafficConfig(num_hosts=1, load=0.5, end_s=0.001, seed=2)
    result = run_cluster_traffic(events, cfg)
    assert result.admission_rate == 1.0
    assert "a" in result.reports and "b" in result.reports


def test_overcommit_is_rejected_and_recorded():
    events = [
        ChurnEvent(0.0, "arrive", "a", spec=MNIST, num_mes=4, num_ves=4),
        ChurnEvent(0.0, "arrive", "b", spec=MNIST, num_mes=4, num_ves=4),
    ]
    cfg = ClusterTrafficConfig(num_hosts=1, load=0.5, end_s=0.0005, seed=3)
    result = run_cluster_traffic(events, cfg)
    assert result.rejected == ["b"]
    assert result.admission_rate == pytest.approx(0.5)
    assert "b" not in result.reports


def test_depart_of_rejected_tenant_is_a_noop():
    """A churn script may depart a tenant whose arrival was rejected;
    the run must not abort."""
    events = [
        ChurnEvent(0.0, "arrive", "a", spec=MNIST, num_mes=4, num_ves=4),
        ChurnEvent(0.0, "arrive", "b", spec=MNIST, num_mes=4, num_ves=4),
        ChurnEvent(0.0004, "depart", "b"),
        ChurnEvent(0.0004, "depart", "a"),
        ChurnEvent(0.0004, "arrive", "c", spec=MNIST, num_mes=4, num_ves=4),
    ]
    cfg = ClusterTrafficConfig(num_hosts=1, load=0.5, end_s=0.0008, seed=6)
    result = run_cluster_traffic(events, cfg)
    assert result.rejected == ["b"]
    assert "a" in result.reports and "c" in result.reports


def test_host_utilization_capped_by_simulated_time():
    """One short burst early in a long otherwise-idle window must not be
    booked as busy for the whole window."""
    events = [ChurnEvent(0.0, "arrive", "a", spec=MNIST, num_mes=4, num_ves=4)]
    cfg = ClusterTrafficConfig(num_hosts=1, load=0.01, end_s=0.002, seed=8)
    result = run_cluster_traffic(events, cfg)
    assert 0.0 <= result.host_me_utilization["host0"] < 0.5


def test_same_seed_reproduces_cluster_run():
    cfg = ClusterTrafficConfig(num_hosts=2, load=0.5, end_s=0.001, seed=7)
    a = run_cluster_traffic(_script(cfg.end_s), cfg)
    b = run_cluster_traffic(_script(cfg.end_s), cfg)
    for name in a.reports:
        assert a.reports[name].latencies_cycles == b.reports[name].latencies_cycles


def test_churn_script_validation():
    with pytest.raises(ConfigError):
        ChurnEvent(-1.0, "arrive", "a", spec=MNIST)
    with pytest.raises(ConfigError):
        ChurnEvent(0.0, "reboot", "a", spec=MNIST)
    with pytest.raises(ConfigError):
        ChurnEvent(0.0, "arrive", "a")  # no spec
    with pytest.raises(ConfigError):
        run_cluster_traffic(
            [ChurnEvent(0.0, "depart", "ghost")],
            ClusterTrafficConfig(end_s=0.0005),
        )


def test_slo_override_reaches_cluster_reports():
    strict = TrafficTenantSpec(model="MNIST", batch=8, slo=SloSpec(target_cycles=1.0))
    events = [ChurnEvent(0.0, "arrive", "strict", spec=strict)]
    cfg = ClusterTrafficConfig(num_hosts=1, load=0.5, end_s=0.0005, seed=4)
    result = run_cluster_traffic(events, cfg)
    assert result.reports["strict"].attainment == 0.0
