"""Virtualized cluster serving: VF-constrained admission, hypercall
cost charging, control-plane telemetry, and determinism."""

import pytest

from repro.cluster.autoscale import Autoscaler, HostPoolSpec
from repro.cluster.virt import REJECT_VF_EXHAUSTED, VirtualizationSpec
from repro.errors import ConfigError
from repro.traffic import (
    ChurnEvent,
    ClusterTrafficConfig,
    TrafficTenantSpec,
    run_cluster_traffic,
)

MNIST = TrafficTenantSpec(model="MNIST", batch=8)


def _wave(count: int, end_s: float, depart_first: bool = True):
    events = [
        ChurnEvent(0.0, "arrive", f"t{i}", spec=MNIST, num_mes=1, num_ves=1)
        for i in range(count)
    ]
    if depart_first:
        events.append(ChurnEvent(end_s / 2, "depart", "t0"))
    return events


def _result_key(result):
    """Everything observable: reports, utilizations, admissions."""
    return (
        {
            name: (r.offered, r.completed, r.attained,
                   tuple(r.latencies_cycles))
            for name, r in result.reports.items()
        },
        result.host_me_utilization,
        result.host_ve_utilization,
        result.admission_rate,
        tuple(result.rejected),
        result.simulated_cycles,
    )


# ----------------------------------------------------------------------
# VF-constrained admission
# ----------------------------------------------------------------------
def test_vf_exhaustion_rejects_and_reports():
    cfg = ClusterTrafficConfig(
        num_hosts=2, load=0.5, end_s=0.001, seed=1,
        virtualization=VirtualizationSpec(num_vfs=2),
    )
    result = run_cluster_traffic(_wave(6, cfg.end_s), cfg)
    virt = result.virtualization
    assert result.rejected == ["t4", "t5"]
    assert virt.vf_exhaustion_rejections == 2
    assert virt.rejection_causes == {
        "t4": REJECT_VF_EXHAUSTED, "t5": REJECT_VF_EXHAUSTED,
    }
    assert virt.peak_vf_in_use == 4
    assert virt.vf_occupancy_timeline[0] == (0.0, 4, 4)
    assert virt.hypercalls["create"] == 4
    assert virt.hypercalls["destroy"] == 1  # t0's departure
    assert virt.iommu_dma_registrations == 4
    assert virt.final_vf_in_use == 3
    assert virt.final_iommu_mappings == 3


def test_all_tenants_departing_returns_occupancy_to_zero():
    end_s = 0.001
    events = _wave(4, end_s, depart_first=False)
    events += [
        ChurnEvent(end_s / 2, "depart", f"t{i}") for i in range(4)
    ]
    cfg = ClusterTrafficConfig(
        num_hosts=2, load=0.5, end_s=end_s, seed=1,
        virtualization=VirtualizationSpec(num_vfs=4),
    )
    result = run_cluster_traffic(events, cfg)
    virt = result.virtualization
    assert virt.final_vf_in_use == 0
    assert virt.final_iommu_mappings == 0
    assert virt.hypercalls["create"] == virt.hypercalls["destroy"] == 4


def test_retried_rejection_counts_every_attempt():
    end_s = 0.001
    events = _wave(2, end_s, depart_first=False)
    events += [
        ChurnEvent(0.0, "arrive", "late", spec=MNIST, num_mes=1, num_ves=1),
        ChurnEvent(end_s / 2, "depart", "late"),  # no-op: never admitted
        ChurnEvent(end_s / 2, "arrive", "late", spec=MNIST,
                   num_mes=1, num_ves=1),
    ]
    cfg = ClusterTrafficConfig(
        num_hosts=1, load=0.5, end_s=end_s, seed=1,
        virtualization=VirtualizationSpec(num_vfs=2),
    )
    result = run_cluster_traffic(events, cfg)
    # 'late' bounced off the full VF pool twice: per-attempt counters
    # match `rejected`, the per-name map keeps the last cause.
    assert result.rejected == ["late", "late"]
    assert result.virtualization.vf_exhaustion_rejections == 2
    assert result.virtualization.rejection_causes == {
        "late": REJECT_VF_EXHAUSTED,
    }


def test_unknown_pool_override_rejected():
    cfg = ClusterTrafficConfig(
        num_hosts=1, end_s=0.0005,
        virtualization=VirtualizationSpec(pool_num_vfs={"nope": 2}),
    )
    with pytest.raises(ConfigError, match="unknown pool"):
        run_cluster_traffic(_wave(1, cfg.end_s, depart_first=False), cfg)


def test_per_pool_vf_budgets():
    pools = (
        HostPoolSpec(name="big", min_hosts=1, max_hosts=1),
        HostPoolSpec(name="small", min_hosts=1, max_hosts=1),
    )
    cfg = ClusterTrafficConfig(
        end_s=0.0005, load=0.5, seed=1, pools=pools,
        virtualization=VirtualizationSpec(
            num_vfs=8, pool_num_vfs={"small": 1}
        ),
    )
    result = run_cluster_traffic(_wave(4, cfg.end_s, depart_first=False), cfg)
    # 1 VF on `small` + 8 on `big` >= 4 tenants: all admitted.
    assert result.rejected == []
    _, used, capacity = result.virtualization.vf_occupancy_timeline[0]
    assert capacity == 9 and used == 4


# ----------------------------------------------------------------------
# Hypercall cost charging
# ----------------------------------------------------------------------
def test_hypercall_cost_charges_onboarding_delay():
    base = dict(num_hosts=1, load=0.5, end_s=0.001, seed=1)
    events = _wave(2, 0.001, depart_first=False)
    free = run_cluster_traffic(
        events,
        ClusterTrafficConfig(
            **base, virtualization=VirtualizationSpec(num_vfs=4)
        ),
    )
    cost = 0.0002
    priced = run_cluster_traffic(
        events,
        ClusterTrafficConfig(
            **base,
            virtualization=VirtualizationSpec(
                num_vfs=4, hypercall_cost_s=cost
            ),
        ),
    )
    assert free.virtualization.onboarding_delay_s == 0.0
    assert priced.virtualization.onboarding_delay_s == pytest.approx(2 * cost)
    # Arrivals are held, not dropped: same offered load, higher latency.
    for name in priced.reports:
        assert priced.reports[name].offered == free.reports[name].offered
    assert sum(r.mean_latency for r in priced.reports.values()) > sum(
        r.mean_latency for r in free.reports.values()
    )


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def _virt_cfg(**overrides):
    params = dict(
        num_hosts=2, load=0.5, end_s=0.001, seed=1,
        virtualization=VirtualizationSpec(
            num_vfs=2, hypercall_cost_s=0.00005
        ),
    )
    params.update(overrides)
    return ClusterTrafficConfig(**params)


def test_virtualized_run_is_deterministic_in_process():
    events = _wave(6, 0.001)
    first = run_cluster_traffic(events, _virt_cfg())
    second = run_cluster_traffic(events, _virt_cfg())
    assert _result_key(first) == _result_key(second)
    assert first.virtualization.to_dict() == second.virtualization.to_dict()


def test_virtualized_run_identical_across_worker_counts():
    events = _wave(6, 0.001)
    serial = run_cluster_traffic(events, _virt_cfg(max_workers=1))
    parallel = run_cluster_traffic(events, _virt_cfg(max_workers=2))
    assert _result_key(serial) == _result_key(parallel)
    assert serial.virtualization.to_dict() == parallel.virtualization.to_dict()


def test_unvirtualized_run_is_deterministic_and_reports_nothing():
    events = _wave(4, 0.001)
    cfg = ClusterTrafficConfig(num_hosts=2, load=0.5, end_s=0.001, seed=1)
    first = run_cluster_traffic(events, cfg)
    second = run_cluster_traffic(events, cfg)
    assert first.virtualization is None and second.virtualization is None
    assert _result_key(first) == _result_key(second)


# ----------------------------------------------------------------------
# Autoscaler observations carry control-plane telemetry
# ----------------------------------------------------------------------
class _Recorder(Autoscaler):
    name = "recorder"

    def __init__(self):
        self.observations = []

    def observe(self, obs):
        self.observations.append(obs)
        return []


def test_segment_observations_carry_vf_and_hypercall_fields():
    recorder = _Recorder()
    cfg = ClusterTrafficConfig(
        num_hosts=2, load=0.5, end_s=0.001, seed=1,
        autoscaler=recorder,
        autoscale_interval_s=0.00025,
        virtualization=VirtualizationSpec(num_vfs=2),
    )
    run_cluster_traffic(_wave(6, cfg.end_s), cfg)
    assert recorder.observations
    first = recorder.observations[0]
    assert first.vf_in_use == 4 and first.vf_capacity == 4
    assert first.vf_occupancy == 1.0
    assert first.hypercalls == 4  # the admission wave's creates
    assert first.iommu_mappings == 4
    # After t0 departs mid-run, occupancy drops in a later observation.
    assert any(obs.vf_in_use == 3 for obs in recorder.observations)
