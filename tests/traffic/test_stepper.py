"""Properties of the segment timeline (`repro.traffic.stepper`).

The boundary merge is the one piece of arithmetic every checkpoint,
resume, and live injection depends on: if two paths ever disagree on
where segment cuts fall, "bit-identical resume" silently dies.  These
are randomized property tests (seeded, so deterministic) over the
merge invariants, plus unit coverage of the checkpoint container.
"""

from __future__ import annotations

import random

import pytest

from repro.cluster.virt import (
    FAULT_BURST_STORM,
    FAULT_HOST_CRASH,
    FaultSpec,
)
from repro.errors import CheckpointError
from repro.traffic.cluster_sim import ChurnEvent
from repro.traffic.openloop import TrafficTenantSpec
from repro.traffic.stepper import (
    EVENT_CHURN,
    EVENT_FAULT,
    ClusterCheckpoint,
    build_timeline,
    merge_boundaries,
)

MNIST = TrafficTenantSpec(model="MNIST", batch=8)


def _random_events(rng: random.Random, end_s: float):
    """A random churn script plus random point/window faults."""
    churn = []
    for i in range(rng.randrange(0, 6)):
        t = round(rng.uniform(0.0, end_s * 1.2), 9)
        if rng.random() < 0.5:
            churn.append(ChurnEvent(t, "arrive", f"t{i}", spec=MNIST))
        else:
            churn.append(ChurnEvent(t, "depart", f"t{i}"))
    churn.sort(key=lambda e: e.time_s)
    faults = []
    for _ in range(rng.randrange(0, 4)):
        t = round(rng.uniform(0.0, end_s * 1.2), 9)
        if rng.random() < 0.5:
            faults.append(FaultSpec(kind=FAULT_HOST_CRASH, time_s=t))
        else:
            faults.append(FaultSpec(
                kind=FAULT_BURST_STORM, time_s=t,
                duration_s=rng.uniform(0.0001, end_s), factor=2.0,
            ))
    faults.sort(key=lambda f: f.time_s)
    return churn, faults


# ----------------------------------------------------------------------
# merge_boundaries properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(50))
def test_boundaries_sorted_unique_and_cover_interval(seed):
    rng = random.Random(seed)
    end_s = rng.choice([0.001, 0.004, 1.0, 37.5])
    churn, _ = _random_events(rng, end_s)
    interval = rng.choice([None, end_s / 3, end_s / 7, end_s * 2])
    extra = tuple(
        round(rng.uniform(-end_s, end_s * 1.5), 9)
        for _ in range(rng.randrange(0, 4))
    )
    bounds = merge_boundaries(churn, end_s, interval, extra_cuts=extra)
    # Coverage: starts at 0, ends at end_s.
    assert bounds[0] == 0.0
    assert bounds[-1] == end_s
    # Strictly increasing -- which is dedupe and ordering in one.
    assert all(a < b for a, b in zip(bounds, bounds[1:]))
    # Every in-horizon churn time is a cut.
    for event in churn:
        if event.time_s < end_s:
            assert event.time_s in bounds
    # Every in-horizon (0, end_s) extra cut is present.
    for cut in extra:
        if 0.0 < cut < end_s:
            assert cut in bounds
    # Segments tile [0, end_s] exactly (no gaps, no overlap).
    assert sum(b - a for a, b in zip(bounds, bounds[1:])) == pytest.approx(
        end_s
    )


@pytest.mark.parametrize("seed", range(30))
def test_merge_is_insensitive_to_event_interleaving(seed):
    """Shuffling the churn list never changes the merged boundaries."""
    rng = random.Random(1000 + seed)
    end_s = 0.01
    churn, _ = _random_events(rng, end_s)
    reference = merge_boundaries(churn, end_s, end_s / 4)
    for _ in range(5):
        shuffled = churn[:]
        rng.shuffle(shuffled)
        assert merge_boundaries(shuffled, end_s, end_s / 4) == reference


def test_autoscale_ticks_dedupe_against_churn_cuts():
    """A tick landing (within eps) on a churn time must not double-cut."""
    end_s = 0.004
    churn = [ChurnEvent(0.002, "arrive", "a", spec=MNIST)]
    bounds = merge_boundaries(churn, end_s, 0.001)
    assert bounds == [0.0, 0.001, 0.002, 0.003, 0.004]


def test_boundaries_without_events_is_single_segment():
    assert merge_boundaries([], 0.5, None) == [0.0, 0.5]


# ----------------------------------------------------------------------
# build_timeline properties
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(50))
def test_timeline_events_land_on_boundaries(seed):
    rng = random.Random(2000 + seed)
    end_s = rng.choice([0.002, 0.02, 3.0])
    churn, faults = _random_events(rng, end_s)
    interval = rng.choice([None, end_s / 5])
    timeline = build_timeline(churn, faults, end_s, interval)
    bounds = set(timeline.boundaries)
    for t, entries in timeline.events_at.items():
        assert t in bounds
        assert entries  # no empty groups
    # Every in-horizon point fault cuts a boundary and is scheduled.
    scheduled = [
        ev for entries in timeline.events_at.values() for ev in entries
    ]
    for fault in faults:
        if fault.duration_s is None and 0.0 <= fault.time_s < end_s:
            assert fault.time_s in bounds
            assert any(
                ev.kind == EVENT_FAULT and ev.payload is fault
                for ev in scheduled
            )
    # Every in-horizon churn event is scheduled exactly once.
    for event in churn:
        if event.time_s < end_s:
            assert [
                ev for ev in scheduled
                if ev.kind == EVENT_CHURN and ev.payload is event
            ] == [next(
                ev for ev in scheduled
                if ev.kind == EVENT_CHURN and ev.payload is event
            )]


@pytest.mark.parametrize("seed", range(30))
def test_timeline_groups_churn_before_faults_in_input_order(seed):
    """At a shared boundary, churn applies before point faults, and
    each class preserves its (deterministic) input order."""
    rng = random.Random(3000 + seed)
    end_s = 0.01
    t = round(rng.uniform(0.0, end_s * 0.9), 9)
    churn = [
        ChurnEvent(t, "arrive", "a", spec=MNIST),
        ChurnEvent(t, "depart", "b"),
    ]
    faults = [
        FaultSpec(kind=FAULT_HOST_CRASH, time_s=t),
        FaultSpec(kind=FAULT_HOST_CRASH, time_s=t, host="h1"),
    ]
    timeline = build_timeline(churn, faults, end_s, None)
    entries = timeline.events_at[t]
    kinds = [ev.kind for ev in entries]
    assert kinds == [EVENT_CHURN, EVENT_CHURN, EVENT_FAULT, EVENT_FAULT]
    assert [ev.payload for ev in entries] == churn + faults


def test_total_segments_counts_boundary_gaps():
    timeline = build_timeline([], [], 1.0, 0.25)
    assert timeline.total_segments == 4
    assert list(timeline.boundaries) == [0.0, 0.25, 0.5, 0.75, 1.0]


# ----------------------------------------------------------------------
# ClusterCheckpoint container
# ----------------------------------------------------------------------
def _checkpoint() -> ClusterCheckpoint:
    return ClusterCheckpoint.create(
        config_digest="abc123", segment_index=2, time_s=0.5,
        state={"x": 1, "y": [2, 3]},
    )


def test_checkpoint_roundtrips_via_dict():
    cp = _checkpoint()
    back = ClusterCheckpoint.from_dict(cp.to_dict())
    assert back == cp
    assert back.state() == {"x": 1, "y": [2, 3]}


def test_checkpoint_verify_rejects_corrupt_payload():
    cp = _checkpoint()
    raw = cp.to_dict()
    raw["payload"] = raw["payload"][:-4] + "AAA="
    with pytest.raises(CheckpointError):
        ClusterCheckpoint.from_dict(raw).verify()


def test_checkpoint_rejects_unknown_version():
    raw = _checkpoint().to_dict()
    raw["version"] = 99
    with pytest.raises(CheckpointError):
        ClusterCheckpoint.from_dict(raw)


def test_checkpoint_rejects_missing_fields():
    raw = _checkpoint().to_dict()
    del raw["payload"]
    with pytest.raises(CheckpointError):
        ClusterCheckpoint.from_dict(raw)
