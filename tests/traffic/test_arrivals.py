"""Arrival-process tests: determinism, rates, burstiness, replay."""

import statistics

import pytest

from repro.config import make_rng, spawn_rng
from repro.errors import ConfigError
from repro.traffic.arrivals import (
    ARRIVAL_KINDS,
    DiurnalProcess,
    OnOffProcess,
    PoissonProcess,
    TraceProcess,
    load_trace_csv,
    make_arrival_process,
)

WINDOW = 1_000_000.0
RATE = 0.001  # 1000 expected arrivals in the window


def _gen(kind: str, seed: int = 0):
    process = make_arrival_process(kind, RATE, duration_cycles=WINDOW)
    return process.generate(WINDOW, spawn_rng(seed, kind))


# ----------------------------------------------------------------------
# Shared contracts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
def test_sorted_and_in_window(kind):
    arrivals = _gen(kind)
    assert arrivals == sorted(arrivals)
    assert all(0 <= t < WINDOW for t in arrivals)
    assert len(arrivals) > 0


@pytest.mark.parametrize("kind", ["poisson", "bursty", "diurnal"])
def test_one_seed_reproduces_everything(kind):
    assert _gen(kind, seed=42) == _gen(kind, seed=42)
    assert _gen(kind, seed=42) != _gen(kind, seed=43)


def test_spawn_rng_substreams_are_decorrelated():
    a = spawn_rng(1, "tenant-a")
    b = spawn_rng(1, "tenant-b")
    assert [a.random() for _ in range(4)] != [b.random() for _ in range(4)]
    # Same keys, same stream.
    assert spawn_rng(1, "x", 2).random() == spawn_rng(1, "x", 2).random()


def test_make_rng_default_seed_is_stable():
    assert make_rng().random() == make_rng().random()
    assert make_rng(5).random() == make_rng(5).random()


# ----------------------------------------------------------------------
# Per-family behavior
# ----------------------------------------------------------------------
def test_poisson_mean_rate():
    arrivals = _gen("poisson")
    assert len(arrivals) == pytest.approx(RATE * WINDOW, rel=0.2)


def test_bursty_preserves_mean_rate_but_raises_variability():
    poisson = _gen("poisson")
    bursty = _gen("bursty")
    # Long-run rate matches within slack...
    assert len(bursty) == pytest.approx(len(poisson), rel=0.4)

    def cv(times):
        gaps = [b - a for a, b in zip(times, times[1:])]
        return statistics.pstdev(gaps) / statistics.mean(gaps)

    # ...but inter-arrival variability is clearly super-Poisson.
    assert cv(bursty) > cv(poisson) * 1.3


def test_diurnal_peak_beats_trough():
    process = DiurnalProcess(RATE, period_cycles=WINDOW, amplitude=0.9)
    arrivals = process.generate(WINDOW, spawn_rng(0, "diurnal-peak"))
    # sin is positive over the first half-period, negative over the second.
    peak = sum(1 for t in arrivals if t < WINDOW / 2)
    trough = len(arrivals) - peak
    assert peak > trough * 2


def test_trace_replay_clips_to_window(tmp_path):
    times = [10.0, 20.0, 30.0, 2_000_000.0]
    process = TraceProcess(times)
    assert process.generate(WINDOW, make_rng(0)) == [10.0, 20.0, 30.0]

    csv = tmp_path / "trace.csv"
    csv.write_text("# comment\n0.5,extra\n0.25\n\n")
    assert load_trace_csv(str(csv)) == [0.25, 0.5]
    assert load_trace_csv(str(csv), frequency_hz=2.0) == [0.5, 1.0]


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def test_factory_covers_kinds_and_rejects_unknown():
    for kind in ("poisson", "bursty", "diurnal"):
        assert kind in ARRIVAL_KINDS
        process = make_arrival_process(kind, RATE, duration_cycles=WINDOW)
        assert process.kind == kind
    with pytest.raises(ConfigError):
        make_arrival_process("weibull", RATE, duration_cycles=WINDOW)
    with pytest.raises(ConfigError):
        make_arrival_process("trace", RATE)  # no timestamps


def test_bursty_factory_keeps_supplied_dwell_times():
    process = make_arrival_process(
        "bursty", RATE, duration_cycles=WINDOW, mean_on_cycles=500.0
    )
    assert process.mean_on == 500.0
    assert process.mean_off == pytest.approx(3.0 * WINDOW / 40.0)
    process = make_arrival_process(
        "bursty", RATE, duration_cycles=WINDOW, mean_off_cycles=123.0
    )
    assert process.mean_off == 123.0
    with pytest.raises(ConfigError):
        make_arrival_process("bursty", RATE, mean_on_cycles=500.0)


def test_parameter_validation():
    with pytest.raises(ConfigError):
        PoissonProcess(0.0)
    with pytest.raises(ConfigError):
        OnOffProcess(RATE, mean_on_cycles=0.0, mean_off_cycles=1.0)
    with pytest.raises(ConfigError):
        DiurnalProcess(RATE, period_cycles=100.0, amplitude=1.5)
    with pytest.raises(ConfigError):
        TraceProcess([-1.0])
    with pytest.raises(ConfigError):
        PoissonProcess(RATE).generate(0.0, make_rng(0))
