"""Open-loop engine/runner tests, including the acceptance criteria:

- at low load, queueing delay is ~0 and latency matches the closed-loop
  service time;
- past saturation, SLO attainment degrades monotonically with load for
  every scheme;
- closed-loop results are untouched by the mode flag.
"""

import pytest

from repro.config import DEFAULT_CORE
from repro.errors import SimulationError
from repro.serving.server import (
    SCHEME_NEU10,
    SCHEME_PMT,
    SCHEME_TEMPORAL,
    SCHEME_V10,
    ServingConfig,
    WorkloadSpec,
    run_collocation,
)
from repro.sim.engine import Simulator, Tenant
from repro.sim.sched_static import StaticPartitionScheduler
from repro.traffic import (
    OpenLoopConfig,
    SloSpec,
    TrafficTenantSpec,
    isolated_service_cycles,
    run_open_loop,
    sweep_load,
)

from tests.conftest import make_me_graph, make_tenant

MNIST = TrafficTenantSpec(model="MNIST", batch=8)


# ----------------------------------------------------------------------
# Acceptance: low load ~= closed loop
# ----------------------------------------------------------------------
def test_low_load_matches_closed_loop_service_time():
    svc = isolated_service_cycles(MNIST, SCHEME_NEU10, DEFAULT_CORE, n_tenants=1)
    result = run_open_loop(
        [MNIST], SCHEME_NEU10, OpenLoopConfig(load=0.05, duration_s=0.002, seed=3)
    )
    rep = result.reports[0]
    assert rep.offered > 5
    # M/D/1 at rho=0.05: mean wait is ~2.6% of service time.
    assert rep.mean_queueing_delay < 0.10 * svc
    assert rep.mean_latency == pytest.approx(svc, rel=0.10)
    assert rep.attainment == 1.0


# ----------------------------------------------------------------------
# Acceptance: overload degrades attainment monotonically per scheme
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scheme", [SCHEME_PMT, SCHEME_V10, SCHEME_NEU10, SCHEME_TEMPORAL]
)
def test_attainment_degrades_monotonically_past_saturation(scheme):
    results = sweep_load(
        [MNIST],
        scheme,
        loads=(1.5, 3.0, 6.0),
        cfg=OpenLoopConfig(duration_s=0.0004, seed=11),
    )
    attainments = [r.reports[0].attainment for r in results]
    assert attainments == sorted(attainments, reverse=True)
    assert attainments[0] < 1.0  # already past saturation
    assert attainments[-1] < attainments[0]  # strictly worse at 4x the load


def test_collocated_overload_degrades_every_tenant():
    specs = [MNIST, TrafficTenantSpec(model="DLRM", batch=8)]
    cfg = OpenLoopConfig(duration_s=0.0008, seed=5)
    light, heavy = sweep_load(specs, SCHEME_NEU10, loads=(0.4, 5.0), cfg=cfg)
    for rep_light, rep_heavy in zip(light.reports, heavy.reports):
        assert rep_heavy.attainment <= rep_light.attainment


# ----------------------------------------------------------------------
# Open-loop semantics
# ----------------------------------------------------------------------
def test_queueing_delay_counts_toward_latency():
    result = run_open_loop(
        [MNIST], SCHEME_NEU10, OpenLoopConfig(load=3.0, duration_s=0.0004, seed=2)
    )
    rep = result.reports[0]
    assert rep.mean_queueing_delay > 0
    assert rep.mean_latency > rep.mean_queueing_delay


def test_drain_mode_serves_every_admitted_request():
    cfg = OpenLoopConfig(load=2.0, duration_s=0.0003, seed=4, drain=True)
    result = run_open_loop([MNIST], SCHEME_NEU10, cfg)
    rep = result.reports[0]
    assert rep.completed == rep.offered > 0


def test_same_seed_same_numbers():
    cfg = OpenLoopConfig(load=0.7, duration_s=0.0006, seed=9, arrival="bursty")
    a = run_open_loop([MNIST], SCHEME_NEU10, cfg)
    b = run_open_loop([MNIST], SCHEME_NEU10, cfg)
    assert a.reports[0].latencies_cycles == b.reports[0].latencies_cycles
    assert a.total_cycles == b.total_cycles


def test_duplicate_models_get_distinct_report_names():
    specs = [
        TrafficTenantSpec(model="MNIST", batch=8),
        TrafficTenantSpec(model="MNIST", batch=16),
    ]
    result = run_open_loop(
        specs, SCHEME_NEU10, OpenLoopConfig(load=0.3, duration_s=0.0005)
    )
    names = [rep.name for rep in result.reports]
    assert len(set(names)) == 2
    for name in names:
        assert result.report(name).name == name


def test_absolute_slo_target_respected():
    spec = TrafficTenantSpec(model="MNIST", batch=8, slo=SloSpec(target_cycles=1.0))
    result = run_open_loop(
        [spec], SCHEME_NEU10, OpenLoopConfig(load=0.3, duration_s=0.0005)
    )
    # A 1-cycle target is unmeetable: every completed request misses.
    assert result.reports[0].attainment == 0.0


# ----------------------------------------------------------------------
# Engine drain mode is gated and validated
# ----------------------------------------------------------------------
def test_drain_mode_requires_arrivals():
    with pytest.raises(SimulationError):
        Tenant(
            0,
            "bad",
            make_tenant(make_me_graph(), DEFAULT_CORE).graph,
            alloc_mes=2,
            alloc_ves=2,
            target_requests=None,
        )


def test_closed_loop_results_identical_to_seed_behavior():
    """The mode flag must not perturb closed-loop runs: same scenario,
    same latencies, twice."""

    def run():
        return run_collocation(
            [WorkloadSpec("MNIST", 8), WorkloadSpec("DLRM", 8)],
            SCHEME_NEU10,
            ServingConfig(target_requests=2),
        )

    a, b = run(), run()
    for ta, tb in zip(a.tenants, b.tenants):
        assert ta.mean_latency_cycles == tb.mean_latency_cycles
        assert ta.completed_requests == tb.completed_requests
    assert a.total_cycles == b.total_cycles


def test_closed_loop_queueing_is_zero():
    tenant = make_tenant(make_me_graph(), DEFAULT_CORE, alloc_mes=4, alloc_ves=4,
                         target_requests=3)
    result = Simulator(DEFAULT_CORE, StaticPartitionScheduler(), [tenant]).run()
    tr = result.tenant(0)
    assert tr.mean_queueing_delay == 0.0
    assert tr.offered_requests >= tr.completed_requests
