"""Fault-injection semantics in the cluster traffic engine: crashes
migrate or evict residents, storms multiply offered load, spikes stretch
the control plane, vf-loss shrinks it -- and a fault-free config is
bit-identical to the pre-fault-layer engine."""

import dataclasses
import types

import pytest

from repro.cluster.virt import (
    FAULT_KINDS,
    FaultSpec,
    VirtualizationSpec,
    remove_free_vfs,
)
from repro.errors import ConfigError
from repro.runtime.sriov import SriovRegistry
from repro.traffic import (
    ChurnEvent,
    ClusterTrafficConfig,
    TrafficTenantSpec,
    run_cluster_traffic,
)

MNIST = TrafficTenantSpec(model="MNIST", batch=4)
NCF = TrafficTenantSpec(model="NCF", batch=4)


def _events(extra=()):
    return [
        ChurnEvent(0.0, "arrive", "a", spec=MNIST, num_mes=2, num_ves=2),
        ChurnEvent(0.0, "arrive", "b", spec=NCF, num_mes=2, num_ves=2),
        *extra,
    ]


def _cfg(faults=(), **overrides):
    params = dict(
        num_hosts=2, load=0.6, end_s=0.002, seed=11,
        faults=tuple(faults),
    )
    params.update(overrides)
    return ClusterTrafficConfig(**params)


def _result_key(result):
    """Everything observable: reports, utilizations, admissions."""
    return (
        {
            name: (r.offered, r.completed, r.attained,
                   tuple(r.latencies_cycles))
            for name, r in result.reports.items()
        },
        result.host_me_utilization,
        result.host_ve_utilization,
        result.admission_rate,
        tuple(result.rejected),
        result.simulated_cycles,
    )


# ----------------------------------------------------------------------
# FaultSpec surface
# ----------------------------------------------------------------------
def test_fault_kinds_registry():
    assert FAULT_KINDS == (
        "host-crash", "vf-loss", "hypercall-spike", "burst-storm",
    )


def test_window_fault_covers_half_open_interval():
    f = FaultSpec(kind="burst-storm", time_s=1.0, duration_s=0.5)
    assert f.covers(1.0) and f.covers(1.49)
    assert not f.covers(0.99) and not f.covers(1.5)
    assert f.end_s == 1.5


def test_point_fault_rejects_duration():
    with pytest.raises(ConfigError):
        FaultSpec(kind="host-crash", time_s=0.0, duration_s=0.1)


# ----------------------------------------------------------------------
# Engine behavior per kind
# ----------------------------------------------------------------------
def test_fault_free_config_bit_identical_to_no_fault_field():
    base = run_cluster_traffic(_events(), _cfg())
    empty = run_cluster_traffic(_events(), _cfg(faults=()))
    assert _result_key(base) == _result_key(empty)
    assert base.fault_events == []


def test_host_crash_migrates_or_evicts_and_is_recorded():
    result = run_cluster_traffic(_events(), _cfg(
        faults=[FaultSpec(kind="host-crash", time_s=0.001)],
    ))
    events = [e for e in result.fault_events if e["kind"] == "host-crash"]
    assert len(events) == 1
    ev = events[0]
    assert ev["applied"] is True
    assert ev["time_s"] == 0.001
    # Two tenants on two hosts: the victim's resident moved or left.
    assert ev["migrated"] or ev["evicted"]


def test_host_crash_never_kills_last_host():
    result = run_cluster_traffic(_events(), _cfg(
        num_hosts=1,
        faults=[FaultSpec(kind="host-crash", time_s=0.001)],
    ))
    events = [e for e in result.fault_events if e["kind"] == "host-crash"]
    assert events and events[0]["applied"] is False


def test_burst_storm_raises_offered_load():
    calm = run_cluster_traffic(_events(), _cfg())
    stormy = run_cluster_traffic(_events(), _cfg(
        faults=[FaultSpec(kind="burst-storm", time_s=0.0005,
                          duration_s=0.001, factor=3.0)],
    ))
    offered = lambda r: sum(rep.offered for rep in r.reports.values())
    assert offered(stormy) > offered(calm)


def test_hypercall_spike_stretches_onboarding():
    cfg = _cfg(virtualization=VirtualizationSpec(hypercall_cost_s=1e-4))
    events = _events(extra=(
        ChurnEvent(0.0008, "arrive", "late", spec=NCF,
                   num_mes=2, num_ves=2),
    ))
    calm = run_cluster_traffic(events, cfg)
    spiky = run_cluster_traffic(events, dataclasses.replace(cfg, faults=(
        FaultSpec(kind="hypercall-spike", time_s=0.0006,
                  duration_s=0.0008, factor=5.0),
    )))
    assert (
        spiky.virtualization.onboarding_delay_s
        > calm.virtualization.onboarding_delay_s
    )


def test_vf_loss_shrinks_admission_capacity():
    cfg = _cfg(
        num_hosts=1,
        virtualization=VirtualizationSpec(num_vfs=3),
        faults=[FaultSpec(kind="vf-loss", time_s=0.0005, count=2)],
    )
    # Two residents from t=0 hold VF indices 0 and 1, so the shrink
    # floor is 2 and only the one free VF can vanish.
    events = _events(extra=(
        ChurnEvent(0.001, "arrive", "late", spec=MNIST,
                   num_mes=1, num_ves=1),
    ))
    result = run_cluster_traffic(events, cfg)
    events_log = [e for e in result.fault_events if e["kind"] == "vf-loss"]
    assert events_log and events_log[0]["applied"] is True
    assert events_log[0]["removed"] == 1
    # The late arrival bounces off the shrunken pool.
    assert "late" in result.rejected


def test_fault_events_sorted_and_deterministic():
    cfg = _cfg(faults=[
        FaultSpec(kind="burst-storm", time_s=0.0012, duration_s=0.0004,
                  factor=2.0),
        FaultSpec(kind="host-crash", time_s=0.0006),
    ])
    a = run_cluster_traffic(_events(), cfg)
    b = run_cluster_traffic(_events(), cfg)
    assert a.fault_events == b.fault_events
    times = [e["time_s"] for e in a.fault_events]
    assert times == sorted(times)
    assert _result_key(a) == _result_key(b)


# ----------------------------------------------------------------------
# SR-IOV vf-loss floor
# ----------------------------------------------------------------------
def _host_stub(num_vfs):
    return types.SimpleNamespace(hypervisor=types.SimpleNamespace(
        sriov=SriovRegistry(num_vfs=num_vfs),
    ))


def test_remove_free_vfs_never_revokes_live_indices():
    host = _host_stub(8)
    sriov = host.hypervisor.sriov
    held = [sriov.assign(i).vf_index for i in range(3)]
    removed = remove_free_vfs(host, 10)
    # Indices 0..2 are live, so only the 5 free VFs above them go.
    assert removed == 5
    assert sriov.num_vfs == max(held) + 1 == 3
    # A released index can be re-issued without colliding.
    sriov.release(1)
    assert sriov.assign(99).vf_index == 1


def test_remove_free_vfs_keeps_at_least_one_vf():
    host = _host_stub(4)
    assert remove_free_vfs(host, 10) == 3
    assert host.hypervisor.sriov.num_vfs == 1
    assert remove_free_vfs(host, 1) == 0


def test_remove_free_vfs_respects_highest_live_index():
    host = _host_stub(6)
    sriov = host.hypervisor.sriov
    for i in range(4):
        sriov.assign(i)
    sriov.release(0)
    sriov.release(1)
    # in_use=2 but index 3 is live: the floor is 4, not 2.
    assert remove_free_vfs(host, 6) == 2
    assert sriov.num_vfs == 4
