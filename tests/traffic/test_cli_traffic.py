"""The `traffic` CLI subcommand, end to end through repro.cli."""

from repro.cli import main as cli_main


def test_traffic_subcommand_runs_end_to_end(capsys):
    code = cli_main(
        [
            "traffic",
            "--scheme", "neu10",
            "--arrival", "poisson",
            "--load", "0.8",
            "--duration-s", "0.0005",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "attain" in out
    assert "MNIST" in out and "DLRM" in out
    assert "core utilization" in out


def test_traffic_cluster_subcommand(capsys):
    code = cli_main(
        [
            "traffic",
            "--cluster",
            "--hosts", "2",
            "--load", "0.5",
            "--duration-s", "0.0005",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "cluster utilization" in out
    assert "admission" in out


def test_traffic_custom_models_and_arrival(capsys):
    code = cli_main(
        [
            "traffic",
            "--arrival", "bursty",
            "--models", "MNIST:8",
            "--load", "0.4",
            "--duration-s", "0.0005",
            "--drain",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "MNIST" in out


def test_traffic_listed_in_cli_help(capsys):
    assert cli_main(["list"]) == 0
    assert "traffic" in capsys.readouterr().out
