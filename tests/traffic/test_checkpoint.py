"""Snapshot/restore and checkpointed-run bit-identity.

The acceptance bar for the steppable core: a cluster run snapshotted
at any segment boundary -- in this process or restored in a *fresh*
one -- must finish bit-identical to the uninterrupted run, for
adversarial scenarios with autoscalers, faults, and virtualization all
enabled at once.
"""

from __future__ import annotations

import multiprocessing
from pathlib import Path

import pytest

from repro.api import (
    ScenarioAutoscaler,
    ScenarioVirtualization,
    load_scenario,
    run_scenario,
)
from repro.api.result import canonical_digest
from repro.api.runner import cluster_inputs
from repro.errors import CheckpointError, ConfigError, ValidationError
from repro.traffic.cluster_sim import (
    ClusterSimulation,
    run_cluster_checkpointed,
    run_cluster_traffic,
)
from repro.traffic.stepper import ClusterCheckpoint

REPO_ROOT = Path(__file__).resolve().parents[2]
ADVERSARIAL = REPO_ROOT / "examples" / "scenarios" / "adversarial"


def _adversarial(name: str):
    """Load an adversarial scenario, hardened to exercise *everything*.

    The round-trip contract must hold with autoscaler + faults + virt
    all live, so scenarios missing a block get one grafted on.
    """
    scenario = load_scenario(ADVERSARIAL / f"{name}.yaml")
    assert scenario.faults, name
    replacements = {}
    if scenario.autoscaler is None:
        replacements["autoscaler"] = ScenarioAutoscaler(
            policy="threshold", interval_s=scenario.duration_s / 3
        )
    if scenario.virtualization is None:
        replacements["virtualization"] = ScenarioVirtualization(
            num_vfs=4, hypercall_cost_s=0.00002
        )
    if replacements:
        scenario = scenario.replaced(**replacements)
    return scenario


SCENARIOS = [
    "burst_storm",
    "crash_mid_segment",
    "multi_region_diurnal",
    "priority_tiers",
]


def _result_digest(result) -> str:
    import dataclasses

    return canonical_digest(dataclasses.asdict(result))


# ----------------------------------------------------------------------
# In-process round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", SCENARIOS)
def test_restore_at_every_boundary_is_bit_identical(name):
    scenario = _adversarial(name)
    events, cfg = cluster_inputs(scenario)
    reference = _result_digest(run_cluster_traffic(events, cfg))

    probe = ClusterSimulation(*cluster_inputs(scenario))
    total = probe.total_segments
    assert total >= 3, "adversarial scenarios must have several segments"
    for cut in range(1, total):
        sim = ClusterSimulation(*cluster_inputs(scenario))
        while sim.segments_completed < cut:
            sim.step_segment()
        checkpoint = sim.snapshot()
        # The snapshot itself survives serialisation.
        checkpoint = ClusterCheckpoint.from_dict(checkpoint.to_dict())
        restored = ClusterSimulation.restore(
            checkpoint, *cluster_inputs(scenario)
        )
        assert restored.segments_completed == cut
        assert _result_digest(restored.run()) == reference, (
            f"{name}: restore at segment {cut}/{total} diverged"
        )


def test_snapshot_does_not_perturb_the_donor_run():
    scenario = _adversarial("multi_region_diurnal")
    events, cfg = cluster_inputs(scenario)
    reference = _result_digest(run_cluster_traffic(events, cfg))
    sim = ClusterSimulation(*cluster_inputs(scenario))
    while not sim.done:
        sim.snapshot()
        sim.step_segment()
    assert _result_digest(sim.result()) == reference


# ----------------------------------------------------------------------
# Cross-process round-trips (spawn: nothing may hide in process state)
# ----------------------------------------------------------------------
def _finish_in_child(scenario_dict, checkpoint_dict):
    from repro.api.scenario import Scenario

    scenario = Scenario.from_dict(scenario_dict)
    sim = ClusterSimulation.restore(
        ClusterCheckpoint.from_dict(checkpoint_dict),
        *cluster_inputs(scenario),
    )
    return _result_digest(sim.run())


@pytest.mark.parametrize(
    "name", ["burst_storm", "crash_mid_segment", "multi_region_diurnal"]
)
def test_restore_in_fresh_process_is_bit_identical(name):
    scenario = _adversarial(name)
    reference = _result_digest(
        run_cluster_traffic(*cluster_inputs(scenario))
    )
    sim = ClusterSimulation(*cluster_inputs(scenario))
    cut = sim.total_segments // 2
    while sim.segments_completed < cut:
        sim.step_segment()
    checkpoint = sim.snapshot().to_dict()
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        digest = pool.apply(
            _finish_in_child, (scenario.to_dict(), checkpoint)
        )
    assert digest == reference


# ----------------------------------------------------------------------
# Restore rejects the wrong inputs
# ----------------------------------------------------------------------
def _mid_run_checkpoint(scenario):
    sim = ClusterSimulation(*cluster_inputs(scenario))
    sim.step_segment()
    return sim.snapshot()


def test_restore_refuses_a_different_configuration():
    checkpoint = _mid_run_checkpoint(_adversarial("burst_storm"))
    other = _adversarial("crash_mid_segment")
    with pytest.raises(CheckpointError, match="different scenario"):
        ClusterSimulation.restore(checkpoint, *cluster_inputs(other))


def test_restore_refuses_tampered_payload():
    checkpoint = _mid_run_checkpoint(_adversarial("burst_storm"))
    raw = checkpoint.to_dict()
    raw["payload"] = raw["payload"][:-8] + "AAAAAAA="
    scenario = _adversarial("burst_storm")
    with pytest.raises(CheckpointError):
        ClusterSimulation.restore(
            ClusterCheckpoint.from_dict(raw), *cluster_inputs(scenario)
        )


def test_restore_refuses_unpicklable_configuration():
    class Rogue:
        def observe(self, obs):
            return []

    checkpoint = _mid_run_checkpoint(_adversarial("burst_storm"))
    events, cfg = cluster_inputs(_adversarial("burst_storm"))
    import dataclasses

    cfg = dataclasses.replace(cfg, autoscaler=Rogue())
    # The digest of an unpicklable config is None; restore must report
    # that, not crash formatting the mismatch message.
    with pytest.raises(CheckpointError, match="not picklable"):
        ClusterSimulation.restore(checkpoint, events, cfg)


def test_unpicklable_config_refuses_snapshot_but_still_runs():
    class Rogue:
        def observe(self, obs):
            return []

    scenario = _adversarial("burst_storm")
    events, cfg = cluster_inputs(scenario)
    import dataclasses

    cfg = dataclasses.replace(cfg, autoscaler=Rogue())
    sim = ClusterSimulation(events, cfg)
    assert sim.config_digest is None
    sim.step_segment()
    with pytest.raises(CheckpointError, match="not picklable"):
        sim.snapshot()
    sim.run()  # the simulation itself is unaffected


# ----------------------------------------------------------------------
# Journalled runs (run_cluster_checkpointed)
# ----------------------------------------------------------------------
def test_checkpointed_run_matches_plain_and_resumes(tmp_path):
    scenario = _adversarial("multi_region_diurnal")
    reference = _result_digest(
        run_cluster_traffic(*cluster_inputs(scenario))
    )
    events, cfg = cluster_inputs(scenario)
    journalled = run_cluster_checkpointed(
        events, cfg, directory=tmp_path / "ck"
    )
    assert _result_digest(journalled) == reference
    journal = (tmp_path / "ck" / "journal.jsonl").read_text()
    assert journal.count("\n") >= 3
    # Resume from the completed journal: nothing left to simulate, but
    # the result must still be bit-identical.
    resumed = run_cluster_checkpointed(
        *cluster_inputs(scenario), directory=tmp_path / "ck", resume=True
    )
    assert _result_digest(resumed) == reference


def test_resume_from_truncated_journal(tmp_path):
    """Drop the tail of the journal (simulated crash), resume, compare."""
    scenario = _adversarial("crash_mid_segment")
    reference = _result_digest(
        run_cluster_traffic(*cluster_inputs(scenario))
    )
    run_cluster_checkpointed(
        *cluster_inputs(scenario), directory=tmp_path / "ck"
    )
    journal = tmp_path / "ck" / "journal.jsonl"
    lines = journal.read_text().splitlines(keepends=True)
    assert len(lines) >= 3
    journal.write_text("".join(lines[: len(lines) // 2]))
    ticks = []
    resumed = run_cluster_checkpointed(
        *cluster_inputs(scenario), directory=tmp_path / "ck", resume=True,
        on_segment=lambda done, total, obs: ticks.append((done, total, obs)),
    )
    assert _result_digest(resumed) == reference
    # The first tick reports the resume point (no observation yet).
    assert ticks[0][2] is None and ticks[0][0] > 0
    assert ticks[-1][0] == ticks[-1][1]


def test_checkpoint_every_n_segments(tmp_path):
    scenario = _adversarial("burst_storm")
    run_cluster_checkpointed(
        *cluster_inputs(scenario), directory=tmp_path / "ck", every=2
    )
    probe = ClusterSimulation(*cluster_inputs(scenario))
    total = probe.total_segments
    journal = (tmp_path / "ck" / "journal.jsonl").read_text()
    recorded = journal.count('"shard"')
    # Every 2nd segment, plus the final one regardless of parity.
    assert recorded == total // 2 + (1 if total % 2 else 0)


def test_checkpointed_run_rejects_bad_arguments(tmp_path):
    scenario = _adversarial("burst_storm")
    with pytest.raises(ValidationError):
        run_cluster_checkpointed(
            *cluster_inputs(scenario), directory=tmp_path / "ck", every=0
        )
    with pytest.raises(ConfigError):
        run_cluster_checkpointed(*cluster_inputs(scenario), resume=True)


# ----------------------------------------------------------------------
# Scenario-level plumbing (run_scenario resume path)
# ----------------------------------------------------------------------
def test_run_scenario_checkpoint_block_round_trip(tmp_path):
    from repro.api import ScenarioCheckpoint

    scenario = _adversarial("multi_region_diurnal")
    plain = run_scenario(scenario).to_dict()
    block = ScenarioCheckpoint(directory=str(tmp_path / "ck"))
    first = run_scenario(scenario, checkpoint=block).to_dict()
    resumed = run_scenario(scenario, checkpoint=block, resume=True).to_dict()
    assert first == plain
    assert resumed == plain
