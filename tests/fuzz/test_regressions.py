"""Regression pins for engine bugs the fuzz harness caught.

Each test is a minimized replay of a real fuzzer finding (campaign
seed/index noted inline).  They must stay fast: every one previously
either crashed or livelocked until the max-epoch/max-step guard fired.
"""

import pytest

from repro.api import run_scenario
from repro.api.scenario import (
    Scenario,
    ScenarioLlm,
    ScenarioLlmTenant,
    ScenarioTenant,
)


def test_v10_does_not_preempt_and_run_same_unit():
    """seed=1 idx=45 / seed=2 idx=40: V10's fairness preemption fired,
    then ``_pick_me_unit`` re-picked the unit it had just preempted
    (still RUNNING in active_units), tripping the engine's "scheduler
    both preempted and ran a unit" consistency check."""
    sc = Scenario(
        name="regress-v10", kind="open_loop", scheme="v10",
        tenants=(
            ScenarioTenant(model="MNIST", batch=1, weight=1.39,
                           slo_relative=3.0),
            ScenarioTenant(model="MNIST", batch=8, weight=0.98,
                           priority=2.0, slo_relative=3.0),
            ScenarioTenant(model="NCF", batch=1, weight=0.68,
                           priority=2.0),
        ),
        load=0.572, duration_s=0.002268, seed=29452, drain=True,
    )
    result = run_scenario(sc)  # raised SimulationError before the fix
    for t in result.metrics["tenants"]:
        assert t["completed"] == t["offered"]


def test_pmt_three_tenants_no_starvation():
    """seed=1 idx=37: PMT ranked tenants by ``active_service_cycles``,
    which counts *time with a request in flight* -- a permanent three-way
    tie under closed-loop serving.  The rotation degenerated to pool
    order and ping-ponged between two tenants while the third starved
    (0 completions after 9 billion simulated cycles)."""
    sc = Scenario(
        name="regress-pmt", kind="serving", scheme="pmt",
        tenants=(
            ScenarioTenant(model="MNIST", batch=4),
            ScenarioTenant(model="NCF", batch=32),
            ScenarioTenant(model="NCF", batch=32, priority=2.0),
        ),
        target_requests=2, seed=29,
    )
    result = run_scenario(sc)  # hit the 5M-epoch livelock guard before
    for t in result.metrics["tenants"]:
        assert t["completed_requests"] >= 2


def test_llm_sacrifice_fifo_terminates():
    """seed=1 idx=41: sacrifice mode + fifo victim policy livelocked --
    the evicted head re-entered the wait heap under its original arrival
    key, re-prefilled into the space its own eviction freed, and was
    sacrificed again at the next pressure event, forever.  The engine
    now protects the FCFS head of the batch and skips admission on
    sacrifice steps."""
    sc = Scenario(
        name="regress-llm-fifo", kind="llm", scheme="neu10",
        arrival="bursty", load=0.462, duration_s=0.002238,
        seed=49238, drain=True,
        llm=ScenarioLlm(
            tenants=(
                ScenarioLlmTenant(name="llm0", prompt_tokens=64,
                                  decode_tokens=32, weight=1.35),
                ScenarioLlmTenant(name="llm1", prompt_tokens=256,
                                  decode_tokens=32, weight=0.72),
            ),
            batch_tokens=512, m_total=576,
            preemption_mode="sacrifice", victim_policy="fifo",
            step_overhead_cycles=5000.0, cycles_per_token=20.0,
        ),
    )
    result = run_scenario(sc)  # hit max_steps=500000 before the fix
    req = result.metrics["requests"]
    assert req["completed"] == req["arrived"] > 0
    assert result.metrics["preemption"]["count"] > 0  # pressure did fire


@pytest.mark.parametrize("policy", ["lifo", "fifo", "random"])
def test_llm_sacrifice_terminates_under_every_policy(policy):
    """The head-protection guarantee is policy-independent."""
    sc = Scenario(
        name=f"regress-llm-{policy}", kind="llm", scheme="neu10",
        load=0.8, duration_s=0.0012, seed=7, drain=True,
        llm=ScenarioLlm(
            tenants=(ScenarioLlmTenant(
                name="t", prompt_tokens=128, decode_tokens=32),),
            batch_tokens=256, m_total=320,
            preemption_mode="sacrifice", victim_policy=policy,
            step_overhead_cycles=2000.0, cycles_per_token=20.0,
        ),
    )
    req = run_scenario(sc).metrics["requests"]
    assert req["completed"] == req["arrived"]
