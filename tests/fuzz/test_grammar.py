"""Property tests over the fuzz grammar: 200 sampled specs are valid,
serialise losslessly, and regenerate bit-identically from (seed, index).
"""

import pytest

from repro.api.scenario import SCENARIO_KINDS, Scenario
from repro.config import spawn_rng
from repro.errors import ConfigError
from repro.fuzz import FuzzGrammar, generate_scenario

N_SPECS = 200


def _spec(i: int, seed: int = 0) -> Scenario:
    return generate_scenario(spawn_rng(seed, "fuzz", i), index=i)


@pytest.fixture(scope="module")
def specs():
    return [_spec(i) for i in range(N_SPECS)]


def test_all_specs_validate(specs):
    for sc in specs:
        sc.validate()  # raises on any invalid construction


def test_yaml_round_trip_lossless(specs):
    for sc in specs:
        back = Scenario.from_yaml(sc.to_yaml())
        assert back == sc
        assert back.digest() == sc.digest()


def test_json_round_trip_lossless(specs):
    for sc in specs:
        back = Scenario.from_json(sc.to_json())
        assert back == sc
        assert back.digest() == sc.digest()


def test_generator_deterministic_in_seed_and_index(specs):
    for i in (0, 17, 99, N_SPECS - 1):
        assert _spec(i) == specs[i]
    # A different campaign seed explores a different space.
    assert any(_spec(i, seed=1) != specs[i] for i in range(20))


def test_grammar_covers_every_kind(specs):
    kinds = {sc.kind for sc in specs}
    assert kinds == set(SCENARIO_KINDS) - {"figure"}


def test_grammar_exercises_optional_blocks(specs):
    clusters = [sc for sc in specs if sc.kind == "cluster"]
    assert any(sc.faults for sc in clusters)
    assert any(sc.pools for sc in clusters)
    assert any(sc.autoscaler is not None for sc in clusters)
    assert any(sc.virtualization is not None for sc in clusters)
    assert any(sc.executor is not None for sc in specs)
    assert any(sc.sweep is not None for sc in specs)
    assert any(sc.llm is not None for sc in specs)


def test_fault_samples_are_well_formed(specs):
    kinds_seen = set()
    for sc in specs:
        for f in sc.faults:
            kinds_seen.add(f.kind)
            if f.kind in ("hypercall-spike", "burst-storm"):
                assert f.duration_s > 0
            else:
                assert f.duration_s == 0
            assert 0 <= f.time_s < sc.duration_s
    assert len(kinds_seen) >= 3  # 200 draws cover most fault kinds


def test_names_are_unique_and_indexed(specs):
    names = [sc.name for sc in specs]
    assert len(set(names)) == N_SPECS
    assert names[7] == "fuzz-0007"


def test_grammar_validates_weights():
    with pytest.raises(ConfigError):
        FuzzGrammar(kinds=("open_loop",), kind_weights=(0.5, 0.5))
    with pytest.raises(ConfigError):
        FuzzGrammar(kinds=())
