"""The fuzz loop end to end, including the headline mutation test: plant
a conservation bug, watch the fuzzer catch it, and check the shrinker
emits a small repro YAML that replays deterministically."""

from pathlib import Path

import pytest

from repro.api import load_scenario, run_scenario
from repro.api.scenario import Scenario, ScenarioTenant
from repro.fuzz import (
    FuzzConfig,
    fuzz_run,
    generate_scenario,
    shrink_scenario,
    write_repro,
)
from repro.fuzz.invariants import INV_CONSERVATION, Violation, check_scenario


def test_smoke_budget_is_clean_and_deterministic():
    a = fuzz_run(FuzzConfig(seed=0, budget=8, deep_every=0))
    b = fuzz_run(FuzzConfig(seed=0, budget=8, deep_every=0))
    assert a.ok and b.ok
    assert a.scenarios == b.scenarios == 8
    assert a.kind_counts == b.kind_counts
    assert a.to_dict()["violations"] == b.to_dict()["violations"] == []


def _buggy_checker(scenario, rng, tolerance=0.1, deep=False, workdir=None):
    """The invariant catalog run against a mutated engine: open-loop
    results claim one more completion than was ever offered."""

    def buggy_run(sc):
        result = run_scenario(sc)
        if sc.kind == "open_loop":
            for t in result.metrics.get("tenants", ()):
                t["completed"] = t["offered"] + 1
        return result

    return check_scenario(
        scenario, rng, tolerance=tolerance, deep=False,
        workdir=workdir, run=buggy_run,
    )


def test_planted_conservation_bug_is_caught_and_shrunk(tmp_path):
    report = fuzz_run(
        FuzzConfig(
            seed=0, budget=12, deep_every=0, shrink=True,
            out_dir=tmp_path,
        ),
        checker=_buggy_checker,
    )
    assert not report.ok
    assert all(v.invariant == INV_CONSERVATION for v in report.violations)
    assert report.repro_paths

    repro_path = Path(report.repro_paths[0])
    text = repro_path.read_text()
    spec_lines = [
        ln for ln in text.splitlines()
        if ln.strip() and not ln.lstrip().startswith("#")
    ]
    assert len(spec_lines) <= 15, text

    # The shrunk repro replays: same digest twice, and the planted bug
    # still fires on it.
    scenario = load_scenario(repro_path)
    assert run_scenario(scenario).to_dict() == run_scenario(scenario).to_dict()
    from repro.config import spawn_rng

    outcome = _buggy_checker(scenario, spawn_rng(0, "replay"))
    assert any(
        v.invariant == INV_CONSERVATION for v in outcome.violations
    )
    # Shrinking stripped every droppable block.
    assert len(scenario.tenants) == 1
    assert scenario.sweep is None and scenario.executor is None


def test_fuzz_cli_smoke(capsys):
    from repro.cli import main

    assert main(["fuzz", "--seed", "0", "--budget", "3",
                 "--deep-every", "0"]) == 0
    out = capsys.readouterr().out
    assert "fuzz ok: 3 scenario(s)" in out


def test_fuzz_cli_json(capsys):
    import json

    from repro.cli import main

    assert main(["fuzz", "--seed", "0", "--budget", "2",
                 "--deep-every", "0", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["scenarios"] == 2
    assert payload["checks_run"] > 0


# ----------------------------------------------------------------------
# Shrinker unit behavior
# ----------------------------------------------------------------------
def _rich_scenario() -> Scenario:
    from repro.config import spawn_rng

    # Deterministically find a generated cluster spec with plenty to cut.
    for i in range(200):
        sc = generate_scenario(spawn_rng(11, "fuzz", i), index=i)
        if sc.kind == "cluster" and sc.faults and sc.pools:
            return sc
    raise AssertionError("grammar stopped generating rich cluster specs")


def test_shrink_fixed_point_drops_everything_droppable():
    sc = _rich_scenario()
    small = shrink_scenario(sc, lambda _sc: True)
    assert small.faults == ()
    assert small.pools == ()
    assert small.autoscaler is None and small.virtualization is None
    assert small.scheme == "neu10" and small.seed == 0
    arrivals = [e for e in small.churn if e.action == "arrive"]
    assert len(arrivals) == 1
    assert small.hosts == 1


def test_shrink_preserves_the_failure_condition():
    sc = _rich_scenario()
    # The "bug" needs at least one fault to reproduce.
    small = shrink_scenario(sc, lambda cand: bool(cand.faults))
    assert len(small.faults) == 1
    assert small.pools == ()  # everything irrelevant still dropped


def test_shrink_returns_input_when_predicate_never_fails():
    sc = _rich_scenario()
    assert shrink_scenario(sc, lambda _sc: False) == sc


def test_shrink_treats_raising_predicate_as_not_failing():
    sc = _rich_scenario()

    def explodes(cand):
        if cand is not sc:
            raise RuntimeError("candidate cannot even run")
        return True

    assert shrink_scenario(sc, explodes) == sc


def test_write_repro_emits_commented_yaml(tmp_path):
    sc = Scenario(
        name="w", kind="open_loop", scheme="neu10",
        tenants=(ScenarioTenant(model="MNIST", batch=8),),
        load=0.5, duration_s=0.0008,
    )
    v = Violation(INV_CONSERVATION, "w", "why it failed", sc)
    path = write_repro(sc, v, tmp_path)
    text = path.read_text()
    assert text.startswith("# fuzz repro")
    assert "why it failed" in text
    assert load_scenario(path) == sc
