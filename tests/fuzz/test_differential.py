"""Differential matrix: REPRO_SIM_MEGABATCH=0/1 and REPRO_SIM_FAST_PATH
=0/1 must be bit-identical on the computed metrics, for every scenario
kind the toggles can touch (satellite of the fuzz harness -- these are
the pinned, always-run members of the family the fuzzer samples)."""

import pytest

from repro.api import run_scenario, sweep_scenario
from repro.api.result import canonical_digest
from repro.api.scenario import (
    Scenario,
    ScenarioChurn,
    ScenarioLlm,
    ScenarioLlmTenant,
    ScenarioTenant,
)
from repro.fuzz.invariants import _env, _metrics_digest


def _open_loop() -> Scenario:
    return Scenario(
        name="diff-ol", kind="open_loop", scheme="neu10",
        tenants=(
            ScenarioTenant(model="MNIST", batch=8),
            ScenarioTenant(model="NCF", batch=4),
        ),
        load=0.7, duration_s=0.0008, seed=13, drain=True,
    )


def _serving() -> Scenario:
    return Scenario(
        name="diff-serving", kind="serving", scheme="pmt",
        tenants=(
            ScenarioTenant(model="MNIST", batch=4),
            ScenarioTenant(model="NCF", batch=4, priority=2.0),
            ScenarioTenant(model="MNIST", batch=1),
        ),
        target_requests=2, seed=3,
    )


def _cluster() -> Scenario:
    return Scenario(
        name="diff-cluster", kind="cluster", scheme="neu10",
        load=0.6, duration_s=0.0015, seed=21, hosts=2,
        churn=(
            ScenarioChurn(0.0, "arrive", "a", model="MNIST", batch=4,
                          num_mes=2, num_ves=2),
            ScenarioChurn(0.0004, "arrive", "b", model="NCF", batch=4,
                          num_mes=2, num_ves=2),
        ),
    )


def _llm() -> Scenario:
    return Scenario(
        name="diff-llm", kind="llm", scheme="neu10",
        load=0.6, duration_s=0.001, seed=9, drain=True,
        llm=ScenarioLlm(
            tenants=(
                ScenarioLlmTenant(name="chat", prompt_tokens=128,
                                  decode_tokens=32),
                ScenarioLlmTenant(name="code", prompt_tokens=64,
                                  decode_tokens=16),
            ),
            batch_tokens=512, m_total=512,
            preemption_mode="sacrifice", victim_policy="fifo",
            step_overhead_cycles=2000.0, cycles_per_token=20.0,
        ),
    )


_ALL = [_open_loop, _serving, _cluster, _llm]


@pytest.mark.parametrize("make", _ALL, ids=lambda f: f.__name__)
def test_fast_path_matrix_bit_identical(make):
    sc = make()
    digests = []
    for flag in ("0", "1"):
        with _env("REPRO_SIM_FAST_PATH", flag):
            digests.append(_metrics_digest(run_scenario(sc)))
    assert digests[0] == digests[1]


@pytest.mark.parametrize("make", _ALL, ids=lambda f: f.__name__)
def test_megabatch_matrix_bit_identical_single_run(make):
    sc = make()
    digests = []
    for flag in ("0", "1"):
        with _env("REPRO_SIM_MEGABATCH", flag):
            digests.append(canonical_digest(run_scenario(sc).to_dict()))
    assert digests[0] == digests[1]


def test_megabatch_matrix_bit_identical_sweep():
    sc = _open_loop()
    digests = []
    for flag in ("0", "1"):
        with _env("REPRO_SIM_MEGABATCH", flag):
            results = sweep_scenario(
                sc, param="load", values=[0.5, 0.9], max_workers=1
            )
            digests.append(
                [canonical_digest(r.to_dict()) for r in results]
            )
    assert digests[0] == digests[1]


def test_both_toggles_stacked():
    sc = _open_loop()
    with _env("REPRO_SIM_FAST_PATH", "0"), \
            _env("REPRO_SIM_MEGABATCH", "0"):
        plain = _metrics_digest(run_scenario(sc))
    with _env("REPRO_SIM_FAST_PATH", "1"), \
            _env("REPRO_SIM_MEGABATCH", "1"):
        fast = _metrics_digest(run_scenario(sc))
    assert plain == fast
