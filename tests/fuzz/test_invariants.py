"""Unit tests of the invariant catalog: each check passes on a healthy
engine and trips on a deliberately corrupted result (mutation-style)."""

import copy

import pytest

from repro.api import run_scenario
from repro.api.scenario import (
    Scenario,
    ScenarioLlm,
    ScenarioLlmTenant,
    ScenarioTenant,
)
from repro.config import spawn_rng
from repro.fuzz.invariants import (
    INV_CONSERVATION,
    INV_DETERMINISM,
    INV_ROUNDTRIP,
    check_conservation,
    check_determinism,
    check_fast_path,
    check_megabatch,
    check_resume,
    check_roundtrip,
    check_scenario,
)


def _open_loop(drain: bool = True) -> Scenario:
    return Scenario(
        name="inv-ol", kind="open_loop", scheme="neu10",
        tenants=(ScenarioTenant(model="MNIST", batch=8),),
        load=0.6, duration_s=0.0008, seed=3, drain=drain,
    )


def _llm() -> Scenario:
    return Scenario(
        name="inv-llm", kind="llm", scheme="neu10",
        load=0.5, duration_s=0.001, seed=5, drain=True,
        llm=ScenarioLlm(
            tenants=(ScenarioLlmTenant(
                name="t0", prompt_tokens=64, decode_tokens=16),),
            batch_tokens=256, m_total=1024,
            step_overhead_cycles=2000.0, cycles_per_token=20.0,
        ),
    )


@pytest.fixture(scope="module")
def ol_result():
    return run_scenario(_open_loop())


@pytest.fixture(scope="module")
def llm_result():
    return run_scenario(_llm())


def test_roundtrip_clean(ol_result):
    assert check_roundtrip(_open_loop()) == []


def test_conservation_clean_open_loop(ol_result):
    assert check_conservation(_open_loop(), ol_result) == []


def test_conservation_clean_llm(llm_result):
    assert check_conservation(_llm(), llm_result) == []


def test_conservation_catches_inflated_completed(ol_result):
    bad = copy.deepcopy(ol_result)
    bad.metrics["tenants"][0]["completed"] = (
        bad.metrics["tenants"][0]["offered"] + 1
    )
    violations = check_conservation(_open_loop(), bad)
    assert violations and violations[0].invariant == INV_CONSERVATION


def test_conservation_catches_drain_leak(ol_result):
    bad = copy.deepcopy(ol_result)
    t = bad.metrics["tenants"][0]
    t["offered"] = t["completed"] + 2  # a request vanished at drain
    t["attainment"] = t["attained"] / t["offered"]
    violations = check_conservation(_open_loop(drain=True), bad)
    assert any("drain leak" in v.detail for v in violations)


def test_conservation_catches_llm_tenant_sum_mismatch(llm_result):
    bad = copy.deepcopy(llm_result)
    name = next(iter(bad.metrics["tenants"]))
    bad.metrics["tenants"][name]["completed"] += 1
    violations = check_conservation(_llm(), bad)
    assert violations and violations[0].invariant == INV_CONSERVATION


def test_determinism_clean(ol_result):
    assert check_determinism(_open_loop(), ol_result) == []


def test_determinism_catches_result_drift(ol_result):
    bad = copy.deepcopy(ol_result)
    bad.metrics["tenants"][0]["attained"] += 0  # no-op; now poison digest
    bad.metadata["poisoned"] = True
    violations = check_determinism(_open_loop(), bad)
    assert violations and violations[0].invariant == INV_DETERMINISM


def test_engine_toggle_differentials_clean(ol_result, llm_result):
    assert check_megabatch(_open_loop(), ol_result) == []
    assert check_fast_path(_open_loop(), ol_result) == []
    assert check_fast_path(_llm(), llm_result) == []


def test_resume_after_torn_journal(tmp_path):
    rng = spawn_rng(0, "inv", "resume")
    assert check_resume(_open_loop(), rng, workdir=tmp_path) == []


def test_check_scenario_counts_checks(tmp_path):
    rng = spawn_rng(0, "inv", "drive")
    outcome = check_scenario(
        _open_loop(), rng, deep=False, workdir=tmp_path
    )
    assert outcome.violations == []
    assert outcome.checks_run == 3  # roundtrip, conservation, determinism


def test_check_scenario_reports_engine_crash(tmp_path):
    rng = spawn_rng(0, "inv", "crash")

    def exploding_run(_sc):
        raise RuntimeError("planted engine crash")

    outcome = check_scenario(
        _open_loop(), rng, deep=False, workdir=tmp_path, run=exploding_run
    )
    assert len(outcome.violations) == 1
    v = outcome.violations[0]
    assert v.invariant == INV_CONSERVATION
    assert "planted engine crash" in v.detail
    assert v.scenario == _open_loop()


def test_violation_to_dict_embeds_spec():
    from repro.fuzz.invariants import Violation

    v = Violation(INV_ROUNDTRIP, "x", "detail", _open_loop())
    payload = v.to_dict()
    assert payload["invariant"] == INV_ROUNDTRIP
    assert payload["spec"]["name"] == "inv-ol"
