"""Tests for graph lowering (VLIW + NeuISA) and the m/v profiler."""

import pytest

from repro.compiler.lowering import (
    lower_graph_neuisa,
    lower_graph_vliw,
    lower_matmul_instructions_neuisa,
    lower_matmul_instructions_vliw,
    vliw_ve_idle_fraction,
)
from repro.compiler.operators import ElementwiseKind, MatMul
from repro.compiler.profiler import profile_graph
from repro.config import NpuCoreConfig
from repro.errors import CompileError
from repro.isa.interpreter import run_program

from tests.conftest import make_me_graph, make_ve_graph

CORE = NpuCoreConfig()


# ----------------------------------------------------------------------
# Descriptor lowering
# ----------------------------------------------------------------------
def test_neuisa_lowering_creates_utop_groups():
    g = make_me_graph(layers=2)
    compiled = lower_graph_neuisa(g, CORE)
    assert compiled.isa == "neuisa"
    me_ops = [op for op in compiled.ops if op.is_me_op]
    assert me_ops
    for op in me_ops:
        assert op.groups
        assert all(g.num_me_utops <= CORE.num_mes for g in op.groups)


def test_neuisa_cost_conservation():
    g = make_me_graph(layers=2)
    compiled = lower_graph_neuisa(g, CORE)
    for op in compiled.ops:
        if op.is_me_op and not op.reduction_split:
            assert op.total_me_cycles == pytest.approx(op.cost.me_cycles)


def test_vliw_lowering_bakes_in_coupling():
    g = make_me_graph(layers=2)
    compiled = lower_graph_vliw(g, CORE, num_mes=4, num_ves=4)
    me_ops = [op for op in compiled.ops if op.is_me_op]
    assert all(op.coupled_me_count >= 1 for op in me_ops)
    assert all(not op.groups for op in me_ops)


def test_vliw_lowering_rejects_zero_engines():
    g = make_me_graph(layers=1)
    with pytest.raises(CompileError):
        lower_graph_vliw(g, CORE, num_mes=0, num_ves=1)


def test_lowering_preserves_topo_order():
    g = make_ve_graph(layers=2)
    compiled = lower_graph_neuisa(g, CORE)
    names = [op.name for op in compiled.ops]
    assert names.index("ve-toy.emb0") < names.index("ve-toy.sm0")
    assert names.index("ve-toy.sm0") < names.index("ve-toy.emb1")


def test_solo_lower_bound_is_a_lower_bound():
    g = make_me_graph(layers=2)
    compiled = lower_graph_neuisa(g, CORE)
    lb4 = compiled.solo_lower_bound_cycles(4, 4)
    lb1 = compiled.solo_lower_bound_cycles(1, 1)
    assert lb4 < lb1


# ----------------------------------------------------------------------
# Instruction-level lowering (Fig. 6 / Fig. 8)
# ----------------------------------------------------------------------
def _fused_matmul():
    return MatMul("fmm", m=128, k=128, n=128, epilogue=[ElementwiseKind.RELU])


def test_instruction_vliw_ve_mostly_idle():
    program = lower_matmul_instructions_vliw(_fused_matmul(), 2, 2)
    idle = vliw_ve_idle_fraction(program)
    assert idle > 0.8  # paper: VE idle most of the time


def test_instruction_neuisa_shares_snippets():
    program = lower_matmul_instructions_neuisa(_fused_matmul(), 4, 2)
    assert program.num_me_utops == 4
    assert len(program.snippets) == 1  # one shared snippet
    assert program.sharing_factor() == pytest.approx(4.0)


def test_instruction_neuisa_runs_on_interpreter():
    program = lower_matmul_instructions_neuisa(_fused_matmul(), 2, 2, pops_per_tile=4)
    result = run_program(program)
    assert len(result.groups) == 1
    assert len(result.groups[0].utop_runs) == 2


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
def test_profile_m_plus_v_at_least_one():
    """Paper SectionIII-B: at least one engine type is always active."""
    for graph in (make_me_graph(), make_ve_graph()):
        profile = profile_graph(graph, CORE)
        assert profile.m + profile.v >= 1.0 - 1e-9


def test_me_graph_profiles_me_heavy():
    profile = profile_graph(make_me_graph(), CORE)
    assert profile.m > 0.8
    assert profile.me_ve_intensity_ratio > 1.0


def test_ve_graph_profiles_ve_heavy():
    profile = profile_graph(make_ve_graph(), CORE)
    assert profile.v > 0.5
    assert profile.me_ve_intensity_ratio < 1.0


def test_profile_timeline_is_contiguous():
    profile = profile_graph(make_me_graph(), CORE)
    timeline = profile.timeline()
    assert timeline[0][0] == 0.0
    for (s0, e0, _), (s1, _e1, _) in zip(timeline, timeline[1:]):
        assert e0 == pytest.approx(s1)
    assert timeline[-1][1] == pytest.approx(profile.total_cycles)


def test_profile_average_bandwidth_positive():
    profile = profile_graph(make_ve_graph(), CORE)
    assert profile.average_hbm_bandwidth(CORE) > 0
