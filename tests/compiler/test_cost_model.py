"""Tests for the per-operator cost model, including property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.cost_model import CostModel, me_utilization_efficiency
from repro.compiler.operators import (
    Conv2D,
    Elementwise,
    ElementwiseKind,
    EmbeddingLookup,
    MatMul,
    Softmax,
)
from repro.config import NpuCoreConfig

CORE = NpuCoreConfig()
MODEL = CostModel(CORE)


def test_matmul_cost_scales_with_flops():
    small = MODEL.cost(MatMul("s", m=128, k=128, n=128))
    big = MODEL.cost(MatMul("b", m=512, k=512, n=512))
    assert big.me_cycles > small.me_cycles * 8


def test_large_matmul_approaches_peak():
    """For big square matmuls the dominant term is flops / (2 * MACs)."""
    mm = MatMul("big", m=2048, k=2048, n=2048)
    cost = MODEL.cost(mm)
    ideal = mm.flops / (2 * CORE.me_macs_per_cycle)
    assert ideal <= cost.me_cycles <= ideal * 1.3


def test_gemv_is_weight_load_bound():
    """m=8 rows: the array spends its time loading weights, so cycles
    vastly exceed flops/(2*MACs) -- the LLM decode regime."""
    mm = MatMul("gemv", m=8, k=4096, n=4096)
    cost = MODEL.cost(mm)
    ideal = mm.flops / (2 * CORE.me_macs_per_cycle)
    assert cost.me_cycles > 5 * ideal


def test_epilogue_adds_ve_cycles():
    plain = MODEL.cost(MatMul("p", m=256, k=256, n=256))
    fused = MODEL.cost(
        MatMul("f", m=256, k=256, n=256, epilogue=[ElementwiseKind.GELU])
    )
    assert fused.ve_cycles > plain.ve_cycles
    assert fused.me_cycles == plain.me_cycles


def test_conv_costed_through_im2col():
    conv = Conv2D("c", batch=8, in_h=28, in_w=28, in_ch=64, out_ch=64, kernel=3)
    m, k, n = conv.as_matmul_dims()
    conv_cost = MODEL.cost(conv)
    mm_cost = MODEL.cost(MatMul("m", m=m, k=k, n=n))
    assert conv_cost.me_cycles == mm_cost.me_cycles


def test_ve_op_has_no_me_cycles():
    cost = MODEL.cost(Softmax("sm", rows=128, cols=128))
    assert cost.me_cycles == 0
    assert cost.ve_cycles > 0
    assert not cost.is_me_bound


def test_embedding_is_memory_bound_ve_time():
    from repro.compiler.cost_model import GATHER_BANDWIDTH_EFFICIENCY

    emb = EmbeddingLookup("e", num_lookups=4096, dim=64, table_bytes=10**9)
    cost = MODEL.cost(emb)
    gather_rate = CORE.hbm_bytes_per_cycle * GATHER_BANDWIDTH_EFFICIENCY
    assert cost.ve_cycles == pytest.approx(cost.hbm_bytes / gather_rate)


def test_parallel_and_reduction_tiles():
    cost = MODEL.cost(MatMul("t", m=512, k=512, n=256))
    assert cost.parallel_tiles == 4 * 2
    assert cost.reduction_tiles == 4


def test_me_utilization_efficiency_bounds():
    perfect = me_utilization_efficiency(MatMul("p", m=128, k=128, n=128), CORE)
    ragged = me_utilization_efficiency(MatMul("r", m=8, k=129, n=130), CORE)
    assert perfect == pytest.approx(1.0)
    assert 0 < ragged < 0.1


@settings(max_examples=50, deadline=None)
@given(
    m=st.integers(1, 2048),
    k=st.integers(1, 2048),
    n=st.integers(1, 2048),
)
def test_matmul_cost_properties(m, k, n):
    """Costs are positive, and padded-peak bounds hold from below."""
    cost = MODEL.cost(MatMul("mm", m=m, k=k, n=n))
    assert cost.me_cycles > 0
    assert cost.ve_cycles > 0
    assert cost.hbm_bytes > 0
    # The array cannot beat perfect streaming of m rows per (n,k) tile.
    import math
    tn, tk = math.ceil(n / 128), math.ceil(k / 128)
    assert cost.me_cycles >= tn * tk * m


@settings(max_examples=30, deadline=None)
@given(elements=st.integers(1, 10**7))
def test_elementwise_cost_monotone(elements):
    cost = MODEL.cost(
        Elementwise("e", kind=ElementwiseKind.RELU, elements=elements)
    )
    assert cost.ve_cycles >= 1.0
    assert cost.ve_cycles >= elements / CORE.ve_flops_per_cycle * 0.99
