"""Tests for the dataflow graph."""

import pytest

from repro.compiler.graph import Graph
from repro.compiler.operators import Elementwise, ElementwiseKind, MatMul
from repro.errors import CompileError


def _mm(name):
    return MatMul(name, m=8, k=8, n=8)


def test_chain_construction():
    g = Graph("g")
    a = g.add(_mm("a"))
    b = g.add(_mm("b"))
    assert g.node(b).inputs == [a]


def test_explicit_inputs_and_fanin():
    g = Graph("g")
    a = g.add(_mm("a"), inputs=[])
    b = g.add(_mm("b"), inputs=[])
    c = g.add(
        Elementwise("c", kind=ElementwiseKind.ADD, elements=64, arity=2),
        inputs=[a, b],
    )
    assert set(g.node(c).inputs) == {a, b}
    assert g.consumers(a) == [c]


def test_unknown_input_rejected():
    g = Graph("g")
    with pytest.raises(CompileError):
        g.add(_mm("a"), inputs=[99])


def test_topo_order_respects_dependencies():
    g = Graph("g")
    a = g.add(_mm("a"), inputs=[])
    b = g.add(_mm("b"), inputs=[])
    c = g.add(_mm("c"), inputs=[a, b])
    d = g.add(_mm("d"), inputs=[c])
    order = [n.node_id for n in g.topo_order()]
    assert order.index(a) < order.index(c) < order.index(d)
    assert order.index(b) < order.index(c)


def test_cycle_detection():
    g = Graph("g")
    a = g.add(_mm("a"), inputs=[])
    b = g.add(_mm("b"), inputs=[a])
    g.rewire(a, [b])
    with pytest.raises(CompileError):
        g.topo_order()


def test_remove_requires_no_consumers():
    g = Graph("g")
    a = g.add(_mm("a"))
    b = g.add(_mm("b"))
    with pytest.raises(CompileError):
        g.remove(a)
    g.remove(b)
    g.remove(a)
    assert len(g) == 0


def test_aggregates():
    g = Graph("g")
    g.add(_mm("a"))
    g.add(Elementwise("e", kind=ElementwiseKind.RELU, elements=64))
    assert g.count_me_ops() == 1
    assert g.count_ve_ops() == 1
    assert g.total_flops > 0
    assert g.total_hbm_bytes > 0
