"""Tests for operator tiling and the fusion pass."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.cost_model import CostModel
from repro.compiler.fusion import MAX_EPILOGUE_OPS, fuse_graph
from repro.compiler.graph import Graph
from repro.compiler.operators import (
    Elementwise,
    ElementwiseKind,
    MatMul,
    Softmax,
)
from repro.compiler.tiling import compiler_demanded_engines, tile_operator, vliw_me_count
from repro.config import NpuCoreConfig

CORE = NpuCoreConfig()
MODEL = CostModel(CORE)


# ----------------------------------------------------------------------
# Tiling
# ----------------------------------------------------------------------
def test_parallel_dims_preferred():
    mm = MatMul("mm", m=1024, k=256, n=512)  # 8x4 = 32 parallel tiles
    cost = MODEL.cost(mm)
    plan = tile_operator(mm, cost, nx=4, core=CORE)
    assert plan.num_tiles == 4
    assert not plan.reduction_split
    assert plan.combine is None


def test_reduction_split_when_parallel_insufficient():
    """m=n=128 gives one parallel tile; reaching 4 uTOps needs a
    reduction split, which appends a VE combine step (Fig. 16's
    overhead source)."""
    mm = MatMul("mm", m=128, k=2048, n=128)
    cost = MODEL.cost(mm)
    plan = tile_operator(mm, cost, nx=4, core=CORE)
    assert plan.reduction_split
    assert plan.num_tiles > 1
    assert plan.combine is not None
    assert plan.combine.ve_cycles > 0
    assert plan.combine.me_cycles == 0


def test_tiny_op_stays_whole():
    mm = MatMul("mm", m=8, k=8, n=8)
    cost = MODEL.cost(mm)
    plan = tile_operator(mm, cost, nx=4, core=CORE)
    assert plan.num_tiles == 1


def test_tile_cost_conservation():
    mm = MatMul("mm", m=1024, k=512, n=1024)
    cost = MODEL.cost(mm)
    plan = tile_operator(mm, cost, nx=4, core=CORE)
    assert sum(t.me_cycles for t in plan.tiles) == pytest.approx(cost.me_cycles)
    assert sum(t.hbm_bytes for t in plan.tiles) == pytest.approx(cost.hbm_bytes)


def test_ve_op_single_utop_with_parallelism():
    sm = Softmax("sm", rows=4096, cols=512)
    cost = MODEL.cost(sm)
    plan = tile_operator(sm, cost, nx=4, core=CORE)
    assert plan.num_tiles == 1
    assert plan.ve_parallelism >= 1


def test_vliw_me_count_caps():
    cost = MODEL.cost(MatMul("mm", m=1024, k=512, n=1024))
    assert vliw_me_count(cost, 4) == 4
    assert vliw_me_count(cost, 128) <= cost.parallel_tiles * cost.reduction_tiles
    ve_cost = MODEL.cost(Softmax("sm", rows=8, cols=8))
    assert vliw_me_count(ve_cost, 4) == 0


def test_compiler_demanded_engines():
    me_cost = MODEL.cost(MatMul("mm", m=1024, k=512, n=1024))
    mes, ves = compiler_demanded_engines(me_cost, 4, 2)
    assert mes == 4 and 1 <= ves <= 2
    ve_cost = MODEL.cost(Softmax("sm", rows=4096, cols=512))
    mes, ves = compiler_demanded_engines(ve_cost, 4, 2)
    assert mes == 0 and ves >= 1


@settings(max_examples=40, deadline=None)
@given(
    m=st.integers(1, 1024),
    k=st.integers(1, 1024),
    n=st.integers(1, 1024),
    nx=st.integers(1, 8),
)
def test_tiling_invariants(m, k, n, nx):
    mm = MatMul("mm", m=m, k=k, n=n)
    cost = MODEL.cost(mm)
    plan = tile_operator(mm, cost, nx, CORE)
    assert 1 <= plan.num_tiles <= nx
    assert sum(t.me_cycles for t in plan.tiles) == pytest.approx(cost.me_cycles)


# ----------------------------------------------------------------------
# Fusion
# ----------------------------------------------------------------------
def _relu(elements):
    return Elementwise("relu", kind=ElementwiseKind.RELU, elements=elements)


def test_fuse_matmul_relu():
    g = Graph("g")
    mm = g.add(MatMul("mm", m=16, k=16, n=16))
    g.add(_relu(256))
    tail = g.add(Softmax("sm", rows=16, cols=16))
    fused = fuse_graph(g)
    assert fused == 1
    assert len(g) == 2
    assert g.node(mm).op.epilogue == [ElementwiseKind.RELU]
    # The softmax was re-wired onto the matmul.
    assert g.node(tail).inputs == [mm]


def test_no_fusion_across_size_mismatch():
    g = Graph("g")
    g.add(MatMul("mm", m=16, k=16, n=16))
    g.add(_relu(999))
    assert fuse_graph(g) == 0


def test_no_fusion_when_preactivation_needed_elsewhere():
    """A MatMul with a second consumer cannot absorb the activation:
    the pre-activation tensor is still needed."""
    g = Graph("g")
    mm = g.add(MatMul("mm", m=16, k=16, n=16))
    g.add(_relu(256), inputs=[mm])
    g.add(Softmax("other", rows=16, cols=16), inputs=[mm])
    assert fuse_graph(g) == 0


def test_fusion_rewires_all_consumers_of_the_activation():
    """An activation with several consumers may fuse; every consumer is
    re-pointed at the fused MatMul."""
    g = Graph("g")
    mm = g.add(MatMul("mm", m=16, k=16, n=16))
    r = g.add(_relu(256), inputs=[mm])
    a = g.add(Softmax("a", rows=16, cols=16), inputs=[r])
    b = g.add(Softmax("b", rows=16, cols=16), inputs=[r])
    assert fuse_graph(g) == 1
    assert g.node(a).inputs == [mm]
    assert g.node(b).inputs == [mm]


def test_no_fusion_of_binary_elementwise():
    g = Graph("g")
    mm = g.add(MatMul("mm", m=16, k=16, n=16))
    g.add(
        Elementwise("add", kind=ElementwiseKind.ADD, elements=256, arity=2),
        inputs=[mm],
    )
    assert fuse_graph(g) == 0


def test_epilogue_depth_limited():
    g = Graph("g")
    g.add(MatMul("mm", m=16, k=16, n=16))
    for i in range(MAX_EPILOGUE_OPS + 2):
        g.add(Elementwise(f"e{i}", kind=ElementwiseKind.RELU, elements=256))
    fused = fuse_graph(g)
    assert fused == MAX_EPILOGUE_OPS
