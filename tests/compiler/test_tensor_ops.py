"""Tests for tensor shapes and the operator taxonomy."""

import pytest

from repro.compiler.operators import (
    Conv2D,
    DepthwiseConv2D,
    Elementwise,
    ElementwiseKind,
    EmbeddingLookup,
    LayerNorm,
    MatMul,
    Pooling,
    Reduction,
    Softmax,
    me_equivalent_dims,
)
from repro.compiler.tensor import DType, TensorShape, total_bytes
from repro.errors import CompileError


# ----------------------------------------------------------------------
# TensorShape
# ----------------------------------------------------------------------
def test_shape_basics():
    shape = TensorShape.of(8, 128, 64)
    assert shape.rank == 3
    assert shape.num_elements == 8 * 128 * 64
    assert shape.nbytes == shape.num_elements * 4


def test_shape_dtype_sizes():
    assert TensorShape.of(4, dtype=DType.BF16).nbytes == 8
    assert TensorShape.of(4, dtype=DType.INT8).nbytes == 4


def test_shape_rejects_bad_dims():
    with pytest.raises(CompileError):
        TensorShape.of(0, 4)
    with pytest.raises(CompileError):
        TensorShape(())


def test_with_dim_and_total_bytes():
    shape = TensorShape.of(2, 3)
    grown = shape.with_dim(0, 10)
    assert grown.dims == (10, 3)
    assert total_bytes([shape, grown]) == shape.nbytes + grown.nbytes


# ----------------------------------------------------------------------
# Operators
# ----------------------------------------------------------------------
def test_matmul_flops_and_bytes():
    mm = MatMul("mm", m=4, k=8, n=16)
    assert mm.flops == 2 * 4 * 8 * 16
    assert mm.input_bytes == 4 * 8 * 4
    assert mm.output_bytes == 4 * 16 * 4
    assert mm.weight_bytes == 8 * 16 * 4
    assert mm.is_me_op


def test_matmul_resident_weights():
    mm = MatMul("mm", m=4, k=8, n=16, weights_streamed=False)
    assert mm.weight_bytes == 0


def test_conv_as_matmul_dims():
    conv = Conv2D("c", batch=2, in_h=8, in_w=8, in_ch=3, out_ch=16,
                  kernel=3, stride=2)
    m, k, n = conv.as_matmul_dims()
    assert (m, k, n) == (2 * 4 * 4, 3 * 3 * 3, 16)
    assert me_equivalent_dims(conv) == (m, k, n)


def test_depthwise_is_ve_op():
    dw = DepthwiseConv2D("dw", batch=1, in_h=8, in_w=8, channels=32)
    assert not dw.is_me_op
    assert dw.flops > 0
    assert me_equivalent_dims(dw) is None


def test_elementwise_arity_scales_input_bytes():
    add = Elementwise("add", kind=ElementwiseKind.ADD, elements=100, arity=2)
    relu = Elementwise("relu", kind=ElementwiseKind.RELU, elements=100)
    assert add.input_bytes == 2 * relu.input_bytes


def test_elementwise_cost_factors():
    assert ElementwiseKind.GELU.cost_factor > ElementwiseKind.RELU.cost_factor


def test_softmax_and_layernorm_pass_counts():
    sm = Softmax("sm", rows=10, cols=10)
    ln = LayerNorm("ln", rows=10, cols=10)
    assert sm.flops == 4 * 100
    assert ln.flops == 3 * 100


def test_reduction_shapes():
    red = Reduction("r", elements=1000, outputs=10)
    assert red.input_bytes == 4000
    assert red.output_bytes == 40


def test_embedding_traffic():
    emb = EmbeddingLookup("e", num_lookups=100, dim=64, table_bytes=10**9)
    assert emb.input_bytes == 100 * 64 * 4
    assert not emb.is_me_op


def test_pooling_output_dims():
    pool = Pooling("p", batch=1, in_h=8, in_w=8, channels=4, window=2)
    assert pool.out_h == 4 and pool.out_w == 4


def test_operator_validation_errors():
    with pytest.raises(CompileError):
        MatMul("bad", m=0, k=1, n=1)
    with pytest.raises(CompileError):
        Conv2D("bad", batch=1, in_h=1, in_w=1, in_ch=1, out_ch=1, kernel=0)
    with pytest.raises(CompileError):
        Elementwise("bad", elements=0)
    with pytest.raises(CompileError):
        Softmax("bad", rows=0, cols=1)
    with pytest.raises(CompileError):
        EmbeddingLookup("bad", num_lookups=0, dim=1)
