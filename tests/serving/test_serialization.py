"""Round-trip tests for JSON serialisation of profiles and results."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.profiler import profile_graph
from repro.config import NpuCoreConfig
from repro.errors import ConfigError
from repro.serving.metrics import PairMetrics, TenantMetrics
from repro.serving.serialization import (
    SCHEMA_VERSION,
    dump,
    dumps,
    load,
    loads,
    pair_metrics_to_dict,
    profile_from_dict,
    profile_to_dict,
)

from tests.conftest import make_me_graph

CORE = NpuCoreConfig()


def test_profile_round_trip():
    profile = profile_graph(make_me_graph(), CORE)
    restored = profile_from_dict(profile_to_dict(profile))
    assert restored.name == profile.name
    assert restored.m == pytest.approx(profile.m)
    assert restored.v == pytest.approx(profile.v)
    assert len(restored.ops) == len(profile.ops)


def test_profile_file_round_trip():
    profile = profile_graph(make_me_graph(), CORE)
    buffer = io.StringIO()
    dump(profile, buffer)
    buffer.seek(0)
    restored = load(buffer)
    assert restored.total_cycles == pytest.approx(profile.total_cycles)


finite = st.floats(min_value=0.0, max_value=1e12, allow_nan=False)

tenant_metrics = st.builds(
    TenantMetrics,
    name=st.text(min_size=1, max_size=10),
    scheme=st.sampled_from(["pmt", "v10", "neu10"]),
    p95_latency_cycles=finite,
    mean_latency_cycles=finite,
    throughput_rps=finite,
    me_utilization=st.floats(0, 1),
    ve_utilization=st.floats(0, 1),
    blocked_fraction=st.floats(0, 1),
    completed_requests=st.integers(0, 10**6),
)


@settings(max_examples=50, deadline=None)
@given(tenant_metrics)
def test_tenant_metrics_round_trip(metrics):
    restored = loads(dumps(metrics))
    assert restored == metrics


@settings(max_examples=25, deadline=None)
@given(st.lists(tenant_metrics, min_size=1, max_size=3))
def test_pair_metrics_round_trip(tenants):
    pair = PairMetrics(
        pair="a+b",
        scheme="neu10",
        tenants=tenants,
        total_me_utilization=0.5,
        total_ve_utilization=0.25,
        preemption_count=7,
        total_cycles=1e6,
    )
    restored = loads(dumps(pair))
    assert restored.pair == pair.pair
    assert restored.tenants == pair.tenants
    assert restored.total_cycles == pair.total_cycles


def test_unknown_kind_rejected():
    with pytest.raises(ConfigError):
        loads('{"kind": "mystery", "schema": 1}')


def test_schema_version_checked():
    pair = PairMetrics(pair="a+b", scheme="neu10")
    data = pair_metrics_to_dict(pair)
    data["schema"] = SCHEMA_VERSION + 1
    import json

    with pytest.raises(ConfigError):
        loads(json.dumps(data))


def test_unserialisable_type_rejected():
    with pytest.raises(ConfigError):
        dumps(object())
