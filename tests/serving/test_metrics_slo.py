"""Direct unit tests for percentile edge behavior and SLO accounting."""

import pytest

from repro.errors import ConfigError
from repro.serving.metrics import goodput_rps, percentile, slo_attainment


# ----------------------------------------------------------------------
# percentile edges
# ----------------------------------------------------------------------
def test_percentile_zero_is_minimum():
    assert percentile([5.0, 1.0, 9.0], 0.0) == 1.0


def test_percentile_hundred_is_maximum():
    assert percentile([5.0, 1.0, 9.0], 100.0) == 9.0


def test_percentile_single_sample_any_pct():
    for pct in (0.0, 1.0, 50.0, 95.0, 99.9, 100.0):
        assert percentile([42.0], pct) == 42.0


def test_percentile_empty_is_zero():
    assert percentile([], 95.0) == 0.0
    assert percentile([], 0.0) == 0.0


def test_percentile_rejects_out_of_range():
    with pytest.raises(ConfigError):
        percentile([1.0], -0.1)
    with pytest.raises(ConfigError):
        percentile([1.0], 100.1)


def test_percentile_nearest_rank_interior():
    values = [float(i) for i in range(1, 101)]
    assert percentile(values, 50) == 50.0
    assert percentile(values, 95) == 95.0
    # Tiny positive percentile rounds up to the first rank, not below it.
    assert percentile(values, 0.5) == 1.0


# ----------------------------------------------------------------------
# attainment / goodput
# ----------------------------------------------------------------------
def test_slo_attainment_completed_only():
    lats = [10.0, 20.0, 30.0, 40.0]
    assert slo_attainment(lats, 25.0) == pytest.approx(0.5)


def test_slo_attainment_counts_unfinished_as_misses():
    lats = [10.0, 20.0]
    assert slo_attainment(lats, 25.0, offered=4) == pytest.approx(0.5)
    assert slo_attainment(lats, 5.0, offered=4) == 0.0


def test_slo_attainment_empty_is_perfect():
    assert slo_attainment([], 100.0) == 1.0
    assert slo_attainment([], 100.0, offered=0) == 1.0


def test_goodput_counts_only_attained():
    lats = [10.0, 20.0, 300.0]
    assert goodput_rps(lats, 25.0, duration_s=2.0) == pytest.approx(1.0)


def test_slo_validation():
    with pytest.raises(ConfigError):
        slo_attainment([1.0], 0.0)
    with pytest.raises(ConfigError):
        goodput_rps([1.0], 10.0, duration_s=0.0)
