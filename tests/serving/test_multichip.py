"""Tests for data-parallel multi-core inference (paper SectionIV)."""

import pytest

from repro.config import NpuCoreConfig
from repro.errors import ConfigError
from repro.serving.multichip import (
    DataParallelVnpu,
    parallel_efficiency,
    scaling_study,
)

CORE = NpuCoreConfig()


def test_shard_batches_even_split():
    vnpu = DataParallelVnpu("MNIST", 8, 4, CORE)
    assert vnpu.shard_batches() == [2, 2, 2, 2]


def test_shard_batches_remainder_spread():
    vnpu = DataParallelVnpu("MNIST", 10, 4, CORE)
    assert vnpu.shard_batches() == [3, 3, 2, 2]
    assert sum(vnpu.shard_batches()) == 10


def test_invalid_sharding_rejected():
    with pytest.raises(ConfigError):
        DataParallelVnpu("MNIST", 2, 4, CORE)
    with pytest.raises(ConfigError):
        DataParallelVnpu("MNIST", 8, 0, CORE)


def test_single_core_has_no_allgather():
    result = DataParallelVnpu("MNIST", 8, 1, CORE).run(target_requests=1)
    assert result.allgather_cycles == 0.0
    assert result.request_latency_cycles > 0


def test_data_parallel_speedup():
    """Two cores halve the per-shard batch; request latency drops and
    throughput rises (shards run on independent cores)."""
    study = scaling_study("ResNet", 8, [1, 2], CORE, target_requests=1)
    assert study[2].request_latency_cycles < study[1].request_latency_cycles
    assert study[2].throughput_rps(CORE) > study[1].throughput_rps(CORE)


def test_parallel_efficiency_bounded():
    study = scaling_study("ResNet", 8, [1, 2, 4], CORE, target_requests=1)
    eff = parallel_efficiency(study)
    assert eff[1] == pytest.approx(1.0)
    for n, value in eff.items():
        assert 0.0 < value <= 1.3  # sub-linear but sane


def test_parallel_efficiency_needs_baseline():
    study = scaling_study("MNIST", 8, [2], CORE, target_requests=1)
    with pytest.raises(ConfigError):
        parallel_efficiency(study)


def test_allgather_cost_grows_with_cores():
    two = DataParallelVnpu("ResNet", 8, 2, CORE)
    four = DataParallelVnpu("ResNet", 8, 4, CORE)
    assert four._allgather_cycles() > 0
    # More cores exchange more shard outputs.
    assert four._allgather_cycles() >= two._allgather_cycles()
