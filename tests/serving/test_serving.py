"""Tests for the serving harness: runners, metrics, request streams."""

import pytest

from repro.config import DEFAULT_CORE
from repro.errors import ConfigError
from repro.serving.metrics import PairMetrics, TenantMetrics, percentile
from repro.serving.requests import poisson_arrivals, steady_arrivals
from repro.serving.server import (
    ALL_SCHEMES,
    SCHEME_NEU10,
    SCHEME_NEU10_NH,
    SCHEME_PMT,
    SCHEME_V10,
    ServingConfig,
    WorkloadSpec,
    make_scheduler,
    run_collocation,
    run_solo,
)


# ----------------------------------------------------------------------
# Request streams
# ----------------------------------------------------------------------
def test_poisson_arrivals_sorted_and_bounded():
    arrivals = poisson_arrivals(100.0, 0.5, DEFAULT_CORE.frequency_hz, seed=1)
    assert arrivals == sorted(arrivals)
    assert all(0 <= a < 0.5 * DEFAULT_CORE.frequency_hz for a in arrivals)
    # ~50 expected; allow wide slack.
    assert 20 <= len(arrivals) <= 100


def test_poisson_deterministic_with_seed():
    a = poisson_arrivals(50.0, 0.2, 1e9, seed=7)
    b = poisson_arrivals(50.0, 0.2, 1e9, seed=7)
    assert a == b


def test_steady_arrivals_evenly_spaced():
    arrivals = steady_arrivals(10.0, 5, 1e9)
    gaps = {round(b - a) for a, b in zip(arrivals, arrivals[1:])}
    assert len(gaps) == 1


def test_request_generators_validate():
    with pytest.raises(ConfigError):
        poisson_arrivals(-1.0, 1.0, 1e9)
    with pytest.raises(ConfigError):
        steady_arrivals(10.0, 0, 1e9)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_percentile_nearest_rank():
    values = [float(i) for i in range(1, 101)]
    assert percentile(values, 50) == 50.0
    assert percentile(values, 95) == 95.0
    assert percentile(values, 100) == 100.0
    assert percentile([], 95) == 0.0


def test_tenant_metrics_normalisation():
    a = TenantMetrics("w", "neu10", 50.0, 40.0, 200.0, 0.5, 0.2, 0.01, 10)
    base = TenantMetrics("w", "pmt", 100.0, 80.0, 100.0, 0.3, 0.1, 0.0, 10)
    norm = a.normalized_to(base)
    assert norm.p95_latency_cycles == pytest.approx(0.5)
    assert norm.throughput_rps == pytest.approx(2.0)


def test_pair_metrics_lookup():
    pair = PairMetrics(pair="a+b", scheme="neu10", tenants=[
        TenantMetrics("a", "neu10", 1, 1, 1, 0, 0, 0, 1),
    ])
    assert pair.tenant("a").name == "a"
    with pytest.raises(KeyError):
        pair.tenant("zzz")


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def test_make_scheduler_covers_all_schemes():
    for scheme in ALL_SCHEMES:
        assert make_scheduler(scheme) is not None
    with pytest.raises(ConfigError):
        make_scheduler("fifo")


def test_run_solo_mnist():
    pair = run_solo(WorkloadSpec("MNIST", 8), ServingConfig(target_requests=2))
    metrics = pair.tenants[0]
    assert metrics.completed_requests >= 2
    assert metrics.throughput_rps > 0


def test_run_collocation_produces_both_tenants():
    cfg = ServingConfig(target_requests=2)
    pair = run_collocation(
        [WorkloadSpec("MNIST", 8), WorkloadSpec("DLRM", 8)],
        SCHEME_NEU10,
        cfg,
    )
    assert len(pair.tenants) == 2
    assert pair.pair == "MNIST+DLRM"
    assert pair.total_me_utilization > 0
    assert pair.op_durations is not None


def test_collocation_scheme_isa_mapping():
    """PMT/V10 must execute VLIW descriptors; Neu10* NeuISA ones --
    visible through the preemption/harvest statistics."""
    cfg = ServingConfig(target_requests=2)
    nh = run_collocation(
        [WorkloadSpec("MNIST", 8), WorkloadSpec("DLRM", 8)],
        SCHEME_NEU10_NH, cfg,
    )
    assert nh.preemption_count == 0  # static partitions never preempt


@pytest.mark.parametrize("scheme", [SCHEME_PMT, SCHEME_V10, SCHEME_NEU10])
def test_all_schemes_complete(scheme):
    cfg = ServingConfig(target_requests=2)
    pair = run_collocation(
        [WorkloadSpec("MNIST", 8), WorkloadSpec("DLRM", 8)], scheme, cfg
    )
    for t in pair.tenants:
        assert t.completed_requests >= 2
