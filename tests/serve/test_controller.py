"""ServeController: live stepping, checkpointing, and injection."""

from __future__ import annotations

import pytest

from repro.api import run_scenario
from repro.api.scenario import Scenario
from repro.errors import CheckpointError, ConfigError, ValidationError
from repro.serve import INJECT_KINDS, ServeController, sign_checkpoint


def _scenario(**overrides) -> Scenario:
    spec = {
        "name": "serve-under-test",
        "kind": "cluster",
        "scheme": "neu10",
        "duration_s": 0.002,
        "load": 0.6,
        "seed": 7,
        "hosts": 2,
        "cores_per_host": 1,
        "autoscaler": {"policy": "threshold", "interval_s": 0.0005},
        "churn": [
            {"time_s": 0.0, "action": "arrive", "name": "a",
             "model": "MNIST", "batch": 4, "num_mes": 2, "num_ves": 2},
            {"time_s": 0.001, "action": "arrive", "name": "b",
             "model": "NCF", "batch": 4, "num_mes": 2, "num_ves": 2},
        ],
    }
    spec.update(overrides)
    return Scenario.from_dict(spec)


def test_controller_rejects_non_cluster_scenarios():
    spec = {
        "name": "not-cluster", "kind": "open_loop", "scheme": "neu10",
        "duration_s": 0.001, "load": 0.5, "seed": 1,
        "tenants": [{"model": "MNIST", "batch": 8}],
    }
    with pytest.raises(ConfigError, match="cluster"):
        ServeController(Scenario.from_dict(spec))


def test_advance_to_completion_matches_repro_run():
    scenario = _scenario()
    controller = ServeController(scenario)
    status = controller.status()
    assert status["done"] is False and status["segments_completed"] == 0
    observations = controller.advance(until_s=scenario.duration_s)
    assert len(observations) == status["total_segments"]
    assert controller.status()["done"] is True
    assert controller.metrics() == run_scenario(scenario).to_dict()


def test_segment_stream_grows_with_steps():
    controller = ServeController(_scenario())
    controller.advance(segments=2)
    assert [o["segment_index"] for o in controller.segments()] == [0, 1]
    assert [o["segment_index"] for o in controller.segments(since=1)] == [1]
    with pytest.raises(ValidationError):
        controller.advance(segments=-1)


def test_snapshot_restore_round_trip_preserves_metrics():
    scenario = _scenario()
    controller = ServeController(scenario)
    controller.advance(segments=2)
    snapshot = controller.snapshot()
    controller.advance(until_s=scenario.duration_s)
    reference = controller.metrics()
    status = controller.restore(snapshot)
    assert status["segments_completed"] == 2 and status["done"] is False
    controller.advance(until_s=scenario.duration_s)
    assert controller.metrics() == reference


def test_restore_refuses_corrupt_snapshot():
    controller = ServeController(_scenario())
    controller.advance(segments=1)
    snapshot = controller.snapshot()
    snapshot["payload"] = snapshot["payload"][:-8] + "AAAAAAA="
    with pytest.raises(CheckpointError):
        controller.restore(snapshot)


def test_restore_authenticates_with_the_shared_key():
    scenario = _scenario()
    first = ServeController(scenario, restore_key="s3cret")
    first.advance(segments=2)
    snapshot = first.snapshot()
    # A replacement controller holding the same key accepts the
    # snapshot; one with a different (random) key refuses it unseen.
    second = ServeController(scenario, restore_key="s3cret")
    assert second.restore(snapshot)["segments_completed"] == 2
    stranger = ServeController(scenario)
    with pytest.raises(CheckpointError, match="auth"):
        stranger.restore(snapshot)
    with pytest.raises(CheckpointError, match="auth"):
        second.restore({k: v for k, v in snapshot.items() if k != "auth"})


def test_sign_checkpoint_admits_unsigned_journal_payloads():
    controller = ServeController(_scenario(), restore_key="k")
    controller.advance(segments=1)
    unsigned = {
        k: v for k, v in controller.snapshot().items() if k != "auth"
    }
    signed = sign_checkpoint(unsigned, "k")
    assert controller.restore(signed)["segments_completed"] == 1


def test_failed_restore_leaves_the_live_run_untouched():
    controller = ServeController(_scenario())
    controller.advance(segments=2)
    before = controller.metrics()
    other = ServeController(_scenario(seed=8))
    other.advance(segments=1)
    # Correctly signed for this controller, but from a different
    # scenario: the digest check must refuse it *without* swapping the
    # controller onto fresh inputs.
    foreign = sign_checkpoint(
        {k: v for k, v in other.snapshot().items() if k != "auth"},
        controller.restore_key,
    )
    with pytest.raises(CheckpointError, match="different scenario"):
        controller.restore(foreign)
    assert controller.status()["segments_completed"] == 2
    assert controller.metrics() == before


def test_tick_respects_pause_and_done():
    controller = ServeController(_scenario())
    assert controller.tick() in (True, False)
    controller.pause()
    before = controller.status()["segments_completed"]
    assert controller.tick() is False
    assert controller.status()["segments_completed"] == before
    controller.start()
    while controller.tick():
        pass
    assert controller.status()["done"] is True


def test_inject_traffic_spike_changes_the_outcome():
    scenario = _scenario()
    reference = run_scenario(scenario).to_dict()
    controller = ServeController(scenario)
    controller.advance(segments=1)
    status = controller.inject({
        "kind": "traffic-spike",
        "time_s": 0.0012,
        "duration_s": 0.0006,
        "factor": 6.0,
    })
    assert status["total_segments"] >= controller.status()["total_segments"]
    controller.advance(until_s=scenario.duration_s)
    spiked = controller.metrics()
    assert spiked != reference
    assert any(
        f["kind"] == "burst-storm" for f in spiked["metrics"]["fault_events"]
    )


def test_inject_tenant_arrive_and_depart():
    # No autoscaler: the threshold policy would scale the idle second
    # host in before 0.0011s and the late tenant would be rejected.
    scenario = _scenario(autoscaler=None)
    controller = ServeController(scenario)
    controller.advance(segments=1)
    controller.inject({
        "kind": "tenant-arrive", "time_s": 0.0011, "name": "late",
        "model": "MNIST", "batch": 4, "num_mes": 2, "num_ves": 2,
    })
    controller.inject({
        "kind": "tenant-depart", "time_s": 0.0016, "name": "late",
    })
    controller.advance(until_s=scenario.duration_s)
    tenants = {t["name"] for t in controller.metrics()["metrics"]["tenants"]}
    assert "late" in tenants


@pytest.mark.parametrize("payload, field", [
    ({"kind": "nonsense", "time_s": 0.001}, "kind"),
    ({"kind": "traffic-spike"}, "time_s"),
    ({"kind": "traffic-spike", "time_s": 0.001}, "duration_s"),
    ({"kind": "tenant-arrive", "time_s": 0.001}, "name"),
    ({"kind": "tenant-arrive", "time_s": 0.001, "name": "x"}, "model"),
    ({"kind": "tenant-depart", "time_s": 0.001, "name": "a",
      "bogus": 1}, "payload"),
])
def test_inject_validation_names_the_field(payload, field):
    controller = ServeController(_scenario())
    with pytest.raises(ValidationError) as excinfo:
        controller.inject(payload)
    assert excinfo.value.field == field


def test_inject_refuses_conflicting_tenant_events():
    controller = ServeController(_scenario())
    controller.advance(segments=1)
    # "a" arrived at t=0 with no scheduled depart: a second arrival
    # would raise mid-boundary, so the injection is refused up front.
    with pytest.raises(ValidationError, match="resident"):
        controller.inject({
            "kind": "tenant-arrive", "time_s": 0.0016, "name": "a",
            "model": "MNIST",
        })
    with pytest.raises(ValidationError, match="not"):
        controller.inject({
            "kind": "tenant-depart", "time_s": 0.0016, "name": "ghost",
        })
    # The refusals left the run intact.
    controller.advance(until_s=1.0)
    assert controller.status()["done"] is True


def test_inject_rearrival_after_scheduled_depart_is_allowed():
    scenario = _scenario()
    controller = ServeController(scenario)
    controller.inject({
        "kind": "tenant-depart", "time_s": 0.0011, "name": "a",
    })
    controller.inject({
        "kind": "tenant-arrive", "time_s": 0.0016, "name": "a",
        "model": "MNIST", "batch": 4, "num_mes": 2, "num_ves": 2,
    })
    controller.advance(until_s=scenario.duration_s)
    assert controller.status()["done"] is True


def test_inject_refuses_past_times():
    controller = ServeController(_scenario())
    controller.advance(segments=2)
    now = controller.status()["time_s"]
    with pytest.raises(ValidationError):
        controller.inject({
            "kind": "traffic-spike", "time_s": now / 2, "duration_s": 0.0005,
        })


def test_inject_kinds_catalog_is_exhaustive():
    assert set(INJECT_KINDS) == {
        "tenant-arrive", "tenant-depart", "traffic-spike",
        "hypercall-spike", "host-crash", "vf-loss",
    }
