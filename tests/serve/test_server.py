"""HTTP surface of ``repro serve`` (in-process server, real sockets)."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import run_scenario
from repro.api.scenario import Scenario
from repro.serve import make_server


def _scenario() -> Scenario:
    return Scenario.from_dict({
        "name": "serve-http-under-test",
        "kind": "cluster",
        "scheme": "neu10",
        "duration_s": 0.002,
        "load": 0.6,
        "seed": 7,
        "hosts": 2,
        "cores_per_host": 1,
        "autoscaler": {"policy": "threshold", "interval_s": 0.0005},
        "churn": [
            {"time_s": 0.0, "action": "arrive", "name": "a",
             "model": "MNIST", "batch": 4, "num_mes": 2, "num_ves": 2},
        ],
    })


@pytest.fixture
def server():
    srv = make_server(_scenario())
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def _get(server, path):
    host, port = server.server_address[:2]
    with urllib.request.urlopen(f"http://{host}:{port}{path}") as resp:
        return json.load(resp)


def _post(server, path, body=None):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=json.dumps(body or {}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as resp:
        return json.load(resp)


def test_status_advance_metrics_round_trip(server):
    status = _get(server, "/status")
    assert status["scenario"] == "serve-http-under-test"
    assert status["done"] is False
    reply = _post(server, "/advance", {"segments": 2})
    assert len(reply["segments"]) == 2
    assert reply["status"]["segments_completed"] == 2
    streamed = _get(server, "/segments?since=1")
    assert [o["segment_index"] for o in streamed] == [1]
    _post(server, "/advance", {"until_s": 1.0})
    assert _get(server, "/status")["done"] is True
    assert _get(server, "/metrics") == run_scenario(_scenario()).to_dict()


def test_snapshot_restore_over_http(server):
    _post(server, "/advance", {"segments": 1})
    snapshot = _get(server, "/snapshot")
    _post(server, "/advance", {"until_s": 1.0})
    reference = _get(server, "/metrics")
    status = _post(server, "/restore", snapshot)
    assert status["segments_completed"] == 1 and status["done"] is False
    _post(server, "/advance", {"until_s": 1.0})
    assert _get(server, "/metrics") == reference


def test_inject_and_error_statuses(server):
    _post(server, "/inject", {
        "kind": "traffic-spike", "time_s": 0.0012,
        "duration_s": 0.0005, "factor": 5.0,
    })
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server, "/inject", {"kind": "nonsense", "time_s": 0.001})
    assert excinfo.value.code == 400
    assert "error" in json.load(excinfo.value)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/nope")
    assert excinfo.value.code == 404
    _post(server, "/advance", {"segments": 1})
    snapshot = _get(server, "/snapshot")
    snapshot["payload"] = snapshot["payload"][:-8] + "AAAAAAA="
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server, "/restore", snapshot)
    assert excinfo.value.code == 409


def test_malformed_parameters_return_400_not_a_dead_socket(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _get(server, "/segments?since=abc")
    assert excinfo.value.code == 400
    assert "error" in json.load(excinfo.value)
    for path, body in [
        ("/advance", {"until_s": "abc"}),
        ("/advance", {"segments": "abc"}),
        ("/inject", {"kind": "traffic-spike", "time_s": "soon",
                     "duration_s": 0.0005}),
        ("/inject", {"kind": "traffic-spike", "time_s": 0.0015,
                     "duration_s": "long"}),
    ]:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(server, path, body)
        assert excinfo.value.code == 400, (path, body)
        assert "error" in json.load(excinfo.value)
    # The server survived every one of them.
    assert _get(server, "/status")["scenario"] == "serve-http-under-test"


def test_restore_requires_the_auth_hmac(server):
    _post(server, "/advance", {"segments": 1})
    snapshot = _get(server, "/snapshot")
    assert "auth" in snapshot
    unsigned = {k: v for k, v in snapshot.items() if k != "auth"}
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server, "/restore", unsigned)
    assert excinfo.value.code == 409
    forged = dict(snapshot, auth="0" * 64)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post(server, "/restore", forged)
    assert excinfo.value.code == 409
    # The genuine signed snapshot still restores.
    status = _post(server, "/restore", snapshot)
    assert status["segments_completed"] == 1


def test_auto_tick_starts_paused_then_runs():
    srv = make_server(_scenario(), tick_s=0.02)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    srv.start_ticker()
    try:
        time.sleep(0.1)
        assert _get(srv, "/status")["segments_completed"] == 0  # paused
        _post(srv, "/start")
        deadline = time.time() + 10
        while time.time() < deadline:
            if _get(srv, "/status")["done"]:
                break
            time.sleep(0.05)
        assert _get(srv, "/status")["done"] is True
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)
