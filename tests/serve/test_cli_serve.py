"""CLI plumbing for the steppable core: run --checkpoint/--resume/
--progress and the serve subcommand's argument surface."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main

CLUSTER_SCENARIO = {
    "name": "cli-cluster",
    "kind": "cluster",
    "scheme": "neu10",
    "duration_s": 0.002,
    "load": 0.6,
    "seed": 7,
    "hosts": 2,
    "cores_per_host": 1,
    "autoscaler": {"policy": "threshold", "interval_s": 0.0005},
    "churn": [
        {"time_s": 0.0, "action": "arrive", "name": "a",
         "model": "MNIST", "batch": 4, "num_mes": 2, "num_ves": 2},
    ],
}

TWO_SCENARIOS = [
    CLUSTER_SCENARIO,
    {**CLUSTER_SCENARIO, "name": "cli-cluster-2", "seed": 8},
]


@pytest.fixture
def cluster_file(tmp_path):
    path = tmp_path / "cluster.json"
    path.write_text(json.dumps(CLUSTER_SCENARIO), encoding="utf-8")
    return str(path)


@pytest.fixture
def multi_file(tmp_path):
    path = tmp_path / "multi.json"
    path.write_text(json.dumps(TWO_SCENARIOS), encoding="utf-8")
    return str(path)


def test_run_checkpoint_then_resume_is_bit_identical(
    cluster_file, tmp_path, capsys
):
    assert cli_main(["run", cluster_file, "--json"]) == 0
    plain = capsys.readouterr().out
    journal_dir = str(tmp_path / "ck")
    assert cli_main(
        ["run", cluster_file, "--json", "--checkpoint", journal_dir]
    ) == 0
    first = capsys.readouterr().out
    assert (Path(journal_dir) / "journal.jsonl").exists()
    assert cli_main(
        ["run", cluster_file, "--json", "--checkpoint", journal_dir,
         "--resume"]
    ) == 0
    resumed = capsys.readouterr().out
    assert first == plain
    assert resumed == plain


def test_run_progress_ticks_on_stderr(cluster_file, capsys):
    assert cli_main(["run", cluster_file, "--progress"]) == 0
    captured = capsys.readouterr()
    assert "segment" in captured.err
    assert "[1/" in captured.err


def test_run_progress_is_silenced_under_json(cluster_file, capsys):
    assert cli_main(["run", cluster_file, "--progress", "--json"]) == 0
    captured = capsys.readouterr()
    assert captured.err == ""
    json.loads(captured.out)


def test_run_checkpoint_needs_exactly_one_scenario(
    multi_file, tmp_path, capsys
):
    assert cli_main([
        "run", multi_file, "--checkpoint", str(tmp_path / "ck"),
    ]) == 1
    assert "exactly one scenario" in capsys.readouterr().err


def test_run_checkpoint_rejects_non_cluster(tmp_path):
    path = tmp_path / "open.json"
    path.write_text(json.dumps({
        "name": "open", "kind": "open_loop", "scheme": "neu10",
        "duration_s": 0.0003, "load": 0.8, "seed": 7,
        "tenants": [{"model": "MNIST", "batch": 8}],
    }), encoding="utf-8")
    assert cli_main([
        "run", str(path), "--checkpoint", str(tmp_path / "ck"),
    ]) == 1


def test_scenario_checkpoint_block_drives_run(tmp_path, capsys):
    spec = dict(CLUSTER_SCENARIO)
    spec["checkpoint"] = {"directory": str(tmp_path / "ck"), "every": 2}
    path = tmp_path / "with_ck.json"
    path.write_text(json.dumps(spec), encoding="utf-8")
    assert cli_main(["run", str(path), "--json"]) == 0
    json.loads(capsys.readouterr().out)
    assert (tmp_path / "ck" / "journal.jsonl").exists()


def test_serve_requires_a_cluster_scenario(tmp_path, capsys):
    path = tmp_path / "open.json"
    path.write_text(json.dumps({
        "name": "open", "kind": "open_loop", "scheme": "neu10",
        "duration_s": 0.0003, "load": 0.8, "seed": 7,
        "tenants": [{"model": "MNIST", "batch": 8}],
    }), encoding="utf-8")
    assert cli_main(["serve", str(path)]) == 1
    assert "cluster" in capsys.readouterr().err


def test_list_mentions_checkpoint_block(capsys):
    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["checkpoint"]) == {"directory", "every"}
    assert cli_main(["list"]) == 0
    assert "checkpoint" in capsys.readouterr().out.lower()


def test_help_advertises_serve(capsys):
    with pytest.raises(SystemExit):
        cli_main(["--help"])
    assert "serve" in capsys.readouterr().out
