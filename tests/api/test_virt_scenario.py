"""The ``virtualization:`` scenario block: round-trip, validation,
runner metric gating, and the CLI surface."""

import json

import pytest

from repro.api import (
    Scenario,
    ScenarioChurn,
    ScenarioPool,
    ScenarioTenant,
    ScenarioVirtualization,
    run_scenario,
)
from repro.cli import main as cli_main
from repro.errors import ConfigError


def _cluster_scenario(virtualization=None, **overrides):
    params = dict(
        name="virt",
        kind="cluster",
        scheme="neu10",
        load=0.5,
        duration_s=0.0005,
        seed=3,
        pools=(ScenarioPool(name="pool", min_hosts=2, max_hosts=2,
                            initial_hosts=2),),
        churn=tuple(
            ScenarioChurn(0.0, "arrive", f"t{i}", model="MNIST",
                          num_mes=1, num_ves=1)
            for i in range(6)
        ),
        virtualization=virtualization,
    )
    params.update(overrides)
    return Scenario(**params)


# ----------------------------------------------------------------------
# Round-trip + validation
# ----------------------------------------------------------------------
def test_virtualization_block_round_trips():
    sc = _cluster_scenario(ScenarioVirtualization(
        num_vfs=2, pool_num_vfs={"pool": 2}, hypercall_cost_s=1e-5,
    ))
    assert Scenario.from_yaml(sc.to_yaml()) == sc
    assert Scenario.from_json(sc.to_json()) == sc
    assert sc.to_dict()["virtualization"] == {
        "num_vfs": 2, "pool_num_vfs": {"pool": 2}, "hypercall_cost_s": 1e-5,
    }


def test_default_block_round_trips_and_stays_distinct_from_absent():
    enabled = _cluster_scenario(ScenarioVirtualization())
    disabled = _cluster_scenario(None)
    assert Scenario.from_yaml(enabled.to_yaml()) == enabled
    assert enabled != disabled
    assert enabled.digest() != disabled.digest()
    assert "virtualization" not in disabled.to_dict()


def test_virtualization_only_for_cluster_kind():
    with pytest.raises(ConfigError, match="kind: cluster"):
        Scenario(
            name="x", kind="open_loop",
            tenants=(ScenarioTenant(model="MNIST"),),
            virtualization=ScenarioVirtualization(),
        )


def test_pool_overrides_validated_against_declared_pools():
    with pytest.raises(ConfigError, match="unknown pool"):
        _cluster_scenario(ScenarioVirtualization(pool_num_vfs={"ghost": 2}))
    with pytest.raises(ConfigError, match="needs explicit 'pools'"):
        _cluster_scenario(
            ScenarioVirtualization(pool_num_vfs={"pool": 2}), pools=(),
        )


def test_block_value_validation_matches_cluster_layer():
    with pytest.raises(ConfigError):
        ScenarioVirtualization(num_vfs=0)
    with pytest.raises(ConfigError):
        ScenarioVirtualization(hypercall_cost_s=-1.0)
    with pytest.raises(ConfigError, match="unknown virtualization key"):
        Scenario.from_dict({
            "name": "x", "kind": "cluster",
            "churn": [{"time_s": 0.0, "action": "arrive", "name": "t",
                       "model": "MNIST"}],
            "virtualization": {"vfs": 4},
        })


# ----------------------------------------------------------------------
# Runner gating
# ----------------------------------------------------------------------
def test_runner_reports_virtualization_only_when_configured():
    plain = run_scenario(_cluster_scenario(None))
    assert "virtualization" not in plain.metrics
    assert "virtualization" not in plain.metadata
    assert "cluster_attainment" not in plain.metrics

    virt = run_scenario(_cluster_scenario(
        ScenarioVirtualization(num_vfs=2, hypercall_cost_s=5e-5)
    ))
    block = virt.metrics["virtualization"]
    assert block["hypercalls"]["create"] == 4
    assert block["vf_exhaustion_rejections"] == 2
    assert block["peak_vf_in_use"] == 4
    assert block["onboarding_delay_s"] == pytest.approx(4 * 5e-5)
    assert virt.metrics["cluster_attainment"] >= 0.0
    assert virt.metadata["virtualization"] == {
        "num_vfs": 2, "pool_num_vfs": {}, "hypercall_cost_s": 5e-5,
    }
    # The spec digest distinguishes the two runs.
    assert (
        virt.provenance["scenario_digest"]
        != plain.provenance["scenario_digest"]
    )


def test_runner_result_json_round_trips(tmp_path):
    result = run_scenario(_cluster_scenario(
        ScenarioVirtualization(num_vfs=2)
    ))
    payload = json.loads(json.dumps(result.to_dict()))
    assert payload["metrics"]["virtualization"]["vf_exhaustion_rejections"] == 2


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_list_shows_virtualization(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "virtualization:" in out
    assert "num_vfs" in out and "hypercall_cost_s" in out


def test_cli_list_json_describes_the_block(capsys):
    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["virtualization"]) == {
        "num_vfs", "pool_num_vfs", "hypercall_cost_s",
    }


def test_field_doc_table_matches_the_dataclass():
    """`repro list` and gen_docs render VIRTUALIZATION_FIELD_DOCS; a
    new ScenarioVirtualization field must land there too."""
    import dataclasses

    from repro.api import VIRTUALIZATION_FIELD_DOCS

    assert set(VIRTUALIZATION_FIELD_DOCS) == {
        f.name for f in dataclasses.fields(ScenarioVirtualization)
    }


def test_cli_run_json_reports_virtualization(tmp_path, capsys):
    sc = _cluster_scenario(ScenarioVirtualization(num_vfs=2))
    path = tmp_path / "virt.json"
    path.write_text(sc.to_json(), encoding="utf-8")
    assert cli_main(["run", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    virt = payload["metrics"]["virtualization"]
    assert virt["hypercall_total"] == 4
    assert virt["vf_exhaustion_rejections"] == 2
    assert virt["vf_occupancy_timeline"] == [[0.0, 4, 4]]
