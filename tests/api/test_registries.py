"""Registries: single source of scheme/arrival/workload names + plugins."""

import pytest

from repro.api import (
    ARRIVALS,
    FIGURES,
    SCHEDULERS,
    WORKLOADS,
    ArrivalInfo,
    SchedulerInfo,
    all_scheme_names,
    default_scheme_names,
)
from repro.api.registry import Registry
from repro.errors import ConfigError


# ----------------------------------------------------------------------
# The dedup satellite: one source of truth for scheme names
# ----------------------------------------------------------------------
def test_serving_scheme_lists_come_from_the_registry():
    from repro.serving import server

    assert server.ALL_SCHEMES == default_scheme_names()
    assert set(server.SCHEME_ISA) == set(all_scheme_names())
    assert server.ALL_SCHEMES == ("pmt", "v10", "neu10-nh", "neu10")
    assert "neu10-temporal" in all_scheme_names()


def test_make_scheduler_matches_legacy_factory():
    from repro.baselines.pmt import PmtScheduler
    from repro.serving.server import make_scheduler
    from repro.sim.sched_neu10 import Neu10Scheduler

    assert isinstance(make_scheduler("pmt"), PmtScheduler)
    assert isinstance(make_scheduler("neu10"), Neu10Scheduler)
    # Fresh instance per call (schedulers are stateful).
    assert make_scheduler("neu10") is not make_scheduler("neu10")


def test_unknown_scheme_error_is_helpful():
    with pytest.raises(ConfigError) as exc:
        SCHEDULERS.get("neu20")
    message = str(exc.value)
    assert "known:" in message and "neu10" in message


def test_arrival_kinds_match_traffic_module():
    from repro.traffic.arrivals import ARRIVAL_KINDS

    assert ARRIVALS.names() == ARRIVAL_KINDS


def test_workloads_registry_matches_catalog():
    from repro.workloads.catalog import catalog_entries

    assert WORKLOADS.names() == tuple(i.name for i in catalog_entries())


def test_figures_registry_has_descriptions_and_runners():
    assert "fig19" in FIGURES and "hwcost" in FIGURES
    for _name, info in FIGURES.items():
        assert callable(info.run_result)
        assert info.description


# ----------------------------------------------------------------------
# Plugins
# ----------------------------------------------------------------------
def test_scheduler_plugin_flows_through_every_front_end():
    from repro.api.registries import make_scheduler, scheme_isa
    from repro.sim.sched_neu10 import Neu10Scheduler

    SCHEDULERS.add("test-plugin", SchedulerInfo(
        "test-plugin", Neu10Scheduler, isa="neuisa", default=False,
        description="unit-test plugin",
    ))
    try:
        assert isinstance(make_scheduler("test-plugin"), Neu10Scheduler)
        assert scheme_isa("test-plugin") == "neuisa"
        assert "test-plugin" in all_scheme_names()
        # Not part of the paper's default comparison set.
        assert "test-plugin" not in default_scheme_names()
    finally:
        SCHEDULERS.remove("test-plugin")
    assert "test-plugin" not in all_scheme_names()


def test_arrival_plugin_is_constructible_by_name():
    from repro.traffic.arrivals import PoissonProcess, make_arrival_process

    ARRIVALS.add("test-poisson", ArrivalInfo(
        "test-poisson", lambda rate, **_kw: PoissonProcess(rate),
    ))
    try:
        process = make_arrival_process("test-poisson", 1e-4)
        assert isinstance(process, PoissonProcess)
    finally:
        ARRIVALS.remove("test-poisson")
    with pytest.raises(ConfigError):
        make_arrival_process("test-poisson", 1e-4)


# ----------------------------------------------------------------------
# Registry mechanics
# ----------------------------------------------------------------------
def test_duplicate_registration_is_rejected_unless_overwritten():
    reg = Registry("thing")
    reg.add("a", 1)
    with pytest.raises(ConfigError, match="already registered"):
        reg.add("a", 2)
    reg.add("a", 2, overwrite=True)
    assert reg.get("a") == 2


def test_register_decorator_and_suggestions():
    reg = Registry("thing")

    @reg.register("fancy")
    def entry():
        return 42

    assert reg.get("fancy") is entry
    with pytest.raises(ConfigError, match="did you mean 'fancy'"):
        reg.get("fancyy")
    with pytest.raises(ConfigError, match="non-empty string"):
        reg.add("", 1)


def test_failed_loader_rolls_back_and_retries():
    attempts = []

    def loader(reg):
        reg.add("early", 1)
        if not attempts:
            attempts.append("fail")
            raise ImportError("transient")
        attempts.append("ok")

    reg = Registry("flaky", loader=loader)
    with pytest.raises(ImportError, match="transient"):
        reg.get("early")
    # The root cause surfaces again (no silent half-populated registry)
    # and a later attempt that succeeds serves the full set.
    assert reg.get("early") == 1
    assert attempts == ["fail", "ok"]


def test_lazy_loader_runs_once():
    calls = []

    def loader(reg):
        calls.append(1)
        reg.add("x", "y")

    reg = Registry("lazy", loader=loader)
    assert not calls  # nothing loaded at construction
    assert "x" in reg
    assert reg.names() == ("x",)
    assert calls == [1]
