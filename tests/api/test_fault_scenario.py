"""The ``faults:`` scenario block: round-trip, validation, kind gating,
runner stamping, docs pinning, and the CLI surface."""

import json

import pytest

from repro.api import (
    FAULT_FIELD_DOCS,
    Scenario,
    ScenarioChurn,
    ScenarioFault,
    run_scenario,
)
from repro.cli import main as cli_main
from repro.errors import ConfigError


def _cluster_scenario(faults=(), **overrides):
    params = dict(
        name="faulty",
        kind="cluster",
        scheme="neu10",
        load=0.5,
        duration_s=0.002,
        seed=3,
        hosts=2,
        churn=(
            ScenarioChurn(0.0, "arrive", "a", model="MNIST", batch=4,
                          num_mes=2, num_ves=2),
            ScenarioChurn(0.0, "arrive", "b", model="NCF", batch=4,
                          num_mes=2, num_ves=2),
        ),
        faults=faults,
    )
    params.update(overrides)
    return Scenario(**params)


# ----------------------------------------------------------------------
# Round-trip + validation
# ----------------------------------------------------------------------
def test_faults_round_trip_yaml_json_digest():
    sc = _cluster_scenario((
        ScenarioFault(kind="host-crash", time_s=0.001),
        ScenarioFault(kind="burst-storm", time_s=0.0005,
                      duration_s=0.0008, factor=3.0),
        ScenarioFault(kind="vf-loss", time_s=0.0012, count=2,
                      host="host0"),
    ))
    assert Scenario.from_yaml(sc.to_yaml()) == sc
    assert Scenario.from_json(sc.to_json()) == sc
    assert Scenario.from_yaml(sc.to_yaml()).digest() == sc.digest()


def test_fault_defaults_omitted_from_dict():
    sc = _cluster_scenario((ScenarioFault(kind="host-crash",
                                          time_s=0.001),))
    payload = sc.to_dict()["faults"]
    assert payload == [{"kind": "host-crash", "time_s": 0.001}]


def test_empty_faults_absent_from_dict():
    assert "faults" not in _cluster_scenario(()).to_dict()


@pytest.mark.parametrize("bad", [
    dict(kind="nope", time_s=0.0),
    dict(kind="host-crash", time_s=-1.0),
    dict(kind="host-crash", time_s=0.0, duration_s=0.1),  # point fault
    dict(kind="burst-storm", time_s=0.0),  # window needs duration
    dict(kind="burst-storm", time_s=0.0, duration_s=0.1, factor=0.0),
    dict(kind="vf-loss", time_s=0.0, count=0),
])
def test_invalid_fault_specs_rejected(bad):
    with pytest.raises(ConfigError):
        _cluster_scenario((ScenarioFault(**bad),))


def test_unknown_fault_key_rejected():
    payload = _cluster_scenario(
        (ScenarioFault(kind="host-crash", time_s=0.001),)
    ).to_dict()
    payload["faults"][0]["surprise"] = 1
    with pytest.raises(ConfigError):
        Scenario.from_dict(payload)


@pytest.mark.parametrize("kind", ["open_loop", "serving", "llm"])
def test_faults_gated_to_cluster_kind(kind):
    from repro.api.scenario import (
        ScenarioLlm,
        ScenarioLlmTenant,
        ScenarioTenant,
    )

    params = dict(
        name="x", kind=kind, scheme="neu10",
        faults=(ScenarioFault(kind="host-crash", time_s=0.0001),),
    )
    if kind == "llm":
        params.update(load=0.5, duration_s=0.001, llm=ScenarioLlm(
            tenants=(ScenarioLlmTenant(name="t", prompt_tokens=64,
                                       decode_tokens=16),),
        ))
    else:
        params["tenants"] = (ScenarioTenant(model="MNIST", batch=8),)
        if kind == "open_loop":
            params.update(load=0.5, duration_s=0.001)
    with pytest.raises(ConfigError):
        Scenario(**params)


# ----------------------------------------------------------------------
# Runner stamping
# ----------------------------------------------------------------------
def test_runner_stamps_fault_events_only_when_faults_present():
    clean = run_scenario(_cluster_scenario(()))
    assert "fault_events" not in clean.metrics
    assert "faults" not in clean.metadata

    faulty = run_scenario(_cluster_scenario(
        (ScenarioFault(kind="host-crash", time_s=0.001),)
    ))
    assert faulty.metadata["faults"] == [
        {"kind": "host-crash", "time_s": 0.001}
    ]
    events = faulty.metrics["fault_events"]
    assert any(e["kind"] == "host-crash" for e in events)


def test_fault_free_scenario_digest_unchanged_by_feature():
    """A spec without faults must produce the exact same result digest
    whether or not the faults field exists in the codebase -- here:
    explicit empty tuple vs default."""
    from repro.api.result import canonical_digest

    a = run_scenario(_cluster_scenario(()))
    b = run_scenario(_cluster_scenario())
    assert canonical_digest(a.to_dict()) == canonical_digest(b.to_dict())


# ----------------------------------------------------------------------
# Docs surface
# ----------------------------------------------------------------------
def test_fault_field_docs_match_dataclass():
    """`repro list` and gen_docs render FAULT_FIELD_DOCS; a new
    ScenarioFault field must document itself."""
    import dataclasses

    assert set(FAULT_FIELD_DOCS) == {
        f.name for f in dataclasses.fields(ScenarioFault)
    }


def test_cli_list_mentions_faults(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Fault injection" in out
    assert "host-crash" in out

    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["faults"] == FAULT_FIELD_DOCS
