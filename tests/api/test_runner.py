"""run_scenario / sweep_scenario: equivalence with the direct engines."""

import pytest

from repro.api import (
    RunResult,
    Scenario,
    ScenarioChurn,
    ScenarioTenant,
    run_scenario,
    sweep_scenario,
    validate_run_result,
)
from repro.errors import ConfigError

TENANTS = (
    ScenarioTenant(model="MNIST", batch=8),
    ScenarioTenant(model="DLRM", batch=8),
)


def test_open_loop_scenario_matches_direct_run():
    """The scenario layer is a veneer: results are bit-identical to
    calling the traffic engine directly."""
    from repro.traffic.openloop import (
        OpenLoopConfig,
        TrafficTenantSpec,
        run_open_loop,
    )

    scenario = Scenario(
        name="veneer", kind="open_loop", scheme="neu10",
        tenants=TENANTS, arrival="poisson", load=0.8,
        duration_s=0.0005, seed=7,
    )
    result = run_scenario(scenario)
    direct = run_open_loop(
        [TrafficTenantSpec(model="MNIST", batch=8),
         TrafficTenantSpec(model="DLRM", batch=8)],
        "neu10",
        OpenLoopConfig(duration_s=0.0005, load=0.8, arrival="poisson", seed=7),
    )
    assert result.metrics["simulated_cycles"] == direct.total_cycles
    assert result.metrics["min_attainment"] == direct.min_attainment
    by_name = {t["name"]: t for t in result.metrics["tenants"]}
    for rep in direct.reports:
        assert by_name[rep.name]["offered"] == rep.offered
        assert by_name[rep.name]["completed"] == rep.completed
        assert by_name[rep.name]["p95_latency_cycles"] == rep.p95_latency


def test_serving_scenario_matches_run_collocation():
    from repro.serving.server import ServingConfig, WorkloadSpec, run_collocation

    scenario = Scenario(
        name="pair", kind="serving", scheme="neu10",
        tenants=TENANTS, target_requests=3,
    )
    result = run_scenario(scenario)
    direct = run_collocation(
        [WorkloadSpec(model="MNIST", batch=8),
         WorkloadSpec(model="DLRM", batch=8)],
        "neu10",
        ServingConfig(target_requests=3),
    )
    assert result.metrics["simulated_cycles"] == direct.total_cycles
    assert result.metrics["pair"] == direct.pair
    assert [t["throughput_rps"] for t in result.metrics["tenants"]] == [
        t.throughput_rps for t in direct.tenants
    ]


def test_cluster_scenario_runs_and_validates():
    scenario = Scenario(
        name="mini-cluster", kind="cluster", scheme="neu10",
        load=0.5, duration_s=0.0005, seed=7, hosts=2,
        churn=(
            ScenarioChurn(0.0, "arrive", "a", model="MNIST", batch=8),
            ScenarioChurn(0.0, "arrive", "b", model="DLRM", batch=8),
        ),
    )
    result = run_scenario(scenario)
    validate_run_result(result.to_dict())
    assert result.metrics["segments"] >= 1
    assert result.metrics["simulated_cycles"] > 0
    assert 0.0 <= result.metrics["admission_rate"] <= 1.0


def test_figure_scenario_takes_the_registry_path():
    scenario = Scenario(
        name="figure-probe", kind="figure", figure="hwcost",
    )
    result = run_scenario(scenario)
    validate_run_result(result.to_dict())
    assert result.scenario == "figure-probe"
    assert result.metadata["figure"] == "hwcost"
    assert result.metrics["total_bytes"] > 0
    assert "scenario_digest" in result.provenance


def test_figure_scenario_unknown_figure_is_helpful():
    scenario = Scenario(name="x", kind="figure", figure="fig99")
    with pytest.raises(ConfigError, match="unknown figure experiment"):
        run_scenario(scenario)


def test_provenance_records_seed_version_and_digest():
    scenario = Scenario(
        name="prov", kind="open_loop", tenants=TENANTS[:1],
        duration_s=0.0002, seed=13,
    )
    result = run_scenario(scenario)
    assert result.provenance["seed"] == 13
    assert result.provenance["scenario_digest"] == scenario.digest()
    assert result.provenance["repro_version"]
    validate_run_result(result.to_dict())


def test_run_result_json_round_trip():
    scenario = Scenario(
        name="rt", kind="open_loop", tenants=TENANTS[:1],
        duration_s=0.0002,
    )
    result = run_scenario(scenario)
    clone = RunResult.from_dict(result.to_dict())
    assert clone == result


def test_sweep_matches_individual_runs():
    """A sweep is exactly one run per variant, regardless of pool."""
    scenario = Scenario(
        name="sweepy", kind="open_loop", tenants=TENANTS,
        duration_s=0.0003, seed=7,
    )
    swept = sweep_scenario(scenario, param="load", values=[0.5, 1.0],
                           max_workers=2)
    for value, result in zip([0.5, 1.0], swept):
        solo = run_scenario(scenario.replaced(
            name=f"sweepy@load={value}", load=value
        ))
        assert result.metrics == solo.metrics
        assert result.metadata["load"] == value


def test_sweep_over_scheme_names():
    scenario = Scenario(
        name="schemes", kind="open_loop", tenants=TENANTS[:1],
        duration_s=0.0002, seed=7,
    )
    results = sweep_scenario(
        scenario, param="scheme", values=["pmt", "neu10"], max_workers=1
    )
    assert [r.scheme for r in results] == ["pmt", "neu10"]


def test_sweep_rejects_unknown_values_before_spawning():
    scenario = Scenario(
        name="bad", kind="open_loop", tenants=TENANTS[:1],
        duration_s=0.0002,
    )
    with pytest.raises(ConfigError, match="unknown scheduler scheme"):
        sweep_scenario(scenario, param="scheme", values=["neu11"])


# ----------------------------------------------------------------------
# RunResult schema validation
# ----------------------------------------------------------------------
def _valid_payload():
    return {
        "scenario": "s", "kind": "open_loop", "scheme": "neu10",
        "metrics": {}, "metadata": {},
        "provenance": {"repro_version": "1.0.0"},
        "schema_version": 1,
    }


def test_validate_run_result_accepts_minimal_payload():
    validate_run_result(_valid_payload())


@pytest.mark.parametrize("mutate, match", [
    (lambda p: p.pop("metrics"), "metrics"),
    (lambda p: p.pop("scenario"), "scenario"),
    (lambda p: p.update(schema_version=99), "unsupported"),
    (lambda p: p.update(extra_key=1), "unexpected"),
    (lambda p: p["provenance"].pop("repro_version"), "repro_version"),
    (lambda p: p.update(scheme=3), "scheme"),
])
def test_validate_run_result_rejects_malformed(mutate, match):
    payload = _valid_payload()
    mutate(payload)
    with pytest.raises(ConfigError, match=match):
        validate_run_result(payload)
