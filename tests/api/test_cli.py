"""The redesigned CLI: subcommands, --json schema, legacy shims."""

import json
from pathlib import Path

import pytest

from repro.api import FIGURES, validate_run_result
from repro.api.figures import FigureInfo
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SMOKE_YAML = REPO_ROOT / "examples" / "scenarios" / "smoke.yaml"
SHOWCASE_YAML = REPO_ROOT / "examples" / "scenarios" / "showcase.yaml"

TINY_SCENARIO = {
    "name": "tiny",
    "kind": "open_loop",
    "scheme": "neu10",
    "duration_s": 0.0003,
    "load": 0.8,
    "seed": 7,
    "tenants": [{"model": "MNIST", "batch": 8}],
    "sweep": {"param": "load", "values": [0.5, 1.0]},
}


@pytest.fixture
def tiny_file(tmp_path):
    path = tmp_path / "tiny.json"
    path.write_text(json.dumps(TINY_SCENARIO), encoding="utf-8")
    return str(path)


# ----------------------------------------------------------------------
# run
# ----------------------------------------------------------------------
def test_run_json_emits_valid_runresult(tiny_file, capsys):
    assert cli_main(["run", tiny_file, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    validate_run_result(payload)
    assert payload["scenario"] == "tiny"
    assert payload["metrics"]["simulated_cycles"] > 0


def test_run_human_output(tiny_file, capsys):
    assert cli_main(["run", tiny_file]) == 0
    out = capsys.readouterr().out
    assert "tiny [open_loop]" in out
    assert "MNIST" in out and "attain" in out


def test_run_checked_in_smoke_scenario(capsys):
    pytest.importorskip("yaml")
    assert cli_main(["run", str(SMOKE_YAML), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    validate_run_result(payload)
    assert payload["kind"] == "open_loop"


def test_run_showcase_selects_by_name(capsys):
    pytest.importorskip("yaml")
    code = cli_main([
        "run", str(SHOWCASE_YAML), "--scenario", "figure-ve-idle", "--json",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    validate_run_result(payload)
    assert payload["kind"] == "figure"


def test_run_missing_file_returns_one(capsys):
    assert cli_main(["run", "/nonexistent/file.yaml", "--json"]) == 1
    assert "not found" in capsys.readouterr().err


def test_run_output_file(tiny_file, tmp_path, capsys):
    out_path = tmp_path / "result.json"
    assert cli_main(["run", tiny_file, "--json",
                     "--output", str(out_path)]) == 0
    validate_run_result(json.loads(out_path.read_text(encoding="utf-8")))


# ----------------------------------------------------------------------
# sweep
# ----------------------------------------------------------------------
def test_sweep_uses_embedded_block(tiny_file, capsys):
    assert cli_main(["sweep", tiny_file, "--json", "--workers", "1"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert [p["scenario"] for p in payload] == [
        "tiny@load=0.5", "tiny@load=1.0",
    ]
    for item in payload:
        validate_run_result(item)


def test_sweep_param_values_override(tiny_file, capsys):
    code = cli_main([
        "sweep", tiny_file, "--param", "scheme",
        "--values", "pmt,neu10", "--json", "--workers", "1",
    ])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert [p["scheme"] for p in payload] == ["pmt", "neu10"]


# ----------------------------------------------------------------------
# list / fig
# ----------------------------------------------------------------------
def test_list_json_names_every_registry(capsys):
    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "fig19" in payload["figures"]
    assert "neu10" in payload["schemes"]
    assert "poisson" in payload["arrivals"]
    assert "MNIST" in payload["workloads"]


def test_fig_json_emits_runresult(capsys):
    assert cli_main(["fig", "hwcost", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    validate_run_result(payload)
    assert payload["scenario"] == "hwcost"


def test_fig_unknown_name_returns_two(capsys):
    assert cli_main(["fig", "fig99"]) == 2
    assert "unknown experiments" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Exit-code satellite: a failing experiment must not be silent
# ----------------------------------------------------------------------
def test_failing_experiment_returns_nonzero_but_finishes_batch(capsys):
    def boom():
        raise RuntimeError("injected failure")

    FIGURES.add("boom", FigureInfo(name="boom", run_result=boom,
                                   render=boom, description="test"))
    try:
        code = cli_main(["fig", "hwcost", "boom"])
    finally:
        FIGURES.remove("boom")
    captured = capsys.readouterr()
    assert code == 1
    # hwcost still ran to completion...
    assert "uTOp scheduler hardware cost" in captured.out
    # ...and the failure is reported loudly.
    assert "FAILED boom" in captured.err
    assert "injected failure" in captured.err


def test_legacy_all_propagates_failures(capsys, monkeypatch):
    """`all` used to swallow nothing but also ran minutes of work; patch
    the registry down to two entries to prove the exit-code contract."""
    def boom():
        raise RuntimeError("kaboom")

    fake = {
        "hwcost": FIGURES.get("hwcost"),
        "broken": FigureInfo(name="broken", run_result=boom, render=boom),
    }
    monkeypatch.setattr(FIGURES, "names", lambda: tuple(fake))
    monkeypatch.setattr(FIGURES, "get", lambda name: fake[name])
    assert cli_main(["all"]) == 1
    captured = capsys.readouterr()
    assert "FAILED broken" in captured.err
    assert "deprecated" in captured.err


# ----------------------------------------------------------------------
# Legacy shims
# ----------------------------------------------------------------------
def test_legacy_positional_experiment_still_works(capsys):
    assert cli_main(["hwcost"]) == 0
    captured = capsys.readouterr()
    assert "uTOp scheduler hardware cost" in captured.out
    assert "deprecated" in captured.err


def test_legacy_quickstart_mixes_with_figures(capsys):
    assert cli_main(["quickstart", "hwcost"]) == 0
    captured = capsys.readouterr()
    assert "quickstart" in captured.out
    assert "uTOp scheduler hardware cost" in captured.out
    assert "deprecated" in captured.err


def test_sweep_values_without_param_overrides_block(tiny_file, capsys):
    code = cli_main(["sweep", tiny_file, "--values", "0.7",
                     "--json", "--workers", "1"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "tiny@load=0.7"
    assert payload["metadata"]["load"] == 0.7


def test_legacy_unknown_experiment_returns_two(capsys):
    assert cli_main(["frobnicate"]) == 2
    assert "unknown experiments" in capsys.readouterr().err


def test_legacy_traffic_subcommand_still_works(capsys):
    code = cli_main([
        "traffic", "--scheme", "neu10", "--load", "0.8",
        "--duration-s", "0.0003",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "attain" in captured.out
    assert "deprecated" in captured.err


def test_no_arguments_prints_help(capsys):
    assert cli_main([]) == 0
    assert "run" in capsys.readouterr().out
