"""The ``llm:`` scenario block: round-trip, validation, the runner
path, and the CLI surface."""

import json

import pytest

from repro.api import (
    LLM_FIELD_DOCS,
    PREEMPTION,
    Scenario,
    ScenarioLlm,
    ScenarioLlmTenant,
    ScenarioTenant,
    run_scenario,
    victim_policy_names,
)
from repro.cli import main as cli_main
from repro.errors import ConfigError


def _block(**overrides):
    params = dict(
        tenants=(
            ScenarioLlmTenant(name="chat", prompt_tokens=64,
                              decode_tokens=64),
            ScenarioLlmTenant(name="code", prompt_tokens=128,
                              decode_tokens=128, weight=0.5),
        ),
        batch_tokens=256,
        m_total=384,
        # Pinned costs: the runner tests exercise scheduling logic, not
        # the simulator calibration (tests/llmserve/test_cost.py does).
        step_overhead_cycles=1000.0,
        cycles_per_token=10.0,
        swap_cycles_per_token=2.0,
    )
    params.update(overrides)
    return ScenarioLlm(**params)


def _llm_scenario(llm=None, **overrides):
    params = dict(
        name="llm-t", kind="llm", scheme="neu10", arrival="poisson",
        load=0.9, duration_s=1e-4, seed=11, drain=True,
        llm=llm if llm is not None else _block(),
    )
    params.update(overrides)
    return Scenario(**params)


# ----------------------------------------------------------------------
# Round-trip + validation
# ----------------------------------------------------------------------
def test_llm_block_round_trips():
    sc = _llm_scenario()
    assert Scenario.from_yaml(sc.to_yaml()) == sc
    assert Scenario.from_json(sc.to_json()) == sc
    block = sc.to_dict()["llm"]
    assert block["batch_tokens"] == 256
    assert block["m_total"] == 384
    # decode_tokens=64 is the dataclass default, so it is elided.
    assert block["tenants"][0] == {"name": "chat", "prompt_tokens": 64}
    assert block["tenants"][1]["weight"] == 0.5


def test_default_fields_stay_out_of_the_serialized_form():
    sc = _llm_scenario(_block(preemption_mode="swap", victim_policy="lifo"))
    block = sc.to_dict()["llm"]
    assert "preemption_mode" not in block  # defaults are elided
    assert "victim_policy" not in block
    assert Scenario.from_dict(sc.to_dict()) == sc


def test_llm_block_only_for_llm_kind():
    with pytest.raises(ConfigError, match="kind: llm"):
        Scenario(
            name="x", kind="open_loop",
            tenants=(ScenarioTenant(model="MNIST"),),
            llm=_block(),
        )
    with pytest.raises(ConfigError, match="needs an 'llm' block"):
        Scenario(name="x", kind="llm")
    with pytest.raises(ConfigError, match="inside the\n?.*'llm' block"):
        Scenario(
            name="x", kind="llm", llm=_block(),
            tenants=(ScenarioTenant(model="MNIST"),),
        )


def test_block_validation():
    with pytest.raises(ConfigError, match="unknown preemption mode"):
        _block(preemption_mode="drop")
    with pytest.raises(ConfigError, match="exceeds"):
        _block(batch_tokens=32)  # prompts no longer fit a step
    with pytest.raises(ConfigError, match="exceeds"):
        _block(m_total=128)  # peak KV no longer fits the device
    with pytest.raises(ConfigError):
        ScenarioLlmTenant(name="", prompt_tokens=64)
    with pytest.raises(ConfigError, match="unknown llm key"):
        Scenario.from_dict({
            "name": "x", "kind": "llm",
            "llm": {"tenants": [{"name": "a"}], "kv_budget": 9},
        })
    # An unknown victim policy fails validation with the registry list.
    sc = _llm_scenario(_block(victim_policy="ghost"))
    with pytest.raises(ConfigError, match="lifo"):
        sc.validate()


def test_digest_distinguishes_llm_configs():
    base = _llm_scenario()
    tighter = _llm_scenario(_block(m_total=320))
    assert base.digest() != tighter.digest()


# ----------------------------------------------------------------------
# Runner path
# ----------------------------------------------------------------------
def test_run_scenario_reports_llm_metrics():
    result = run_scenario(_llm_scenario())
    assert result.kind == "llm"
    assert result.metrics["preemption"]["count"] > 0
    assert result.metrics["goodput_tokens_per_s"] > 0
    assert result.metrics["simulated_cycles"] > 0
    assert result.metrics["kv"]["peak_tokens"] <= 384
    assert set(result.metrics["tenants"]) == {"chat", "code"}
    assert result.metadata["tenants"] == ["chat", "code"]
    assert result.metadata["calibrated"] is False  # costs were pinned
    # The whole envelope is JSON-serializable and schema-valid.
    from repro.api.result import validate_run_result

    validate_run_result(json.loads(json.dumps(result.to_dict())))


def test_run_result_matches_direct_engine_call():
    sc = _llm_scenario()
    via_api = run_scenario(sc).metrics

    from repro.llmserve import LlmServeConfig, run_llm_serving

    direct = run_llm_serving(
        sc.llm.tenant_specs(),
        LlmServeConfig(
            core=sc.core(), scheme=sc.scheme, seed=sc.seed,
            duration_s=sc.duration_s, load=sc.load, arrival=sc.arrival,
            drain=sc.drain, batch_tokens=256, m_total=384,
            step_overhead_cycles=1000.0, cycles_per_token=10.0,
            swap_cycles_per_token=2.0,
        ),
    ).metrics()
    assert via_api["preemption"] == direct["preemption"]
    assert via_api["goodput_tokens_per_s"] == direct["goodput_tokens_per_s"]
    assert via_api["tenants"] == direct["tenants"]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_list_shows_llm_sections(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "Preemption victim policies" in out
    assert "lifo" in out and "fifo" in out and "random" in out
    assert "llm:" in out
    assert "m_total" in out and "batch_tokens" in out


def test_cli_list_json_describes_the_block(capsys):
    assert cli_main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload["llm"]) == set(LLM_FIELD_DOCS)
    assert set(payload["preemption_policies"]) >= {"lifo", "fifo", "random"}


def test_field_doc_table_matches_the_dataclass():
    """`repro list` and gen_docs render LLM_FIELD_DOCS; a new
    ScenarioLlm field must land there too."""
    import dataclasses

    assert set(LLM_FIELD_DOCS) == {
        f.name for f in dataclasses.fields(ScenarioLlm)
    }


def test_registry_exposes_builtin_policies():
    assert set(victim_policy_names()) >= {"lifo", "fifo", "random"}
    for name, info in PREEMPTION.items():
        assert info.description


def test_cli_run_json_reports_preemption(tmp_path, capsys):
    path = tmp_path / "llm.json"
    path.write_text(_llm_scenario().to_json(), encoding="utf-8")
    assert cli_main(["run", str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["kind"] == "llm"
    assert payload["metrics"]["preemption"]["count"] > 0
    assert payload["metrics"]["preemption"]["policy"] == "lifo"
    events = payload["metrics"]["preemption"]["events"]
    assert events and all(e["mode"] == "swap" for e in events)


def test_cli_run_text_tabulates_llm_tenants(capsys, tmp_path):
    path = tmp_path / "llm.json"
    path.write_text(_llm_scenario().to_json(), encoding="utf-8")
    assert cli_main(["run", str(path)]) == 0
    out = capsys.readouterr().out
    assert "chat" in out and "code" in out
    assert "ttft" in out
