"""Scenario `autoscaler:`/`pools:` blocks: round-trip, runner, results."""

import json

import pytest

from repro.api import (
    Scenario,
    ScenarioAutoscaler,
    ScenarioChurn,
    ScenarioPool,
    ScenarioTenant,
    run_scenario,
    sweep_scenario,
    validate_run_result,
)
from repro.errors import ConfigError

pytest.importorskip("yaml")


def _cluster_scenario(**overrides):
    fields = dict(
        name="autoscale-rt",
        kind="cluster",
        scheme="neu10",
        arrival="poisson",
        load=0.5,
        duration_s=0.001,
        seed=13,
        churn=(
            ScenarioChurn(0.0, "arrive", "a", model="MNIST",
                          num_mes=1, num_ves=1),
            ScenarioChurn(0.0, "arrive", "b", model="MNIST",
                          num_mes=1, num_ves=1),
        ),
        pools=(ScenarioPool(name="default", min_hosts=1, max_hosts=3,
                            initial_hosts=1),),
        autoscaler=ScenarioAutoscaler(
            policy="slo-burn-rate",
            interval_s=0.00025,
            params={"slo_target": 0.75},
        ),
    )
    fields.update(overrides)
    return Scenario(**fields)


def test_yaml_and_json_round_trip_preserve_autoscaler_block():
    scenario = _cluster_scenario()
    assert Scenario.from_yaml(scenario.to_yaml()) == scenario
    assert Scenario.from_json(scenario.to_json()) == scenario
    assert Scenario.from_dict(scenario.to_dict()) == scenario
    # The digest is stable across a round trip (provenance anchor).
    assert Scenario.from_yaml(scenario.to_yaml()).digest() == \
        scenario.digest()


def test_autoscaler_absent_keeps_legacy_serialisation():
    scenario = _cluster_scenario(autoscaler=None, pools=())
    payload = scenario.to_dict()
    assert "autoscaler" not in payload
    assert "pools" not in payload


def test_autoscaler_only_on_cluster_kind():
    with pytest.raises(ConfigError, match="cluster"):
        Scenario(
            name="x", kind="open_loop",
            tenants=(ScenarioTenant(model="MNIST"),),
            autoscaler=ScenarioAutoscaler(policy="static"),
        )


def test_unknown_policy_fails_validation_with_suggestion():
    scenario = _cluster_scenario(
        autoscaler=ScenarioAutoscaler(policy="slo-burn")
    )
    with pytest.raises(ConfigError, match="slo-burn-rate"):
        scenario.validate()


def test_bad_autoscaler_blocks_rejected():
    with pytest.raises(ConfigError):
        ScenarioAutoscaler(policy="")
    with pytest.raises(ConfigError):
        ScenarioAutoscaler(policy="static", interval_s=0.0)
    with pytest.raises(ConfigError, match="unique"):
        _cluster_scenario(
            pools=(ScenarioPool(name="p"), ScenarioPool(name="p"))
        )


def test_run_scenario_emits_autoscale_metrics_and_validates():
    result = run_scenario(_cluster_scenario())
    payload = json.loads(result.to_json())
    validate_run_result(payload)
    metrics = payload["metrics"]
    for key in ("cluster_attainment", "mean_active_hosts",
                "host_count_timeline", "autoscale_events"):
        assert key in metrics, key
    assert payload["metadata"]["autoscaler"]["policy"] == "slo-burn-rate"
    assert payload["metadata"]["autoscaler"]["slo_target"] == 0.75
    assert payload["metadata"]["pools"][0]["max_hosts"] == 3


def test_run_scenario_without_autoscaler_omits_autoscale_metrics():
    result = run_scenario(_cluster_scenario(autoscaler=None, pools=()))
    for key in ("cluster_attainment", "mean_active_hosts",
                "host_count_timeline", "autoscale_events"):
        assert key not in result.metrics, key
    assert "autoscaler" not in result.metadata


def test_sweep_preserves_autoscaler_block_per_variant():
    results = sweep_scenario(
        _cluster_scenario(), param="load", values=[0.4, 0.6], max_workers=1
    )
    assert len(results) == 2
    for result in results:
        assert result.metadata["autoscaler"]["policy"] == "slo-burn-rate"
        validate_run_result(result.to_dict())
