"""Scenario spec: round-trips, validation errors, sweep variants."""

import pytest

from repro.api import (
    Scenario,
    ScenarioChurn,
    ScenarioTenant,
    SweepSpec,
    load_scenario,
    load_scenarios,
    save_scenario,
    sweep_variants,
)
from repro.errors import ConfigError


def _open_loop_scenario() -> Scenario:
    return Scenario(
        name="rt-open-loop",
        kind="open_loop",
        description="round-trip probe",
        scheme="neu10",
        tenants=(
            ScenarioTenant(model="MNIST", batch=8),
            ScenarioTenant(model="DLRM", batch=4, weight=2.0,
                           slo_relative=8.0, arrival="bursty"),
        ),
        arrival="poisson",
        load=0.9,
        duration_s=0.001,
        seed=11,
        hardware={"num_mes": 8, "num_ves": 8},
        sweep=SweepSpec(param="load", values=(0.5, 0.9)),
    )


def _cluster_scenario() -> Scenario:
    return Scenario(
        name="rt-cluster",
        kind="cluster",
        scheme="neu10-nh",
        load=0.5,
        duration_s=0.002,
        hosts=3,
        churn=(
            ScenarioChurn(0.0, "arrive", "a", model="MNIST", batch=8),
            ScenarioChurn(0.001, "depart", "a"),
        ),
    )


# ----------------------------------------------------------------------
# Round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("make", [_open_loop_scenario, _cluster_scenario])
def test_dict_round_trip(make):
    scenario = make()
    assert Scenario.from_dict(scenario.to_dict()) == scenario


@pytest.mark.parametrize("make", [_open_loop_scenario, _cluster_scenario])
def test_json_round_trip(make):
    scenario = make()
    assert Scenario.from_json(scenario.to_json()) == scenario


@pytest.mark.parametrize("make", [_open_loop_scenario, _cluster_scenario])
def test_yaml_round_trip(make):
    pytest.importorskip("yaml")
    scenario = make()
    assert Scenario.from_yaml(scenario.to_yaml()) == scenario


def test_digest_is_stable_and_content_sensitive():
    a, b = _open_loop_scenario(), _open_loop_scenario()
    assert a.digest() == b.digest()
    assert a.digest() != a.replaced(load=1.1).digest()


def test_save_and_load_files(tmp_path):
    pytest.importorskip("yaml")
    scenario = _open_loop_scenario()
    ypath = tmp_path / "one.yaml"
    save_scenario(scenario, ypath)
    assert load_scenario(ypath) == scenario
    jpath = tmp_path / "one.json"
    save_scenario(scenario, jpath)
    assert load_scenario(jpath) == scenario


def test_multi_document_yaml_file(tmp_path):
    pytest.importorskip("yaml")
    a, b = _open_loop_scenario(), _cluster_scenario()
    path = tmp_path / "many.yaml"
    path.write_text(a.to_yaml() + "---\n" + b.to_yaml(), encoding="utf-8")
    assert load_scenarios(path) == [a, b]
    assert load_scenario(path, name="rt-cluster") == b
    with pytest.raises(ConfigError, match="pick one by name"):
        load_scenario(path)
    with pytest.raises(ConfigError, match="no scenario named"):
        load_scenario(path, name="missing")


def test_missing_file_is_a_config_error(tmp_path):
    with pytest.raises(ConfigError, match="not found"):
        load_scenarios(tmp_path / "nope.yaml")


# ----------------------------------------------------------------------
# Validation errors
# ----------------------------------------------------------------------
def test_unknown_scenario_key_lists_known_keys():
    with pytest.raises(ConfigError, match="unknown scenario key.*known"):
        Scenario.from_dict(
            {"name": "x", "kind": "open_loop", "tenant_list": []}
        )


def test_unknown_tenant_key_is_rejected():
    with pytest.raises(ConfigError, match="unknown tenant key"):
        Scenario.from_dict({
            "name": "x", "kind": "open_loop",
            "tenants": [{"model": "MNIST", "batchsize": 8}],
        })


def test_unknown_kind_lists_choices():
    with pytest.raises(ConfigError, match="unknown scenario kind.*figure"):
        Scenario(name="x", kind="closed_loop")


def test_unknown_hardware_key_is_rejected():
    with pytest.raises(ConfigError, match="unknown hardware key"):
        Scenario(
            name="x", kind="open_loop",
            tenants=(ScenarioTenant(model="MNIST"),),
            hardware={"num_engines": 4},
        )


def test_validate_rejects_unknown_scheme_and_model():
    sc = Scenario(
        name="x", kind="open_loop", scheme="neu11",
        tenants=(ScenarioTenant(model="MNIST"),),
    )
    with pytest.raises(ConfigError, match="did you mean 'neu10'"):
        sc.validate()
    sc = Scenario(
        name="x", kind="open_loop",
        tenants=(ScenarioTenant(model="MNISTY"),),
    )
    with pytest.raises(ConfigError, match="unknown model"):
        sc.validate()


def test_kind_shape_requirements():
    with pytest.raises(ConfigError, match="at least one tenant"):
        Scenario(name="x", kind="serving")
    with pytest.raises(ConfigError, match="churn"):
        Scenario(name="x", kind="cluster")
    with pytest.raises(ConfigError, match="'figure' name"):
        Scenario(name="x", kind="figure")


def test_hardware_override_builds_core():
    sc = _open_loop_scenario()
    core = sc.core()
    assert (core.num_mes, core.num_ves) == (8, 8)


# ----------------------------------------------------------------------
# Sweep variants
# ----------------------------------------------------------------------
def test_sweep_variants_from_embedded_block():
    variants = sweep_variants(_open_loop_scenario())
    assert [v.load for v in variants] == [0.5, 0.9]
    assert [v.name for v in variants] == [
        "rt-open-loop@load=0.5", "rt-open-loop@load=0.9",
    ]
    assert all(v.sweep is None for v in variants)


def test_sweep_variants_override_and_dotted_hardware():
    variants = sweep_variants(
        _open_loop_scenario(), param="hardware.num_mes", values=[2, 4]
    )
    assert [v.core().num_mes for v in variants] == [2, 4]
    # Untouched hardware keys survive the dotted override.
    assert all(v.core().num_ves == 8 for v in variants)


def test_sweep_values_override_block_values():
    # --values without --param reuses the block's param.
    variants = sweep_variants(_open_loop_scenario(), values=[0.7])
    assert [v.load for v in variants] == [0.7]


def test_sweep_param_matching_block_reuses_block_values():
    variants = sweep_variants(_open_loop_scenario(), param="load")
    assert [v.load for v in variants] == [0.5, 0.9]


def test_sweep_param_mismatching_block_needs_values():
    with pytest.raises(ConfigError, match="needs explicit values"):
        sweep_variants(_open_loop_scenario(), param="seed")


def test_sweep_without_block_or_param_is_an_error():
    sc = _cluster_scenario()
    with pytest.raises(ConfigError, match="no sweep block"):
        sweep_variants(sc)


def test_sweep_unknown_param_is_an_error():
    with pytest.raises(ConfigError, match="unknown scenario field"):
        sweep_variants(_open_loop_scenario(), param="laod", values=[1])


# ----------------------------------------------------------------------
# Checkpoint block
# ----------------------------------------------------------------------
def test_checkpoint_block_round_trips():
    from repro.api import ScenarioCheckpoint

    scenario = _cluster_scenario().replaced(
        checkpoint=ScenarioCheckpoint(directory="/tmp/ck", every=3)
    )
    back = Scenario.from_dict(scenario.to_dict())
    assert back == scenario
    assert back.checkpoint.directory == "/tmp/ck"
    assert back.checkpoint.every == 3
    assert back.digest() == scenario.digest()


def test_checkpoint_block_rejected_on_non_cluster_kinds():
    from repro.api import ScenarioCheckpoint

    with pytest.raises(ConfigError, match="checkpoint"):
        _open_loop_scenario().replaced(
            checkpoint=ScenarioCheckpoint(directory="/tmp/ck")
        )


def test_checkpoint_block_validates_fields():
    from repro.api import ScenarioCheckpoint

    with pytest.raises(ConfigError):
        ScenarioCheckpoint(directory="")
    with pytest.raises(ConfigError):
        ScenarioCheckpoint(directory="/tmp/ck", every=0)


def test_checkpoint_block_is_stripped_from_sweep_variants():
    from repro.api import ScenarioCheckpoint

    scenario = _cluster_scenario().replaced(
        checkpoint=ScenarioCheckpoint(directory="/tmp/ck"),
        sweep=SweepSpec(param="load", values=(0.4, 0.6)),
    )
    for variant in sweep_variants(scenario):
        assert variant.checkpoint is None
