"""Tests for cluster hosts, placement policies and the orchestrator."""

import pytest

from repro.cluster import (
    ClusterOrchestrator,
    ContentionAwarePolicy,
    FirstFitPolicy,
    Host,
    LeastLoadedPolicy,
    PlacementRequest,
)
from repro.cluster.orchestrator import complementarity_score
from repro.compiler.profiler import profile_graph
from repro.config import NpuCoreConfig
from repro.errors import AllocationError

from tests.conftest import make_me_graph, make_ve_graph

CORE = NpuCoreConfig()


def _hosts(n=2, cores_per_host=1):
    return [Host(f"host{i}", [CORE] * cores_per_host) for i in range(n)]


def _req(owner="t", mes=2, ves=2, m=None, v=None):
    return PlacementRequest(owner=owner, num_mes=mes, num_ves=ves, m=m, v=v)


# ----------------------------------------------------------------------
# Host capacity
# ----------------------------------------------------------------------
def test_host_capacity_accounting():
    host = _hosts(1)[0]
    assert host.total_mes == 4 and host.total_ves == 4
    host.place(_req(mes=2, ves=2).as_vnpu_config(), owner="a")
    assert host.committed_mes == 2
    assert host.load == pytest.approx(0.5)
    assert host.fits(2, 2)
    assert not host.fits(3, 1)


def test_host_release_restores_capacity():
    host = _hosts(1)[0]
    handle = host.place(_req(mes=4, ves=4).as_vnpu_config(), owner="a")
    assert not host.fits(1, 1)
    host.release(handle.vnpu_id)
    assert host.fits(4, 4)
    with pytest.raises(AllocationError):
        host.release(handle.vnpu_id)


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
def test_first_fit_packs_densely():
    orch = ClusterOrchestrator(_hosts(2), FirstFitPolicy())
    a = orch.submit(_req("a", 2, 2))
    b = orch.submit(_req("b", 2, 2))
    assert a.host.name == b.host.name == "host0"


def test_least_loaded_spreads():
    orch = ClusterOrchestrator(_hosts(2), LeastLoadedPolicy())
    a = orch.submit(_req("a", 2, 2))
    b = orch.submit(_req("b", 2, 2))
    assert {a.host.name, b.host.name} == {"host0", "host1"}


def test_contention_aware_pairs_complementary_profiles():
    """Two ME-heavy and two VE-heavy tenants on two hosts: the policy
    must put one of each on each host."""
    orch = ClusterOrchestrator(_hosts(2), ContentionAwarePolicy())
    orch.submit(_req("me1", 2, 2, m=0.95, v=0.1))
    orch.submit(_req("ve1", 2, 2, m=0.1, v=0.95))
    orch.submit(_req("me2", 2, 2, m=0.95, v=0.1))
    orch.submit(_req("ve2", 2, 2, m=0.1, v=0.95))
    colocation = orch.collocation_map()
    for owners in colocation.values():
        kinds = {o[:2] for o in owners}
        assert kinds == {"me", "ve"}


def test_contention_aware_beats_first_fit_on_complementarity():
    profiles = [(0.95, 0.1), (0.9, 0.15), (0.1, 0.95), (0.15, 0.9)]

    def run(policy):
        orch = ClusterOrchestrator(_hosts(2), policy)
        for i, (m, v) in enumerate(profiles):
            orch.submit(_req(f"w{i}", 2, 2, m=m, v=v))
        pairs = []
        for owners in orch.collocation_map().values():
            ms = [profiles[int(o[1:])][0] for o in owners]
            if len(ms) == 2:
                pairs.append((ms[0], ms[1]))
        return complementarity_score(pairs)

    assert run(ContentionAwarePolicy()) <= run(FirstFitPolicy())


def test_policy_admission_requires_capacity():
    orch = ClusterOrchestrator(_hosts(1), FirstFitPolicy())
    assert orch.submit(_req("a", 4, 4)) is not None
    assert orch.submit(_req("b", 1, 1)) is None
    assert orch.admission_rate() == pytest.approx(0.5)
    assert len(orch.rejected) == 1


# ----------------------------------------------------------------------
# Orchestrator lifecycle
# ----------------------------------------------------------------------
def test_release_then_reuse():
    orch = ClusterOrchestrator(_hosts(1), FirstFitPolicy())
    placement = orch.submit(_req("a", 4, 4))
    orch.release(placement.request.request_id)
    assert orch.submit(_req("b", 4, 4)) is not None
    with pytest.raises(AllocationError):
        orch.release(placement.request.request_id)


def test_from_profile_uses_allocator():
    me_profile = profile_graph(make_me_graph(), CORE)
    ve_profile = profile_graph(make_ve_graph(), CORE)
    me_req = PlacementRequest.from_profile("me", me_profile, total_eus=4)
    ve_req = PlacementRequest.from_profile("ve", ve_profile, total_eus=4)
    assert me_req.num_mes > me_req.num_ves
    assert ve_req.num_ves >= ve_req.num_mes
    assert me_req.m == pytest.approx(me_profile.m)


def test_duplicate_host_names_rejected():
    with pytest.raises(AllocationError):
        ClusterOrchestrator([Host("h", [CORE]), Host("h", [CORE])])


def test_utilization_snapshot():
    orch = ClusterOrchestrator(_hosts(2), LeastLoadedPolicy())
    orch.submit(_req("a", 4, 4))
    util = orch.utilization()
    assert util["host0"] + util["host1"] == pytest.approx(1.0)
