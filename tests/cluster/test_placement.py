"""Placement-policy edge cases: full hosts, degenerate scores, ties."""

import pytest

from repro.cluster.host import Host
from repro.cluster.orchestrator import (
    ClusterOrchestrator,
    PlacementRequest,
    complementarity_score,
)
from repro.cluster.placement import (
    ContentionAwarePolicy,
    FirstFitPolicy,
    LeastLoadedPolicy,
)
from repro.config import DEFAULT_CORE
from repro.errors import AllocationError

POLICIES = [FirstFitPolicy, LeastLoadedPolicy, ContentionAwarePolicy]


def _host(name, cores=1):
    return Host(name, [DEFAULT_CORE] * cores)


@pytest.mark.parametrize("policy_cls", POLICIES)
def test_every_policy_returns_none_when_all_hosts_full(policy_cls):
    hosts = [_host("a"), _host("b")]
    for host in hosts:
        # Commit every EU on the host (DEFAULT_CORE is 4 ME + 4 VE).
        host.place(
            PlacementRequest(owner="filler", num_mes=4, num_ves=4)
            .as_vnpu_config(),
            owner="filler",
        )
    req = PlacementRequest(owner="late", num_mes=1, num_ves=1, m=0.5)
    assert policy_cls().choose(hosts, req) is None


@pytest.mark.parametrize("policy_cls", POLICIES)
def test_oversized_request_never_fits(policy_cls):
    hosts = [_host("a"), _host("b", cores=2)]
    req = PlacementRequest(owner="huge", num_mes=99, num_ves=99, m=0.5)
    assert policy_cls().choose(hosts, req) is None


def test_partially_full_host_is_skipped_not_fatal():
    """A host with room for MEs but not VEs must be treated as full."""
    a, b = _host("a"), _host("b")
    a.place(
        PlacementRequest(owner="ve-hog", num_mes=1, num_ves=4)
        .as_vnpu_config(),
        owner="ve-hog",
    )
    req = PlacementRequest(owner="late", num_mes=1, num_ves=1)
    assert LeastLoadedPolicy().choose([a, b], req) is b


def test_least_loaded_breaks_ties_by_name():
    hosts = [_host("b"), _host("a"), _host("c")]
    req = PlacementRequest(owner="t", num_mes=1, num_ves=1)
    assert LeastLoadedPolicy().choose(hosts, req).name == "a"


def test_first_fit_respects_input_order_not_name():
    hosts = [_host("z"), _host("a")]
    req = PlacementRequest(owner="t", num_mes=1, num_ves=1)
    assert FirstFitPolicy().choose(hosts, req).name == "z"


def test_contention_aware_without_profile_degrades_to_least_loaded():
    a, b = _host("a"), _host("b")
    a.place(
        PlacementRequest(owner="x", num_mes=2, num_ves=2).as_vnpu_config(),
        owner="x",
    )
    req = PlacementRequest(owner="no-profile", num_mes=1, num_ves=1)
    assert req.m is None
    assert ContentionAwarePolicy().choose([a, b], req) is b


def test_contention_aware_pairs_me_heavy_with_ve_heavy():
    a, b = _host("a"), _host("b")
    a.place(
        PlacementRequest(owner="me-heavy", num_mes=2, num_ves=2, m=0.9)
        .as_vnpu_config(),
        owner="me-heavy", m=0.9,
    )
    b.place(
        PlacementRequest(owner="balanced", num_mes=2, num_ves=2, m=0.5)
        .as_vnpu_config(),
        owner="balanced", m=0.5,
    )
    req = PlacementRequest(owner="ve-heavy", num_mes=1, num_ves=1, m=0.1)
    assert ContentionAwarePolicy().choose([a, b], req) is a


# ----------------------------------------------------------------------
# complementarity_score degenerate inputs
# ----------------------------------------------------------------------
def test_complementarity_score_empty_is_zero():
    assert complementarity_score([]) == 0.0


def test_complementarity_score_perfect_and_worst_pairs():
    assert complementarity_score([(0.9, 0.1)]) == pytest.approx(0.0)
    assert complementarity_score([(1.0, 1.0)]) == pytest.approx(1.0)
    assert complementarity_score([(0.0, 0.0)]) == pytest.approx(1.0)
    # Mean over mixed pairs.
    assert complementarity_score(
        [(0.9, 0.1), (1.0, 1.0)]
    ) == pytest.approx(0.5)


def test_complementarity_score_is_symmetric():
    assert complementarity_score([(0.3, 0.6)]) == complementarity_score(
        [(0.6, 0.3)]
    )


# ----------------------------------------------------------------------
# Saturated clusters through the orchestrator
# ----------------------------------------------------------------------
def test_orchestrator_records_rejections_when_cluster_full():
    orch = ClusterOrchestrator([_host("only")])
    assert orch.submit(
        PlacementRequest(owner="a", num_mes=4, num_ves=4)
    ) is not None
    rejected = orch.submit(PlacementRequest(owner="b", num_mes=1, num_ves=1))
    assert rejected is None
    assert [r.owner for r in orch.rejected] == ["b"]
    assert orch.admission_rate() == pytest.approx(0.5)


def test_release_then_admit_reuses_capacity():
    orch = ClusterOrchestrator([_host("only")])
    placement = orch.submit(
        PlacementRequest(owner="a", num_mes=4, num_ves=4)
    )
    orch.release(placement.request.request_id)
    assert orch.submit(
        PlacementRequest(owner="b", num_mes=4, num_ves=4)
    ) is not None


def test_release_unknown_placement_raises():
    orch = ClusterOrchestrator([_host("only")])
    with pytest.raises(AllocationError):
        orch.release(999_999)
