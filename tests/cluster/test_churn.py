"""Orchestrator release/re-placement behavior under tenant churn."""

import pytest

from repro.cluster import (
    ClusterOrchestrator,
    Host,
    LeastLoadedPolicy,
    PlacementRequest,
)
from repro.config import NpuCoreConfig
from repro.errors import AllocationError

CORE = NpuCoreConfig()


def _hosts(n):
    return [Host(f"host{i}", [CORE]) for i in range(n)]


def _req(owner, mes=2, ves=2):
    return PlacementRequest(owner=owner, num_mes=mes, num_ves=ves)


def test_departed_capacity_is_reusable_by_larger_tenant():
    orch = ClusterOrchestrator(_hosts(1))
    small_a = orch.submit(_req("a", 2, 2))
    small_b = orch.submit(_req("b", 2, 2))
    assert small_a is not None and small_b is not None
    assert orch.submit(_req("c", 2, 2)) is None  # full
    orch.release(small_a.request.request_id)
    orch.release(small_b.request.request_id)
    # The freed halves merge back into a whole-host slot.
    assert orch.submit(_req("d", 4, 4)) is not None


def test_least_loaded_rebalances_after_departure():
    orch = ClusterOrchestrator(_hosts(2), LeastLoadedPolicy())
    a = orch.submit(_req("a"))
    b = orch.submit(_req("b"))
    assert {a.host.name, b.host.name} == {"host0", "host1"}
    # Drop one tenant: its host is now least-loaded and must take the
    # next arrival.
    orch.release(a.request.request_id)
    c = orch.submit(_req("c"))
    assert c.host.name == a.host.name


def test_release_is_idempotent_only_once():
    orch = ClusterOrchestrator(_hosts(1))
    placement = orch.submit(_req("a"))
    orch.release(placement.request.request_id)
    with pytest.raises(AllocationError):
        orch.release(placement.request.request_id)


def test_sustained_churn_never_leaks_capacity():
    """Many arrive/depart cycles: commitments always within capacity and
    a full-host tenant still fits at the end."""
    orch = ClusterOrchestrator(_hosts(2), LeastLoadedPolicy())
    for round_idx in range(10):
        placements = [
            orch.submit(_req(f"t{round_idx}-{i}", 2, 2)) for i in range(4)
        ]
        assert all(p is not None for p in placements)
        for host in orch.hosts:
            assert host.committed_mes <= host.total_mes
            assert host.committed_ves <= host.total_ves
        for placement in placements:
            orch.release(placement.request.request_id)
    for host in orch.hosts:
        assert host.committed_mes == 0 and host.committed_ves == 0
    assert orch.submit(_req("final", 4, 4)) is not None


def test_collocation_map_tracks_churn():
    orch = ClusterOrchestrator(_hosts(2), LeastLoadedPolicy())
    a = orch.submit(_req("a"))
    orch.submit(_req("b"))
    before = orch.collocation_map()
    assert sum(len(owners) for owners in before.values()) == 2
    orch.release(a.request.request_id)
    after = orch.collocation_map()
    assert sum(len(owners) for owners in after.values()) == 1
    assert "a" not in [o for owners in after.values() for o in owners]
