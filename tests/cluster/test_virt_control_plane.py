"""Cluster placement through the real virtualization control plane:
VF budgets as admission constraints, rejection causes, and churn that
always returns VF/IOMMU occupancy to zero."""

import pytest

from repro.cluster import (
    ClusterOrchestrator,
    Host,
    LeastLoadedPolicy,
    PlacementRequest,
)
from repro.cluster.virt import (
    REJECT_CAPACITY,
    REJECT_VF_EXHAUSTED,
    VirtualizationSpec,
)
from repro.config import NpuCoreConfig
from repro.errors import ConfigError

CORE = NpuCoreConfig()


def _req(owner, mes=1, ves=1):
    return PlacementRequest(owner=owner, num_mes=mes, num_ves=ves)


# ----------------------------------------------------------------------
# VirtualizationSpec
# ----------------------------------------------------------------------
def test_spec_pool_overrides_and_validation():
    spec = VirtualizationSpec(num_vfs=8, pool_num_vfs={"edge": 2})
    assert spec.vfs_for("edge") == 2
    assert spec.vfs_for("core") == 8
    with pytest.raises(ConfigError):
        VirtualizationSpec(num_vfs=0)
    with pytest.raises(ConfigError):
        VirtualizationSpec(pool_num_vfs={"edge": 0})
    with pytest.raises(ConfigError):
        VirtualizationSpec(hypercall_cost_s=-1.0)


# ----------------------------------------------------------------------
# Host-level VF accounting
# ----------------------------------------------------------------------
def test_host_fits_accounts_for_vf_pool():
    host = Host("h", [CORE], num_vfs=1)
    assert host.fits(1, 1)
    host.place(_req("a").as_vnpu_config(), owner="a")
    # Engines are still free, but the single VF is taken.
    assert host.fits_engines(1, 1)
    assert not host.fits(1, 1)
    assert host.free_vfs == 0


def test_placement_drives_the_guest_control_plane():
    host = Host("h", [CORE], num_vfs=4)
    handle = host.place(_req("a").as_vnpu_config(), owner="a")
    hv = host.hypervisor
    assert hv.vf_in_use == 1
    assert hv.iommu.dma_buffer_count == 1  # the guest driver's DMA buffer
    assert hv.hypercall_counts["create"] == 1
    host.release(handle.vnpu_id)
    assert hv.vf_in_use == 0
    assert hv.iommu.mapping_count == 0
    assert hv.hypercall_counts["destroy"] == 1


# ----------------------------------------------------------------------
# Orchestrator rejection causes
# ----------------------------------------------------------------------
def test_vf_exhaustion_is_a_first_class_rejection_cause():
    orch = ClusterOrchestrator(
        [Host("h0", [CORE], num_vfs=1)], LeastLoadedPolicy()
    )
    assert orch.submit(_req("a")) is not None
    rejected = _req("b")
    assert orch.submit(rejected) is None
    assert orch.rejection_causes[rejected.request_id] == REJECT_VF_EXHAUSTED
    assert orch.rejection_cause_counts() == {REJECT_VF_EXHAUSTED: 1}


def test_capacity_rejection_keeps_its_own_cause():
    orch = ClusterOrchestrator([Host("h0", [CORE], num_vfs=16)])
    assert orch.submit(_req("a", mes=4, ves=4)) is not None
    rejected = _req("b", mes=4, ves=4)
    assert orch.submit(rejected) is None
    assert orch.rejection_causes[rejected.request_id] == REJECT_CAPACITY


def test_vf_freed_by_departure_readmits():
    orch = ClusterOrchestrator([Host("h0", [CORE], num_vfs=1)])
    first = orch.submit(_req("a"))
    assert orch.submit(_req("b")) is None
    orch.release(first.request.request_id)
    assert orch.submit(_req("c")) is not None


# ----------------------------------------------------------------------
# Churn lifecycle: occupancy always returns to zero
# ----------------------------------------------------------------------
def _assert_control_plane_empty(host: Host) -> None:
    hv = host.hypervisor
    assert hv.vf_in_use == 0, host.name
    assert hv.iommu.mapping_count == 0, host.name
    assert not hv.manager.instances(), host.name
    assert host.committed_mes == 0 and host.committed_ves == 0, host.name


def test_churn_with_migration_returns_occupancy_to_zero():
    hosts = [Host(f"h{i}", [CORE], num_vfs=4) for i in range(3)]
    orch = ClusterOrchestrator(hosts, LeastLoadedPolicy())
    for round_idx in range(5):
        placements = [
            orch.submit(_req(f"r{round_idx}-{i}")) for i in range(6)
        ]
        assert all(p is not None for p in placements)
        # Drain h0 by migrating its residents elsewhere.
        for placement in list(orch.placements()):
            if placement.host.name == "h0":
                moved = orch.migrate(
                    placement.request.request_id, exclude=("h0",)
                )
                assert moved is not None and moved.host.name != "h0"
        assert not hosts[0].resident
        _assert_control_plane_empty(hosts[0])
        for placement in orch.placements():
            orch.release(placement.request.request_id)
        for host in hosts:
            _assert_control_plane_empty(host)
    # Hypercalls happened on every host (creates + destroys + moves).
    assert all(h.hypervisor.hypercall_count > 0 for h in hosts)


def test_migration_moves_the_vf_and_dma_registration():
    src = Host("src", [CORE], num_vfs=4)
    dst = Host("dst", [CORE], num_vfs=4)
    orch = ClusterOrchestrator([src, dst], LeastLoadedPolicy())
    placement = orch.submit(_req("a"))
    origin = placement.host
    other = dst if origin is src else src
    moved = orch.migrate(placement.request.request_id)
    assert moved.host is other
    _assert_control_plane_empty(origin)
    assert other.hypervisor.vf_in_use == 1
    assert other.hypervisor.iommu.dma_buffer_count == 1


def test_failed_migration_restores_the_tenant_on_its_source():
    """A policy that skips the feasibility check and targets a VF-full
    host must not lose the tenant: the migration fails, the tenant is
    re-placed on its source, and its placement record stays valid."""
    from repro.cluster import PlacementPolicy

    src = Host("src", [CORE], num_vfs=2)
    dst = Host("dst", [CORE], num_vfs=1)

    class PinToDst(PlacementPolicy):
        def choose(self, hosts, request):  # no fits() filter, on purpose
            return next((h for h in hosts if h.name == "dst"), hosts[0])

    orch = ClusterOrchestrator([src, dst], PinToDst())
    blocker = orch.submit(_req("blocker"))  # takes dst's only VF
    assert blocker.host is dst
    victim = orch.submit(_req("victim"))  # policy pins dst; place raises...
    assert victim is None  # ...and submit records it as a rejection
    orch.rejection_causes.clear()
    # Place the victim on src directly, then try to migrate it to dst.
    class PinToSrc(PlacementPolicy):
        def choose(self, hosts, request):
            return next((h for h in hosts if h.name == "src"), hosts[0])

    orch.policy = PinToSrc()
    placed = orch.submit(_req("tenant"))
    assert placed.host is src
    orch.policy = PinToDst()
    moved = orch.migrate(placed.request.request_id)
    assert moved is None  # dst refused; tenant kept running
    restored = {
        p.request.request_id: p for p in orch.placements()
    }[placed.request.request_id]
    assert restored.host is src
    assert restored.vnpu_id in src.resident
    orch.release(placed.request.request_id)  # record still valid
    _assert_control_plane_empty(src)


def test_host_bases_are_per_host_deterministic():
    """Every host hands its first tenant the same guest-physical base,
    however many placements other hosts saw first."""
    h0 = Host("h0", [CORE], num_vfs=8)
    for i in range(3):
        h0.place(_req(f"w{i}").as_vnpu_config(), owner=f"w{i}")
    h1 = Host("h1", [CORE], num_vfs=8)
    h1.place(_req("x").as_vnpu_config(), owner="x")
    base_of = lambda host: min(
        base for bufs in host.hypervisor.iommu._dma_buffers.values()
        for base, _size in bufs
    )
    assert base_of(h1) == base_of(h0)
