"""Autoscaling: policies, elastic driver, determinism, migrations."""

import pytest

from repro.api.registries import AUTOSCALERS, make_autoscaler
from repro.cluster.autoscale import (
    HostPoolSpec,
    ScalingAction,
    SegmentObservation,
    SloBurnRateAutoscaler,
    StaticAutoscaler,
    TargetUtilizationAutoscaler,
    ThresholdAutoscaler,
)
from repro.cluster.host import Host
from repro.cluster.orchestrator import ClusterOrchestrator, PlacementRequest
from repro.config import DEFAULT_CORE
from repro.errors import AllocationError, ConfigError
from repro.traffic.cluster_sim import (
    ChurnEvent,
    ClusterTrafficConfig,
    run_cluster_traffic,
)
from repro.traffic.openloop import TrafficTenantSpec
from repro.traffic.slo import SloSpec

SPEC = TrafficTenantSpec(model="MNIST", batch=8, slo=SloSpec(relative=5.0))


def obs(**overrides):
    base = dict(
        segment_index=0, time_s=0.001, duration_s=0.001, active_hosts=2,
        pool_hosts={"default": 2}, resident_tenants=2, rejections=0,
        me_utilization=0.5, ve_utilization=0.4, offered=100, attained=95,
    )
    base.update(overrides)
    return SegmentObservation(**base)


# ----------------------------------------------------------------------
# Policy unit tests (pure observation -> action)
# ----------------------------------------------------------------------
def test_static_never_scales():
    policy = StaticAutoscaler()
    assert policy.observe(obs(offered=100, attained=0)) == []
    assert policy.observe(obs(me_utilization=1.0)) == []


def test_threshold_scales_up_above_high_and_down_below_low():
    policy = ThresholdAutoscaler(high=0.75, low=0.25)
    up = policy.observe(obs(me_utilization=0.9))
    assert [a.action for a in up] == ["add", "rebalance"]
    down = policy.observe(obs(me_utilization=0.1, ve_utilization=0.05))
    assert [a.action for a in down] == ["drain"]
    # Inside the hysteresis band: hold.
    assert policy.observe(obs(me_utilization=0.5)) == []


def test_threshold_scales_up_on_rejections_even_at_low_util():
    policy = ThresholdAutoscaler()
    acts = policy.observe(obs(me_utilization=0.1, rejections=2))
    assert acts[0].action == "add"
    assert "rejections" in acts[0].reason


def test_threshold_validates_band():
    with pytest.raises(ConfigError):
        ThresholdAutoscaler(high=0.2, low=0.5)
    with pytest.raises(ConfigError):
        ThresholdAutoscaler(step=0)


def test_target_utilization_tracks_setpoint():
    policy = TargetUtilizationAutoscaler(target=0.5, max_step=8)
    # 2 hosts at 100% -> want ceil(2 * 1.0 / 0.5) = 4 -> add 2.
    up = policy.observe(obs(me_utilization=1.0, ve_utilization=1.0))
    assert up[0].action == "add" and up[0].count == 2
    # 2 hosts at 10% -> want 1 -> drain 1.
    down = policy.observe(obs(me_utilization=0.1, ve_utilization=0.1))
    assert down[0].action == "drain" and down[0].count == 1
    # Exactly on target: hold.
    assert policy.observe(obs(me_utilization=0.5, ve_utilization=0.5)) == []


def test_target_utilization_clamps_step():
    policy = TargetUtilizationAutoscaler(target=0.1, max_step=2)
    up = policy.observe(obs(me_utilization=1.0))  # wants 20 hosts
    assert up[0].count == 2


def test_slo_burn_rate_scales_up_fast_and_drains_slow():
    policy = SloBurnRateAutoscaler(
        slo_target=0.9, quiet_segments=3, fast_alpha=1.0
    )
    # One terrible segment: burn (1-0.5)/0.1 = 5 -> immediate scale-up.
    up = policy.observe(obs(offered=100, attained=50))
    assert up[0].action == "add"
    # Three comfortable segments (burn 0.2 < 0.5) before one drain.
    quiet = obs(offered=100, attained=98)
    assert policy.observe(quiet) == []
    assert policy.observe(quiet) == []
    drain = policy.observe(quiet)
    assert [a.action for a in drain] == ["drain"]
    # Counter reset: the next quiet segment does not drain again.
    assert policy.observe(quiet) == []


def test_slo_burn_rate_rejections_short_circuit():
    policy = SloBurnRateAutoscaler()
    acts = policy.observe(obs(offered=100, attained=100, rejections=1))
    assert acts[0].action == "add"


def test_slo_burn_rate_validates_params():
    with pytest.raises(ConfigError):
        SloBurnRateAutoscaler(slo_target=1.0)
    with pytest.raises(ConfigError):
        SloBurnRateAutoscaler(low_burn=2.0, high_burn=1.0)
    with pytest.raises(ConfigError):
        SloBurnRateAutoscaler(quiet_segments=0)


def test_scaling_action_validation():
    with pytest.raises(ConfigError):
        ScalingAction("explode")
    with pytest.raises(ConfigError):
        ScalingAction("add", count=0)


def test_host_pool_spec_validation():
    with pytest.raises(ConfigError):
        HostPoolSpec(max_hosts=0)
    with pytest.raises(ConfigError):
        HostPoolSpec(min_hosts=3, max_hosts=2)
    with pytest.raises(ConfigError):
        HostPoolSpec(min_hosts=1, max_hosts=4, initial_hosts=5)
    assert HostPoolSpec(min_hosts=2).start_hosts == 2
    assert HostPoolSpec(min_hosts=0).start_hosts == 1


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_lists_all_builtin_policies():
    names = AUTOSCALERS.names()
    for expected in ("static", "threshold", "target-utilization",
                     "slo-burn-rate"):
        assert expected in names


def test_make_autoscaler_unknown_name_suggests():
    with pytest.raises(ConfigError, match="slo-burn-rate"):
        make_autoscaler("slo-burn-rat")


def test_make_autoscaler_rejects_unknown_params():
    with pytest.raises(TypeError):
        make_autoscaler("threshold", wat=1)


# ----------------------------------------------------------------------
# Orchestrator elasticity
# ----------------------------------------------------------------------
def _host(name):
    return Host(name, [DEFAULT_CORE])


def test_orchestrator_add_and_remove_host():
    orch = ClusterOrchestrator([_host("a")])
    orch.add_host(_host("b"))
    assert [h.name for h in orch.hosts] == ["a", "b"]
    with pytest.raises(AllocationError):
        orch.add_host(_host("b"))  # duplicate name
    orch.remove_host("b")
    assert [h.name for h in orch.hosts] == ["a"]
    with pytest.raises(AllocationError):
        orch.remove_host("a")  # never remove the last host
    with pytest.raises(AllocationError):
        orch.remove_host("ghost")


def test_orchestrator_refuses_to_remove_occupied_host():
    orch = ClusterOrchestrator([_host("a"), _host("b")])
    orch.submit(PlacementRequest(owner="t", num_mes=1, num_ves=1))
    victim = orch.placements()[0].host.name
    with pytest.raises(AllocationError, match="drain"):
        orch.remove_host(victim)


def test_orchestrator_migrate_moves_placement():
    a, b = _host("a"), _host("b")
    orch = ClusterOrchestrator([a, b])
    placement = orch.submit(PlacementRequest(owner="t", num_mes=1, num_ves=1))
    source = placement.host
    moved = orch.migrate(placement.request.request_id)
    assert moved is not None and moved.host is not source
    assert not source.resident and moved.host.resident
    # The request id is stable across the move.
    assert orch.placements()[0].request.request_id == \
        placement.request.request_id


def test_orchestrator_migrate_returns_none_when_nowhere_to_go():
    a, b = _host("a"), _host("b")
    orch = ClusterOrchestrator([a, b])
    placement = orch.submit(PlacementRequest(owner="t", num_mes=1, num_ves=1))
    other = b if placement.host is a else a
    other.place(
        PlacementRequest(owner="hog", num_mes=4, num_ves=4).as_vnpu_config(),
        owner="hog",
    )
    before = placement.host
    assert orch.migrate(placement.request.request_id) is None
    assert orch.placements()[0].host is before  # untouched


# ----------------------------------------------------------------------
# Closed loop through run_cluster_traffic
# ----------------------------------------------------------------------
def _cfg(**overrides):
    base = dict(
        scheme="neu10", arrival="poisson", load=0.5, end_s=0.001, seed=13,
        pools=(HostPoolSpec("h", min_hosts=1, max_hosts=3, initial_hosts=1),),
        autoscale_interval_s=0.00025,
    )
    base.update(overrides)
    return ClusterTrafficConfig(**base)


def _arrivals(n, mes=1, ves=1):
    return [
        ChurnEvent(0.0, "arrive", f"t{i}", spec=SPEC, num_mes=mes, num_ves=ves)
        for i in range(n)
    ]


def test_overload_triggers_scale_up_and_rebalance():
    result = run_cluster_traffic(
        _arrivals(4),
        _cfg(autoscaler=make_autoscaler("slo-burn-rate", slo_target=0.75)),
    )
    actions = [e.action for e in result.autoscale_events]
    assert "add" in actions
    assert "rebalance" in actions
    # The fleet actually grew.
    assert max(n for _, n in result.host_count_timeline) > 1
    assert result.mean_active_hosts > 1.0
    # Rebalance migrations are recorded tenant by tenant.
    moves = [
        m for e in result.autoscale_events for m in e.migrations
    ]
    assert all(len(m) == 3 for m in moves)


def test_static_policy_matches_disabled_autoscaler_without_interval():
    """The elastic plumbing with a no-op policy and no extra boundaries
    must reproduce the plain driver bit for bit."""
    events = _arrivals(2)
    plain = run_cluster_traffic(
        events,
        ClusterTrafficConfig(num_hosts=2, load=0.5, end_s=0.001, seed=13),
    )
    elastic = run_cluster_traffic(
        events,
        ClusterTrafficConfig(
            num_hosts=2, load=0.5, end_s=0.001, seed=13,
            autoscaler=make_autoscaler("static"),
        ),
    )
    assert set(plain.reports) == set(elastic.reports)
    for name in plain.reports:
        assert plain.reports[name].latencies_cycles == \
            elastic.reports[name].latencies_cycles
    assert plain.host_me_utilization == elastic.host_me_utilization
    assert elastic.autoscale_events == []


def test_min_hosts_floor_is_respected():
    result = run_cluster_traffic(
        _arrivals(1),
        _cfg(
            load=0.1,
            pools=(HostPoolSpec("h", min_hosts=2, max_hosts=3,
                                initial_hosts=2),),
            autoscaler=make_autoscaler("threshold", low=0.9, high=0.95),
        ),
    )
    # Utilization is far below `low` every segment, but the pool floor
    # keeps two hosts alive.
    assert all(n >= 2 for _, n in result.host_count_timeline)


def test_max_hosts_ceiling_is_respected():
    result = run_cluster_traffic(
        _arrivals(6),
        _cfg(autoscaler=make_autoscaler("threshold", high=0.05, low=0.01)),
    )
    assert all(n <= 3 for _, n in result.host_count_timeline)


def test_drain_migrates_residents_and_retires_host():
    result = run_cluster_traffic(
        _arrivals(2),
        _cfg(
            end_s=0.002,
            load=0.05,
            pools=(HostPoolSpec("h", min_hosts=1, max_hosts=3,
                                initial_hosts=3),),
            autoscaler=make_autoscaler("threshold", low=0.5, high=0.9),
        ),
    )
    drains = [e for e in result.autoscale_events if e.action == "drain"]
    assert drains, "idle hosts must be drained"
    assert min(n for _, n in result.host_count_timeline) < 3


def test_autoscaled_run_is_deterministic_across_worker_counts():
    events = _arrivals(5)

    def run(workers):
        return run_cluster_traffic(
            events,
            _cfg(
                max_workers=workers,
                autoscaler=make_autoscaler(
                    "slo-burn-rate", slo_target=0.75
                ),
            ),
        )

    serial, pooled = run(1), run(3)
    assert [e.to_dict() for e in serial.autoscale_events] == \
        [e.to_dict() for e in pooled.autoscale_events]
    assert serial.host_count_timeline == pooled.host_count_timeline
    for name in serial.reports:
        assert serial.reports[name].latencies_cycles == \
            pooled.reports[name].latencies_cycles
    assert serial.host_me_utilization == pooled.host_me_utilization


def test_same_seed_reproduces_autoscaled_run():
    events = _arrivals(4)
    cfg = lambda: _cfg(  # noqa: E731 - fresh policy state per run
        autoscaler=make_autoscaler("slo-burn-rate", slo_target=0.75)
    )
    a = run_cluster_traffic(events, cfg())
    b = run_cluster_traffic(events, cfg())
    assert [e.to_dict() for e in a.autoscale_events] == \
        [e.to_dict() for e in b.autoscale_events]
    for name in a.reports:
        assert a.reports[name].latencies_cycles == \
            b.reports[name].latencies_cycles


def test_heterogeneous_pools_place_and_report_by_pool_name():
    cfg = ClusterTrafficConfig(
        scheme="neu10", load=0.5, end_s=0.0005, seed=13,
        pools=(
            HostPoolSpec("small", cores_per_host=1, min_hosts=1,
                         max_hosts=1),
            HostPoolSpec("big", cores_per_host=2, min_hosts=1, max_hosts=1),
        ),
    )
    result = run_cluster_traffic(_arrivals(2, mes=2, ves=2), cfg)
    assert set(result.host_me_utilization) == {"small0", "big0"}
    assert result.admission_rate == 1.0


def test_unknown_pool_in_action_fails_loudly():
    class Rogue(StaticAutoscaler):
        def observe(self, observation):
            return [ScalingAction("add", pool="nope")]

    with pytest.raises(ConfigError, match="unknown pool"):
        run_cluster_traffic(
            _arrivals(2), _cfg(end_s=0.001, autoscaler=Rogue())
        )


def test_duplicate_pool_names_rejected():
    with pytest.raises(ConfigError):
        ClusterTrafficConfig(
            pools=(HostPoolSpec("p"), HostPoolSpec("p")),
        )


def test_interval_boundaries_have_no_float_jitter_duplicates():
    """7 * 0.0001 != 0.0007 in floats; the boundary grid must not turn
    that into a phantom ~0-width segment next to a churn event."""
    from repro.traffic.cluster_sim import _segment_boundaries

    cuts = _segment_boundaries(
        [ChurnEvent(0.0007, "depart", "x")], 0.002, 0.0001
    )
    assert 0.0007 in cuts
    gaps = [b - a for a, b in zip(cuts, cuts[1:])]
    assert min(gaps) > 1e-6
    # The grid itself is still there (20 intervals, one churn-aligned).
    assert len(cuts) == 21


def test_rebalance_skips_oversized_tenant_for_a_smaller_one():
    """A first-in-name-order tenant whose move would overshoot the load
    spread must not block moving a smaller tenant that shrinks it.

    Setup (8-EU hosts): `zsmall` (2 EU) then `abig` (6 EU) land on h0
    (full, load 1.0), `mid` (4 EU) on h1 (load 0.5).  Moving `abig`
    would put h1 at 1.25 -- blocked; moving `zsmall` balances 0.75/0.75.
    """
    events = [
        ChurnEvent(0.0, "arrive", "zsmall", spec=SPEC, num_mes=1, num_ves=1),
        ChurnEvent(0.0, "arrive", "mid", spec=SPEC, num_mes=2, num_ves=2),
        ChurnEvent(0.0, "arrive", "abig", spec=SPEC, num_mes=3, num_ves=3),
    ]
    result = run_cluster_traffic(
        events,
        _cfg(
            end_s=0.001,
            pools=(HostPoolSpec("h", min_hosts=2,
                                max_hosts=2, initial_hosts=2),),
            # Fleet is pinned at max, but scale-up attempts still emit
            # the follow-up rebalance -- which must pick `zsmall`.
            autoscaler=make_autoscaler("threshold", high=0.02, low=0.01),
        ),
    )
    moves = [m for e in result.autoscale_events for m in e.migrations]
    assert ("zsmall", "h0", "h1") in [tuple(m) for m in moves]
    assert all(m[0] != "abig" for m in moves)
