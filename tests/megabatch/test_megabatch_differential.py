"""Differential tests: the mega-batch engine must be bit-identical to
stepping each simulator alone.

Every test builds the *same* simulator configurations twice -- once run
individually through ``Simulator.run()`` (itself already differentially
tested against ``fast_path=False``) and once co-stepped through
``MegaBatchEngine`` -- and compares every observable exactly: stats
integrals, counters, per-request latencies, queueing delays, op
records.  No tolerance anywhere: the batch engine only replays memoised
epochs the scalar engine planned, so any drift is a bug.

The engine must be order-insensitive (lanes grouped by structural
fingerprint, not position), size-insensitive (a batch of one, a batch
that is mostly one scheme plus a straggler, a 64-lane batch), and
mix-insensitive (open-loop and closed-loop lanes co-stepped in one
batch).
"""

import json

import pytest

from repro.config import NpuCoreConfig, spawn_rng
from repro.megabatch import MEGABATCH_ENV, MegaBatchEngine, megabatch_default
from repro.serving.server import (
    ALL_SCHEMES,
    SCHEME_ISA,
    SCHEME_TEMPORAL,
    make_scheduler,
)
from repro.sim.engine import Simulator, Tenant
from repro.traffic.arrivals import PoissonProcess
from repro.workloads.traces import build_trace

CORE = NpuCoreConfig()
SCHEMES = list(ALL_SCHEMES) + [SCHEME_TEMPORAL]


def _closed_loop_tenants(scheme, target_requests=4):
    isa = SCHEME_ISA[scheme]
    tenants = []
    for idx, (model, batch) in enumerate([("MNIST", 8), ("DLRM", 8)]):
        trace = build_trace(model, batch, core=CORE)
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=f"{model}#{idx}",
                graph=trace.compiled(isa),
                alloc_mes=2,
                alloc_ves=2,
                target_requests=target_requests,
            )
        )
    return tenants


def _open_loop_tenants(scheme, duration_cycles, seed=33, rate=1.0 / 120_000.0):
    isa = SCHEME_ISA[scheme]
    tenants = []
    for idx, (model, batch) in enumerate([("MNIST", 8), ("DLRM", 8)]):
        trace = build_trace(model, batch, core=CORE)
        arrivals = PoissonProcess(rate).generate(
            duration_cycles, spawn_rng(seed, scheme, model, idx)
        )
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=f"{model}#{idx}",
                graph=trace.compiled(isa),
                alloc_mes=2,
                alloc_ves=2,
                target_requests=None,
                arrivals=arrivals,
            )
        )
    return tenants


HORIZON = 1_000_000.0


def _make_sim(scheme, kind, seed=33, record_ops=False):
    """One simulator; ``kind`` picks closed- or open-loop tenants."""
    if kind == "closed":
        return Simulator(
            CORE,
            make_scheduler(scheme),
            _closed_loop_tenants(scheme),
            record_ops=record_ops,
        )
    return Simulator(
        CORE,
        make_scheduler(scheme),
        _open_loop_tenants(scheme, HORIZON, seed=seed),
        horizon_cycles=HORIZON,
        record_ops=record_ops,
    )


def _snapshot(result):
    stats = result.stats
    return {
        "total_cycles": stats.total_cycles,
        "me_busy_integral": stats.me_busy_integral,
        "ve_busy_integral": stats.ve_busy_integral,
        "me_busy_per_tenant": dict(stats.me_busy_per_tenant),
        "ve_busy_per_tenant": dict(stats.ve_busy_per_tenant),
        "harvested_me_integral": dict(stats.harvested_me_integral),
        "blocked_cycles_per_tenant": dict(stats.blocked_cycles_per_tenant),
        "preemption_count": stats.preemption_count,
        "reclaim_penalty_cycles": stats.reclaim_penalty_cycles,
        "op_records": [
            (r.tenant_id, r.op_index, r.request_id, r.start_cycle,
             r.end_cycle, r.blocked_cycles, r.harvested_engine_cycles)
            for r in stats.op_records
        ],
        "tenants": {
            tid: (
                tr.latencies_cycles,
                tr.queueing_cycles,
                tr.completed_requests,
                tr.offered_requests,
                tr.me_utilization,
                tr.ve_utilization,
                tr.blocked_fraction,
            )
            for tid, tr in result.tenants.items()
        },
    }


def _assert_batch_matches_scalar(specs, numpy_min_lanes=None):
    """Build each spec twice; batch run must equal per-sim runs exactly.

    ``specs`` is a list of ``(scheme, kind, seed, record_ops)`` tuples;
    the scalar reference preserves list order, so this also checks the
    engine returns results in input order.
    """
    scalar = [_snapshot(_make_sim(*spec).run()) for spec in specs]
    sims = [_make_sim(*spec) for spec in specs]
    engine = MegaBatchEngine(sims, numpy_min_lanes=numpy_min_lanes)
    batched = [_snapshot(result) for result in engine.run()]
    assert batched == scalar
    return engine


@pytest.mark.parametrize("scheme", SCHEMES)
@pytest.mark.parametrize("batch_size", [1, 7])
def test_homogeneous_batch_bit_identical(scheme, batch_size):
    """N divergent-seed open-loop lanes of one scheme, any batch size."""
    specs = [(scheme, "open", 100 + i, False) for i in range(batch_size)]
    _assert_batch_matches_scalar(specs)


@pytest.mark.parametrize("scheme", SCHEMES)
def test_closed_loop_batch_bit_identical(scheme):
    specs = [(scheme, "closed", 33, False) for _ in range(5)]
    _assert_batch_matches_scalar(specs)


def test_large_batch_bit_identical():
    """64 lanes -- the production chunk size -- across divergent seeds."""
    specs = [("neu10", "open", i, False) for i in range(64)]
    engine = _assert_batch_matches_scalar(specs)
    # The whole point of the engine: steady-state epochs replay through
    # chain nodes, not the scalar planner.
    assert engine.group_stats["array_epochs"] > 0


def test_mixed_schemes_and_kinds_in_one_batch():
    """Open- and closed-loop lanes of different schemes co-stepped."""
    specs = [
        ("neu10", "open", 1, False),
        ("v10", "closed", 33, False),
        ("neu10", "closed", 33, False),
        ("neu10-nh", "open", 2, False),
        ("pmt", "closed", 33, False),
        ("neu10", "open", 3, False),
        ("neu10-temporal", "closed", 33, False),
    ]
    _assert_batch_matches_scalar(specs)


def test_lane_order_does_not_change_any_lane():
    """Reversing and interleaving the batch permutes results exactly."""
    specs = [("neu10", "open", i, False) for i in range(6)]
    specs += [("v10", "open", i, False) for i in range(3)]
    base = {
        spec: _snapshot(res)
        for spec, res in zip(
            specs, MegaBatchEngine([_make_sim(*s) for s in specs]).run()
        )
    }
    for order in (list(reversed(specs)), specs[1::2] + specs[0::2]):
        results = MegaBatchEngine([_make_sim(*s) for s in order]).run()
        for spec, res in zip(order, results):
            assert _snapshot(res) == base[spec]


def test_numpy_bucket_path_bit_identical():
    """numpy_min_lanes=2 forces the vectorised bucket kernel (the
    default keeps it opt-in); results must not move by a bit."""
    specs = [("neu10", "open", i, False) for i in range(8)]
    specs += [("neu10", "closed", 33, False) for _ in range(4)]
    _assert_batch_matches_scalar(specs, numpy_min_lanes=2)


def test_record_ops_lanes_bit_identical():
    """Serving-style lanes (record_ops=True) never enter the chain path
    but must still co-step correctly through the object engine."""
    specs = [("neu10", "closed", 33, True) for _ in range(3)]
    specs += [("neu10", "open", 5, True)]
    _assert_batch_matches_scalar(specs)


def test_empty_and_single_batches():
    from repro.megabatch import run_simulators

    assert run_simulators([]) == []
    solo = _snapshot(run_simulators([_make_sim("neu10", "open", 9, False)])[0])
    assert solo == _snapshot(_make_sim("neu10", "open", 9, False).run())


# ----------------------------------------------------------------------
# End-to-end: the wired call sites with the escape hatch toggled
# ----------------------------------------------------------------------
def _run_result_dicts(results):
    return [json.loads(json.dumps(r.to_dict(), sort_keys=True))
            for r in results]


def test_megabatch_default_env_gate(monkeypatch):
    monkeypatch.delenv(MEGABATCH_ENV, raising=False)
    assert megabatch_default() is True
    for off in ("0", "false", "off"):
        monkeypatch.setenv(MEGABATCH_ENV, off)
        assert megabatch_default() is False
    monkeypatch.setenv(MEGABATCH_ENV, "1")
    assert megabatch_default() is True


def test_sweep_scenario_on_off_identical(monkeypatch):
    from repro.api import Scenario, ScenarioTenant, sweep_scenario

    base = Scenario(
        name="mb-sweep",
        kind="open_loop",
        scheme="neu10",
        tenants=(
            ScenarioTenant(model="MNIST", batch=8),
            ScenarioTenant(model="DLRM", batch=8),
        ),
        arrival="poisson",
        load=0.8,
        duration_s=0.0015,
        seed=11,
    )
    seeds = list(range(9))
    monkeypatch.setenv(MEGABATCH_ENV, "1")
    on = sweep_scenario(base, param="seed", values=seeds, max_workers=1)
    monkeypatch.setenv(MEGABATCH_ENV, "0")
    off = sweep_scenario(base, param="seed", values=seeds, max_workers=1)
    assert _run_result_dicts(on) == _run_result_dicts(off)


def test_sweep_scenario_serving_kind_on_off_identical(monkeypatch):
    from repro.api import Scenario, ScenarioTenant, sweep_scenario

    base = Scenario(
        name="mb-serving-sweep",
        kind="serving",
        scheme="neu10",
        tenants=(
            ScenarioTenant(model="MNIST", batch=8),
            ScenarioTenant(model="DLRM", batch=8),
        ),
        target_requests=4,
    )
    values = [3, 4, 5]
    monkeypatch.setenv(MEGABATCH_ENV, "1")
    on = sweep_scenario(base, param="target_requests", values=values,
                        max_workers=1)
    monkeypatch.setenv(MEGABATCH_ENV, "0")
    off = sweep_scenario(base, param="target_requests", values=values,
                         max_workers=1)
    assert _run_result_dicts(on) == _run_result_dicts(off)


def test_cluster_scenario_on_off_identical(monkeypatch):
    from repro.api import Scenario, ScenarioChurn, run_scenario

    end_s = 0.002
    scenario = Scenario(
        name="mb-cluster",
        kind="cluster",
        scheme="neu10",
        arrival="poisson",
        load=0.8,
        duration_s=end_s,
        seed=11,
        hosts=2,
        churn=(
            ScenarioChurn(0.0, "arrive", "a", model="MNIST", batch=8),
            ScenarioChurn(0.0, "arrive", "b", model="DLRM", batch=8),
            ScenarioChurn(end_s / 2, "arrive", "c", model="MNIST", batch=8),
            ScenarioChurn(end_s * 0.75, "depart", "b"),
        ),
    )
    monkeypatch.setenv(MEGABATCH_ENV, "1")
    on = run_scenario(scenario)
    monkeypatch.setenv(MEGABATCH_ENV, "0")
    off = run_scenario(scenario)
    assert _run_result_dicts([on]) == _run_result_dicts([off])
