"""Victim policies and preemption plumbing."""

import random

import pytest

from repro.errors import ConfigError
from repro.llmserve.preemption import (
    PREEMPTION_MODES,
    VICTIM_POLICIES,
    FifoVictimPolicy,
    LifoVictimPolicy,
    PreemptionEvent,
    RandomVictimPolicy,
    check_preemption_mode,
)
from repro.llmserve.requests import LlmRequest


def _req(rid, entered):
    req = LlmRequest(
        rid=rid, tenant="t", arrival_cycles=0.0,
        prompt_tokens=8, decode_tokens=8,
    )
    req.enter_running_cycles = entered
    return req


def test_mode_check():
    assert PREEMPTION_MODES == ("swap", "sacrifice")
    for mode in PREEMPTION_MODES:
        assert check_preemption_mode(mode) == mode
    with pytest.raises(ConfigError, match="unknown preemption mode"):
        check_preemption_mode("evaporate")


def test_lifo_picks_newest_fifo_oldest():
    running = [_req(0, 10.0), _req(1, 30.0), _req(2, 20.0)]
    rng = random.Random(0)
    assert LifoVictimPolicy().select(running, rng).rid == 1
    assert FifoVictimPolicy().select(running, rng).rid == 0


def test_entry_time_ties_break_on_rid():
    running = [_req(3, 10.0), _req(1, 10.0), _req(2, 10.0)]
    rng = random.Random(0)
    assert LifoVictimPolicy().select(running, rng).rid == 3
    assert FifoVictimPolicy().select(running, rng).rid == 1


def test_random_is_seeded_and_batch_order_independent():
    running = [_req(i, float(i)) for i in range(5)]
    picks = [
        RandomVictimPolicy().select(running, random.Random(7)).rid
        for _ in range(3)
    ]
    assert len(set(picks)) == 1  # same seed, same pick
    shuffled = list(reversed(running))
    assert (
        RandomVictimPolicy().select(shuffled, random.Random(7)).rid
        == picks[0]
    )


def test_empty_batch_rejected():
    with pytest.raises(ConfigError, match="non-empty"):
        LifoVictimPolicy().select([], random.Random(0))


def test_builtin_policy_table():
    assert set(VICTIM_POLICIES) == {"lifo", "fifo", "random"}
    for name, cls in VICTIM_POLICIES.items():
        assert cls.name == name


def test_event_serializes():
    event = PreemptionEvent(
        step=3, time_cycles=1.5, rid=7, tenant="chat",
        mode="swap", policy="lifo", kv_freed=42,
    )
    assert event.to_dict() == {
        "step": 3, "time_cycles": 1.5, "rid": 7, "tenant": "chat",
        "mode": "swap", "policy": "lifo", "kv_freed": 42,
    }
