"""The continuous-batching engine: budgets, preemption, accounting.

Every test pins the step-cost model explicitly (no simulator
calibration), so the engine's scheduling logic is exercised in
microseconds with exact, deterministic arithmetic.
"""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.llmserve import (
    LlmServeConfig,
    LlmTenantSpec,
    run_llm_serving,
)

#: Cheap, exact step costs: step = 1000 + 10 * tokens cycles.
CHEAP = dict(
    step_overhead_cycles=1000.0,
    cycles_per_token=10.0,
    swap_cycles_per_token=2.0,
)

SPECS = (
    LlmTenantSpec(name="chat", prompt_tokens=64, decode_tokens=64),
    LlmTenantSpec(name="code", prompt_tokens=128, decode_tokens=128,
                  weight=0.5),
)


def _cfg(**overrides):
    params = dict(
        seed=11, duration_s=1e-4, load=0.9, arrival="poisson",
        batch_tokens=256, m_total=16384, **CHEAP,
    )
    params.update(overrides)
    return LlmServeConfig(**params)


# ----------------------------------------------------------------------
# Core serving behaviour
# ----------------------------------------------------------------------
def test_drain_completes_every_arrival():
    result = run_llm_serving(SPECS, _cfg())
    assert result.arrived > 0
    assert result.completed == result.arrived
    assert result.preemption_count == 0  # loose budget: no pressure
    assert result.peak_kv_tokens <= result.m_total
    assert result.kv_timeline[-1][1] == 0  # fully drained
    assert result.goodput_tokens_per_s > 0


def test_kv_pressure_preempts_but_never_overflows():
    result = run_llm_serving(SPECS, _cfg(m_total=384))
    assert result.preemption_count > 0
    assert result.peak_kv_tokens <= 384
    # Swap preserves progress: everything still completes.
    assert result.completed == result.arrived
    assert result.swap_count == result.preemption_count
    assert result.sacrifice_count == 0
    for event in result.events:
        assert event.mode == "swap"
        assert event.policy == "lifo"
        assert event.kv_freed > 0


def test_goodput_degrades_as_the_kv_budget_tightens():
    goodputs = [
        run_llm_serving(SPECS, _cfg(m_total=m)).goodput_tokens_per_s
        for m in (4096, 1024, 384)
    ]
    assert goodputs == sorted(goodputs, reverse=True)


def test_sacrifice_redoes_work():
    swap = run_llm_serving(SPECS, _cfg(m_total=384))
    sac = run_llm_serving(
        SPECS, _cfg(m_total=384, preemption_mode="sacrifice")
    )
    assert sac.sacrifice_count > 0
    assert sac.swap_count == 0
    assert sac.completed == sac.arrived
    # Same arrivals (the seed streams are independent of the mode) but
    # redone prefills cost extra steps and stretch the makespan.
    assert sac.arrived == swap.arrived
    assert sac.steps >= swap.steps
    assert sac.goodput_tokens_per_s <= swap.goodput_tokens_per_s
    # Goodput never double-counts sacrificed work: generated tokens are
    # each completed request's decode_tokens, counted once.
    for name, report in sac.tenants.items():
        spec = {s.name: s for s in SPECS}[name]
        assert report.generated_tokens == report.completed * spec.decode_tokens


def test_tenant_accounting_sums_to_run_totals():
    result = run_llm_serving(SPECS, _cfg(m_total=384))
    assert sum(r.arrived for r in result.tenants.values()) == result.arrived
    assert (
        sum(r.completed for r in result.tenants.values()) == result.completed
    )
    assert (
        sum(r.swaps for r in result.tenants.values()) == result.swap_count
    )
    for report in result.tenants.values():
        assert 0.0 <= report.ttft_attainment <= 1.0
        assert 0.0 <= report.tpot_attainment <= 1.0


def test_horizon_stop_vs_drain():
    drained = run_llm_serving(SPECS, _cfg())
    stopped = run_llm_serving(SPECS, _cfg(drain=False))
    assert stopped.steps <= drained.steps
    assert stopped.completed <= drained.completed
    assert drained.completed == drained.arrived


def test_metrics_block_is_json_shaped():
    import json

    result = run_llm_serving(SPECS, _cfg(m_total=384))
    metrics = json.loads(json.dumps(result.metrics()))
    assert metrics["preemption"]["count"] == result.preemption_count
    assert metrics["requests"] == {
        "arrived": result.arrived, "completed": result.completed,
    }
    assert metrics["kv"]["peak_tokens"] == result.peak_kv_tokens
    assert 0 < len(metrics["kv"]["timeline"]) <= 200
    assert set(metrics["tenants"]) == {"chat", "code"}


# ----------------------------------------------------------------------
# Validation and guard rails
# ----------------------------------------------------------------------
def test_unschedulable_tenants_rejected_up_front():
    with pytest.raises(ConfigError, match="exceeds the step budget"):
        run_llm_serving(
            (LlmTenantSpec(name="big", prompt_tokens=512),),
            _cfg(batch_tokens=256),
        )
    with pytest.raises(ConfigError, match="could never finish"):
        run_llm_serving(
            (LlmTenantSpec(name="big", prompt_tokens=200, decode_tokens=100),),
            _cfg(batch_tokens=256, m_total=256),
        )
    with pytest.raises(ConfigError, match="duplicate"):
        run_llm_serving(
            (LlmTenantSpec(name="a"), LlmTenantSpec(name="a")), _cfg()
        )
    with pytest.raises(ConfigError, match="at least one tenant"):
        run_llm_serving((), _cfg())


def test_spec_and_config_validation():
    with pytest.raises(ConfigError):
        LlmTenantSpec(name="")
    with pytest.raises(ConfigError):
        LlmTenantSpec(name="x", prompt_tokens=0)
    with pytest.raises(ConfigError):
        LlmTenantSpec(name="x", weight=0.0)
    with pytest.raises(ConfigError):
        _cfg(preemption_mode="drop")
    with pytest.raises(ConfigError):
        _cfg(batch_tokens=0)
    with pytest.raises(ConfigError):
        _cfg(duration_s=0.0)


def test_unknown_victim_policy_fails_with_the_registry_list():
    with pytest.raises(ConfigError, match="lifo"):
        run_llm_serving(SPECS, _cfg(victim_policy="ghost"))


def test_max_steps_guard_raises_typed_error():
    with pytest.raises(SimulationError, match="max_steps"):
        run_llm_serving(SPECS, _cfg(max_steps=1))


# ----------------------------------------------------------------------
# Pluggable victim policies (the PREEMPTION registry)
# ----------------------------------------------------------------------
def test_third_party_victim_policy_plugs_in():
    from repro.api import PREEMPTION, PreemptionInfo
    from repro.llmserve import VictimPolicy

    class MostKv(VictimPolicy):
        name = "most-kv"

        def select(self, running, rng):
            return max(running, key=lambda r: (r.kv_tokens, r.rid))

    PREEMPTION.add("most-kv", PreemptionInfo(
        "most-kv", MostKv, "evict the largest KV holder"))
    try:
        result = run_llm_serving(
            SPECS, _cfg(m_total=384, victim_policy="most-kv")
        )
        assert result.preemption_count > 0
        assert all(e.policy == "most-kv" for e in result.events)
    finally:
        PREEMPTION.remove("most-kv")
