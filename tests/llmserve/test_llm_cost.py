"""The affine step-cost model and its simulator calibration."""

import pytest

from repro.config import DEFAULT_CORE
from repro.errors import ConfigError
from repro.llmserve.cost import (
    KV_BYTES_PER_TOKEN,
    LlmCostModel,
    calibrate_llm_cost,
    default_swap_cycles_per_token,
)
from repro.workloads.llm import LLAMA_HIDDEN, LLAMA_LAYERS


def test_model_is_affine():
    cost = LlmCostModel(
        step_overhead_cycles=100.0, cycles_per_token=3.0,
        swap_cycles_per_token=1.0,
    )
    assert cost.batch_cycles(1) == 103.0
    assert cost.batch_cycles(10) == 130.0
    assert cost.token_capacity_per_cycle(10) == pytest.approx(10 / 130.0)


def test_model_validation():
    with pytest.raises(ConfigError):
        LlmCostModel(step_overhead_cycles=-1.0, cycles_per_token=1.0,
                     swap_cycles_per_token=0.0)
    with pytest.raises(ConfigError):
        LlmCostModel(step_overhead_cycles=0.0, cycles_per_token=0.0,
                     swap_cycles_per_token=0.0)
    cost = LlmCostModel(step_overhead_cycles=0.0, cycles_per_token=1.0,
                        swap_cycles_per_token=0.0)
    with pytest.raises(ConfigError):
        cost.batch_cycles(0)


def test_default_swap_cost_is_hbm_streaming_time():
    assert KV_BYTES_PER_TOKEN == 2 * LLAMA_LAYERS * LLAMA_HIDDEN * 2
    expected = KV_BYTES_PER_TOKEN / DEFAULT_CORE.hbm_bytes_per_cycle
    assert default_swap_cycles_per_token(DEFAULT_CORE) == pytest.approx(
        expected
    )


def test_calibration_fits_a_positive_line():
    """The two simulator probes must yield d1 > 0 (bigger batches cost
    more) and a plausibly large per-step overhead; memoisation makes a
    second call free and bit-identical."""
    cost = calibrate_llm_cost()
    assert cost.cycles_per_token > 0
    assert cost.step_overhead_cycles >= 0
    # Decode steps of a 13B model take milliseconds-of-cycles, not tens.
    assert cost.batch_cycles(1) > 1e6
    again = calibrate_llm_cost()
    assert again == cost


def test_calibration_swap_override_passes_through():
    cost = calibrate_llm_cost(swap_cycles_per_token=3.5)
    assert cost.swap_cycles_per_token == 3.5
