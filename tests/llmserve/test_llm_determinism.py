"""Seeded determinism: one seed, one history -- anywhere it runs.

The preemption event log is the most fragile artifact of a serving run
(one mis-ordered tie-break changes every downstream metric), so these
tests compare runs event-by-event: in-process repeats, across
``parallel_map`` workers, and across victim policies sharing one seed.
"""

from repro.api import Scenario, run_scenario
from repro.llmserve import LlmServeConfig, LlmTenantSpec, run_llm_serving
from repro.parallel import parallel_map

SPECS = (
    LlmTenantSpec(name="chat", prompt_tokens=64, decode_tokens=64),
    LlmTenantSpec(name="code", prompt_tokens=128, decode_tokens=128,
                  weight=0.5),
)

CHEAP = dict(
    step_overhead_cycles=1000.0,
    cycles_per_token=10.0,
    swap_cycles_per_token=2.0,
)


def _cfg(**overrides):
    params = dict(
        seed=11, duration_s=1e-4, load=0.9, arrival="poisson",
        batch_tokens=256, m_total=384, **CHEAP,
    )
    params.update(overrides)
    return LlmServeConfig(**params)


SCENARIO_PAYLOAD = {
    "name": "llm-det",
    "kind": "llm",
    "scheme": "neu10",
    "arrival": "poisson",
    "load": 0.9,
    "duration_s": 1e-4,
    "seed": 11,
    "llm": {
        "batch_tokens": 256,
        "m_total": 384,
        "step_overhead_cycles": 1000.0,
        "cycles_per_token": 10.0,
        "swap_cycles_per_token": 2.0,
        "tenants": [
            {"name": "chat", "prompt_tokens": 64, "decode_tokens": 64},
            {"name": "code", "prompt_tokens": 128, "decode_tokens": 128,
             "weight": 0.5},
        ],
    },
}


def _run_payload(payload):
    return run_scenario(Scenario.from_dict(payload)).metrics


def test_same_seed_same_event_log():
    a = run_llm_serving(SPECS, _cfg())
    b = run_llm_serving(SPECS, _cfg())
    assert a.preemption_count > 0  # the comparison is not vacuous
    assert a.events == b.events
    assert a.metrics() == b.metrics()


def test_different_seeds_differ():
    a = run_llm_serving(SPECS, _cfg())
    b = run_llm_serving(SPECS, _cfg(seed=12))
    assert a.metrics() != b.metrics()


def test_parallel_map_matches_in_process():
    """Worker processes replay the exact in-process history, including
    the preemption event log -- the property sweeps rely on."""
    reference = _run_payload(SCENARIO_PAYLOAD)
    assert reference["preemption"]["count"] > 0
    fanned = parallel_map(
        _run_payload, [SCENARIO_PAYLOAD, SCENARIO_PAYLOAD], max_workers=2
    )
    assert fanned[0] == reference
    assert fanned[1] == reference


def test_victim_policies_share_one_arrival_history():
    """The victim RNG stream is keyed off the policy name, the arrival
    streams are not -- so changing who gets evicted never perturbs what
    arrives, and each policy is individually reproducible."""
    results = {
        policy: run_llm_serving(SPECS, _cfg(victim_policy=policy))
        for policy in ("lifo", "fifo", "random")
    }
    arrived = {r.arrived for r in results.values()}
    assert len(arrived) == 1  # identical arrivals
    for policy, result in results.items():
        assert result.preemption_count > 0
        assert all(e.policy == policy for e in result.events)
        again = run_llm_serving(SPECS, _cfg(victim_policy=policy))
        assert again.events == result.events
    # lifo and fifo pick from opposite ends of the batch; with real
    # pressure they must not produce the same victim sequence.
    assert (
        [e.rid for e in results["lifo"].events]
        != [e.rid for e in results["fifo"].events]
    )
