"""Shared fixtures: small cores and toy workloads that keep tests fast."""

from __future__ import annotations

import pytest

import repro.compiler as comp
from repro.compiler.lowering import lower_graph_neuisa, lower_graph_vliw
from repro.config import NpuCoreConfig
from repro.sim.engine import Simulator, Tenant


@pytest.fixture
def core() -> NpuCoreConfig:
    """The paper's Table II core (4 MEs, 4 VEs)."""
    return NpuCoreConfig()


@pytest.fixture
def small_core() -> NpuCoreConfig:
    """A 2ME/2VE core for scheduler micro-tests."""
    return NpuCoreConfig(num_mes=2, num_ves=2)


def make_me_graph(name: str = "me-toy", layers: int = 3) -> comp.Graph:
    """ME-dominated, compute-bound toy workload: large matmuls with
    SRAM-resident weights so HBM traffic stays negligible."""
    graph = comp.Graph(name)
    for i in range(layers):
        graph.add(
            comp.MatMul(
                f"{name}.mm{i}", m=1024, k=1024, n=1024,
                epilogue=[comp.ElementwiseKind.RELU],
                weights_streamed=False,
            )
        )
        # A small normalisation keeps a VE uTOp in every layer without
        # adding bandwidth-bound work (elementwise ops are HBM-hungry).
        graph.add(comp.LayerNorm(f"{name}.ln{i}", rows=64, cols=1024))
    return graph


def make_ve_graph(name: str = "ve-toy", layers: int = 3) -> comp.Graph:
    """VE/HBM-dominated toy workload: gathers and softmaxes plus a
    small matmul so both engine classes appear."""
    graph = comp.Graph(name)
    for i in range(layers):
        graph.add(
            comp.EmbeddingLookup(
                f"{name}.emb{i}", num_lookups=2048, dim=64,
                table_bytes=10**9,
            )
        )
        graph.add(comp.MatMul(f"{name}.mm{i}", m=64, k=128, n=128))
        graph.add(comp.Softmax(f"{name}.sm{i}", rows=2048, cols=64))
    return graph


@pytest.fixture
def me_graph() -> comp.Graph:
    return make_me_graph()


@pytest.fixture
def ve_graph() -> comp.Graph:
    return make_ve_graph()


def make_tenant(
    graph: comp.Graph,
    core: NpuCoreConfig,
    tenant_id: int = 0,
    isa: str = "neuisa",
    alloc_mes: int = 2,
    alloc_ves: int = 2,
    target_requests: int = 2,
    priority: float = 1.0,
) -> Tenant:
    if isa == "neuisa":
        compiled = lower_graph_neuisa(graph, core)
    else:
        compiled = lower_graph_vliw(graph, core, core.num_mes, core.num_ves)
    return Tenant(
        tenant_id=tenant_id,
        name=f"{graph.name}#{tenant_id}",
        graph=compiled,
        alloc_mes=alloc_mes,
        alloc_ves=alloc_ves,
        target_requests=target_requests,
        priority=priority,
    )


def run_sim(core: NpuCoreConfig, scheduler, tenants, **kwargs):
    sim = Simulator(core, scheduler, tenants, **kwargs)
    return sim.run()
