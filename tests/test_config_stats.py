"""Tests for the hardware config (Table II) and stats accounting."""

import pytest

from repro.config import (
    DEFAULT_BOARD,
    DEFAULT_CORE,
    ME_PREEMPTION_CYCLES,
    NpuBoardConfig,
    NpuChipConfig,
    NpuCoreConfig,
)
from repro.errors import ConfigError
from repro.sim.hw_cost import scheduler_cost
from repro.sim.stats import SimStats


# ----------------------------------------------------------------------
# Table II values
# ----------------------------------------------------------------------
def test_default_core_matches_table2():
    core = DEFAULT_CORE
    assert core.num_mes == 4 and core.num_ves == 4
    assert core.me_rows == 128 and core.me_cols == 128
    assert core.ve_flops_per_cycle == 128 * 8
    assert core.frequency_hz == 1_050e6
    assert core.sram_bytes == 128 * 2**20
    assert core.hbm_bytes == 64 * 10**9
    assert core.hbm_bandwidth_bytes_per_s == 1_200e9


def test_preemption_penalty_is_256_cycles():
    """128 cycles to pop partial sums + 128 to pop weights (SectionIII-G)."""
    assert ME_PREEMPTION_CYCLES == 256
    assert DEFAULT_CORE.me_preemption_cycles == 256


def test_unit_conversions():
    core = DEFAULT_CORE
    assert core.cycles_to_us(1_050.0) == pytest.approx(1.0)
    assert core.seconds_to_cycles(1.0) == core.frequency_hz
    assert core.hbm_bytes_per_cycle == pytest.approx(1_200e9 / 1_050e6)


def test_with_engines_and_bandwidth():
    core = DEFAULT_CORE.with_engines(8, 2)
    assert core.num_mes == 8 and core.num_ves == 2
    assert core.sram_bytes == DEFAULT_CORE.sram_bytes
    fat = DEFAULT_CORE.with_bandwidth(3e12)
    assert fat.hbm_bandwidth_bytes_per_s == 3e12


def test_config_validation():
    with pytest.raises(ConfigError):
        NpuCoreConfig(num_mes=0)
    with pytest.raises(ConfigError):
        NpuCoreConfig(frequency_hz=0)
    with pytest.raises(ConfigError):
        NpuChipConfig(num_cores=0)
    with pytest.raises(ConfigError):
        NpuBoardConfig(num_chips=0)


def test_board_aggregates():
    assert DEFAULT_BOARD.total_cores == 8
    assert DEFAULT_BOARD.total_mes == 32


def test_segment_counts():
    assert DEFAULT_CORE.num_sram_segments == 64   # 128 MB / 2 MB
    assert DEFAULT_CORE.num_hbm_segments == 59    # 64 GB / 1 GiB


# ----------------------------------------------------------------------
# Stats
# ----------------------------------------------------------------------
def test_stats_utilization_math():
    stats = SimStats(num_mes=4, num_ves=4)
    stats.record_epoch(0.0, 100.0, {0: 2.0}, {0: 1.0})
    stats.record_epoch(100.0, 100.0, {0: 4.0}, {0: 2.0})
    assert stats.me_utilization() == pytest.approx((200 + 400) / (200 * 4))
    assert stats.tenant_me_utilization(0) == stats.me_utilization()


def test_stats_assignment_trace_coalesces():
    stats = SimStats(num_mes=4, num_ves=4, record_assignment=True)
    for i in range(5):
        stats.record_epoch(i * 10.0, 10.0, {0: 2.0}, {0: 2.0})
    assert len(stats.assignment_trace) == 1
    stats.record_epoch(50.0, 10.0, {0: 3.0}, {0: 2.0})
    assert len(stats.assignment_trace) == 2


def test_stats_op_lifecycle():
    stats = SimStats(num_mes=4, num_ves=4)
    stats.op_started(0, "mm", 3, 0, 100.0)
    stats.op_blocked(0, 3, 0, 25.0)
    stats.op_finished(0, 3, 0, 300.0)
    [record] = stats.op_records
    assert record.duration == 200.0
    assert record.blocked_cycles == 25.0
    assert stats.blocked_cycles_per_tenant[0] == 25.0


def test_stats_op_durations_grouping():
    stats = SimStats(num_mes=4, num_ves=4)
    for req in range(3):
        stats.op_started(0, "mm", 1, req, req * 100.0)
        stats.op_finished(0, 1, req, req * 100.0 + 50.0)
    durations = stats.op_durations(0)
    assert durations["mm"] == [50.0, 50.0, 50.0]


def test_stats_bandwidth_average():
    stats = SimStats(num_mes=4, num_ves=4, record_bandwidth=True)
    stats.record_epoch(0.0, 10.0, {}, {}, hbm_bytes_per_cycle=100.0)
    stats.record_epoch(10.0, 10.0, {}, {}, hbm_bytes_per_cycle=300.0)
    assert stats.average_bandwidth() == pytest.approx(200.0)


# ----------------------------------------------------------------------
# Scheduler hardware cost (SectionIII-G)
# ----------------------------------------------------------------------
def test_scheduler_cost_negligible():
    cost = scheduler_cost(DEFAULT_CORE)
    assert cost.total_bytes < 64 * 1024
    assert cost.die_fraction < 0.0004  # paper: 0.04 %


def test_scheduler_cost_scales_with_engines():
    small = scheduler_cost(DEFAULT_CORE)
    big = scheduler_cost(DEFAULT_CORE.with_engines(8, 8))
    assert big.total_bytes > small.total_bytes
