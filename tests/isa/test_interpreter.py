"""Functional tests for the NeuISA interpreter, including the paper's
Fig. 15 loop structure."""

from typing import List

import pytest

from repro.errors import IsaError
from repro.isa.control import ControlOp, ControlOpcode
from repro.isa.interpreter import NeuIsaInterpreter, run_program
from repro.isa.program import NeuIsaProgram
from repro.isa.utop import (
    ExecutionTable,
    UTopGroup,
    UTopInstruction,
    make_me_utop,
    make_ve_utop,
)
from repro.isa.vliw import ScalarOp, ScalarOpcode

FINISH = ControlOp(ControlOpcode.FINISH)


def snippet_finish() -> List[UTopInstruction]:
    return [UTopInstruction(control=FINISH)]


def build_linear_program(num_groups: int = 3) -> NeuIsaProgram:
    table = ExecutionTable(nx=2, ny=2)
    snippets = {}
    for g in range(num_groups):
        addr = 0x100 + g * 0x10
        snippets[addr] = snippet_finish()
        table.append(
            UTopGroup(me_utops=[make_me_utop(addr, me_cycles=1)])
        )
    return NeuIsaProgram(table=table, snippets=snippets)


def test_linear_execution_visits_groups_in_order():
    program = build_linear_program(4)
    result = run_program(program)
    assert result.dynamic_group_indices == [0, 1, 2, 3]


def test_missing_finish_detected():
    table = ExecutionTable(nx=1, ny=1)
    addr = 0x100
    table.append(UTopGroup(me_utops=[make_me_utop(addr, me_cycles=1)]))
    program = NeuIsaProgram(
        table=table, snippets={addr: [UTopInstruction()]}
    )
    with pytest.raises(IsaError):
        run_program(program)


def test_group_and_index_queries():
    """uTop.group / uTop.index write the identifiers into registers;
    we verify via a branch that depends on them."""
    table = ExecutionTable(nx=2, ny=2)
    addr = 0x100
    # Store the group index into scratch[7] so the test can observe it.
    body = [
        UTopInstruction(control=ControlOp(ControlOpcode.GROUP, reg=1)),
        UTopInstruction(
            scalar_slot=ScalarOp(ScalarOpcode.STORE, src=1, imm=7)
        ),
        UTopInstruction(control=FINISH),
    ]
    table.append(UTopGroup(me_utops=[make_me_utop(addr, me_cycles=1)]))
    table.append(UTopGroup(me_utops=[make_me_utop(addr, me_cycles=1)]))
    program = NeuIsaProgram(table=table, snippets={addr: body})
    result = run_program(program)
    # The snippet is shared; the last writer was group 1.
    assert result.scratch[7] == 1


def build_fig15_loop(iterations: int) -> NeuIsaProgram:
    """The paper's Fig. 15 loop: groups 0-2 execute `iterations` times.

    Group 2's uTOp increments Count (scratch word 0) and branches back
    to group 0 while Count < iterations.
    """
    table = ExecutionTable(nx=2, ny=2)
    body_addr, loop_addr = 0x100, 0x200
    plain = snippet_finish()
    loop_body = [
        # Count += 1
        UTopInstruction(scalar_slot=ScalarOp(ScalarOpcode.LOAD, dst=1, imm=0)),
        UTopInstruction(scalar_slot=ScalarOp(ScalarOpcode.ADDI, dst=1, src=1, imm=1)),
        UTopInstruction(scalar_slot=ScalarOp(ScalarOpcode.STORE, src=1, imm=0)),
        # if Count < iterations: uTop.nextGroup %r0 (group 0)
        UTopInstruction(
            scalar_slot=ScalarOp(ScalarOpcode.CMP, dst=2, src=1, imm=iterations)
        ),
        UTopInstruction(scalar_slot=ScalarOp(ScalarOpcode.BRANCH, src=2, imm=1)),
        UTopInstruction(control=ControlOp(ControlOpcode.NEXT_GROUP, reg=0)),
        UTopInstruction(control=FINISH),
    ]
    table.append(UTopGroup(me_utops=[make_me_utop(body_addr, me_cycles=1)]))
    table.append(UTopGroup(me_utops=[make_me_utop(body_addr, me_cycles=1)]))
    table.append(UTopGroup(me_utops=[make_me_utop(loop_addr, me_cycles=1)]))
    return NeuIsaProgram(
        table=table,
        snippets={body_addr: plain, loop_addr: loop_body},
        scratch_init={0: 0},
    )


def test_fig15_loop_executes_requested_iterations():
    program = build_fig15_loop(iterations=4)
    result = run_program(program)
    assert result.scratch[0] == 4
    # Groups 0,1,2 repeated 4 times.
    assert result.dynamic_group_indices == [0, 1, 2] * 4


def test_fig15_loop_single_iteration():
    program = build_fig15_loop(iterations=1)
    result = run_program(program)
    assert result.dynamic_group_indices == [0, 1, 2]


def test_next_group_divergence_raises():
    """Two uTOps of one group naming different targets is an exception
    (paper Fig. 14)."""
    table = ExecutionTable(nx=2, ny=2)
    addr_a, addr_b = 0x100, 0x200
    jump_to_0 = [
        UTopInstruction(control=ControlOp(ControlOpcode.NEXT_GROUP, reg=0)),
        UTopInstruction(control=FINISH),
    ]
    jump_to_1 = [
        UTopInstruction(scalar_slot=ScalarOp(ScalarOpcode.ADDI, dst=1, src=0, imm=1)),
        UTopInstruction(control=ControlOp(ControlOpcode.NEXT_GROUP, reg=1)),
        UTopInstruction(control=FINISH),
    ]
    table.append(
        UTopGroup(
            me_utops=[
                make_me_utop(addr_a, me_cycles=1),
                make_me_utop(addr_b, me_cycles=1),
            ]
        )
    )
    table.append(UTopGroup(me_utops=[make_me_utop(addr_a, me_cycles=1)]))
    program = NeuIsaProgram(
        table=table, snippets={addr_a: jump_to_0, addr_b: jump_to_1}
    )
    with pytest.raises(IsaError, match="divergence"):
        # Group 0's two uTOps name targets 0 and 1.
        NeuIsaInterpreter(program, max_group_executions=10).run()


def test_runaway_loop_guard():
    """An unconditional back-edge trips the execution limit."""
    table = ExecutionTable(nx=1, ny=1)
    addr = 0x100
    body = [
        UTopInstruction(control=ControlOp(ControlOpcode.NEXT_GROUP, reg=0)),
        UTopInstruction(control=FINISH),
    ]
    table.append(UTopGroup(me_utops=[make_me_utop(addr, me_cycles=1)]))
    program = NeuIsaProgram(table=table, snippets={addr: body})
    with pytest.raises(IsaError, match="limit"):
        NeuIsaInterpreter(program, max_group_executions=50).run()


def test_next_group_out_of_range():
    table = ExecutionTable(nx=1, ny=1)
    addr = 0x100
    body = [
        UTopInstruction(scalar_slot=ScalarOp(ScalarOpcode.ADDI, dst=1, src=0, imm=9)),
        UTopInstruction(control=ControlOp(ControlOpcode.NEXT_GROUP, reg=1)),
        UTopInstruction(control=FINISH),
    ]
    table.append(UTopGroup(me_utops=[make_me_utop(addr, me_cycles=1)]))
    program = NeuIsaProgram(table=table, snippets={addr: body})
    with pytest.raises(IsaError, match="out of range"):
        run_program(program)


def test_ve_utop_participates_in_groups():
    table = ExecutionTable(nx=2, ny=2)
    me_addr, ve_addr = 0x100, 0x200
    table.append(
        UTopGroup(
            me_utops=[make_me_utop(me_addr, me_cycles=1)],
            ve_utop=make_ve_utop(ve_addr, ve_cycles=1),
        )
    )
    program = NeuIsaProgram(
        table=table,
        snippets={me_addr: snippet_finish(), ve_addr: snippet_finish()},
    )
    result = run_program(program)
    assert len(result.groups[0].utop_runs) == 2
