"""Unit tests for uTOps, uTOp groups and the execution table."""

import pytest

from repro.errors import IsaError
from repro.isa.utop import (
    ExecutionTable,
    UTop,
    UTopCost,
    UTopGroup,
    UTopKind,
    make_me_utop,
    make_ve_utop,
)


def test_me_utop_requires_me():
    utop = make_me_utop(snippet_addr=0x100, me_cycles=64.0, ve_cycles=8.0)
    assert utop.occupies_me
    assert utop.cost.total_cycles == 64.0


def test_ve_utop_cannot_carry_me_work():
    with pytest.raises(IsaError):
        UTop(kind=UTopKind.VE, snippet_addr=0x10, cost=UTopCost(me_cycles=1.0))


def test_negative_costs_rejected():
    with pytest.raises(IsaError):
        UTopCost(me_cycles=-1.0)
    with pytest.raises(IsaError):
        UTopCost(parallelism=0)


def test_group_shape_constraints():
    me = make_me_utop(0x100, me_cycles=10)
    ve = make_ve_utop(0x200, ve_cycles=10)
    group = UTopGroup(me_utops=[me], ve_utop=ve)
    assert group.num_me_utops == 1
    assert len(group.utops) == 2
    with pytest.raises(IsaError):
        UTopGroup(me_utops=[], ve_utop=None)
    with pytest.raises(IsaError):
        UTopGroup(me_utops=[ve])  # VE uTOp in the ME list
    with pytest.raises(IsaError):
        UTopGroup(me_utops=[me], ve_utop=me)  # ME uTOp in the VE slot


def test_execution_table_row_width():
    """A row has nx ME entries + 1 VE entry (paper Fig. 15)."""
    table = ExecutionTable(nx=4, ny=4)
    me_utops = [make_me_utop(0x100, me_cycles=1) for _ in range(2)]
    idx = table.append(UTopGroup(me_utops=me_utops))
    cells = table.row_cells(idx)
    assert len(cells) == 5
    assert cells[:2] == [0x100, 0x100]
    assert cells[2:] == [None, None, None]  # null entries


def test_execution_table_rejects_oversized_group():
    table = ExecutionTable(nx=2, ny=2)
    me_utops = [make_me_utop(0x100, me_cycles=1) for _ in range(3)]
    with pytest.raises(IsaError):
        table.append(UTopGroup(me_utops=me_utops))


def test_execution_table_group_lookup_bounds():
    table = ExecutionTable(nx=2, ny=2)
    table.append(UTopGroup(me_utops=[make_me_utop(0x1, me_cycles=1)]))
    with pytest.raises(IsaError):
        table.group(5)


def test_snippet_sharing_is_visible():
    """Tiles of one operator share a snippet (code-size control)."""
    table = ExecutionTable(nx=4, ny=4)
    shared = [make_me_utop(0x400, me_cycles=1) for _ in range(4)]
    table.append(UTopGroup(me_utops=shared))
    refs = table.snippet_addresses()
    assert refs == {0x400: 4}


def test_group_cost_aggregation():
    me = make_me_utop(0x1, me_cycles=10, ve_cycles=2, hbm_bytes=100)
    ve = make_ve_utop(0x2, ve_cycles=5, hbm_bytes=50)
    group = UTopGroup(me_utops=[me, me], ve_utop=ve)
    assert group.total_me_cycles == 20
    assert group.total_ve_cycles == 9
    assert group.total_hbm_bytes == 250
