"""Tests for the NeuISA program container."""

import pytest

from repro.errors import IsaError
from repro.isa.control import ControlOp, ControlOpcode
from repro.isa.program import NeuIsaProgram, flatten_utops, utop_dependencies
from repro.isa.utop import (
    ExecutionTable,
    UTopGroup,
    UTopInstruction,
    make_me_utop,
    make_ve_utop,
)


def _finish_snippet():
    return [UTopInstruction(control=ControlOp(ControlOpcode.FINISH))]


def _program(num_groups=3, share_snippet=True):
    table = ExecutionTable(nx=4, ny=4)
    snippets = {}
    for g in range(num_groups):
        addr = 0x100 if share_snippet else 0x100 + g * 0x40
        snippets[addr] = _finish_snippet()
        table.append(
            UTopGroup(
                me_utops=[make_me_utop(addr, me_cycles=g + 1) for _ in range(2)],
                ve_utop=make_ve_utop(addr, ve_cycles=1.0),
            )
        )
    return NeuIsaProgram(table=table, snippets=snippets)


def test_empty_program_rejected():
    with pytest.raises(IsaError):
        NeuIsaProgram(table=ExecutionTable(nx=1, ny=1), snippets={})


def test_missing_snippet_detected():
    table = ExecutionTable(nx=1, ny=1)
    table.append(UTopGroup(me_utops=[make_me_utop(0xBAD, me_cycles=1)]))
    with pytest.raises(IsaError):
        NeuIsaProgram(table=table, snippets={0x100: _finish_snippet()})


def test_counts():
    program = _program(3)
    assert program.num_groups == 3
    assert program.num_utops == 9
    assert program.num_me_utops == 6


def test_cost_aggregation():
    program = _program(2)
    assert program.total_me_cycles == 2 * 1 + 2 * 2
    assert program.total_ve_cycles == 2.0


def test_snippet_sharing_reduces_code_size():
    shared = _program(3, share_snippet=True)
    assert shared.sharing_factor() == pytest.approx(9.0)
    unshared = _program(3, share_snippet=False)
    assert unshared.sharing_factor() == pytest.approx(3.0)


def test_dependencies_form_a_chain():
    program = _program(3)
    deps = utop_dependencies(program)
    assert deps == {0: [], 1: [0], 2: [1]}


def test_flatten_order():
    program = _program(2)
    flat = flatten_utops(program)
    assert len(flat) == 6
    # ME uTOps come before the group's VE uTOp.
    assert flat[0].occupies_me and not flat[2].occupies_me
