"""Unit tests for the baseline VLIW ISA model."""

import pytest

from repro.errors import IsaError
from repro.isa.vliw import (
    MatrixOp,
    MatrixOpcode,
    ScalarOp,
    VectorOp,
    VectorOpcode,
    VliwInstruction,
    VliwProgram,
)


def test_nop_instruction_is_nop():
    inst = VliwInstruction.build(num_me_slots=2, num_ve_slots=2)
    assert inst.is_nop
    assert inst.active_mes == ()
    assert inst.active_ves == ()


def test_slot_padding_fills_with_nops():
    inst = VliwInstruction.build(
        me_ops=[MatrixOp(MatrixOpcode.POP, engine=0)],
        num_me_slots=4,
        num_ve_slots=2,
    )
    assert inst.num_me_slots == 4
    assert inst.active_mes == (0,)
    assert all(op.is_nop for op in inst.me_slots[1:])


def test_slot_overflow_rejected():
    with pytest.raises(IsaError):
        VliwInstruction.build(
            me_ops=[MatrixOp(MatrixOpcode.POP)] * 3,
            num_me_slots=2,
            num_ve_slots=1,
        )


def test_pop_latency_is_eight_cycles():
    """Paper Fig. 6: each pop takes 8 cycles for an 8x128 vector."""
    pop = MatrixOp(MatrixOpcode.POP)
    assert pop.latency_cycles == 8
    inst = VliwInstruction.build(
        me_ops=[pop], num_me_slots=1, num_ve_slots=1
    )
    assert inst.issue_cycles == 8


def test_ve_op_single_cycle():
    inst = VliwInstruction.build(
        ve_ops=[VectorOp(VectorOpcode.RELU)], num_me_slots=1, num_ve_slots=1
    )
    assert inst.issue_cycles == 1
    assert inst.active_ves == (0,)


def test_program_validates_slot_widths():
    good = VliwInstruction.build(num_me_slots=2, num_ve_slots=2)
    program = VliwProgram(instructions=[good], num_mes_used=2, num_ves_used=2)
    assert len(program) == 1
    bad = VliwInstruction.build(num_me_slots=3, num_ve_slots=2)
    with pytest.raises(IsaError):
        program.append(bad)


def test_program_rejects_mismatched_construction():
    inst = VliwInstruction.build(num_me_slots=1, num_ve_slots=1)
    with pytest.raises(IsaError):
        VliwProgram(instructions=[inst], num_mes_used=2, num_ves_used=1)


def test_total_issue_cycles_sums_per_instruction():
    pop = VliwInstruction.build(
        me_ops=[MatrixOp(MatrixOpcode.POP)], num_me_slots=1, num_ve_slots=1
    )
    relu = VliwInstruction.build(
        ve_ops=[VectorOp(VectorOpcode.RELU)], num_me_slots=1, num_ve_slots=1
    )
    program = VliwProgram(
        instructions=[pop, relu], num_mes_used=1, num_ves_used=1
    )
    assert program.total_issue_cycles == 9


def test_engine_busy_accounting():
    pop0 = MatrixOp(MatrixOpcode.POP, engine=0)
    inst = VliwInstruction.build(
        me_ops=[pop0], num_me_slots=2, num_ve_slots=1
    )
    program = VliwProgram(instructions=[inst] * 4, num_mes_used=2, num_ves_used=1)
    assert program.me_busy_cycles(0) == 4 * 8
    assert program.me_busy_cycles(1) == 0  # the coupled slot idles


def test_scalar_op_default_is_nop():
    assert ScalarOp().is_nop
