"""Tests for control-op definitions and the scalar register file."""

import pytest

from repro.errors import IsaError
from repro.isa.control import (
    ControlOp,
    ControlOpcode,
    NUM_SCALAR_REGISTERS,
    ScalarRegisterFile,
)


def test_r0_reads_zero_and_ignores_writes():
    regs = ScalarRegisterFile()
    regs.write(0, 42)
    assert regs.read(0) == 0


def test_register_write_read():
    regs = ScalarRegisterFile()
    regs.write(3, 7)
    assert regs.read(3) == 7
    assert regs.snapshot()[3] == 7


def test_out_of_range_register_rejected():
    regs = ScalarRegisterFile()
    with pytest.raises(IsaError):
        regs.read(NUM_SCALAR_REGISTERS)
    with pytest.raises(IsaError):
        regs.write(-1, 0)


def test_finish_takes_no_operand():
    with pytest.raises(IsaError):
        ControlOp(ControlOpcode.FINISH, reg=1)
    assert str(ControlOp(ControlOpcode.FINISH)) == "uTop.finish;"


def test_control_op_register_validation():
    with pytest.raises(IsaError):
        ControlOp(ControlOpcode.NEXT_GROUP, reg=NUM_SCALAR_REGISTERS)
    op = ControlOp(ControlOpcode.NEXT_GROUP, reg=2)
    assert str(op) == "uTop.nextGroup %r2;"
