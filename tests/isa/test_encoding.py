"""Round-trip tests for the binary encoding, including property tests."""

from hypothesis import given, strategies as st

from repro.isa.control import ControlOp, ControlOpcode, NUM_SCALAR_REGISTERS
from repro.isa.encoding import (
    decode_control_op,
    decode_matrix_op,
    decode_scalar_op,
    decode_snippet,
    decode_utop_instruction,
    decode_vector_op,
    decode_vliw_instruction,
    encode_control_op,
    encode_matrix_op,
    encode_scalar_op,
    encode_snippet,
    encode_utop_instruction,
    encode_vector_op,
    encode_vliw_instruction,
    utop_instruction_size_bytes,
)
from repro.isa.utop import UTopInstruction
from repro.isa.vliw import (
    MatrixOp,
    MatrixOpcode,
    MiscOp,
    MiscOpcode,
    ScalarOp,
    ScalarOpcode,
    VectorOp,
    VectorOpcode,
    VliwInstruction,
)

matrix_ops = st.builds(
    MatrixOp,
    opcode=st.sampled_from(list(MatrixOpcode)),
    engine=st.integers(0, 255),
    dst=st.integers(0, 65535),
    src=st.integers(0, 65535),
)
vector_ops = st.builds(
    VectorOp,
    opcode=st.sampled_from(list(VectorOpcode)),
    engine=st.integers(0, 255),
    dst=st.integers(0, 65535),
    src_a=st.integers(0, 65535),
    src_b=st.integers(0, 65535),
)
scalar_ops = st.builds(
    ScalarOp,
    opcode=st.sampled_from(list(ScalarOpcode)),
    dst=st.integers(0, 255),
    src=st.integers(0, 255),
    imm=st.integers(-(2**31), 2**31 - 1),
)
misc_ops = st.builds(
    MiscOp,
    opcode=st.sampled_from(list(MiscOpcode)),
    addr=st.integers(0, 2**32 - 1),
    size=st.integers(0, 2**32 - 1),
)


def control_ops():
    finish = st.just(ControlOp(ControlOpcode.FINISH))
    with_reg = st.builds(
        ControlOp,
        opcode=st.sampled_from(
            [ControlOpcode.NEXT_GROUP, ControlOpcode.GROUP, ControlOpcode.INDEX]
        ),
        reg=st.integers(0, NUM_SCALAR_REGISTERS - 1),
    )
    return st.one_of(finish, with_reg)


utop_instructions = st.builds(
    UTopInstruction,
    me_slot=st.one_of(st.none(), matrix_ops),
    ve_slots=st.lists(vector_ops, max_size=4).map(tuple),
    scalar_slot=st.one_of(st.none(), scalar_ops),
    misc_slot=misc_ops,
    control=st.one_of(st.none(), control_ops()),
)


@given(matrix_ops)
def test_matrix_op_round_trip(op):
    decoded, _ = decode_matrix_op(encode_matrix_op(op))
    assert decoded == op


@given(vector_ops)
def test_vector_op_round_trip(op):
    decoded, _ = decode_vector_op(encode_vector_op(op))
    assert decoded == op


@given(scalar_ops)
def test_scalar_op_round_trip(op):
    decoded, _ = decode_scalar_op(encode_scalar_op(op))
    assert decoded == op


@given(control_ops())
def test_control_op_round_trip(op):
    decoded, _ = decode_control_op(encode_control_op(op))
    assert decoded == op


@given(utop_instructions)
def test_utop_instruction_round_trip(inst):
    data = encode_utop_instruction(inst)
    decoded, consumed = decode_utop_instruction(data)
    assert consumed == len(data)
    assert decoded.me_slot == inst.me_slot
    assert decoded.ve_slots == inst.ve_slots
    assert decoded.scalar_slot == inst.scalar_slot
    assert decoded.control == inst.control
    # NOP misc slots are normalised away by the presence bitmap.
    if not inst.misc_slot.is_nop:
        assert decoded.misc_slot == inst.misc_slot


@given(st.lists(utop_instructions, max_size=8))
def test_snippet_round_trip(body):
    data = encode_snippet(body)
    decoded, consumed = decode_snippet(data)
    assert consumed == len(data)
    assert len(decoded) == len(body)


@given(
    st.lists(matrix_ops, min_size=1, max_size=4),
    st.lists(vector_ops, min_size=1, max_size=4),
)
def test_vliw_instruction_round_trip(me_ops, ve_ops):
    inst = VliwInstruction(
        me_slots=tuple(me_ops), ve_slots=tuple(ve_ops), ls_slots=(ScalarOp(),)
    )
    decoded, consumed = decode_vliw_instruction(encode_vliw_instruction(inst))
    assert decoded == inst


def test_utop_instruction_is_compact():
    """Optional slots must not consume bytes when absent."""
    empty = UTopInstruction()
    full = UTopInstruction(
        me_slot=MatrixOp(MatrixOpcode.POP),
        ve_slots=(VectorOp(VectorOpcode.RELU),),
        scalar_slot=ScalarOp(ScalarOpcode.ADDI),
        control=ControlOp(ControlOpcode.FINISH),
    )
    assert utop_instruction_size_bytes(empty) < utop_instruction_size_bytes(full)
