"""Error-hierarchy and miscellaneous coverage tests."""

import pytest

import repro
from repro import errors


def test_all_errors_derive_from_neu10error():
    for name in dir(errors):
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, Exception):
            assert issubclass(obj, errors.Neu10Error) or obj is errors.Neu10Error


def test_specific_hierarchy_relations():
    assert issubclass(errors.SchedulerError, errors.SimulationError)
    assert issubclass(errors.HypercallError, errors.VirtualizationError)
    assert issubclass(errors.DmaFault, errors.VirtualizationError)


def test_catching_base_covers_subsystems():
    with pytest.raises(errors.Neu10Error):
        raise errors.CommandRingError("x")
    with pytest.raises(errors.Neu10Error):
        raise errors.SegmentationFault("x")


def test_package_exports():
    assert repro.__version__
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_ablations_driver_smoke():
    from repro.experiments.ablations import ablate_harvesting

    points = ablate_harvesting("MNIST", "DLRM", target_requests=1)
    assert set(points) == {"harvest-on", "harvest-off"}
    for point in points.values():
        assert all(t > 0 for t in point.throughputs)


def test_fig25_driver_smoke():
    from repro.experiments.fig25_scaling import run as fig25

    result = fig25("MNIST", "DLRM", configs=[(2, 2), (4, 4)],
                   target_requests=1)
    assert (2, 2) in result.points and (4, 4) in result.points
    assert result.points[(2, 2)]["v10"] == pytest.approx(1.0, rel=0.2)


def test_fig26_driver_smoke():
    from repro.experiments.fig26_bandwidth import run as fig26

    result = fig26("MNIST", "DLRM", bandwidths_gbps=[1200],
                   target_requests=1)
    assert 1200 in result.speedup
    assert result.speedup[1200] > 0
    assert result.is_monotone_nondecreasing()


def test_serving_temporal_scheme():
    """The fifth scheme (oversubscribed temporal sharing) completes the
    standard collocation run."""
    from repro.serving.server import (
        SCHEME_TEMPORAL,
        ServingConfig,
        WorkloadSpec,
        run_collocation,
    )

    pair = run_collocation(
        [
            WorkloadSpec("MNIST", 8, alloc_mes=4, alloc_ves=4),
            WorkloadSpec("DLRM", 8, alloc_mes=4, alloc_ves=4),
        ],
        SCHEME_TEMPORAL,
        ServingConfig(target_requests=2),
    )
    assert all(t.completed_requests >= 2 for t in pair.tenants)
