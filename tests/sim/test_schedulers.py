"""Scheduler behaviour tests: isolation, harvesting, preemption, the
paper's SectionIII-E rules."""

import pytest

from repro.config import NpuCoreConfig
from repro.errors import SchedulerError
from repro.sim.engine import Simulator
from repro.sim.sched_neu10 import Neu10Scheduler
from repro.sim.sched_static import StaticPartitionScheduler
from repro.sim.sched_temporal import TemporalNeu10Scheduler

from tests.conftest import make_me_graph, make_tenant, make_ve_graph

CORE = NpuCoreConfig()  # 4 MEs, 4 VEs


def _solo_latency(graph_fn, alloc_mes, alloc_ves, requests=2):
    tenant = make_tenant(graph_fn(), CORE, alloc_mes=alloc_mes,
                         alloc_ves=alloc_ves, target_requests=requests)
    result = Simulator(CORE, StaticPartitionScheduler(), [tenant]).run()
    return result.tenant(0).mean_latency


# ----------------------------------------------------------------------
# Neu10-NH: strict spatial isolation
# ----------------------------------------------------------------------
def test_static_partition_isolation_property():
    """A tenant under Neu10-NH performs as it would alone on an equally
    sized partition (the MIG-like guarantee) -- exactly true when the
    collocated tenant does not contend for HBM bandwidth."""
    solo = _solo_latency(make_me_graph, 2, 2)
    t0 = make_tenant(make_me_graph("a"), CORE, 0, target_requests=2)
    t1 = make_tenant(make_me_graph("b"), CORE, 1, target_requests=2)
    result = Simulator(CORE, StaticPartitionScheduler(), [t0, t1]).run()
    collocated = result.tenant(0).mean_latency
    assert collocated == pytest.approx(solo, rel=0.02)


def test_static_partition_shares_only_hbm():
    """Engines are isolated, but the HBM channel is fairly shared
    (paper SectionIII-B): a bandwidth-hungry neighbour may slow
    memory-bound operators, and nothing else."""
    solo = _solo_latency(make_me_graph, 2, 2)
    t0 = make_tenant(make_me_graph(), CORE, 0, target_requests=2)
    t1 = make_tenant(make_ve_graph(), CORE, 1, target_requests=2)
    result = Simulator(CORE, StaticPartitionScheduler(), [t0, t1]).run()
    collocated = result.tenant(0).mean_latency
    assert solo * 0.99 <= collocated < solo * 1.5


def test_static_partition_never_preempts():
    t0 = make_tenant(make_me_graph(), CORE, 0, target_requests=2)
    t1 = make_tenant(make_ve_graph(), CORE, 1, target_requests=2)
    result = Simulator(CORE, StaticPartitionScheduler(), [t0, t1]).run()
    assert result.stats.preemption_count == 0


def test_static_partition_rejects_oversubscription():
    t0 = make_tenant(make_me_graph(), CORE, 0, alloc_mes=3, alloc_ves=3)
    t1 = make_tenant(make_ve_graph(), CORE, 1, alloc_mes=3, alloc_ves=3)
    sim = Simulator(CORE, StaticPartitionScheduler(), [t0, t1])
    with pytest.raises(SchedulerError):
        sim.run()


# ----------------------------------------------------------------------
# Neu10: harvesting
# ----------------------------------------------------------------------
def test_harvesting_speeds_up_me_tenant():
    """Collocated with a VE-heavy tenant, the ME-heavy tenant harvests
    idle MEs and beats its Neu10-NH latency."""
    def collocate(scheduler):
        t0 = make_tenant(make_me_graph(), CORE, 0, target_requests=3)
        t1 = make_tenant(make_ve_graph(), CORE, 1, target_requests=3)
        result = Simulator(CORE, scheduler, [t0, t1]).run()
        return result.tenant(0).mean_latency

    nh = collocate(StaticPartitionScheduler())
    neu10 = collocate(Neu10Scheduler())
    assert neu10 < nh * 0.95


def test_harvesting_disabled_matches_static():
    def collocate(scheduler):
        t0 = make_tenant(make_me_graph(), CORE, 0, target_requests=2)
        t1 = make_tenant(make_ve_graph(), CORE, 1, target_requests=2)
        result = Simulator(CORE, scheduler, [t0, t1]).run()
        return result.tenant(0).mean_latency

    nh = collocate(StaticPartitionScheduler())
    no_harvest = collocate(Neu10Scheduler(harvesting=False))
    assert no_harvest == pytest.approx(nh, rel=0.02)


def test_harvested_tenant_overhead_is_bounded():
    """Table III: the blocked-time overhead of being harvested is small
    relative to end-to-end execution."""
    t0 = make_tenant(make_me_graph(), CORE, 0, target_requests=3)
    t1 = make_tenant(make_ve_graph(), CORE, 1, target_requests=3)
    result = Simulator(CORE, Neu10Scheduler(), [t0, t1]).run()
    for tid in (0, 1):
        assert result.tenant(tid).blocked_fraction < 0.25


def test_reclaim_causes_preemptions():
    """When the VE tenant's occasional ME work arrives, harvesters must
    be preempted (paying the 256-cycle penalty)."""
    t0 = make_tenant(make_me_graph(), CORE, 0, target_requests=3)
    t1 = make_tenant(make_ve_graph(), CORE, 1, target_requests=3)
    result = Simulator(CORE, Neu10Scheduler(), [t0, t1]).run()
    assert result.stats.preemption_count > 0
    assert result.stats.reclaim_penalty_cycles > 0


def test_full_allocation_priority():
    """Two ME-heavy tenants: neither can harvest (both keep their MEs
    busy), so Neu10 degenerates to the static split."""
    def collocate(scheduler):
        t0 = make_tenant(make_me_graph("a"), CORE, 0, target_requests=2)
        t1 = make_tenant(make_me_graph("b"), CORE, 1, target_requests=2)
        result = Simulator(CORE, scheduler, [t0, t1]).run()
        return result.tenant(0).mean_latency

    nh = collocate(StaticPartitionScheduler())
    neu10 = collocate(Neu10Scheduler())
    assert neu10 == pytest.approx(nh, rel=0.1)


def test_solo_tenant_harvests_whole_core():
    """A lone vNPU with a 2-ME allocation harvests up to all 4 MEs."""
    solo_2me = _solo_latency(make_me_graph, 2, 2, requests=2)
    tenant = make_tenant(make_me_graph(), CORE, alloc_mes=2, alloc_ves=2,
                         target_requests=2)
    result = Simulator(CORE, Neu10Scheduler(), [tenant]).run()
    assert result.tenant(0).mean_latency < solo_2me * 0.75


# ----------------------------------------------------------------------
# Temporal-sharing mode
# ----------------------------------------------------------------------
def test_temporal_mode_supports_oversubscription():
    t0 = make_tenant(make_me_graph("a"), CORE, 0, alloc_mes=4, alloc_ves=4,
                     target_requests=2)
    t1 = make_tenant(make_me_graph("b"), CORE, 1, alloc_mes=4, alloc_ves=4,
                     target_requests=2)
    result = Simulator(CORE, TemporalNeu10Scheduler(), [t0, t1]).run()
    assert result.tenant(0).completed_requests >= 2
    assert result.tenant(1).completed_requests >= 2


def test_temporal_mode_priority_weighting():
    """A 4x-priority tenant finishes its requests in less time than an
    equal-priority collocated tenant."""
    t0 = make_tenant(make_me_graph("hi"), CORE, 0, target_requests=3,
                     priority=4.0)
    t1 = make_tenant(make_me_graph("lo"), CORE, 1, target_requests=3,
                     priority=1.0)
    result = Simulator(CORE, TemporalNeu10Scheduler(), [t0, t1]).run()
    assert result.tenant(0).mean_latency < result.tenant(1).mean_latency


def test_temporal_mode_fairness_between_equals():
    t0 = make_tenant(make_me_graph("a"), CORE, 0, target_requests=3)
    t1 = make_tenant(make_me_graph("b"), CORE, 1, target_requests=3)
    result = Simulator(CORE, TemporalNeu10Scheduler(), [t0, t1]).run()
    l0 = result.tenant(0).mean_latency
    l1 = result.tenant(1).mean_latency
    assert l0 == pytest.approx(l1, rel=0.2)
