"""Property-based scheduler invariants over randomised workloads.

For random small workload mixes and random (feasible) allocations, every
scheduling policy must uphold the simulator's global invariants:

- all requests complete (work conservation / no starvation),
- engine-class utilizations stay within [0, 1],
- productive busy time never exceeds assigned engine time,
- determinism: identical inputs give identical outcomes,
- Neu10 never does *worse* than Neu10-NH on total completion time for
  the same tenants (harvesting is opportunistic, modulo bounded
  reclaim overhead).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import repro.compiler as comp
from repro.baselines.pmt import PmtScheduler
from repro.baselines.v10 import V10Scheduler
from repro.compiler.lowering import lower_graph_neuisa, lower_graph_vliw
from repro.config import NpuCoreConfig
from repro.sim.engine import Simulator, Tenant
from repro.sim.sched_neu10 import Neu10Scheduler
from repro.sim.sched_static import StaticPartitionScheduler
from repro.sim.sched_temporal import TemporalNeu10Scheduler

CORE = NpuCoreConfig()

# Strategy: a small random workload graph (1-4 layers, random op mix).
layer_kinds = st.sampled_from(["matmul", "gemv", "softmax", "embed"])


def _graph_from_plan(plan) -> comp.Graph:
    graph = comp.Graph("rand")
    for i, kind in enumerate(plan):
        if kind == "matmul":
            graph.add(
                comp.MatMul(f"mm{i}", m=512, k=256, n=512,
                            epilogue=[comp.ElementwiseKind.RELU],
                            weights_streamed=False)
            )
        elif kind == "gemv":
            graph.add(comp.MatMul(f"gemv{i}", m=8, k=512, n=1024))
        elif kind == "softmax":
            graph.add(comp.Softmax(f"sm{i}", rows=512, cols=256))
        else:
            graph.add(
                comp.EmbeddingLookup(f"emb{i}", num_lookups=1024, dim=64,
                                     table_bytes=10**9)
            )
    return graph


workload_plans = st.lists(layer_kinds, min_size=1, max_size=4)


def _tenants(plan_a, plan_b, isa, alloc_a, requests=1):
    graphs = [_graph_from_plan(plan_a), _graph_from_plan(plan_b)]
    allocs = [(alloc_a, alloc_a), (CORE.num_mes - alloc_a, CORE.num_ves - alloc_a)]
    tenants = []
    for idx, (graph, (mes, ves)) in enumerate(zip(graphs, allocs)):
        if isa == "neuisa":
            compiled = lower_graph_neuisa(graph, CORE)
        else:
            compiled = lower_graph_vliw(graph, CORE, CORE.num_mes, CORE.num_ves)
        tenants.append(
            Tenant(idx, f"t{idx}", compiled, alloc_mes=mes, alloc_ves=ves,
                   target_requests=requests)
        )
    return tenants


def _check_invariants(result, tenants):
    stats = result.stats
    assert -1e-9 <= stats.me_utilization() <= 1.0 + 1e-9
    assert -1e-9 <= stats.ve_utilization() <= 1.0 + 1e-9
    for tenant in tenants:
        tr = result.tenant(tenant.tenant_id)
        assert tr.completed_requests >= tenant.target_requests
        assert all(l > 0 for l in tr.latencies_cycles)
        assert 0.0 <= tr.blocked_fraction <= 1.0


@settings(max_examples=15, deadline=None)
@given(plan_a=workload_plans, plan_b=workload_plans,
       alloc_a=st.integers(1, 3))
def test_neu10_invariants_random_workloads(plan_a, plan_b, alloc_a):
    tenants = _tenants(plan_a, plan_b, "neuisa", alloc_a)
    result = Simulator(CORE, Neu10Scheduler(), tenants).run()
    _check_invariants(result, tenants)


@settings(max_examples=10, deadline=None)
@given(plan_a=workload_plans, plan_b=workload_plans,
       alloc_a=st.integers(1, 3))
def test_static_invariants_random_workloads(plan_a, plan_b, alloc_a):
    tenants = _tenants(plan_a, plan_b, "neuisa", alloc_a)
    result = Simulator(CORE, StaticPartitionScheduler(), tenants).run()
    _check_invariants(result, tenants)
    assert result.stats.preemption_count == 0


@settings(max_examples=10, deadline=None)
@given(plan_a=workload_plans, plan_b=workload_plans)
def test_temporal_invariants_random_workloads(plan_a, plan_b):
    tenants = _tenants(plan_a, plan_b, "neuisa", alloc_a=4)
    result = Simulator(CORE, TemporalNeu10Scheduler(), tenants).run()
    _check_invariants(result, tenants)


@settings(max_examples=10, deadline=None)
@given(plan_a=workload_plans, plan_b=workload_plans,
       scheduler=st.sampled_from(["pmt", "v10"]))
def test_vliw_baseline_invariants_random_workloads(plan_a, plan_b, scheduler):
    tenants = _tenants(plan_a, plan_b, "vliw", alloc_a=2)
    sched = PmtScheduler() if scheduler == "pmt" else V10Scheduler()
    result = Simulator(CORE, sched, tenants).run()
    _check_invariants(result, tenants)


@settings(max_examples=10, deadline=None)
@given(plan_a=workload_plans, plan_b=workload_plans,
       alloc_a=st.integers(1, 3))
def test_harvesting_never_hurts_makespan(plan_a, plan_b, alloc_a):
    """Neu10's total completion time is never meaningfully worse than
    Neu10-NH for the same tenants (reclaim overhead is bounded).  The
    bound has an additive term because the reclaim penalty is a fixed
    cycle count: on the tiny workloads hypothesis generates, a handful
    of 256-cycle penalties is a large *fraction* of the makespan while
    still being exactly the bounded overhead the paper describes."""
    def run(sched):
        tenants = _tenants(plan_a, plan_b, "neuisa", alloc_a)
        result = Simulator(CORE, sched, tenants).run()
        return result.total_cycles, result.stats.preemption_count

    nh, _ = run(StaticPartitionScheduler())
    neu, preemptions = run(Neu10Scheduler())
    slack = (preemptions + 1) * CORE.me_preemption_cycles
    assert neu <= nh * 1.10 + slack


@settings(max_examples=8, deadline=None)
@given(plan_a=workload_plans, plan_b=workload_plans)
def test_determinism_random_workloads(plan_a, plan_b):
    def run():
        tenants = _tenants(plan_a, plan_b, "neuisa", alloc_a=2)
        result = Simulator(CORE, Neu10Scheduler(), tenants).run()
        return (
            result.total_cycles,
            tuple(result.tenant(0).latencies_cycles),
            tuple(result.tenant(1).latencies_cycles),
        )

    assert run() == run()
