"""Tests for the PMT and V10 baseline schedulers."""

import pytest

from repro.config import NpuCoreConfig
from repro.baselines.pmt import PmtScheduler
from repro.baselines.v10 import V10Scheduler
from repro.sim.engine import Simulator

from tests.conftest import make_me_graph, make_tenant, make_ve_graph

CORE = NpuCoreConfig()


def _pair(isa: str, scheduler, requests: int = 3):
    t0 = make_tenant(make_me_graph(), CORE, 0, isa=isa, target_requests=requests)
    t1 = make_tenant(make_ve_graph(), CORE, 1, isa=isa, target_requests=requests)
    return Simulator(CORE, scheduler, [t0, t1]).run()


# ----------------------------------------------------------------------
# PMT
# ----------------------------------------------------------------------
def test_pmt_serializes_the_core():
    """Under PMT only one tenant runs at a time: with quanta shorter
    than a request, waiting for the collocated tenant's turns inflates
    latency well beyond solo full-core execution."""
    solo = make_tenant(make_me_graph(), CORE, isa="vliw", alloc_mes=4,
                       alloc_ves=4, target_requests=2)
    solo_lat = Simulator(CORE, PmtScheduler(), [solo]).run().tenant(0).mean_latency

    t0 = make_tenant(make_me_graph(), CORE, 0, isa="vliw", target_requests=6)
    t1 = make_tenant(make_me_graph("other"), CORE, 1, isa="vliw",
                     target_requests=6)
    result = Simulator(
        CORE, PmtScheduler(quantum_cycles=solo_lat / 2), [t0, t1]
    ).run()
    shared_lat = result.tenant(0).mean_latency
    assert shared_lat > solo_lat * 1.3


def test_pmt_switches_and_preempts():
    result = _pair("vliw", PmtScheduler(quantum_cycles=10_000.0))
    assert result.stats.preemption_count > 0


def test_pmt_completes_both_tenants():
    result = _pair("vliw", PmtScheduler())
    assert result.tenant(0).completed_requests >= 3
    assert result.tenant(1).completed_requests >= 3


def test_pmt_priority_weighting():
    t0 = make_tenant(make_me_graph("hi"), CORE, 0, isa="vliw",
                     target_requests=3, priority=4.0)
    t1 = make_tenant(make_me_graph("lo"), CORE, 1, isa="vliw",
                     target_requests=3, priority=1.0)
    result = Simulator(CORE, PmtScheduler(), [t0, t1]).run()
    assert result.tenant(0).mean_latency <= result.tenant(1).mean_latency


# ----------------------------------------------------------------------
# V10
# ----------------------------------------------------------------------
def test_v10_overlaps_me_and_ve_work():
    """V10 lets VE-only operators run under a foreign ME operator, so it
    beats PMT's full serialization for an ME+VE pair."""
    pmt = _pair("vliw", PmtScheduler())
    v10 = _pair("vliw", V10Scheduler())
    assert v10.total_cycles < pmt.total_cycles


def test_v10_exclusive_me_array():
    """Two ME-heavy tenants cannot overlap ME operators under V10: the
    run takes at least the sum of the serialized ME time."""
    t0 = make_tenant(make_me_graph("a"), CORE, 0, isa="vliw", target_requests=2)
    t1 = make_tenant(make_me_graph("b"), CORE, 1, isa="vliw", target_requests=2)
    result = Simulator(CORE, V10Scheduler(), [t0, t1]).run()
    me_integral = result.stats.me_busy_integral
    # At most 4 engines busy at a time, but never two operators at once:
    # the busy integral per cycle can't exceed one op's coupled width.
    assert me_integral <= result.total_cycles * CORE.num_mes + 1e-6


def test_v10_fairness_preemption_triggers():
    """With one tenant running very long operators, the fairness check
    must preempt mid-operator once the service deficit crosses the
    threshold."""
    import repro.compiler as comp
    from tests.conftest import make_tenant as _mk

    long_ops = comp.Graph("long")
    for i in range(2):
        long_ops.add(
            comp.MatMul(f"big{i}", m=4096, k=2048, n=2048,
                        weights_streamed=False)
        )
    t0 = _mk(long_ops, CORE, 0, isa="vliw", target_requests=2)
    t1 = make_tenant(make_me_graph("b"), CORE, 1, isa="vliw",
                     target_requests=2)
    result = Simulator(
        CORE, V10Scheduler(preempt_threshold=20_000.0, check_period=5_000.0),
        [t0, t1],
    ).run()
    assert result.stats.preemption_count > 0


def test_v10_completes_both_tenants():
    result = _pair("vliw", V10Scheduler())
    assert result.tenant(0).completed_requests >= 3
    assert result.tenant(1).completed_requests >= 3


def test_v10_balances_equal_tenants():
    t0 = make_tenant(make_me_graph("a"), CORE, 0, isa="vliw", target_requests=3)
    t1 = make_tenant(make_me_graph("b"), CORE, 1, isa="vliw", target_requests=3)
    result = Simulator(CORE, V10Scheduler(), [t0, t1]).run()
    l0 = result.tenant(0).mean_latency
    l1 = result.tenant(1).mean_latency
    assert l0 == pytest.approx(l1, rel=0.35)
