"""Engine-level tests: request lifecycle, conservation, determinism."""

import pytest

import repro.compiler as comp
from repro.compiler.lowering import lower_graph_neuisa
from repro.config import NpuCoreConfig
from repro.errors import SimulationError
from repro.sim.engine import Simulator, Tenant
from repro.sim.sched_neu10 import Neu10Scheduler
from repro.sim.sched_static import StaticPartitionScheduler

from tests.conftest import make_me_graph, make_tenant, make_ve_graph

CORE = NpuCoreConfig()


def test_single_request_completes():
    tenant = make_tenant(make_me_graph(), CORE, alloc_mes=4, alloc_ves=4,
                         target_requests=1)
    result = Simulator(CORE, StaticPartitionScheduler(), [tenant]).run()
    tr = result.tenant(0)
    assert tr.completed_requests >= 1
    assert tr.mean_latency > 0


def test_closed_loop_latency_excludes_queueing():
    """Closed-loop requests are issued at completion of the previous one,
    so latency equals service time and is roughly constant."""
    tenant = make_tenant(make_me_graph(), CORE, alloc_mes=4, alloc_ves=4,
                         target_requests=4)
    result = Simulator(CORE, StaticPartitionScheduler(), [tenant]).run()
    lats = result.tenant(0).latencies_cycles
    assert len(lats) >= 4
    assert max(lats) / min(lats) < 1.05


def test_open_loop_queueing_inflates_latency():
    """Arrivals faster than service accumulate queueing delay."""
    probe = make_tenant(make_me_graph(), CORE, alloc_mes=4, alloc_ves=4,
                        target_requests=1)
    service = Simulator(CORE, StaticPartitionScheduler(), [probe]).run()
    svc = service.tenant(0).mean_latency

    arrivals = [i * svc * 0.5 for i in range(6)]  # 2x overload
    compiled = lower_graph_neuisa(make_me_graph(), CORE)
    tenant = Tenant(0, "open", compiled, alloc_mes=4, alloc_ves=4,
                    target_requests=6, arrivals=arrivals)
    result = Simulator(CORE, StaticPartitionScheduler(), [tenant]).run()
    lats = result.tenant(0).latencies_cycles
    assert lats[-1] > lats[0] * 1.5  # queue builds up


def test_throughput_matches_completed_over_time():
    tenant = make_tenant(make_ve_graph(), CORE, alloc_mes=2, alloc_ves=2,
                         target_requests=3)
    result = Simulator(CORE, StaticPartitionScheduler(), [tenant]).run()
    tr = result.tenant(0)
    seconds = CORE.cycles_to_seconds(result.total_cycles)
    assert tr.throughput_rps == pytest.approx(tr.completed_requests / seconds)


def test_utilization_bounded():
    t0 = make_tenant(make_me_graph(), CORE, 0, alloc_mes=2, alloc_ves=2,
                     target_requests=2)
    t1 = make_tenant(make_ve_graph(), CORE, 1, alloc_mes=2, alloc_ves=2,
                     target_requests=2)
    result = Simulator(CORE, Neu10Scheduler(), [t0, t1]).run()
    assert 0.0 < result.stats.me_utilization() <= 1.0 + 1e-9
    assert 0.0 < result.stats.ve_utilization() <= 1.0 + 1e-9


def test_two_tenant_run_is_deterministic():
    def once():
        t0 = make_tenant(make_me_graph(), CORE, 0, target_requests=2)
        t1 = make_tenant(make_ve_graph(), CORE, 1, target_requests=2)
        result = Simulator(CORE, Neu10Scheduler(), [t0, t1]).run()
        return (
            result.total_cycles,
            tuple(result.tenant(0).latencies_cycles),
            tuple(result.tenant(1).latencies_cycles),
        )

    assert once() == once()


def test_duplicate_tenant_ids_rejected():
    t0 = make_tenant(make_me_graph(), CORE, 0)
    t1 = make_tenant(make_ve_graph(), CORE, 0)
    with pytest.raises(SimulationError):
        Simulator(CORE, Neu10Scheduler(), [t0, t1])


def test_empty_tenant_list_rejected():
    with pytest.raises(SimulationError):
        Simulator(CORE, Neu10Scheduler(), [])


def test_empty_workload_rejected():
    compiled = lower_graph_neuisa(make_me_graph(), CORE)
    compiled.ops = []
    with pytest.raises(SimulationError):
        Tenant(0, "empty", compiled, alloc_mes=1, alloc_ves=1)


def test_horizon_stops_simulation():
    tenant = make_tenant(make_me_graph(), CORE, alloc_mes=1, alloc_ves=1,
                         target_requests=10_000)
    sim = Simulator(CORE, StaticPartitionScheduler(), [tenant],
                    horizon_cycles=50_000.0)
    result = sim.run()
    assert result.total_cycles <= 50_001.0


def test_more_engines_never_slower():
    lat = {}
    for mes in (1, 2, 4):
        tenant = make_tenant(make_me_graph(), CORE, alloc_mes=mes,
                             alloc_ves=4, target_requests=1)
        result = Simulator(CORE, StaticPartitionScheduler(), [tenant]).run()
        lat[mes] = result.tenant(0).mean_latency
    assert lat[4] <= lat[2] <= lat[1]


def test_request_latency_positive_and_ordered():
    tenant = make_tenant(make_ve_graph(), CORE, alloc_mes=2, alloc_ves=2,
                         target_requests=3)
    result = Simulator(CORE, StaticPartitionScheduler(), [tenant]).run()
    tr = result.tenant(0)
    assert all(l > 0 for l in tr.latencies_cycles)
    assert tr.p95_latency >= tr.mean_latency * 0.5
