"""Failure injection: the engine must reject malformed scheduler
decisions (over-commitment, dropped units, phantom grants)."""

import pytest

from repro.config import NpuCoreConfig
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.scheduler_base import Decision, SchedulerBase, UnitState
from repro.sim.sched_static import StaticPartitionScheduler

from tests.conftest import make_me_graph, make_tenant

CORE = NpuCoreConfig()


def _sim(scheduler, **kwargs):
    tenant = make_tenant(make_me_graph(layers=1), CORE, alloc_mes=4,
                         alloc_ves=4, target_requests=1)
    return Simulator(CORE, scheduler, [tenant], **kwargs)


class OverCommitScheduler(SchedulerBase):
    """Grants the same unit more engines than physically exist."""

    def decide(self, sim):
        decision = Decision()
        for tenant in sim.tenants:
            for unit in tenant.active_units:
                if unit.is_me_unit and not unit.done:
                    decision.running_me[unit] = unit.me_engines_needed
        # Duplicate every grant onto a cloned dict entry is impossible
        # (dict keys are unique), so over-commit via engine counts:
        for unit in list(decision.running_me):
            decision.running_me[unit] = CORE.num_mes + 1
        return decision


class WrongWidthScheduler(SchedulerBase):
    """Grants a uTOp a different engine count than it needs."""

    def decide(self, sim):
        decision = Decision()
        for tenant in sim.tenants:
            for unit in tenant.active_units:
                if unit.is_me_unit and not unit.done:
                    decision.running_me[unit] = unit.me_engines_needed + 1
                    return decision
        return decision


class DropRunningScheduler(SchedulerBase):
    """Runs units once, then silently drops them (no preemption)."""

    def __init__(self):
        self.first = True

    def decide(self, sim):
        decision = Decision()
        if self.first:
            self.first = False
            for tenant in sim.tenants:
                for unit in tenant.active_units:
                    if unit.is_me_unit and not unit.done:
                        decision.running_me[unit] = unit.me_engines_needed
                        decision.ve_alloc[unit] = 4.0
        # Second decision: nothing runs, nothing is preempted.
        return decision


class VeOverCommitScheduler(SchedulerBase):
    def decide(self, sim):
        decision = Decision()
        for tenant in sim.tenants:
            for unit in tenant.active_units:
                if not unit.done:
                    decision.ve_alloc[unit] = CORE.num_ves * 2.0
                    return decision
        return decision


class StalledQuantumScheduler(SchedulerBase):
    """Sets a re-decision time that does not advance the clock."""

    def decide(self, sim):
        decision = StaticPartitionScheduler().decide(sim)
        decision.next_decision_at = sim.now
        return decision


def test_me_overcommit_detected():
    with pytest.raises(SimulationError, match="needs"):
        _sim(OverCommitScheduler()).run()


def test_wrong_grant_width_detected():
    with pytest.raises(SimulationError, match="needs"):
        _sim(WrongWidthScheduler()).run()


def test_dropped_running_unit_detected():
    with pytest.raises(SimulationError):
        _sim(DropRunningScheduler()).run()


def test_ve_overcommit_detected():
    with pytest.raises(SimulationError, match="VE"):
        _sim(VeOverCommitScheduler()).run()


def test_stalled_quantum_detected():
    with pytest.raises(SimulationError, match="advance"):
        _sim(StalledQuantumScheduler()).run()


def test_epoch_limit_guards_livelock():
    tenant = make_tenant(make_me_graph(layers=4), CORE, alloc_mes=4,
                         alloc_ves=4, target_requests=5)
    sim = Simulator(CORE, StaticPartitionScheduler(), [tenant], max_epochs=2)
    with pytest.raises(SimulationError, match="epochs"):
        sim.run()


def test_unknown_hbm_policy_rejected():
    with pytest.raises(SimulationError, match="HBM"):
        _sim(StaticPartitionScheduler(), hbm_policy="priority")


class IdleScheduler(SchedulerBase):
    """Never grants anything: the engine must report a deadlock, not
    spin forever."""

    def decide(self, sim):
        return Decision()


def test_idle_scheduler_deadlock_detected():
    with pytest.raises(SimulationError, match="no runnable work"):
        _sim(IdleScheduler()).run()
