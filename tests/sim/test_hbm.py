"""Tests for the HBM bandwidth sharing model (incl. property tests)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.hbm import (
    FairFactorCache,
    aggregate_demand,
    hierarchical_fair_factors,
    maxmin_fair,
    maxmin_fair_vectorized,
    slowdown_factors,
)


def test_uncontended_full_allocation():
    alloc = maxmin_fair({"a": 10.0, "b": 5.0}, capacity=100.0)
    assert alloc == {"a": 10.0, "b": 5.0}


def test_contended_small_flows_first():
    alloc = maxmin_fair({"small": 10.0, "big": 200.0}, capacity=100.0)
    assert alloc["small"] == 10.0
    assert alloc["big"] == 90.0


def test_equal_split_when_all_large():
    alloc = maxmin_fair({"a": 100.0, "b": 100.0, "c": 100.0}, capacity=90.0)
    assert alloc["a"] == pytest.approx(30.0)
    assert alloc["b"] == pytest.approx(30.0)
    assert alloc["c"] == pytest.approx(30.0)


def test_zero_demand_gets_zero():
    alloc = maxmin_fair({"a": 0.0, "b": 10.0}, capacity=5.0)
    assert alloc["a"] == 0.0
    assert alloc["b"] == 5.0


def test_negative_inputs_rejected():
    with pytest.raises(SimulationError):
        maxmin_fair({"a": -1.0}, capacity=10.0)
    with pytest.raises(SimulationError):
        maxmin_fair({"a": 1.0}, capacity=-10.0)


def test_slowdown_factors_bounds():
    factors = slowdown_factors({"a": 50.0, "b": 200.0}, capacity=100.0)
    assert factors["a"] == pytest.approx(1.0)
    assert 0 < factors["b"] < 1.0


@settings(max_examples=100, deadline=None)
@given(
    demands=st.dictionaries(
        st.integers(0, 10),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
    capacity=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_maxmin_properties(demands, capacity):
    alloc = maxmin_fair(demands, capacity)
    total = sum(alloc.values())
    # Conservation: never allocate more than capacity (+eps) or demand.
    assert total <= capacity + 1e-6
    assert total <= sum(demands.values()) + 1e-6
    for key, granted in alloc.items():
        assert 0 <= granted <= demands[key] + 1e-9
    # Work conservation: if capacity exceeds demand, all demand is met.
    if capacity >= sum(demands.values()):
        assert total == pytest.approx(sum(demands.values()))


@settings(max_examples=100, deadline=None)
@given(
    demands=st.lists(
        st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
        min_size=2,
        max_size=6,
    ),
    capacity=st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
)
def test_maxmin_fairness_property(demands, capacity):
    """No flow that wants more receives less than another flow that
    wants less (the max-min property)."""
    keyed = {i: d for i, d in enumerate(demands)}
    alloc = maxmin_fair(keyed, capacity)
    for i, di in keyed.items():
        for j, dj in keyed.items():
            if di <= dj:
                assert alloc[i] <= alloc[j] + 1e-6 or alloc[i] == pytest.approx(di, rel=1e-6)


def test_hierarchical_protects_single_stream_tenant():
    """One tenant with one huge stream vs one tenant with four streams:
    per-vNPU fairness gives each tenant half the channel."""
    demands = {"t0_s0": 1000.0, "t1_s0": 300.0, "t1_s1": 300.0,
               "t1_s2": 300.0, "t1_s3": 300.0}
    owners = {"t0_s0": 0, "t1_s0": 1, "t1_s1": 1, "t1_s2": 1, "t1_s3": 1}
    factors = hierarchical_fair_factors(demands, owners, capacity=1000.0)
    # Tenant 0's single stream gets its 500 share -> factor 0.5.
    assert factors["t0_s0"] == pytest.approx(0.5)
    # Flat max-min would have cut it to 200 (factor 0.2).
    flat = slowdown_factors(demands, 1000.0)
    assert flat["t0_s0"] < factors["t0_s0"]


def test_hierarchical_redistributes_unused_share():
    demands = {"a": 100.0, "b": 900.0}
    owners = {"a": 0, "b": 1}
    factors = hierarchical_fair_factors(demands, owners, capacity=1000.0)
    assert factors["a"] == pytest.approx(1.0)
    assert factors["b"] == pytest.approx(1.0)


def test_aggregate_demand():
    assert aggregate_demand({"a": 1.0, "b": 2.0, "c": 0.0}) == 3.0


# ----------------------------------------------------------------------
# FairFactorCache (the engine fast path's exact factor memo)
# ----------------------------------------------------------------------
def _reference_factors(owners, demands, capacity, policy):
    keyed = dict(enumerate(demands))
    if policy == "hierarchical":
        by_key = hierarchical_fair_factors(
            keyed, dict(enumerate(owners)), capacity
        )
    else:
        by_key = slowdown_factors(keyed, capacity)
    return tuple(by_key[i] for i in range(len(demands)))


@pytest.mark.parametrize("policy", ["hierarchical", "flat"])
def test_factor_cache_matches_reference_exactly(policy):
    cache = FairFactorCache(1000.0, policy=policy)
    owners = [0, 0, 1, 1, 2]
    demands = [120.0, 0.0, 480.0, 700.0, 333.3]
    expected = _reference_factors(owners, demands, 1000.0, policy)
    assert cache.factors(owners, demands) == expected
    # Second call: exact same values, but served from the cache.
    assert cache.factors(owners, demands) == expected
    assert cache.hits == 1 and cache.misses == 1


def test_factor_cache_hit_and_miss_accounting():
    cache = FairFactorCache(100.0)
    cache.factors([0, 1], [60.0, 80.0])
    cache.factors([0, 1], [60.0, 80.0])
    cache.factors([0, 1], [60.0, 80.0])
    assert (cache.hits, cache.misses) == (2, 1)
    # A different demand vector (or owner layout) is a distinct key.
    cache.factors([0, 1], [61.0, 80.0])
    cache.factors([1, 0], [60.0, 80.0])
    assert (cache.hits, cache.misses) == (2, 3)
    assert len(cache) == 3


def test_factor_cache_fifo_eviction():
    cache = FairFactorCache(100.0, maxsize=2)
    a = cache.factors([0], [10.0])
    cache.factors([0], [20.0])
    cache.factors([0], [30.0])  # evicts the [10.0] entry
    assert len(cache) == 2
    assert cache.factors([0], [10.0]) == a  # recomputed, still exact
    assert cache.misses == 4 and cache.hits == 0


def test_factor_cache_eviction_keeps_results_correct():
    cache = FairFactorCache(500.0, maxsize=4)
    vectors = [([0, 1], [float(i), 400.0 + i]) for i in range(10)]
    for owners, demands in vectors * 2:
        assert cache.factors(owners, demands) == _reference_factors(
            owners, demands, 500.0, "hierarchical"
        )
    assert len(cache) <= 4


def test_factor_cache_rejects_bad_config():
    with pytest.raises(SimulationError):
        FairFactorCache(100.0, policy="nope")
    with pytest.raises(SimulationError):
        FairFactorCache(100.0, maxsize=0)


# ----------------------------------------------------------------------
# Vectorized waterfill (bulk analysis path)
# ----------------------------------------------------------------------
@given(
    demands=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=0, max_size=12,
    ),
    capacity=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
@settings(max_examples=80, deadline=None)
def test_vectorized_waterfill_matches_scalar(demands, capacity):
    scalar = maxmin_fair(dict(enumerate(demands)), capacity)
    vector = maxmin_fair_vectorized(demands, capacity)
    assert len(vector) == len(demands)
    for i, alloc in enumerate(vector):
        assert alloc == pytest.approx(scalar[i], rel=1e-9, abs=1e-9)


def test_vectorized_waterfill_rejects_negative():
    with pytest.raises(SimulationError):
        maxmin_fair_vectorized([1.0, -2.0], 10.0)
    with pytest.raises(SimulationError):
        maxmin_fair_vectorized([1.0], -1.0)


def test_vectorized_empty_demand_vector():
    assert maxmin_fair_vectorized([], 100.0) == ()
    assert maxmin_fair_vectorized([], 0.0) == ()


def test_vectorized_single_tenant():
    # len < 2 takes the scalar fallback inside the vectorized entry point.
    assert maxmin_fair_vectorized([10.0], 100.0) == (10.0,)
    assert maxmin_fair_vectorized([10.0], 4.0) == (4.0,)
    assert maxmin_fair_vectorized([0.0], 4.0) == (0.0,)


def test_vectorized_all_equal_demands():
    # Contended equal demands split the channel exactly evenly; the even
    # share must match the scalar waterfill bit-for-bit on these inputs.
    n = 8
    vector = maxmin_fair_vectorized([50.0] * n, 100.0)
    scalar = maxmin_fair(dict(enumerate([50.0] * n)), 100.0)
    assert vector == tuple(scalar[i] for i in range(n))
    assert sum(vector) == pytest.approx(100.0)
    assert len(set(vector)) == 1  # no tenant favoured over another
    # Uncontended: everyone gets their full demand.
    assert maxmin_fair_vectorized([5.0] * n, 100.0) == (5.0,) * n


@pytest.mark.parametrize(
    "demands, capacity",
    [
        ([10.0, 200.0, 0.0, 10.0], 100.0),   # zeros interleaved
        ([100.0, 100.0, 100.0], 90.0),        # all above the waterline
        ([10.0, 20.0, 30.0], 60.0),           # capacity == total demand
        ([30.0, 20.0, 10.0], 60.0),           # same set, reversed order
        ([1e-12, 1e6, 1e-12], 5.0),           # extreme spread
        ([7.0, 7.0, 7.0, 50.0], 0.0),         # zero capacity
    ],
)
def test_vectorized_matches_scalar_elementwise(demands, capacity):
    scalar = maxmin_fair(dict(enumerate(demands)), capacity)
    vector = maxmin_fair_vectorized(demands, capacity)
    assert len(vector) == len(demands)
    for i, demand in enumerate(demands):
        assert vector[i] == pytest.approx(scalar[i], rel=1e-12, abs=1e-12)
        assert vector[i] <= demand + 1e-12  # never over-allocates


def test_factor_cache_eviction_is_fifo_not_lru():
    # A cache hit must NOT refresh an entry's eviction rank: insertion
    # order alone decides the victim, so the oldest entry goes even when
    # it was just re-read.
    cache = FairFactorCache(100.0, maxsize=2)
    cache.factors([0], [10.0])  # oldest
    cache.factors([0], [20.0])
    cache.factors([0], [10.0])  # hit on the oldest entry
    assert cache.hits == 1
    cache.factors([0], [30.0])  # at capacity: evicts [10.0], not [20.0]
    cache.factors([0], [20.0])  # still cached -> hit
    assert cache.hits == 2
    cache.factors([0], [10.0])  # evicted -> miss
    assert cache.misses == 4
