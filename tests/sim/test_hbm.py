"""Tests for the HBM bandwidth sharing model (incl. property tests)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.sim.hbm import (
    aggregate_demand,
    hierarchical_fair_factors,
    maxmin_fair,
    slowdown_factors,
)


def test_uncontended_full_allocation():
    alloc = maxmin_fair({"a": 10.0, "b": 5.0}, capacity=100.0)
    assert alloc == {"a": 10.0, "b": 5.0}


def test_contended_small_flows_first():
    alloc = maxmin_fair({"small": 10.0, "big": 200.0}, capacity=100.0)
    assert alloc["small"] == 10.0
    assert alloc["big"] == 90.0


def test_equal_split_when_all_large():
    alloc = maxmin_fair({"a": 100.0, "b": 100.0, "c": 100.0}, capacity=90.0)
    assert alloc["a"] == pytest.approx(30.0)
    assert alloc["b"] == pytest.approx(30.0)
    assert alloc["c"] == pytest.approx(30.0)


def test_zero_demand_gets_zero():
    alloc = maxmin_fair({"a": 0.0, "b": 10.0}, capacity=5.0)
    assert alloc["a"] == 0.0
    assert alloc["b"] == 5.0


def test_negative_inputs_rejected():
    with pytest.raises(SimulationError):
        maxmin_fair({"a": -1.0}, capacity=10.0)
    with pytest.raises(SimulationError):
        maxmin_fair({"a": 1.0}, capacity=-10.0)


def test_slowdown_factors_bounds():
    factors = slowdown_factors({"a": 50.0, "b": 200.0}, capacity=100.0)
    assert factors["a"] == pytest.approx(1.0)
    assert 0 < factors["b"] < 1.0


@settings(max_examples=100, deadline=None)
@given(
    demands=st.dictionaries(
        st.integers(0, 10),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=8,
    ),
    capacity=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_maxmin_properties(demands, capacity):
    alloc = maxmin_fair(demands, capacity)
    total = sum(alloc.values())
    # Conservation: never allocate more than capacity (+eps) or demand.
    assert total <= capacity + 1e-6
    assert total <= sum(demands.values()) + 1e-6
    for key, granted in alloc.items():
        assert 0 <= granted <= demands[key] + 1e-9
    # Work conservation: if capacity exceeds demand, all demand is met.
    if capacity >= sum(demands.values()):
        assert total == pytest.approx(sum(demands.values()))


@settings(max_examples=100, deadline=None)
@given(
    demands=st.lists(
        st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
        min_size=2,
        max_size=6,
    ),
    capacity=st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
)
def test_maxmin_fairness_property(demands, capacity):
    """No flow that wants more receives less than another flow that
    wants less (the max-min property)."""
    keyed = {i: d for i, d in enumerate(demands)}
    alloc = maxmin_fair(keyed, capacity)
    for i, di in keyed.items():
        for j, dj in keyed.items():
            if di <= dj:
                assert alloc[i] <= alloc[j] + 1e-6 or alloc[i] == pytest.approx(di, rel=1e-6)


def test_hierarchical_protects_single_stream_tenant():
    """One tenant with one huge stream vs one tenant with four streams:
    per-vNPU fairness gives each tenant half the channel."""
    demands = {"t0_s0": 1000.0, "t1_s0": 300.0, "t1_s1": 300.0,
               "t1_s2": 300.0, "t1_s3": 300.0}
    owners = {"t0_s0": 0, "t1_s0": 1, "t1_s1": 1, "t1_s2": 1, "t1_s3": 1}
    factors = hierarchical_fair_factors(demands, owners, capacity=1000.0)
    # Tenant 0's single stream gets its 500 share -> factor 0.5.
    assert factors["t0_s0"] == pytest.approx(0.5)
    # Flat max-min would have cut it to 200 (factor 0.2).
    flat = slowdown_factors(demands, 1000.0)
    assert flat["t0_s0"] < factors["t0_s0"]


def test_hierarchical_redistributes_unused_share():
    demands = {"a": 100.0, "b": 900.0}
    owners = {"a": 0, "b": 1}
    factors = hierarchical_fair_factors(demands, owners, capacity=1000.0)
    assert factors["a"] == pytest.approx(1.0)
    assert factors["b"] == pytest.approx(1.0)


def test_aggregate_demand():
    assert aggregate_demand({"a": 1.0, "b": 2.0, "c": 0.0}) == 3.0
