"""Differential tests: the fast path must be bit-identical to the
reference engine.

Every scheme runs the same scenario twice -- ``Simulator(...,
fast_path=True)`` and ``fast_path=False`` -- and every observable
(SimStats integrals and counters, per-request latencies, queueing
delays, SLO attainment) must compare *exactly* equal, not approximately:
the fast path only memoises pure functions of the scheduler state, so
any drift is a bug.
"""

import os

import pytest

from repro.config import NpuCoreConfig, spawn_rng
from repro.serving.server import (
    ALL_SCHEMES,
    SCHEME_ISA,
    SCHEME_TEMPORAL,
    make_scheduler,
)
from repro.sim.engine import FAST_PATH_ENV, Simulator, Tenant
from repro.traffic import OpenLoopConfig, TrafficTenantSpec, run_open_loop
from repro.traffic.arrivals import PoissonProcess
from repro.workloads.traces import build_trace

CORE = NpuCoreConfig()
SCHEMES = list(ALL_SCHEMES) + [SCHEME_TEMPORAL]


def _closed_loop_tenants(scheme, target_requests=4):
    isa = SCHEME_ISA[scheme]
    tenants = []
    for idx, (model, batch) in enumerate([("MNIST", 8), ("DLRM", 8)]):
        trace = build_trace(model, batch, core=CORE)
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=f"{model}#{idx}",
                graph=trace.compiled(isa),
                alloc_mes=2,
                alloc_ves=2,
                target_requests=target_requests,
            )
        )
    return tenants


def _open_loop_tenants(scheme, duration_cycles):
    isa = SCHEME_ISA[scheme]
    tenants = []
    for idx, (model, batch) in enumerate([("MNIST", 8), ("DLRM", 8)]):
        trace = build_trace(model, batch, core=CORE)
        rate = 1.0 / 120_000.0
        arrivals = PoissonProcess(rate).generate(
            duration_cycles, spawn_rng(33, scheme, model, idx)
        )
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=f"{model}#{idx}",
                graph=trace.compiled(isa),
                alloc_mes=2,
                alloc_ves=2,
                target_requests=None,
                arrivals=arrivals,
            )
        )
    return tenants


def _stats_snapshot(result):
    stats = result.stats
    return {
        "total_cycles": stats.total_cycles,
        "me_busy_integral": stats.me_busy_integral,
        "ve_busy_integral": stats.ve_busy_integral,
        "me_busy_per_tenant": dict(stats.me_busy_per_tenant),
        "ve_busy_per_tenant": dict(stats.ve_busy_per_tenant),
        "harvested_me_integral": dict(stats.harvested_me_integral),
        "blocked_cycles_per_tenant": dict(stats.blocked_cycles_per_tenant),
        "preemption_count": stats.preemption_count,
        "reclaim_penalty_cycles": stats.reclaim_penalty_cycles,
        "op_records": [
            (r.tenant_id, r.op_index, r.request_id, r.start_cycle,
             r.end_cycle, r.blocked_cycles, r.harvested_engine_cycles)
            for r in stats.op_records
        ],
        "tenants": {
            tid: (
                tr.latencies_cycles,
                tr.queueing_cycles,
                tr.completed_requests,
                tr.offered_requests,
                tr.me_utilization,
                tr.ve_utilization,
                tr.blocked_fraction,
            )
            for tid, tr in result.tenants.items()
        },
    }


@pytest.mark.parametrize("scheme", SCHEMES)
def test_closed_loop_bit_identical(scheme):
    runs = {}
    for fast in (True, False):
        sim = Simulator(
            CORE,
            make_scheduler(scheme),
            _closed_loop_tenants(scheme),
            fast_path=fast,
        )
        runs[fast] = _stats_snapshot(sim.run())
    assert runs[True] == runs[False]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_open_loop_bit_identical(scheme):
    horizon = 1_500_000.0
    runs = {}
    for fast in (True, False):
        sim = Simulator(
            CORE,
            make_scheduler(scheme),
            _open_loop_tenants(scheme, horizon),
            horizon_cycles=horizon,
            fast_path=fast,
        )
        runs[fast] = _stats_snapshot(sim.run())
    assert runs[True] == runs[False]


@pytest.mark.parametrize("scheme", SCHEMES)
def test_open_loop_slo_reports_bit_identical(scheme, monkeypatch):
    """End-to-end run_open_loop: latencies and attainment match exactly
    with the fast path toggled through the environment escape hatch."""
    specs = [
        TrafficTenantSpec(model="MNIST", batch=8),
        TrafficTenantSpec(model="DLRM", batch=8),
    ]
    cfg = OpenLoopConfig(duration_s=0.0015, load=1.1, arrival="bursty", seed=5)
    results = {}
    for fast in ("1", "0"):
        monkeypatch.setenv(FAST_PATH_ENV, fast)
        results[fast] = run_open_loop(specs, scheme, cfg)
    r1, r0 = results["1"], results["0"]
    assert r1.total_cycles == r0.total_cycles
    assert r1.me_utilization == r0.me_utilization
    assert r1.ve_utilization == r0.ve_utilization
    for a, b in zip(r1.reports, r0.reports):
        assert a.latencies_cycles == b.latencies_cycles
        assert a.queueing_cycles == b.queueing_cycles
        assert a.attainment == b.attainment
        assert a.goodput_rps == b.goodput_rps
        assert (a.offered, a.completed, a.attained) == (
            b.offered, b.completed, b.attained
        )


def test_env_escape_hatch(monkeypatch):
    monkeypatch.setenv(FAST_PATH_ENV, "0")
    sim = Simulator(CORE, make_scheduler("neu10"),
                    _closed_loop_tenants("neu10", target_requests=1))
    assert sim.fast_path is False
    monkeypatch.delenv(FAST_PATH_ENV)
    sim = Simulator(CORE, make_scheduler("neu10"),
                    _closed_loop_tenants("neu10", target_requests=1))
    assert sim.fast_path is True
    # The explicit argument wins over the environment.
    monkeypatch.setenv(FAST_PATH_ENV, "0")
    sim = Simulator(CORE, make_scheduler("neu10"),
                    _closed_loop_tenants("neu10", target_requests=1),
                    fast_path=True)
    assert sim.fast_path is True


def test_fast_path_populates_memo_and_cache(monkeypatch):
    import repro.sim.engine as engine_mod

    # Isolate from the process-wide plan memo so this run starts cold.
    monkeypatch.setattr(engine_mod, "_PLAN_MEMOS", {})
    sim = Simulator(CORE, make_scheduler("neu10"),
                    _closed_loop_tenants("neu10"))
    assert sim.fast_path is True
    sim.run()
    assert len(sim._decision_memo) > 0
    assert sim._factor_cache.hits > 0


def test_plan_memo_shared_across_simulators(monkeypatch):
    """A second structurally identical simulation starts with a warm
    memo (and still produces bit-identical results -- covered by the
    differential tests above)."""
    import repro.sim.engine as engine_mod

    monkeypatch.setattr(engine_mod, "_PLAN_MEMOS", {})
    first = Simulator(CORE, make_scheduler("neu10"),
                      _closed_loop_tenants("neu10"))
    first.run()
    assert len(first._decision_memo) > 0
    second = Simulator(CORE, make_scheduler("neu10"),
                       _closed_loop_tenants("neu10"))
    assert second._decision_memo is first._decision_memo
    # A different allocation layout gets its own memo.
    other_tenants = _closed_loop_tenants("neu10")
    other_tenants[0].alloc_mes = 3
    third = Simulator(CORE, make_scheduler("neu10"), other_tenants)
    assert third._decision_memo is not first._decision_memo


def test_reference_path_stays_cold():
    sim = Simulator(CORE, make_scheduler("neu10"),
                    _closed_loop_tenants("neu10"), fast_path=False)
    sim.run()
    assert len(sim._decision_memo) == 0
    assert sim._factor_cache.hits == 0 and sim._factor_cache.misses == 0
