#!/usr/bin/env python
"""Quickstart: virtualize one NPU core between two ML services.

Walks the full Neu10 stack end to end:

1. profile two workloads with the compiler (m/v ratios);
2. size a vNPU for each with the Eq.-4 allocator;
3. create the vNPUs through the hypervisor control plane (hypercalls,
   SR-IOV virtual functions, IOMMU windows);
4. run both tenants collocated on one physical core under every
   scheduling scheme and compare tail latency / throughput.

Run:  python examples/quickstart.py
"""

from repro.config import DEFAULT_CORE
from repro.core.mapper import MappingMode
from repro.runtime.hypervisor import Hypervisor
from repro.serving.server import (
    ALL_SCHEMES,
    ServingConfig,
    WorkloadSpec,
    run_collocation,
)
from repro.workloads.traces import build_trace


def main() -> None:
    core = DEFAULT_CORE
    print(f"Physical core: {core.num_mes} MEs, {core.num_ves} VEs, "
          f"{core.sram_bytes >> 20} MB SRAM, {core.hbm_bytes / 1e9:.0f} GB HBM\n")

    # -- 1. Profile workloads at compile time ---------------------------
    dlrm = build_trace("DLRM", batch=32)
    retina = build_trace("RetinaNet", batch=32)
    for trace in (dlrm, retina):
        p = trace.profile
        print(f"{trace.name:10s} m={p.m:.3f} v={p.v:.3f} "
              f"ME:VE intensity={p.me_ve_intensity_ratio:.2f}")

    # -- 2+3. Allocate vNPUs through the hypervisor ---------------------
    hypervisor = Hypervisor([core], mode=MappingMode.SPATIAL)
    handles = []
    for trace in (dlrm, retina):
        handle = hypervisor.hypercall_create(
            config=_default_config(),
            owner=trace.name,
            profile=trace.profile,  # allocator overrides the config
            total_eus=4,            # pay-as-you-go: 4 EUs each
        )
        handles.append(handle)
        cfg = handle.config
        print(f"created vNPU#{handle.vnpu_id} for {trace.name}: "
              f"{cfg.num_mes_per_core}ME+{cfg.num_ves_per_core}VE "
              f"at PCI {handle.vf_bdf}")
    print()

    # -- 4. Collocate under every scheme ---------------------------------
    specs = [WorkloadSpec("DLRM", 32), WorkloadSpec("RetinaNet", 32)]
    cfg = ServingConfig(target_requests=3)
    print(f"{'scheme':12s} {'p95 latency (ms)':>24s} {'throughput (rps)':>24s}")
    for scheme in ALL_SCHEMES:
        pair = run_collocation(specs, scheme, cfg)
        p95 = " / ".join(
            f"{core.cycles_to_seconds(t.p95_latency_cycles)*1e3:9.2f}"
            for t in pair.tenants
        )
        thr = " / ".join(f"{t.throughput_rps:9.1f}" for t in pair.tenants)
        print(f"{scheme:12s} {p95:>24s} {thr:>24s}")

    for handle in handles:
        hypervisor.hypercall_destroy(handle.vnpu_id)
    print(f"\nhypercalls issued: {hypervisor.hypercall_count}, "
          f"IOMMU faults: {hypervisor.iommu.fault_count}")


def _default_config():
    from repro.core.vnpu import VnpuConfig
    return VnpuConfig(num_mes_per_core=2, num_ves_per_core=2)


if __name__ == "__main__":
    main()
