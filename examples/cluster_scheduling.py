#!/usr/bin/env python
"""Cluster-scale vNPU placement (the paper's KubeVirt/Kubernetes layer).

A fleet of tenants submits pay-as-you-go vNPU requests (sized by the
Eq.-4 allocator from each workload's compile-time profile).  We place
the same request stream under three policies and compare:

- first-fit          (dense packing)
- least-loaded       (spreading)
- contention-aware   (pairs ME-heavy with VE-heavy tenants, the
                      collocations Neu10's harvesting profits from)

then validate the contention-aware pairings by simulating one host's
collocation under Neu10.

Run:  python examples/cluster_scheduling.py
"""

from repro.cluster import (
    ClusterOrchestrator,
    ContentionAwarePolicy,
    FirstFitPolicy,
    Host,
    LeastLoadedPolicy,
    PlacementRequest,
)
from repro.config import DEFAULT_CORE
from repro.serving.server import ServingConfig, WorkloadSpec, run_collocation
from repro.workloads.traces import build_trace

TENANTS = [
    ("team-ads", "DLRM", 32),
    ("team-search", "BERT", 32),
    ("team-photos", "ResNet", 32),
    ("team-recs", "NCF", 32),
    ("team-video", "RetinaNet", 32),
    ("team-feed", "EfficientNet", 32),
]


def submit_all(policy):
    hosts = [Host(f"host{i}", [DEFAULT_CORE]) for i in range(3)]
    orchestrator = ClusterOrchestrator(hosts, policy)
    for owner, model, batch in TENANTS:
        trace = build_trace(model, batch)
        request = PlacementRequest.from_profile(
            owner=f"{owner}:{trace.abbrev}",
            profile=trace.profile,
            total_eus=4,
        )
        orchestrator.submit(request)
    return orchestrator


def main() -> None:
    print(f"{len(TENANTS)} tenants, 3 hosts x 1 core (4 MEs + 4 VEs)\n")
    for policy in (FirstFitPolicy(), LeastLoadedPolicy(), ContentionAwarePolicy()):
        orchestrator = submit_all(policy)
        print(f"policy = {policy.name}")
        for host, owners in orchestrator.collocation_map().items():
            print(f"  {host}: {', '.join(owners) if owners else '(empty)'}")
        print(f"  admission rate: {orchestrator.admission_rate()*100:.0f}%\n")

    # Validate one contention-aware pairing end to end: the policy puts
    # a VE-bound recommender with an ME-bound vision model; simulate it.
    orchestrator = submit_all(ContentionAwarePolicy())
    target_host, owners = next(
        (h, o) for h, o in orchestrator.collocation_map().items() if len(o) == 2
    )
    models = [owner.split(":")[1] for owner in owners]
    print(f"simulating {target_host}'s pairing under Neu10: {models[0]}+{models[1]}")
    pair = run_collocation(
        [WorkloadSpec(models[0], 32), WorkloadSpec(models[1], 32)],
        "neu10",
        ServingConfig(target_requests=2),
    )
    for tenant in pair.tenants:
        print(
            f"  {tenant.name:6s} p95 "
            f"{DEFAULT_CORE.cycles_to_seconds(tenant.p95_latency_cycles)*1e3:8.2f} ms, "
            f"{tenant.throughput_rps:8.1f} rps"
        )
    print(f"  core utilization: ME {pair.total_me_utilization*100:.0f}% / "
          f"VE {pair.total_ve_utilization*100:.0f}%")


if __name__ == "__main__":
    main()
