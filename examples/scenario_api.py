#!/usr/bin/env python
"""repro.api tour: declare scenarios as data, run them uniformly.

1. build a Scenario in code and run it;
2. round-trip the same spec through YAML (what `repro run` consumes);
3. sweep one field over several values with a process pool;
4. register a custom arrival process and use it by name -- no engine
   or CLI edits.

Run:  python examples/scenario_api.py
"""

import random
from typing import List

from repro.api import (
    ARRIVALS,
    ArrivalInfo,
    Scenario,
    ScenarioTenant,
    run_scenario,
    sweep_scenario,
)
from repro.traffic.arrivals import ArrivalProcess


def main() -> None:
    # -- 1. A scenario is data ------------------------------------------
    scenario = Scenario(
        name="api-demo",
        kind="open_loop",
        scheme="neu10",
        tenants=(
            ScenarioTenant(model="MNIST", batch=8),
            ScenarioTenant(model="DLRM", batch=8, slo_relative=8.0),
        ),
        arrival="poisson",
        load=0.8,
        duration_s=0.001,
        seed=7,
    )
    result = run_scenario(scenario)
    print(f"{result.scenario}: min attainment "
          f"{result.metrics['min_attainment']:.1%}, "
          f"ME util {result.metrics['me_utilization']:.1%}")

    # -- 2. ...so it serialises -----------------------------------------
    text = scenario.to_yaml()
    print("\nThe same spec as YAML (feed it to `repro run`):")
    print("  " + "\n  ".join(text.strip().splitlines()))

    # -- 3. Sweeps are one call -----------------------------------------
    print("Load sweep (parallel workers, deterministic):")
    for res in sweep_scenario(scenario, param="load", values=[0.5, 0.9, 1.3]):
        print(f"  load {res.metadata['load']:<4} -> min attainment "
              f"{res.metrics['min_attainment']:6.1%}")

    # -- 4. Registries make policies pluggable --------------------------
    class UniformProcess(ArrivalProcess):
        """Fixed-rate arrivals with uniform jitter -- a 10-line plugin."""

        kind = "uniform"

        def __init__(self, rate: float) -> None:
            self.mean_rate_per_cycle = rate

        def generate(self, duration_cycles: float,
                     rng: random.Random) -> List[float]:
            gap = 1.0 / self.mean_rate_per_cycle
            out, t = [], gap * rng.random()
            while t < duration_cycles:
                out.append(t)
                t += gap
            return out

    if "uniform" not in ARRIVALS:
        ARRIVALS.add("uniform", ArrivalInfo(
            "uniform", lambda rate, **_kw: UniformProcess(rate),
            description="fixed-gap arrivals (example plugin)",
        ))
    plugin = scenario.replaced(name="api-demo-uniform", arrival="uniform")
    res = run_scenario(plugin)
    print(f"\nCustom 'uniform' arrivals: min attainment "
          f"{res.metrics['min_attainment']:.1%}")


if __name__ == "__main__":
    main()
