#!/usr/bin/env python
"""Collocating a memory-bound LLM with compute-bound inference (Fig. 27).

LLaMA2-13B decode streams 26 GB of weights per token and stalls on HBM
bandwidth; under temporal sharing (V10) its idle matrix engines are
wasted.  Under Neu10, a collocated compute-intensive service (ResNet)
harvests them.  This example reproduces the paper's case study and also
shows the bandwidth sensitivity (Fig. 26's insight).

Run:  python examples/llm_collocation.py
"""

from repro.config import DEFAULT_CORE
from repro.experiments.fig27_llm import run as llm_run
from repro.serving.server import SCHEME_NEU10, SCHEME_V10
from repro.workloads.traces import build_trace


def main() -> None:
    llama = build_trace("LLaMA", batch=8)
    print(f"LLaMA2-13B decode: {len(llama.graph)} operators/request, "
          f"ME:VE intensity {llama.profile.me_ve_intensity_ratio:.0f}, "
          f"HBM demand {llama.profile.average_hbm_bandwidth(DEFAULT_CORE)/1e9:.0f} GB/s "
          f"(core limit {DEFAULT_CORE.hbm_bandwidth_bytes_per_s/1e9:.0f} GB/s)\n")

    for collocated in ("BERT", "RsNt"):
        result = llm_run(collocated, target_requests=1)
        v10_thr = result.throughput[SCHEME_V10]
        neu_thr = result.throughput[SCHEME_NEU10]
        print(f"LLaMA + {collocated}:")
        print(f"  V10   : LLaMA {v10_thr[0]:7.3f} rps, {collocated} {v10_thr[1]:9.2f} rps, "
              f"ME util {result.utilization[SCHEME_V10][0]*100:.0f}%")
        print(f"  Neu10 : LLaMA {neu_thr[0]:7.3f} rps, {collocated} {neu_thr[1]:9.2f} rps, "
              f"ME util {result.utilization[SCHEME_NEU10][0]*100:.0f}%")
        print(f"  -> collocated workload gains {result.collocated_gain():.2f}x "
              f"(paper: up to 1.6x); LLaMA keeps "
              f"{min(1.0, result.llm_slowdown())*100:.1f}% of its throughput\n")


if __name__ == "__main__":
    main()
