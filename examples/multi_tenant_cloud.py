#!/usr/bin/env python
"""A multi-tenant cloud host: full control-plane walk-through.

Simulates what a cloud platform does when tenants arrive and leave:

1. tenants' VMs open vNPUs through the para-virtualized driver
   (hypercalls -> vNPU manager -> mapper -> SR-IOV VF + IOMMU windows);
2. the device rejects a DMA outside a tenant's registered buffer and an
   NPU-side access outside its HBM segment window (isolation);
3. a tenant resizes its vNPU on demand (pay-as-you-go);
4. tenants depart and resources are reclaimed.

Run:  python examples/multi_tenant_cloud.py
"""

from repro.config import DEFAULT_CORE, GiB, MiB
from repro.core.mapper import MappingMode
from repro.core.vnpu import VnpuConfig
from repro.errors import DmaFault, SegmentationFault
from repro.runtime.driver import VnpuDriver
from repro.runtime.hypervisor import Hypervisor
from repro.runtime.iommu import MemoryKind
from repro.runtime.vm import GuestVm


def main() -> None:
    hypervisor = Hypervisor([DEFAULT_CORE, DEFAULT_CORE], mode=MappingMode.SPATIAL)

    # -- 1. Two tenants arrive -------------------------------------------
    drivers = {}
    for tenant, (mes, ves, hbm) in {
        "recsys-team": (1, 3, 24 * GiB),
        "vision-team": (3, 1, 2 * GiB),
    }.items():
        vm = GuestVm(tenant)
        driver = VnpuDriver(vm, hypervisor)
        handle = driver.open(
            VnpuConfig(
                num_mes_per_core=mes,
                num_ves_per_core=ves,
                sram_bytes_per_core=32 * MiB,
                hbm_bytes_per_core=hbm,
            )
        )
        drivers[tenant] = driver
        hier = driver.query_hierarchy()
        print(f"{tenant}: vNPU#{handle.vnpu_id} at {handle.vf_bdf} -> "
              f"{hier.num_mes_per_core}ME+{hier.num_ves_per_core}VE, "
              f"{hier.hbm_bytes / GiB:.0f} GiB HBM")

    # The mapper balances EU and memory pressure across the two cores.
    manager = hypervisor.manager
    placements = {v.owner: v.pnpu_core for v in manager.instances()}
    print(f"placements: {placements}\n")

    # -- 2. Isolation demos ------------------------------------------------
    recsys = drivers["recsys-team"]
    recsys.memcpy_to_device(0, 1 * MiB, device_addr=0)
    print(f"recsys-team issued a legal 1 MiB memcpy "
          f"(completed={recsys.poll_completed()})")

    try:
        # DMA outside the registered buffer: the IOMMU faults.
        assert recsys.handle is not None
        hypervisor.iommu.check_dma(recsys.handle.vnpu_id, 0xDEAD0000, 4096)
    except DmaFault as fault:
        print(f"IOMMU blocked rogue DMA: {fault}")

    try:
        # NPU-side access beyond the vNPU's HBM window: segmentation fault.
        hypervisor.iommu.translate(
            recsys.handle.vnpu_id, MemoryKind.HBM, 25 * GiB
        )
    except SegmentationFault as fault:
        print(f"segment check blocked rogue access: {fault}")

    # -- 3. Pay-as-you-go resize -------------------------------------------
    vision = drivers["vision-team"]
    assert vision.handle is not None
    handle = hypervisor.hypercall_reconfigure(
        vision.handle.vnpu_id,
        VnpuConfig(
            num_mes_per_core=2,
            num_ves_per_core=2,
            sram_bytes_per_core=32 * MiB,
            hbm_bytes_per_core=2 * GiB,
        ),
    )
    print(f"\nvision-team resized to "
          f"{handle.config.num_mes_per_core}ME+{handle.config.num_ves_per_core}VE")

    # -- 4. Teardown ---------------------------------------------------------
    for tenant, driver in drivers.items():
        if tenant == "vision-team":
            # Its driver handle was reconfigured; destroy via hypervisor.
            hypervisor.hypercall_destroy(handle.vnpu_id)
        else:
            driver.close()
    print(f"teardown complete; live vNPUs: {len(manager.instances())}, "
          f"hypercalls: {hypervisor.hypercall_count}, "
          f"IOMMU faults observed: {hypervisor.iommu.fault_count}")


if __name__ == "__main__":
    main()
