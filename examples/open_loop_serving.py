#!/usr/bin/env python
"""Open-loop serving: SLO attainment vs offered load, per scheme.

The paper's evaluation is closed-loop (run until N requests finish);
production serving is open-loop: requests arrive whether or not the NPU
is ready.  This demo sweeps the load factor from comfortable (0.3) past
saturation (1.2) for an MNIST+DLRM pair and prints how each scheme's
SLO attainment, p95 latency and goodput respond.  Harvesting schemes
sustain a higher load at the same attainment -- the open-loop view of
the paper's utilization story.

Built on ``repro.api``: one declarative scenario, swept over loads per
scheme -- the same spec a YAML file would hold for ``repro sweep``.

Run:  python examples/open_loop_serving.py
"""

from repro.api import Scenario, ScenarioTenant, sweep_scenario
from repro.config import DEFAULT_CORE
from repro.serving.server import SCHEME_NEU10, SCHEME_PMT, SCHEME_TEMPORAL, SCHEME_V10

LOADS = (0.3, 0.6, 0.9, 1.2)
SCHEMES = (SCHEME_PMT, SCHEME_V10, SCHEME_NEU10, SCHEME_TEMPORAL)

BASE = Scenario(
    name="open-loop-sweep",
    kind="open_loop",
    tenants=(
        ScenarioTenant(model="MNIST", batch=8),
        ScenarioTenant(model="DLRM", batch=8),
    ),
    arrival="poisson",
    duration_s=0.002,
    seed=7,
)


def main() -> None:
    print("Poisson arrivals, 2 ms window, SLO = 5x isolated service time\n")
    for scheme in SCHEMES:
        print(f"scheme {scheme}")
        scenario = BASE.replaced(name=f"open-loop-{scheme}", scheme=scheme)
        for result in sweep_scenario(scenario, param="load", values=LOADS):
            cells = []
            for rep in result.metrics["tenants"]:
                p95_us = DEFAULT_CORE.cycles_to_us(rep["p95_latency_cycles"])
                cells.append(
                    f"{rep['name']}: attain {rep['attainment'] * 100:5.1f}% "
                    f"p95 {p95_us:7.1f}us goodput {rep['goodput_rps']:8.0f}/s"
                )
            print(
                f"  load {result.metadata['load']:3.1f}  "
                f"ME util {result.metrics['me_utilization'] * 100:5.1f}%  | "
                + "  | ".join(cells)
            )
        print()


if __name__ == "__main__":
    main()
