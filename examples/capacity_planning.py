#!/usr/bin/env python
"""Capacity planning with the vNPU allocator (paper SectionIII-B/Fig. 12).

A cloud operator wants to sell pay-as-you-go vNPUs.  For a set of
customer workloads this example:

1. profiles each workload and derives its optimal ME:VE ratio (Eq. 4);
2. sweeps EU budgets and shows predicted utilisation per configuration;
3. validates the analytical pick against simulation for one model;
4. packs the resulting vNPUs onto a board with the greedy mapper.

Run:  python examples/capacity_planning.py
"""

from repro.config import DEFAULT_CORE
from repro.core.allocator import VnpuAllocator, optimal_me_ve_ratio, utilization
from repro.core.mapper import MappingMode, VnpuMapper
from repro.core.vnpu import VnpuInstance
from repro.experiments.fig12_allocator import run as allocator_sweep
from repro.workloads.traces import build_trace

CUSTOMER_MODELS = ["BERT", "DLRM", "ResNet", "EfficientNet", "NCF"]


def main() -> None:
    core = DEFAULT_CORE.with_engines(8, 8)
    allocator = VnpuAllocator(core)

    # -- 1. Optimal ME:VE ratios per workload ---------------------------
    print("Optimal ME:VE ratios (Eq. 4):")
    profiles = {}
    for model in CUSTOMER_MODELS:
        trace = build_trace(model, batch=32, core=core)
        profiles[model] = trace.profile
        k = optimal_me_ve_ratio(trace.profile.m, trace.profile.v)
        print(f"  {model:14s} m={trace.profile.m:.3f} v={trace.profile.v:.3f} "
              f"-> k = nm/nv = {k:.2f}")

    # -- 2. EU budget sweep ----------------------------------------------
    print("\nAllocations per EU budget (MEs, VEs) + predicted utilization:")
    header = "  model          " + "".join(f"{eus:>12d}EU" for eus in (4, 8, 12, 16))
    print(header)
    for model, profile in profiles.items():
        cells = []
        for eus in (4, 8, 12, 16):
            result = allocator.allocate(profile, eus)
            cells.append(
                f"  ({result.num_mes},{result.num_ves}) {result.predicted_utilization*100:3.0f}%"
            )
        print(f"  {model:14s}" + "".join(f"{c:>14s}" for c in cells))

    # -- 3. Validate against simulation for BERT -------------------------
    print("\nSimulated validation for BERT (Fig. 12 methodology):")
    sweep = allocator_sweep("BERT", batch=32, budgets=[4, 8])
    for point in sweep.points:
        print(f"  EUs={point.total_eus}: allocator picked {point.selected} "
              f"(best {point.best}), efficiency {point.efficiency*100:.1f}%")

    # -- 4. Pack vNPUs onto a 4-core board --------------------------------
    print("\nPacking allocator-sized vNPUs onto 4 physical cores:")
    mapper = VnpuMapper([core] * 4, mode=MappingMode.SPATIAL)
    for model, profile in profiles.items():
        result = allocator.allocate(profile, 8)
        vnpu = VnpuInstance(config=result.as_vnpu_config(), owner=model)
        pnpu = mapper.map(vnpu)
        print(f"  {model:14s} ({result.num_mes},{result.num_ves}) "
              f"-> pNPU core {pnpu.core_index} "
              f"(now {pnpu.mes_committed}/{core.num_mes} MEs committed)")


if __name__ == "__main__":
    main()
