"""Fig. 12 (allocator cost-effectiveness) and Fig. 16 (NeuISA overhead)."""

from repro.experiments.expected import CLAIMS, FIG12_SELECTED
from repro.experiments.fig12_allocator import run as fig12_run
from repro.experiments.fig16_neuisa_overhead import run as fig16_run


def test_fig12_allocator(benchmark, report):
    def run_all():
        out = {}
        for model in ("BERT", "RsNt", "ENet", "SMask"):
            batch = 8 if model == "SMask" else 32
            out[model] = fig12_run(model, batch=batch, budgets=[4, 8, 12])
        return out

    sweeps = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Fig. 12: allocator-selected configs (paper labels in parens)")
    for model, sweep in sweeps.items():
        for point in sweep.points:
            paper = FIG12_SELECTED.get(model, {}).get(point.total_eus)
            paper_s = f"(paper {paper})" if paper else ""
            report(
                f"  {sweep.model:6s} EUs={point.total_eus:2d} selected "
                f"{point.selected} best {point.best} "
                f"eff {point.efficiency*100:5.1f}% {paper_s}"
            )
        # Paper: selected config is (near-)optimal.
        assert sweep.worst_efficiency() > 0.85


def test_fig16_neuisa_overhead(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig16_run(batches=[1, 8, 32]), rounds=1, iterations=1
    )
    report("Fig. 16: NeuISA overhead vs VLIW ISA")
    for model, per_batch in result.overhead.items():
        cells = ", ".join(f"b{b}={o*100:+6.2f}%" for b, o in per_batch.items())
        report(f"  {model:14s} {cells}")
    report(
        f"  average {result.average()*100:+.2f}% (paper < 1%), "
        f"max {result.maximum()*100:+.2f}% (paper ~6% worst case)"
    )
    assert abs(result.average()) < CLAIMS.neuisa_overhead_avg + 0.01
    assert result.maximum() < CLAIMS.neuisa_overhead_max
