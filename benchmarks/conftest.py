"""Benchmark-suite plumbing.

Each benchmark regenerates one paper table/figure (scaled down) and
records paper-vs-measured lines through the ``report`` fixture; the
lines are printed in the terminal summary so `pytest benchmarks/
--benchmark-only` output doubles as the reproduction log.
"""

from __future__ import annotations

from typing import List

import pytest

_REPORT_LINES: List[str] = []


@pytest.fixture
def report():
    """Returns a function that records one reproduction-log line."""

    def _record(line: str) -> None:
        _REPORT_LINES.append(line)

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    del exitstatus, config
    if not _REPORT_LINES:
        return
    terminalreporter.write_sep("=", "paper-vs-measured reproduction log")
    for line in _REPORT_LINES:
        terminalreporter.write_line(line)
