"""Ablation benchmarks for Neu10's design choices (DESIGN.md SectionVI)."""

from repro.experiments.ablations import (
    ablate_harvesting,
    ablate_hbm_policy,
    ablate_reclaim_penalty,
    ablate_ve_priority,
)

TARGET = 2


def test_ablation_harvesting(benchmark, report):
    points = benchmark.pedantic(
        lambda: ablate_harvesting(target_requests=TARGET), rounds=1, iterations=1
    )
    on, off = points["harvest-on"], points["harvest-off"]
    report(
        f"Ablation: harvesting -- RtNt throughput {off.throughputs[1]:.1f} -> "
        f"{on.throughputs[1]:.1f} rps ({on.throughputs[1]/off.throughputs[1]:.2f}x), "
        f"ME util {off.me_utilization*100:.0f}% -> {on.me_utilization*100:.0f}%"
    )
    # Harvesting must help the ME-bound tenant and lift utilization.
    assert on.throughputs[1] > off.throughputs[1] * 1.1
    assert on.me_utilization > off.me_utilization


def test_ablation_reclaim_penalty(benchmark, report):
    points = benchmark.pedantic(
        lambda: ablate_reclaim_penalty(target_requests=TARGET),
        rounds=1, iterations=1,
    )
    line = ", ".join(
        f"{penalty}cyc: DLRM {p.throughputs[0]:.0f} / RtNt "
        f"{p.throughputs[1]:.1f} rps"
        for penalty, p in points.items()
    )
    report(f"Ablation: reclaim penalty -- {line}")
    # The design is robust to the penalty value: results stay within a
    # moderate band across 0..2048 cycles (the paper's 256 is not a
    # finely tuned constant), and harvesting keeps paying off for the
    # ME-bound tenant at the highest penalty.
    rtnt = [p.throughputs[1] for p in points.values()]
    assert max(rtnt) / min(rtnt) < 1.5
    assert all(p.preemptions > 0 for p in points.values())


def test_ablation_hbm_policy(benchmark, report):
    points = benchmark.pedantic(
        lambda: ablate_hbm_policy(target_requests=TARGET), rounds=1, iterations=1
    )
    hier, flat = points["hierarchical"], points["flat"]
    report(
        f"Ablation: HBM sharing -- DLRM p95 hierarchical "
        f"{hier.p95s[0]/1e3:.0f}k cyc vs flat {flat.p95s[0]/1e3:.0f}k cyc "
        f"(hierarchical protects the memory-bound tenant)"
    )
    # Per-vNPU fairness must not be worse for the memory-hungry tenant.
    assert hier.p95s[0] <= flat.p95s[0] * 1.05


def test_ablation_ve_priority(benchmark, report):
    points = benchmark.pedantic(
        lambda: ablate_ve_priority(target_requests=TARGET), rounds=1, iterations=1
    )
    emb, inv = points["embedded-first"], points["ve-utops-first"]
    report(
        f"Ablation: VE priority -- RtNt throughput embedded-first "
        f"{emb.throughputs[1]:.1f} vs ve-utops-first {inv.throughputs[1]:.1f} rps"
    )
    # The paper's choice must not hurt the ME-bound tenant.
    assert emb.throughputs[1] >= inv.throughputs[1] * 0.95
