"""Figs. 25-27: engine scaling, bandwidth scaling, LLM collocation."""

from repro.experiments.expected import CLAIMS
from repro.experiments.fig25_scaling import run as fig25_run
from repro.experiments.fig26_bandwidth import run as fig26_run
from repro.experiments.fig27_llm import run as fig27_run
from repro.serving.server import SCHEME_NEU10, SCHEME_V10
from repro.sim.hw_cost import scheduler_cost
from repro.config import DEFAULT_CORE


def test_fig25_engine_scaling(benchmark, report):
    def run_all():
        return {
            pair: fig25_run(*pair, configs=[(2, 2), (4, 4), (8, 8)],
                            target_requests=2)
            for pair in (("DLRM", "RtNt"), ("ENet", "TFMR"))
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Fig. 25: throughput vs engine count (normalized to V10 @ 2ME-2VE)")
    for pair, result in results.items():
        cells = "  ".join(
            f"{cfg[0]}x{cfg[1]}: neu10={pt[SCHEME_NEU10]:.2f} v10={pt[SCHEME_V10]:.2f}"
            for cfg, pt in result.points.items()
        )
        report(f"  {result.pair:12s} {cells}")
        # Shape: more engines -> more absolute throughput for Neu10.
        values = [pt[SCHEME_NEU10] for pt in result.points.values()]
        assert values[-1] > values[0]
        # Paper: the Neu10 advantage does not shrink with more engines.
        assert result.gap((8, 8)) >= result.gap((2, 2)) * 0.85


def test_fig26_bandwidth_scaling(benchmark, report):
    def run_all():
        return {
            pair: fig26_run(*pair, bandwidths_gbps=[900, 1200, 3000],
                            target_requests=2)
            for pair in (("DLRM", "NCF"), ("DLRM", "RtNt"))
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Fig. 26: Neu10 throughput normalized to V10 vs HBM bandwidth")
    for pair, result in results.items():
        cells = "  ".join(
            f"{bw}GB/s={result.speedup[bw]:.2f}x" for bw in sorted(result.speedup)
        )
        report(f"  {result.pair:12s} {cells}")
        # Paper: Neu10 holds its own even at 900 GB/s.
        assert result.speedup[900] > 0.85


def test_fig27_llm_collocation(benchmark, report):
    def run_all():
        return {m: fig27_run(m, target_requests=1) for m in ("BERT", "RtNt")}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Fig. 27: LLaMA2-13B collocation (V10 vs Neu10)")
    gains = []
    for model, result in results.items():
        gains.append(result.collocated_gain())
        report(
            f"  {result.pair:14s} collocated gain {result.collocated_gain():.2f}x "
            f"(paper: up to {CLAIMS.llm_harvest_throughput_gain}x), "
            f"LLaMA keeps {min(1.0, result.llm_slowdown())*100:5.1f}% throughput, "
            f"ME util {result.utilization[SCHEME_V10][0]*100:.0f}% -> "
            f"{result.utilization[SCHEME_NEU10][0]*100:.0f}%"
        )
        # LLaMA must not collapse under Neu10.
        assert result.llm_slowdown() > 0.8
    assert max(gains) > 1.1


def test_tab2_scheduler_area(benchmark, report):
    cost = benchmark(scheduler_cost, DEFAULT_CORE)
    report(
        f"SectionIII-G: uTOp scheduler storage {cost.total_bytes} B -> "
        f"{cost.die_percent:.4f}% of a TPUv4-class die "
        f"(paper: {CLAIMS.scheduler_area_fraction*100:.2f}%)"
    )
    assert cost.die_fraction <= CLAIMS.scheduler_area_fraction
