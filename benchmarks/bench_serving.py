#!/usr/bin/env python
"""Serving-throughput benchmark: open-loop simulator speed.

Runs a fixed open-loop scenario (MNIST+DLRM, Poisson arrivals, load 0.8,
2 ms simulated window, Neu10 harvesting) and records wall time and the
requests-simulated-per-second rate in ``BENCH_serving.json`` next to
this file, so successive PRs leave a benchmark trajectory.

Run:  python benchmarks/bench_serving.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.serving.server import SCHEME_NEU10
from repro.traffic import OpenLoopConfig, TrafficTenantSpec, run_open_loop

SCENARIO = {
    "scheme": SCHEME_NEU10,
    "arrival": "poisson",
    "load": 0.8,
    "duration_s": 0.002,
    "seed": 7,
    "models": [["MNIST", 8], ["DLRM", 8]],
}


def run_benchmark() -> dict:
    specs = [TrafficTenantSpec(model=m, batch=b) for m, b in SCENARIO["models"]]
    cfg = OpenLoopConfig(
        duration_s=SCENARIO["duration_s"],
        load=SCENARIO["load"],
        arrival=SCENARIO["arrival"],
        seed=SCENARIO["seed"],
    )
    # Warm-up run outside the timed region: populates the trace and
    # calibration caches so the figure tracks simulator speed only.
    run_open_loop(specs, SCENARIO["scheme"], cfg)

    start = time.perf_counter()
    result = run_open_loop(specs, SCENARIO["scheme"], cfg)
    wall_s = time.perf_counter() - start

    offered = sum(rep.offered for rep in result.reports)
    completed = sum(rep.completed for rep in result.reports)
    return {
        "scenario": SCENARIO,
        "wall_s": wall_s,
        "requests_offered": offered,
        "requests_completed": completed,
        "requests_simulated_per_s": completed / wall_s if wall_s > 0 else 0.0,
        "simulated_cycles": result.total_cycles,
        "simulated_cycles_per_wall_s": result.total_cycles / wall_s
        if wall_s > 0
        else 0.0,
        "min_attainment": result.min_attainment,
    }


def main() -> None:
    record = run_benchmark()
    out = Path(__file__).resolve().parent / "BENCH_serving.json"
    out.write_text(json.dumps(record, indent=2) + "\n", encoding="utf-8")
    print(
        f"simulated {record['requests_completed']} requests "
        f"({record['simulated_cycles']:.0f} cycles) in {record['wall_s']:.3f}s "
        f"-> {record['requests_simulated_per_s']:.0f} req/s"
    )
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
