#!/usr/bin/env python
"""Simulator-speed benchmark suite, built on ``repro.api`` scenarios.

Runs one scenario per serving mode the repo models and records, for
each, how fast the simulator chews through simulated time:

- ``closed_loop``    -- fig-style collocation (two tenants, request
  target), the paper's steady-state methodology;
- ``poisson``        -- open-loop Poisson serving at load 0.8 (the
  headline scenario, comparable across PRs);
- ``load_sweep``     -- several open-loop load points fanned out over
  ``repro.api.sweep_scenario`` (scales with worker processes);
- ``cluster_churn``  -- the cluster churn driver over the orchestrator;
- ``cluster_autoscale`` -- the elastic control loop: a traffic spike
  served by the SLO-burn-rate autoscaler vs. static provisioning at the
  same mean host count (reports both attainments; the autoscaled run
  must win);
- ``cluster_virt``    -- the virtualization control plane: the same
  tenant wave admitted against VF-constrained SR-IOV pools (a
  ``virtualization:`` block) vs. unconstrained hosts, reporting
  hypercall counts, VF-exhaustion rejections and the attainment of
  what was admitted;
- ``llm_kv``          -- continuous-batching LLM serving (``kind:
  llm``) under a shrinking HBM KV budget: the same traffic served at
  ample, constrained and tight ``m_total``, reporting preemptions,
  tokens/s goodput and TTFT attainment at each point (the constrained
  points must preempt, and goodput/attainment must degrade
  monotonically as headroom shrinks);
- ``mega_batch``      -- a 256-point open-loop seed sweep co-stepped by
  the ``repro.megabatch`` struct-of-arrays engine, timed against the
  same sweep with ``REPRO_SIM_MEGABATCH=0`` (the per-point path) at
  ``max_workers=1``; reports the speedup and fails loudly if the two
  paths disagree on total simulated cycles;
- ``sweep_resume``    -- a 64-point seed sweep through the executor
  layer (``repro.exec``) with a ``--checkpoint`` journal, timed against
  the bare ``parallel_map`` sweep (same per-point engine on both
  sides); reports the checkpointing overhead (low single-digit
  percent) and the wall time of a no-op ``--resume`` replay.

Every mode is a declarative :class:`repro.api.Scenario` executed through
:func:`repro.api.run_scenario` -- the same path ``repro run`` takes --
so the benchmark measures exactly what users run.  Each record reports
wall time (best of ``repeats`` runs, warm caches), the *simulated*
duration in both cycles and seconds, and the headline
``simulated_cycles_per_wall_s`` rate.  Results land in
``BENCH_serving.json`` next to this file so successive PRs leave a
benchmark trajectory.

Run:          python benchmarks/bench_serving.py
CI smoke:     python benchmarks/bench_serving.py --quick --check-floor
              (fails if any scenario rate drops below the checked-in
              floor in BENCH_floor.json, i.e. a >30%-class regression)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.api import (
    Scenario,
    ScenarioAutoscaler,
    ScenarioChurn,
    ScenarioLlm,
    ScenarioLlmTenant,
    ScenarioPool,
    ScenarioTenant,
    ScenarioVirtualization,
    run_scenario,
    sweep_scenario,
)
from repro.config import DEFAULT_CORE

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_serving.json"
FLOOR_PATH = HERE / "BENCH_floor.json"

#: The two-tenant pair every scenario collocates (matches the PR 1
#: benchmark so the poisson trajectory stays comparable).
MODELS = [("MNIST", 8), ("DLRM", 8)]
SCHEME = "neu10"
SEED = 7
#: Default open-loop measurement window (simulated seconds).  Bumped
#: from the seed benchmark's 2 ms so steady-state throughput dominates
#: the cache-warmup transient.
DEFAULT_WINDOW_S = 0.01
QUICK_WINDOW_S = 0.002
LOADS = (0.5, 0.8, 1.1)


def _tenants() -> tuple:
    return tuple(ScenarioTenant(model=m, batch=b) for m, b in MODELS)


def _timed(fn: Callable[[], object], repeats: int) -> tuple:
    """Best wall time over ``repeats`` runs (first call warms caches)."""
    fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def bench_closed_loop(quick: bool, repeats: int) -> Dict:
    target = 20 if quick else 60
    scenario = Scenario(
        name="bench-closed-loop",
        kind="serving",
        scheme=SCHEME,
        tenants=_tenants(),
        target_requests=target,
    )
    result, wall = _timed(lambda: run_scenario(scenario), repeats)
    cycles = result.metrics["simulated_cycles"]
    completed = sum(
        t["completed_requests"] for t in result.metrics["tenants"]
    )
    return {
        "mode": "closed_loop",
        "scheme": SCHEME,
        "target_requests_per_tenant": target,
        "wall_s": wall,
        "requests_completed": completed,
        "requests_simulated_per_s": completed / wall,
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


def _poisson_scenario(window_s: float, load: float = 0.8) -> Scenario:
    return Scenario(
        name="bench-poisson",
        kind="open_loop",
        scheme=SCHEME,
        tenants=_tenants(),
        arrival="poisson",
        load=load,
        duration_s=window_s,
        seed=SEED,
    )


def bench_poisson(quick: bool, repeats: int) -> Dict:
    window_s = QUICK_WINDOW_S if quick else DEFAULT_WINDOW_S
    scenario = _poisson_scenario(window_s)
    result, wall = _timed(lambda: run_scenario(scenario), repeats)
    tenants = result.metrics["tenants"]
    offered = sum(rep["offered"] for rep in tenants)
    completed = sum(rep["completed"] for rep in tenants)
    cycles = result.metrics["simulated_cycles"]
    return {
        "mode": "open_loop",
        "scheme": SCHEME,
        "arrival": "poisson",
        "load": 0.8,
        "seed": SEED,
        "window_simulated_s": window_s,
        "wall_s": wall,
        "requests_offered": offered,
        "requests_completed": completed,
        "requests_simulated_per_s": completed / wall,
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
        "min_attainment": result.metrics["min_attainment"],
    }


def bench_load_sweep(quick: bool, repeats: int) -> Dict:
    loads = LOADS[:2] if quick else LOADS
    base = _poisson_scenario(QUICK_WINDOW_S)

    def sweep() -> float:
        results = sweep_scenario(base, param="load", values=list(loads))
        return sum(r.metrics["simulated_cycles"] for r in results)

    cycles, wall = _timed(sweep, repeats)
    return {
        "mode": "load_sweep",
        "scheme": SCHEME,
        "loads": list(loads),
        "window_simulated_s_per_point": QUICK_WINDOW_S,
        "wall_s": wall,
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


def bench_cluster_churn(quick: bool, repeats: int) -> Dict:
    end_s = 0.002 if quick else 0.004
    (m1, b1), (m2, b2) = MODELS
    scenario = Scenario(
        name="bench-cluster-churn",
        kind="cluster",
        scheme=SCHEME,
        arrival="poisson",
        load=0.8,
        duration_s=end_s,
        seed=SEED,
        hosts=2,
        churn=(
            ScenarioChurn(0.0, "arrive", "a", model=m1, batch=b1),
            ScenarioChurn(0.0, "arrive", "b", model=m2, batch=b2),
            ScenarioChurn(end_s / 2, "arrive", "c", model=m1, batch=b1),
            ScenarioChurn(end_s * 0.75, "depart", "b"),
        ),
    )
    result, wall = _timed(lambda: run_scenario(scenario), repeats)
    completed = sum(rep["completed"] for rep in result.metrics["tenants"])
    # Exact: summed over hosts and segments by the cluster driver
    # (drained hosts stop before the segment boundary, so this can be
    # below hosts x horizon).
    cycles = result.metrics["simulated_cycles"]
    return {
        "mode": "cluster_churn",
        "scheme": SCHEME,
        "num_hosts": scenario.hosts,
        "horizon_simulated_s": end_s,
        "segments": result.metrics["segments"],
        "wall_s": wall,
        "requests_completed": completed,
        "requests_simulated_per_s": completed / wall,
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


def _autoscale_scenario(end_s: float, policy: str,
                        initial_hosts: int) -> Scenario:
    """A traffic spike: 2 steady tenants, 6 more for the middle 40%.

    Tenants ask 1 ME / 1 VE so admission never rejects; what moves SLO
    attainment is harvesting headroom, i.e. how many tenants share a
    host.  The reactive policy grows the fleet for the spike and drains
    it afterwards; the ``static`` policy pins ``initial_hosts`` (same
    observation boundaries, hence identical arrival draws).
    """
    churn = [
        ScenarioChurn(0.0, "arrive", f"base{i}", model="MNIST", batch=8,
                      num_mes=1, num_ves=1)
        for i in range(2)
    ]
    churn += [
        ScenarioChurn(end_s * 0.25, "arrive", f"peak{i}", model="MNIST",
                      batch=8, num_mes=1, num_ves=1)
        for i in range(6)
    ]
    churn += [
        ScenarioChurn(end_s * 0.65, "depart", f"peak{i}") for i in range(6)
    ]
    return Scenario(
        name=f"bench-cluster-autoscale-{policy}",
        kind="cluster",
        scheme=SCHEME,
        arrival="poisson",
        load=0.5,
        duration_s=end_s,
        seed=SEED,
        churn=tuple(churn),
        pools=(ScenarioPool(name="pool", min_hosts=1, max_hosts=4,
                            initial_hosts=initial_hosts),),
        autoscaler=ScenarioAutoscaler(
            policy=policy,
            interval_s=end_s / 16,
            params={"slo_target": 0.75} if policy == "slo-burn-rate" else {},
        ),
    )


def bench_cluster_autoscale(quick: bool, repeats: int) -> Dict:
    # The control loop needs the full spike shape to show its value
    # (ramp, sustained peak, drain tail), so quick mode keeps the
    # window and only saves on repeats.
    end_s = 0.004
    elastic = _autoscale_scenario(end_s, "slo-burn-rate", initial_hosts=1)
    result, wall = _timed(lambda: run_scenario(elastic), repeats)
    mean_hosts = result.metrics["mean_active_hosts"]
    # Static provisioning at the same mean host count (rounded to a
    # whole machine), over the same boundaries and arrival draws.
    static_hosts = max(1, round(mean_hosts))
    static = run_scenario(
        _autoscale_scenario(end_s, "static", initial_hosts=static_hosts)
    )
    cycles = result.metrics["simulated_cycles"]
    events = result.metrics["autoscale_events"]
    return {
        "mode": "cluster_autoscale",
        "scheme": SCHEME,
        "policy": "slo-burn-rate",
        "horizon_simulated_s": end_s,
        "wall_s": wall,
        "autoscaled_attainment": result.metrics["cluster_attainment"],
        "autoscaled_mean_hosts": mean_hosts,
        "scaling_actions": len(events),
        "static_hosts": static_hosts,
        "static_attainment": static.metrics["cluster_attainment"],
        "attainment_gain": (
            result.metrics["cluster_attainment"]
            - static.metrics["cluster_attainment"]
        ),
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


def _virt_scenario(end_s: float,
                   virtualization: Optional[ScenarioVirtualization]) -> Scenario:
    """A wave of eight small tenants over two 2-VF hosts.

    Engine-wise every host takes four 1ME/1VE tenants, so without the
    ``virtualization:`` block the whole wave is admitted; with 2 VFs
    per host the SR-IOV pool is the binding constraint and half the
    wave is rejected ``vf-exhausted``.  The non-zero hypercall cost
    charges onboarding/migration latency against the admitted tenants.
    """
    churn = [
        ScenarioChurn(0.0, "arrive", f"w{i}", model="MNIST", batch=8,
                      num_mes=1, num_ves=1)
        for i in range(4)
    ]
    churn += [
        ScenarioChurn(end_s * 0.25, "arrive", f"w{4 + i}", model="MNIST",
                      batch=8, num_mes=1, num_ves=1)
        for i in range(4)
    ]
    churn += [ScenarioChurn(end_s * 0.75, "depart", "w0")]
    return Scenario(
        name="bench-cluster-virt",
        kind="cluster",
        scheme=SCHEME,
        arrival="poisson",
        load=0.5,
        duration_s=end_s,
        seed=SEED,
        churn=tuple(churn),
        pools=(ScenarioPool(name="pool", min_hosts=2, max_hosts=2,
                            initial_hosts=2),),
        virtualization=virtualization,
    )


def bench_cluster_virt(quick: bool, repeats: int) -> Dict:
    end_s = 0.002 if quick else 0.004
    constrained = _virt_scenario(
        end_s,
        ScenarioVirtualization(num_vfs=2, hypercall_cost_s=end_s / 100),
    )
    result, wall = _timed(lambda: run_scenario(constrained), repeats)
    virt = result.metrics["virtualization"]
    # The same wave with default (non-binding) VF pools: everything is
    # admitted, showing what the VF constraint cost in admissions.
    unconstrained = run_scenario(_virt_scenario(end_s, None))
    cycles = result.metrics["simulated_cycles"]
    return {
        "mode": "cluster_virt",
        "scheme": SCHEME,
        "num_vfs_per_host": 2,
        "horizon_simulated_s": end_s,
        "wall_s": wall,
        "hypercalls": virt["hypercall_total"],
        "vf_exhaustion_rejections": virt["vf_exhaustion_rejections"],
        "peak_vf_in_use": virt["peak_vf_in_use"],
        "onboarding_delay_s": virt["onboarding_delay_s"],
        "admission_rate": result.metrics["admission_rate"],
        "constrained_attainment": result.metrics["cluster_attainment"],
        "unconstrained_admission_rate":
            unconstrained.metrics["admission_rate"],
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


#: Ample -> constrained -> tight HBM KV budgets (tokens).  The ample
#: point never preempts; the constrained points must.
LLM_KV_BUDGETS = (16_384, 4_096, 2_048)


def _llm_scenario(m_total: int, duration_s: float) -> Scenario:
    """Two LLM tenants at load 0.9; step costs calibrated on the sim."""
    return Scenario(
        name=f"bench-llm-kv-m{m_total}",
        kind="llm",
        scheme=SCHEME,
        arrival="poisson",
        load=0.9,
        duration_s=duration_s,
        seed=SEED,
        drain=True,
        llm=ScenarioLlm(
            tenants=(
                ScenarioLlmTenant(name="chat", prompt_tokens=256,
                                  decode_tokens=64),
                ScenarioLlmTenant(name="code", prompt_tokens=512,
                                  decode_tokens=128, weight=0.5),
            ),
            batch_tokens=1024,
            m_total=m_total,
        ),
    )


def bench_llm_kv(quick: bool, repeats: int) -> Dict:
    duration_s = 0.25 if quick else 0.5
    ample, *constrained = LLM_KV_BUDGETS
    tightest = constrained[-1]
    result, wall = _timed(
        lambda: run_scenario(_llm_scenario(tightest, duration_s)), repeats
    )
    cycles = result.metrics["simulated_cycles"]
    # The same traffic at every headroom point (ample first).
    points = {tightest: result}
    for m_total in LLM_KV_BUDGETS:
        if m_total not in points:
            points[m_total] = run_scenario(_llm_scenario(m_total, duration_s))

    def ttft_attainment(res) -> float:
        tenants = res.metrics["tenants"].values()
        return min(t["ttft_attainment"] for t in tenants)

    return {
        "mode": "llm_kv",
        "scheme": SCHEME,
        "preemption_mode": "swap",
        "victim_policy": "lifo",
        "batch_tokens": 1024,
        "m_total_points": list(LLM_KV_BUDGETS),
        "horizon_simulated_s": duration_s,
        "wall_s": wall,
        "steps": result.metrics["steps"],
        "preemptions_by_m_total": {
            str(m): points[m].metrics["preemption"]["count"]
            for m in LLM_KV_BUDGETS
        },
        "goodput_tokens_per_s_by_m_total": {
            str(m): points[m].metrics["goodput_tokens_per_s"]
            for m in LLM_KV_BUDGETS
        },
        "ttft_attainment_by_m_total": {
            str(m): ttft_attainment(points[m]) for m in LLM_KV_BUDGETS
        },
        "constrained_preemptions": sum(
            points[m].metrics["preemption"]["count"] for m in constrained
        ),
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


def bench_mega_batch(quick: bool, repeats: int) -> Dict:
    """Seed sweep through the mega-batch struct-of-arrays engine.

    A many-point open-loop sweep is exactly the shape
    ``repro.megabatch`` accelerates: hundreds of independent windows of
    the same scenario, differing only in their arrival draws, co-stepped
    in 64-lane chunks with memoized epoch skip-ahead.  The mode times
    the same sweep twice -- engine on (default) and forced off via the
    ``REPRO_SIM_MEGABATCH=0`` escape hatch, i.e. the per-point
    ``run_scenario`` path -- with ``max_workers=1`` on both sides so
    the ratio isolates the engine rather than pool scaling.  Totals
    must match bit-for-bit; the headline rate (and the CI floor) is
    the engine-on rate.
    """
    import os

    from repro.megabatch import MEGABATCH_ENV

    points = 64 if quick else 256
    # Full mode uses a longer window so per-point setup (scenario
    # parse, calibration-cache lookups, arrival generation -- paid
    # identically on both sides) doesn't dilute the engine ratio.
    window_s = QUICK_WINDOW_S if quick else 0.004
    base = _poisson_scenario(window_s)
    seeds = list(range(points))

    def sweep() -> float:
        results = sweep_scenario(base, param="seed", values=seeds,
                                 max_workers=1)
        return sum(r.metrics["simulated_cycles"] for r in results)

    saved = os.environ.get(MEGABATCH_ENV)
    try:
        os.environ[MEGABATCH_ENV] = "1"
        cycles, wall = _timed(sweep, repeats)
        os.environ[MEGABATCH_ENV] = "0"
        # The scalar path is ~4x slower; one timed run (after the
        # warm-up _timed always does) keeps the mode affordable.
        scalar_cycles, scalar_wall = _timed(sweep, 1)
    finally:
        if saved is None:
            os.environ.pop(MEGABATCH_ENV, None)
        else:
            os.environ[MEGABATCH_ENV] = saved
    if cycles != scalar_cycles:
        raise RuntimeError(
            f"mega-batch sweep diverged from the scalar path: "
            f"{cycles} vs {scalar_cycles} simulated cycles"
        )
    return {
        "mode": "mega_batch",
        "scheme": SCHEME,
        "sweep_param": "seed",
        "sweep_points": points,
        "window_simulated_s_per_point": window_s,
        "wall_s": wall,
        "scalar_wall_s": scalar_wall,
        "speedup_vs_per_point": scalar_wall / wall,
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
        "scalar_simulated_cycles_per_wall_s": scalar_cycles / scalar_wall,
    }


def bench_sweep_resume(quick: bool, repeats: int) -> Dict:
    """Checkpointed executor sweep vs the bare ``parallel_map`` path.

    A seed sweep run three ways: the legacy ``sweep_scenario`` path at
    ``max_workers=1`` (the baseline), the same sweep through
    ``sweep_scenario_report`` with the ``serial`` backend and a
    ``--checkpoint`` journal (digest sharding + fsynced JSONL appends
    are the only extra work), and a no-op ``--resume`` of the finished
    journal.  Both timed sides force ``REPRO_SIM_MEGABATCH=0`` -- the
    executor path is per-point by design, so the ratio must measure
    journal overhead, not megabatch vs scalar stepping.  The headline
    ``overhead_vs_bare`` stays in the low single-digit percent; cycle
    totals must match bit-for-bit.
    """
    import os
    import shutil
    import tempfile

    from repro.api import sweep_scenario_report
    from repro.megabatch import MEGABATCH_ENV

    points = 16 if quick else 64
    window_s = QUICK_WINDOW_S if quick else 0.004
    base = _poisson_scenario(window_s)
    seeds = list(range(points))

    def bare() -> float:
        results = sweep_scenario(base, param="seed", values=seeds,
                                 max_workers=1)
        return sum(r.metrics["simulated_cycles"] for r in results)

    scratch = Path(tempfile.mkdtemp(prefix="bench-sweep-resume-"))
    counter = {"n": 0}

    def _next_ck() -> Path:
        counter["n"] += 1
        return scratch / f"ck-{counter['n']}"

    def checkpointed() -> float:
        report = sweep_scenario_report(
            base, param="seed", values=seeds, executor="serial",
            checkpoint=_next_ck(),
        )
        return sum(r.metrics["simulated_cycles"] for r in report.results)

    saved = os.environ.get(MEGABATCH_ENV)
    try:
        os.environ[MEGABATCH_ENV] = "0"
        bare_cycles, bare_wall = _timed(bare, repeats)
        cycles, wall = _timed(checkpointed, repeats)

        # No-op resume of the last finished journal: every shard is
        # replayed from disk, nothing is simulated.
        last_ck = scratch / f"ck-{counter['n']}"

        def resume_noop() -> float:
            report = sweep_scenario_report(
                base, param="seed", values=seeds, executor="serial",
                checkpoint=last_ck, resume=True,
            )
            assert report.executed == 0
            return sum(
                r.metrics["simulated_cycles"] for r in report.results
            )

        resume_cycles, resume_wall = _timed(resume_noop, repeats)
    finally:
        if saved is None:
            os.environ.pop(MEGABATCH_ENV, None)
        else:
            os.environ[MEGABATCH_ENV] = saved
        shutil.rmtree(scratch, ignore_errors=True)

    if not (cycles == bare_cycles == resume_cycles):
        raise RuntimeError(
            f"checkpointed sweep diverged from the bare path: "
            f"{cycles} vs {bare_cycles} vs {resume_cycles} (resume) "
            "simulated cycles"
        )
    return {
        "mode": "sweep_resume",
        "scheme": SCHEME,
        "sweep_param": "seed",
        "sweep_points": points,
        "window_simulated_s_per_point": window_s,
        "wall_s": wall,
        "bare_wall_s": bare_wall,
        "overhead_vs_bare": wall / bare_wall - 1.0,
        "resume_noop_wall_s": resume_wall,
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


SCENARIOS = {
    "closed_loop": bench_closed_loop,
    "poisson": bench_poisson,
    "load_sweep": bench_load_sweep,
    "cluster_churn": bench_cluster_churn,
    "cluster_autoscale": bench_cluster_autoscale,
    "cluster_virt": bench_cluster_virt,
    "llm_kv": bench_llm_kv,
    "mega_batch": bench_mega_batch,
    "sweep_resume": bench_sweep_resume,
}


def run_suite(quick: bool = False, repeats: int = 3) -> Dict:
    from repro.sim.engine import _fast_path_default

    scenarios = {}
    for name, bench in SCENARIOS.items():
        scenarios[name] = bench(quick, repeats)
        rate = scenarios[name]["simulated_cycles_per_wall_s"]
        print(f"{name:>14}: {rate / 1e6:8.1f}M simulated cycles / wall-second")
    return {
        "suite_version": 2,
        "quick": quick,
        "repeats": repeats,
        "fast_path": _fast_path_default(),
        "scenarios": scenarios,
    }


def check_floor(record: Dict, floor_path: Path = FLOOR_PATH) -> List[str]:
    """Compare scenario rates against the checked-in floor values."""
    if not floor_path.exists():
        return [f"floor file missing: {floor_path}"]
    floors = json.loads(floor_path.read_text(encoding="utf-8"))
    failures = []
    for name, floor in floors.get("floors", {}).items():
        scenario = record["scenarios"].get(name)
        if scenario is None:
            failures.append(f"scenario {name!r} missing from results")
            continue
        rate = scenario["simulated_cycles_per_wall_s"]
        if rate < floor:
            failures.append(
                f"{name}: {rate / 1e6:.1f}M cycles/s below floor "
                f"{floor / 1e6:.1f}M"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny windows (CI smoke)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per scenario (best wins)")
    parser.add_argument("--check-floor", action="store_true",
                        help="fail if any scenario regresses below "
                             "BENCH_floor.json")
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args(argv)

    record = run_suite(quick=args.quick, repeats=args.repeats)
    args.output.write_text(json.dumps(record, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")

    if args.check_floor:
        failures = check_floor(record)
        if failures:
            for failure in failures:
                print(f"FLOOR REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("all scenarios at or above the checked-in floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
