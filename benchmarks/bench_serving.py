#!/usr/bin/env python
"""Simulator-speed benchmark suite.

Runs one scenario per serving mode the repo models and records, for
each, how fast the simulator chews through simulated time:

- ``closed_loop``    -- fig-style collocation (two tenants, request
  target), the paper's steady-state methodology;
- ``poisson``        -- open-loop Poisson serving at load 0.8 (the
  headline scenario, comparable across PRs);
- ``load_sweep``     -- several open-loop load points fanned out over
  ``repro.parallel.parallel_map`` (scales with worker processes);
- ``cluster_churn``  -- the cluster churn driver over the orchestrator.

Every scenario reports wall time (best of ``repeats`` runs, warm
caches), the *simulated* duration in both cycles and seconds -- the old
single-scenario benchmark reported the simulated window under the
ambiguous key ``duration_s``, which read like wall time -- and the
headline ``simulated_cycles_per_wall_s`` rate.  Results land in
``BENCH_serving.json`` next to this file so successive PRs leave a
benchmark trajectory.

Run:          python benchmarks/bench_serving.py
CI smoke:     python benchmarks/bench_serving.py --quick --check-floor
              (fails if any scenario rate drops below the checked-in
              floor in BENCH_floor.json, i.e. a >30%-class regression)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.config import DEFAULT_CORE
from repro.parallel import parallel_map
from repro.serving.server import SCHEME_NEU10, ServingConfig, WorkloadSpec, run_collocation
from repro.traffic import (
    ChurnEvent,
    ClusterTrafficConfig,
    OpenLoopConfig,
    TrafficTenantSpec,
    run_cluster_traffic,
    run_open_loop,
)

HERE = Path(__file__).resolve().parent
RESULT_PATH = HERE / "BENCH_serving.json"
FLOOR_PATH = HERE / "BENCH_floor.json"

#: The two-tenant pair every scenario collocates (matches the PR 1
#: benchmark so the poisson trajectory stays comparable).
MODELS = [("MNIST", 8), ("DLRM", 8)]
SEED = 7
#: Default open-loop measurement window (simulated seconds).  Bumped
#: from the seed benchmark's 2 ms so steady-state throughput dominates
#: the cache-warmup transient.
DEFAULT_WINDOW_S = 0.01
QUICK_WINDOW_S = 0.002
LOADS = (0.5, 0.8, 1.1)


def _specs() -> List[TrafficTenantSpec]:
    return [TrafficTenantSpec(model=m, batch=b) for m, b in MODELS]


def _timed(fn: Callable[[], object], repeats: int) -> tuple:
    """Best wall time over ``repeats`` runs (first call warms caches)."""
    fn()
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def bench_closed_loop(quick: bool, repeats: int) -> Dict:
    target = 20 if quick else 60
    specs = [WorkloadSpec(model=m, batch=b) for m, b in MODELS]
    cfg = ServingConfig(target_requests=target, record_ops=False)

    metrics, wall = _timed(
        lambda: run_collocation(specs, SCHEME_NEU10, cfg), repeats
    )
    cycles = metrics.total_cycles
    completed = sum(t.completed_requests for t in metrics.tenants)
    return {
        "mode": "closed_loop",
        "scheme": SCHEME_NEU10,
        "target_requests_per_tenant": target,
        "wall_s": wall,
        "requests_completed": completed,
        "requests_simulated_per_s": completed / wall,
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


def bench_poisson(quick: bool, repeats: int) -> Dict:
    window_s = QUICK_WINDOW_S if quick else DEFAULT_WINDOW_S
    cfg = OpenLoopConfig(
        duration_s=window_s, load=0.8, arrival="poisson", seed=SEED
    )
    result, wall = _timed(
        lambda: run_open_loop(_specs(), SCHEME_NEU10, cfg), repeats
    )
    offered = sum(rep.offered for rep in result.reports)
    completed = sum(rep.completed for rep in result.reports)
    return {
        "mode": "open_loop",
        "scheme": SCHEME_NEU10,
        "arrival": "poisson",
        "load": 0.8,
        "seed": SEED,
        "window_simulated_s": window_s,
        "wall_s": wall,
        "requests_offered": offered,
        "requests_completed": completed,
        "requests_simulated_per_s": completed / wall,
        "simulated_cycles": result.total_cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(result.total_cycles),
        "simulated_cycles_per_wall_s": result.total_cycles / wall,
        "min_attainment": result.min_attainment,
    }


def _sweep_point(load: float) -> float:
    cfg = OpenLoopConfig(
        duration_s=QUICK_WINDOW_S, load=load, arrival="poisson", seed=SEED
    )
    return run_open_loop(_specs(), SCHEME_NEU10, cfg).total_cycles


def bench_load_sweep(quick: bool, repeats: int) -> Dict:
    loads = LOADS[:2] if quick else LOADS

    def sweep() -> float:
        return sum(parallel_map(_sweep_point, loads))

    cycles, wall = _timed(sweep, repeats)
    return {
        "mode": "load_sweep",
        "scheme": SCHEME_NEU10,
        "loads": list(loads),
        "window_simulated_s_per_point": QUICK_WINDOW_S,
        "wall_s": wall,
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


def bench_cluster_churn(quick: bool, repeats: int) -> Dict:
    end_s = 0.002 if quick else 0.004
    specs = _specs()
    events = [
        ChurnEvent(0.0, "arrive", "a", spec=specs[0]),
        ChurnEvent(0.0, "arrive", "b", spec=specs[1]),
        ChurnEvent(end_s / 2, "arrive", "c", spec=specs[0]),
        ChurnEvent(end_s * 0.75, "depart", "b"),
    ]
    cfg = ClusterTrafficConfig(
        num_hosts=2, scheme=SCHEME_NEU10, load=0.8, end_s=end_s, seed=SEED
    )
    result, wall = _timed(lambda: run_cluster_traffic(events, cfg), repeats)
    completed = sum(rep.completed for rep in result.reports.values())
    # Exact: summed over hosts and segments by the cluster driver
    # (drained hosts stop before the segment boundary, so this can be
    # below hosts x horizon).
    cycles = result.simulated_cycles
    return {
        "mode": "cluster_churn",
        "scheme": SCHEME_NEU10,
        "num_hosts": cfg.num_hosts,
        "horizon_simulated_s": end_s,
        "segments": result.segments,
        "wall_s": wall,
        "requests_completed": completed,
        "requests_simulated_per_s": completed / wall,
        "simulated_cycles": cycles,
        "simulated_s": DEFAULT_CORE.cycles_to_seconds(cycles),
        "simulated_cycles_per_wall_s": cycles / wall,
    }


SCENARIOS = {
    "closed_loop": bench_closed_loop,
    "poisson": bench_poisson,
    "load_sweep": bench_load_sweep,
    "cluster_churn": bench_cluster_churn,
}


def run_suite(quick: bool = False, repeats: int = 3) -> Dict:
    from repro.sim.engine import _fast_path_default

    scenarios = {}
    for name, bench in SCENARIOS.items():
        scenarios[name] = bench(quick, repeats)
        rate = scenarios[name]["simulated_cycles_per_wall_s"]
        print(f"{name:>14}: {rate / 1e6:8.1f}M simulated cycles / wall-second")
    return {
        "suite_version": 2,
        "quick": quick,
        "repeats": repeats,
        "fast_path": _fast_path_default(),
        "scenarios": scenarios,
    }


def check_floor(record: Dict, floor_path: Path = FLOOR_PATH) -> List[str]:
    """Compare scenario rates against the checked-in floor values."""
    if not floor_path.exists():
        return [f"floor file missing: {floor_path}"]
    floors = json.loads(floor_path.read_text(encoding="utf-8"))
    failures = []
    for name, floor in floors.get("floors", {}).items():
        scenario = record["scenarios"].get(name)
        if scenario is None:
            failures.append(f"scenario {name!r} missing from results")
            continue
        rate = scenario["simulated_cycles_per_wall_s"]
        if rate < floor:
            failures.append(
                f"{name}: {rate / 1e6:.1f}M cycles/s below floor "
                f"{floor / 1e6:.1f}M"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="tiny windows (CI smoke)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions per scenario (best wins)")
    parser.add_argument("--check-floor", action="store_true",
                        help="fail if any scenario regresses below "
                             "BENCH_floor.json")
    parser.add_argument("--output", type=Path, default=RESULT_PATH)
    args = parser.parse_args(argv)

    record = run_suite(quick=args.quick, repeats=args.repeats)
    args.output.write_text(json.dumps(record, indent=2) + "\n",
                           encoding="utf-8")
    print(f"wrote {args.output}")

    if args.check_floor:
        failures = check_floor(record)
        if failures:
            for failure in failures:
                print(f"FLOOR REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("all scenarios at or above the checked-in floor")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
