"""Figs. 2-7: workload characterisation benchmarks."""

from repro.config import DEFAULT_CORE
from repro.experiments import fig02_demand, fig04_intensity
from repro.experiments.expected import FIG7_AVG_BANDWIDTH_GBPS
from repro.experiments.fig05_utilization import run as fig05_run
from repro.experiments.fig06_ve_idle import run as fig06_run
from repro.experiments.fig07_hbm import run as fig07_run


def test_fig02_03_demand(benchmark, report):
    def run_all():
        out = {}
        for model in fig02_demand.FIG2_MODELS:
            out[(model, 8)] = fig02_demand.run(model, batch=8)
        for model in fig02_demand.FIG3_MODELS:
            out[(model, 32)] = fig02_demand.run(model, batch=32)
        return out

    traces = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Fig. 2/3: ME/VE demand over time (paper: demand varies per op)")
    for (model, batch), trace in traces.items():
        me_avg, ve_avg = trace.time_weighted_average()
        n_me, n_ve = trace.demand_variance()
        report(
            f"  {trace.model:6s} b{batch:<3d} duration {trace.duration_us:9.0f} us, "
            f"avg {me_avg:.2f} ME / {ve_avg:.2f} VE, "
            f"{n_me}/{n_ve} distinct demand levels"
        )
        assert n_me >= 2 or n_ve >= 2  # demand is not flat


def test_fig04_intensity(benchmark, report):
    result = benchmark.pedantic(
        lambda: fig04_intensity.run(batches=[8, 32]), rounds=1, iterations=1
    )
    report("Fig. 4: ME/VE intensity ratio (paper: DLRM/NCF < 1, ResNet >> 1)")
    for model, per_batch in result.ratios.items():
        cells = ", ".join(f"b{b}={r:8.3f}" for b, r in per_batch.items())
        report(f"  {model:14s} {cells}")
    assert "ResNet" in result.me_intensive(8)
    assert "DLRM" in result.ve_intensive(8)


def test_fig05_solo_utilization(benchmark, report):
    def run_all():
        return {m: fig05_run(m, batch=8, num_windows=20)
                for m in ("BERT", "DLRM", "RsNt")}

    traces = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Fig. 5: solo ME/VE utilization (paper: neither fully utilised)")
    for model, tr in traces.items():
        report(
            f"  {tr.model:6s} overall ME {tr.overall_me*100:5.1f}% / "
            f"VE {tr.overall_ve*100:5.1f}%"
        )
        assert tr.overall_me < 1.0 and tr.overall_ve < 1.0


def test_fig06_ve_idleness(benchmark, report):
    result = benchmark.pedantic(fig06_run, rounds=1, iterations=1)
    report(
        f"Fig. 6: fused MatMul+ReLU VE idleness -- measured "
        f"{result.vliw_ve_idle_fraction*100:.1f}% (paper: ~87%, pop=8cyc vs relu=1cyc)"
    )
    assert result.vliw_ve_idle_fraction > 0.8


def test_fig07_hbm_bandwidth(benchmark, report):
    def run_all():
        return {
            (m, b): fig07_run(m, b)
            for (m, b) in (("BERT", 8), ("BERT", 32), ("DLRM", 8), ("DLRM", 32))
        }

    traces = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Fig. 7: HBM bandwidth (GB/s)")
    limit = DEFAULT_CORE.hbm_bandwidth_bytes_per_s / 1e9
    for (model, batch), tr in traces.items():
        paper = FIG7_AVG_BANDWIDTH_GBPS[(model, batch)]
        report(
            f"  {tr.model:5s} b{batch:<3d} avg {tr.average_gbps:6.1f} "
            f"(paper {paper:6.1f}), peak {tr.peak_gbps:6.1f} of {limit:.0f}"
        )
        assert tr.peak_gbps <= limit + 1e-6
    # Shape: BERT's average falls with batch; DLRM's stays flat.
    assert traces[("BERT", 32)].average_gbps < traces[("BERT", 8)].average_gbps
    flat = traces[("DLRM", 32)].average_gbps / traces[("DLRM", 8)].average_gbps
    assert 0.7 < flat < 1.3
