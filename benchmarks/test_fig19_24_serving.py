"""Figs. 19-24 + Table III: the main multi-tenant serving evaluation.

The first benchmark runs all nine collocation pairs under the four
schemes (cached); the remaining benchmarks summarise different views of
the same runs, exactly like the paper derives Figs. 19-23 and Table III
from one set of experiments.
"""

import pytest

from repro.experiments import expected
from repro.experiments.common import geomean, run_pair_cached
from repro.experiments.fig19_22_serving import ServingComparison
from repro.experiments.fig23_harvest import run as fig23_run
from repro.experiments.fig24_assignment import run as fig24_run

#: Requests per tenant for the benchmark-scale runs.
TARGET = 3
SCHEMES = ("pmt", "v10", "neu10-nh", "neu10")


def _all_runs():
    return [
        run_pair_cached(w1, w2, SCHEMES, TARGET) for w1, w2 in expected.ALL_PAIRS
    ]


@pytest.fixture
def comparison():
    return ServingComparison(runs=_all_runs())


def test_fig19_tail_latency(benchmark, report):
    runs = benchmark.pedantic(_all_runs, rounds=1, iterations=1)
    comparison = ServingComparison(runs=runs)
    report("Fig. 19: normalized p95 tail latency (PMT = 1.00; lower is better)")
    for label, per_scheme in comparison.latency_rows("p95_latency_cycles"):
        cells = "  ".join(
            f"{s}={per_scheme[s][0]:.2f}/{per_scheme[s][1]:.2f}"
            for s in ("v10", "neu10-nh", "neu10")
        )
        report(f"  {label:14s} {cells}")
    tail_max, tail_geo = comparison.tail_gain_vs_v10()
    report(
        f"  tail gain vs V10: max {tail_max:.2f}x avg {tail_geo:.2f}x "
        f"(paper: up to {expected.CLAIMS.tail_latency_vs_v10_max}x, "
        f"avg {expected.CLAIMS.tail_latency_vs_v10_avg}x)"
    )
    # Shape claim: Neu10 never has meaningfully worse tail than V10 on
    # average, and wins somewhere.
    assert tail_geo > 0.95
    assert tail_max > 1.2


def test_fig20_avg_latency(benchmark, report, comparison):
    gains = benchmark.pedantic(
        lambda: (comparison.mean_latency_gain("pmt"),
                 comparison.mean_latency_gain("v10")),
        rounds=1, iterations=1,
    )
    vs_pmt, vs_v10 = gains
    report(
        f"Fig. 20: mean latency gain of Neu10 -- vs PMT {vs_pmt:.2f}x "
        f"(paper {expected.CLAIMS.avg_latency_vs_pmt}x), vs V10 {vs_v10:.2f}x "
        f"(paper {expected.CLAIMS.avg_latency_vs_v10}x)"
    )
    assert vs_pmt > 1.05
    assert vs_v10 > 0.95


def test_fig21_throughput(benchmark, report, comparison):
    def summarise():
        return (
            comparison.throughput_gain_low_contention("neu10"),
            comparison.throughput_gain_low_contention("v10"),
            comparison.throughput_gain_vs_v10_max(),
        )

    neu_low, v10_low, vs_v10_max = benchmark.pedantic(
        summarise, rounds=1, iterations=1
    )
    report("Fig. 21: normalized throughput (PMT = 1.00; higher is better)")
    for label, per_scheme in comparison.throughput_rows():
        cells = "  ".join(
            f"{s}={per_scheme[s][0]:.2f}/{per_scheme[s][1]:.2f}"
            for s in ("v10", "neu10-nh", "neu10")
        )
        report(f"  {label:14s} {cells}")
    report(
        f"  low-contention gain vs PMT: neu10 {neu_low:.2f}x / v10 {v10_low:.2f}x "
        f"(paper {expected.CLAIMS.throughput_vs_pmt_low_contention_neu10}x / "
        f"{expected.CLAIMS.throughput_vs_pmt_low_contention_v10}x); "
        f"max gain vs V10 {vs_v10_max:.2f}x "
        f"(paper up to {expected.CLAIMS.throughput_vs_v10_high_contention_max}x)"
    )
    assert neu_low > 1.1
    assert vs_v10_max > 1.0


def test_fig22_utilization(benchmark, report, comparison):
    me_gain, ve_gain = benchmark.pedantic(
        comparison.utilization_gain_vs_pmt, rounds=1, iterations=1
    )
    report(
        f"Fig. 22: Neu10 utilization gain vs PMT -- ME {me_gain:.2f}x "
        f"(paper {expected.CLAIMS.me_utilization_vs_pmt}x), VE {ve_gain:.2f}x "
        f"(paper {expected.CLAIMS.ve_utilization_vs_pmt}x)"
    )
    assert me_gain > 1.0


def test_fig23_tab3_harvesting(benchmark, report):
    def run_all():
        return [
            fig23_run(w1, w2, target_requests=TARGET)
            for w1, w2 in expected.ALL_PAIRS
        ]

    breakdowns = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Fig. 23 / Table III: harvesting benefit and blocked-time overhead")
    harvest_gains = []
    for b in breakdowns:
        paper = expected.TABLE3_OVERHEAD[tuple(b.pair.split("+"))]
        report(
            f"  {b.pair:14s} med speedup {b.median_speedup(0):5.2f}/"
            f"{b.median_speedup(1):5.2f}  blocked "
            f"{b.blocked[0]*100:5.2f}%/{b.blocked[1]*100:5.2f}% "
            f"(paper {paper[0]*100:5.2f}%/{paper[1]*100:.2f}%)"
        )
        harvest_gains.extend([b.median_speedup(0), b.median_speedup(1)])
        # Table III claim: blocked-time overhead is small (0-11%).
        assert b.blocked[0] < 0.2 and b.blocked[1] < 0.2
    # Somewhere the harvesting benefit is visible.
    assert max(harvest_gains) > 1.0


def test_fig24_assignment_traces(benchmark, report):
    def run_all():
        return [
            fig24_run(w1, w2, target_requests=2)
            for w1, w2 in (("DLRM", "RtNt"), ("ENet", "SMask"))
        ]

    traces = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report("Fig. 24: assigned MEs over time under Neu10 (home = 2)")
    any_harvest = False
    for trace in traces:
        for name in trace.series:
            lo, hi = trace.me_range(name)
            frac = trace.harvested_fraction(name, home=2.0)
            any_harvest = any_harvest or hi > 2.0
            report(
                f"  {trace.pair:12s} {name:6s} ME range [{lo:.0f},{hi:.0f}] "
                f"harvesting {frac*100:5.1f}% of time"
            )
    assert any_harvest
