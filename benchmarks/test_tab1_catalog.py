"""Table I: the DNN model zoo (names, categories, HBM footprints)."""

from repro.config import GiB
from repro.workloads.catalog import model_info, model_names
from repro.workloads.traces import build_trace


def test_tab1_catalog(benchmark, report):
    def build_all():
        return [build_trace(name, 8) for name in model_names()]

    traces = benchmark.pedantic(build_all, rounds=1, iterations=1)
    report("Table I: model zoo")
    for trace in traces:
        info = model_info(trace.name)
        report(
            f"  {info.name:14s} [{info.category:14s}] "
            f"footprint {info.hbm_footprint_bytes / GiB:6.2f} GiB, "
            f"{len(trace.graph):4d} ops/request"
        )
    assert len(traces) == 11
