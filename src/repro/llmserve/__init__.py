"""Continuous-batching LLM serving under KV-cache pressure.

Builds on the parameterized :func:`repro.workloads.llm.build_llama`
workload: step costs are *calibrated* on the cycle-accurate NPU core
(:mod:`repro.llmserve.cost`), then an iteration-level engine
(:mod:`repro.llmserve.engine`) serves open-loop traffic under a per-step
batch token budget and a device HBM KV budget, preempting via pluggable
modes and victim policies (:mod:`repro.llmserve.preemption`).

Scenario integration lives in :mod:`repro.api` (``llm:`` block,
``kind: llm``); victim policies are exposed through the
:data:`repro.api.registries.PREEMPTION` registry.
"""

from repro.llmserve.cost import (
    KV_BYTES_PER_TOKEN,
    LlmCostModel,
    calibrate_llm_cost,
    default_swap_cycles_per_token,
)
from repro.llmserve.engine import (
    LlmServeConfig,
    LlmServeResult,
    LlmTenantReport,
    LlmTenantSpec,
    run_llm_serving,
)
from repro.llmserve.preemption import (
    PREEMPTION_MODES,
    VICTIM_POLICIES,
    FifoVictimPolicy,
    LifoVictimPolicy,
    PreemptionEvent,
    RandomVictimPolicy,
    VictimPolicy,
    check_preemption_mode,
)
from repro.llmserve.requests import LlmRequest

__all__ = [
    "KV_BYTES_PER_TOKEN",
    "LlmCostModel",
    "calibrate_llm_cost",
    "default_swap_cycles_per_token",
    "LlmServeConfig",
    "LlmServeResult",
    "LlmTenantReport",
    "LlmTenantSpec",
    "run_llm_serving",
    "PREEMPTION_MODES",
    "VICTIM_POLICIES",
    "FifoVictimPolicy",
    "LifoVictimPolicy",
    "PreemptionEvent",
    "RandomVictimPolicy",
    "VictimPolicy",
    "check_preemption_mode",
    "LlmRequest",
]
