"""Continuous-batching LLM serving under a KV-cache HBM budget.

The engine iterates *steps* (vLLM-style iteration-level scheduling):
every running request decodes one token per step, newly admitted
requests prefill their whole prompt in the step they join, and the step
time follows the calibrated :class:`repro.llmserve.cost.LlmCostModel`
(``d0 + d1 * batch_tokens``, plus KV-reload time for swap-ins).  Two
budgets bound each step:

- ``batch_tokens`` -- step token budget ``b``: decodes count 1 token,
  prefills count their full prompt;
- ``m_total`` -- device HBM KV budget in tokens: the sum of resident
  KV caches (each grows by one token per decode step) must fit.

When the running batch's KV growth would overflow ``m_total``, victims
are preempted via the configured :mod:`repro.llmserve.preemption`
policy and mode (``swap`` keeps KV off-device and pays a reload;
``sacrifice`` drops KV and restarts from prefill).  Batch priority is
RUNNING > SWAPPED > WAITING, all ordered by ``(arrival, rid)``.

Everything is seeded through :func:`repro.config.spawn_rng`, so a run
replays bit-exactly in-process and across ``parallel_map`` workers.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import DEFAULT_CORE, DEFAULT_SEED, NpuCoreConfig, spawn_rng
from repro.errors import ConfigError, SimulationError
from repro.llmserve.cost import LlmCostModel, calibrate_llm_cost
from repro.llmserve.preemption import PreemptionEvent, check_preemption_mode
from repro.llmserve.requests import (
    FINISHED,
    RUNNING,
    SWAPPED,
    WAITING,
    LlmRequest,
)

#: Max KV-occupancy timeline points exported into result metrics.
KV_TIMELINE_POINTS = 200


@dataclass(frozen=True)
class LlmTenantSpec:
    """One open-loop LLM tenant: request geometry plus a load weight."""

    name: str
    prompt_tokens: int = 512
    decode_tokens: int = 64
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("llm tenant needs a name")
        if self.prompt_tokens < 1 or self.decode_tokens < 1:
            raise ConfigError(
                f"llm tenant {self.name!r} needs positive prompt/decode tokens"
            )
        if self.weight <= 0:
            raise ConfigError(f"llm tenant {self.name!r} weight must be > 0")

    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.decode_tokens


@dataclass(frozen=True)
class LlmServeConfig:
    """Engine knobs; cost overrides skip simulator calibration."""

    core: NpuCoreConfig = DEFAULT_CORE
    scheme: str = "neu10"
    seed: int = DEFAULT_SEED
    duration_s: float = 1.0
    #: Offered load as a fraction of full-batch decode token capacity.
    load: float = 0.8
    arrival: str = "poisson"
    #: Per-step batch token budget ``b``.
    batch_tokens: int = 2048
    #: Device HBM KV budget ``m_total`` in tokens.
    m_total: int = 8192
    preemption_mode: str = "swap"
    victim_policy: str = "lifo"
    #: Drain every arrival past the horizon (vs stop at the horizon).
    drain: bool = True
    #: TTFT SLO = scale x unqueued prefill step time.
    ttft_slo_scale: float = 5.0
    #: TPOT SLO = scale x full-batch decode step time.
    tpot_slo_scale: float = 1.5
    max_steps: int = 500_000
    step_overhead_cycles: Optional[float] = None
    cycles_per_token: Optional[float] = None
    swap_cycles_per_token: Optional[float] = None

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigError("duration must be positive")
        if self.load <= 0:
            raise ConfigError("load must be positive")
        if self.batch_tokens < 1 or self.m_total < 1:
            raise ConfigError("batch_tokens and m_total must be positive")
        if self.max_steps < 1:
            raise ConfigError("max_steps must be positive")
        check_preemption_mode(self.preemption_mode)
        if not self.victim_policy:
            raise ConfigError("victim_policy must be named")

    def cost_model(self) -> LlmCostModel:
        """Resolve the step-cost model (explicit overrides or calibrate)."""
        if self.step_overhead_cycles is not None and self.cycles_per_token is not None:
            swap = self.swap_cycles_per_token
            if swap is None:
                from repro.llmserve.cost import default_swap_cycles_per_token

                swap = default_swap_cycles_per_token(self.core)
            return LlmCostModel(
                step_overhead_cycles=self.step_overhead_cycles,
                cycles_per_token=self.cycles_per_token,
                swap_cycles_per_token=swap,
            )
        return calibrate_llm_cost(
            core=self.core,
            scheme=self.scheme,
            swap_cycles_per_token=self.swap_cycles_per_token,
        )


@dataclass
class LlmTenantReport:
    """Per-tenant serving outcome."""

    name: str
    arrived: int
    completed: int
    generated_tokens: int
    swaps: int
    sacrifices: int
    mean_ttft_cycles: float
    mean_tpot_cycles: float
    ttft_target_cycles: float
    tpot_target_cycles: float
    #: Fraction of completed requests meeting each latency target.
    ttft_attainment: float
    tpot_attainment: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "arrived": self.arrived,
            "completed": self.completed,
            "generated_tokens": self.generated_tokens,
            "swaps": self.swaps,
            "sacrifices": self.sacrifices,
            "mean_ttft_cycles": self.mean_ttft_cycles,
            "mean_tpot_cycles": self.mean_tpot_cycles,
            "ttft_target_cycles": self.ttft_target_cycles,
            "tpot_target_cycles": self.tpot_target_cycles,
            "ttft_attainment": self.ttft_attainment,
            "tpot_attainment": self.tpot_attainment,
        }


@dataclass
class LlmServeResult:
    """Whole-run outcome of :func:`run_llm_serving`."""

    scheme: str
    batch_tokens: int
    m_total: int
    preemption_mode: str
    victim_policy: str
    cost: LlmCostModel
    duration_cycles: float
    steps: int
    arrived: int
    completed: int
    goodput_tokens_per_s: float
    peak_kv_tokens: int
    mean_kv_occupancy: float
    tenants: Dict[str, LlmTenantReport]
    events: List[PreemptionEvent] = field(default_factory=list)
    #: ``(cycles, resident KV tokens)`` sampled at every step boundary.
    kv_timeline: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def swap_count(self) -> int:
        return sum(1 for e in self.events if e.mode == "swap")

    @property
    def sacrifice_count(self) -> int:
        return sum(1 for e in self.events if e.mode == "sacrifice")

    @property
    def preemption_count(self) -> int:
        return len(self.events)

    def metrics(self) -> Dict[str, object]:
        """JSON-ready metrics block for :class:`repro.api.RunResult`."""
        stride = max(1, -(-len(self.kv_timeline) // KV_TIMELINE_POINTS))
        timeline = [
            [cycles, kv] for cycles, kv in self.kv_timeline[::stride]
        ]
        return {
            "scheme": self.scheme,
            "batch_tokens": self.batch_tokens,
            "m_total": self.m_total,
            "steps": self.steps,
            "duration_cycles": self.duration_cycles,
            "requests": {"arrived": self.arrived, "completed": self.completed},
            "goodput_tokens_per_s": self.goodput_tokens_per_s,
            "cost": {
                "step_overhead_cycles": self.cost.step_overhead_cycles,
                "cycles_per_token": self.cost.cycles_per_token,
                "swap_cycles_per_token": self.cost.swap_cycles_per_token,
            },
            "kv": {
                "peak_tokens": self.peak_kv_tokens,
                "mean_occupancy": self.mean_kv_occupancy,
                "timeline": timeline,
            },
            "preemption": {
                "mode": self.preemption_mode,
                "policy": self.victim_policy,
                "count": self.preemption_count,
                "swaps": self.swap_count,
                "sacrifices": self.sacrifice_count,
                "events": [e.to_dict() for e in self.events],
            },
            "tenants": {
                name: report.to_dict()
                for name, report in sorted(self.tenants.items())
            },
        }


def _validate_specs(
    specs: Sequence[LlmTenantSpec], cfg: LlmServeConfig
) -> None:
    if not specs:
        raise ConfigError("llm serving needs at least one tenant")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ConfigError(f"duplicate llm tenant names: {names}")
    for spec in specs:
        if spec.prompt_tokens > cfg.batch_tokens:
            raise ConfigError(
                f"tenant {spec.name!r} prompt ({spec.prompt_tokens}) exceeds "
                f"the step budget batch_tokens={cfg.batch_tokens}; "
                "its prefill could never be scheduled"
            )
        if spec.total_tokens > cfg.m_total:
            raise ConfigError(
                f"tenant {spec.name!r} peak KV ({spec.total_tokens}) exceeds "
                f"m_total={cfg.m_total}; the request could never finish"
            )


def _generate_requests(
    specs: Sequence[LlmTenantSpec],
    cfg: LlmServeConfig,
    cost: LlmCostModel,
    horizon: float,
) -> List[LlmRequest]:
    """Open-loop arrivals; ``load=1.0`` saturates the token capacity."""
    from repro.traffic.arrivals import make_arrival_process

    capacity = cost.token_capacity_per_cycle(cfg.batch_tokens)
    total_weight = sum(s.weight for s in specs)
    timed: List[Tuple[float, str, LlmTenantSpec]] = []
    for idx, spec in enumerate(specs):
        rate = (
            cfg.load
            * (spec.weight / total_weight)
            * capacity
            / spec.total_tokens
        )
        process = make_arrival_process(
            cfg.arrival, rate, duration_cycles=horizon
        )
        rng = spawn_rng(cfg.seed, "llmserve", cfg.arrival, spec.name, idx)
        for t in process.generate(horizon, rng):
            timed.append((t, spec.name, spec))
    timed.sort(key=lambda item: (item[0], item[1]))
    return [
        LlmRequest(
            rid=rid,
            tenant=spec.name,
            arrival_cycles=t,
            prompt_tokens=spec.prompt_tokens,
            decode_tokens=spec.decode_tokens,
        )
        for rid, (t, _name, spec) in enumerate(timed)
    ]


def run_llm_serving(
    specs: Sequence[LlmTenantSpec],
    cfg: LlmServeConfig = LlmServeConfig(),
) -> LlmServeResult:
    """Serve open-loop LLM traffic under KV pressure; fully seeded."""
    _validate_specs(specs, cfg)
    cost = cfg.cost_model()
    horizon = cfg.core.seconds_to_cycles(cfg.duration_s)
    requests = _generate_requests(specs, cfg, cost, horizon)

    # Registry-backed so third-party policies plug in by name (the
    # registry loads lazily -- no import cycle with repro.api).
    from repro.api.registries import make_victim_policy

    policy = make_victim_policy(cfg.victim_policy)
    preempt_rng = spawn_rng(cfg.seed, "llmserve", "victim", cfg.victim_policy)

    wait_heap: List[Tuple[float, int, LlmRequest]] = [
        (r.arrival_cycles, r.rid, r) for r in requests
    ]
    heapq.heapify(wait_heap)
    swapped: List[LlmRequest] = []
    running: List[LlmRequest] = []
    events: List[PreemptionEvent] = []
    kv_timeline: List[Tuple[float, int]] = []
    device_kv = 0
    kv_cycle_area = 0.0
    peak_kv = 0
    now = 0.0
    steps = 0

    while True:
        if not running and not swapped:
            if not wait_heap:
                break
            now = max(now, wait_heap[0][0])
        if not cfg.drain and now >= horizon:
            break
        if steps >= cfg.max_steps:
            raise SimulationError(
                f"llm serving exceeded max_steps={cfg.max_steps} "
                f"({len(wait_heap)} waiting, {len(running)} running)"
            )

        # -- KV pressure: running decodes each grow by one token ----------
        projected = device_kv + len(running)
        sacrificed = False
        while projected > cfg.m_total:
            # Forward-progress guarantee: the FCFS head of the batch is
            # never a victim, so it decodes to completion no matter what
            # the policy picks.  Without this, a policy that victimises
            # the oldest request (fifo) re-evicts the same head each
            # pressure event after it re-prefills, and under sacrifice
            # mode the system repeats that wasted prefill forever.  A
            # lone runner always fits (peak KV is validated <= m_total),
            # so pressure with len(running) == 1 cannot happen.
            candidates = running
            if len(running) > 1:
                head = min(running, key=lambda r: (r.arrival_cycles, r.rid))
                candidates = [r for r in running if r is not head]
            victim = policy.select(candidates, preempt_rng)
            running.remove(victim)
            freed = victim.kv_tokens
            device_kv -= freed
            projected -= freed + 1
            if cfg.preemption_mode == "swap":
                victim.kv_saved = victim.kv_tokens
                victim.kv_tokens = 0
                victim.state = SWAPPED
                victim.swaps += 1
                swapped.append(victim)
            else:
                victim.kv_tokens = 0
                victim.kv_saved = 0
                victim.decoded = 0
                victim.state = WAITING
                victim.sacrifices += 1
                sacrificed = True
                heapq.heappush(
                    wait_heap, (victim.arrival_cycles, victim.rid, victim)
                )
            events.append(
                PreemptionEvent(
                    step=steps,
                    time_cycles=now,
                    rid=victim.rid,
                    tenant=victim.tenant,
                    mode=cfg.preemption_mode,
                    policy=policy.name,
                    kv_freed=freed,
                )
            )

        step_tokens = len(running)
        reload_tokens = 0
        prefilling: List[LlmRequest] = []

        # -- swap-ins first (they already hold paid-for progress) ---------
        swapped.sort(key=lambda r: (r.arrival_cycles, r.rid))
        remaining_swapped: List[LlmRequest] = []
        for req in swapped:
            if (
                step_tokens + 1 <= cfg.batch_tokens
                and projected + req.kv_saved + 1 <= cfg.m_total
            ):
                step_tokens += 1
                projected += req.kv_saved + 1
                reload_tokens += req.kv_saved
                req.kv_tokens = req.kv_saved
                req.kv_saved = 0
                device_kv += req.kv_tokens
                req.state = RUNNING
                req.enter_running_cycles = now
                running.append(req)
            else:
                remaining_swapped.append(req)
        swapped = remaining_swapped

        # -- then waiting prefills, in (arrival, rid) order ---------------
        # A sacrifice means KV pressure, and a sacrificed victim re-enters
        # the heap under its original arrival key -- at or near the head.
        # Admitting here would re-prefill it into the space its own
        # eviction freed, only for the next pressure event to sacrifice
        # it again: a livelock that repeats the same prefill forever
        # (FIFO victims make it deterministic, any policy can cycle).
        # Skipping admission for one step lets the surviving runners
        # decode and finish, so pressure genuinely clears first.
        while not sacrificed and wait_heap and wait_heap[0][0] <= now:
            req = wait_heap[0][2]
            if (
                step_tokens + req.prompt_tokens > cfg.batch_tokens
                or projected + req.prompt_tokens + 1 > cfg.m_total
            ):
                break
            heapq.heappop(wait_heap)
            step_tokens += req.prompt_tokens
            projected += req.prompt_tokens + 1
            req.state = RUNNING
            req.enter_running_cycles = now
            prefilling.append(req)
            running.append(req)

        if not running:
            # Nothing admissible yet; jump to the next arrival.
            if not wait_heap:
                break
            now = max(now, wait_heap[0][0])
            continue

        # -- execute the step ---------------------------------------------
        step_time = cost.batch_cycles(step_tokens)
        step_time += reload_tokens * cost.swap_cycles_per_token
        end = now + step_time
        still_running: List[LlmRequest] = []
        for req in running:
            if req.kv_tokens == 0:  # prefilled this step
                req.kv_tokens = req.prompt_tokens + 1
                device_kv += req.kv_tokens
                req.decoded = 1
                if req.first_token_cycles is None:
                    req.first_token_cycles = end
            else:
                req.kv_tokens += 1
                device_kv += 1
                req.decoded += 1
            if req.decoded >= req.decode_tokens:
                req.state = FINISHED
                req.finish_cycles = end
                device_kv -= req.kv_tokens
                req.kv_tokens = 0
            else:
                still_running.append(req)
        running = still_running
        kv_cycle_area += device_kv * step_time
        peak_kv = max(peak_kv, device_kv)
        kv_timeline.append((end, device_kv))
        now = end
        steps += 1

    # -- reports ------------------------------------------------------------
    from repro.serving.metrics import slo_attainment

    tenants: Dict[str, LlmTenantReport] = {}
    spec_by_name = {s.name: s for s in specs}
    finished_tokens = 0
    for name, spec in spec_by_name.items():
        reqs = [r for r in requests if r.tenant == name]
        done = [r for r in reqs if r.finished]
        ttft_target = cfg.ttft_slo_scale * cost.batch_cycles(
            spec.prompt_tokens
        )
        tpot_target = cfg.tpot_slo_scale * cost.batch_cycles(cfg.batch_tokens)
        ttfts = [r.ttft_cycles for r in done]
        tpots = [r.tpot_cycles for r in done]
        generated = sum(r.decode_tokens for r in done)
        finished_tokens += generated
        tenants[name] = LlmTenantReport(
            name=name,
            arrived=len(reqs),
            completed=len(done),
            generated_tokens=generated,
            swaps=sum(r.swaps for r in reqs),
            sacrifices=sum(r.sacrifices for r in reqs),
            mean_ttft_cycles=sum(ttfts) / len(ttfts) if ttfts else 0.0,
            mean_tpot_cycles=sum(tpots) / len(tpots) if tpots else 0.0,
            ttft_target_cycles=ttft_target,
            tpot_target_cycles=tpot_target,
            # Offered accounting: requests still queued at the end
            # count as misses (vacuously 1.0 when nothing arrived).
            ttft_attainment=slo_attainment(
                ttfts, ttft_target, offered=len(reqs)
            ),
            tpot_attainment=slo_attainment(
                tpots, tpot_target, offered=len(reqs)
            ),
        )

    elapsed_s = cfg.core.cycles_to_seconds(now) if now > 0 else 0.0
    return LlmServeResult(
        scheme=cfg.scheme,
        batch_tokens=cfg.batch_tokens,
        m_total=cfg.m_total,
        preemption_mode=cfg.preemption_mode,
        victim_policy=cfg.victim_policy,
        cost=cost,
        duration_cycles=now,
        steps=steps,
        arrived=len(requests),
        completed=sum(1 for r in requests if r.finished),
        goodput_tokens_per_s=(
            finished_tokens / elapsed_s if elapsed_s > 0 else 0.0
        ),
        peak_kv_tokens=peak_kv,
        mean_kv_occupancy=(
            kv_cycle_area / (now * cfg.m_total) if now > 0 else 0.0
        ),
        tenants=tenants,
        events=events,
        kv_timeline=kv_timeline,
    )
