"""Step-cost model for continuous batching, calibrated on the NPU sim.

The fluid-ODE serving literature models one engine step over ``n``
batch tokens as ``d0 + d1 * n`` -- a fixed per-step overhead (weight
streaming, kernel launch) plus a marginal per-token cost.  Instead of
guessing ``d0``/``d1``, :func:`calibrate_llm_cost` *measures* them on
this repo's cycle-accurate core: it builds one-decode-step LLaMA graphs
with the parameterized :func:`repro.workloads.llm.build_llama` at two
batch sizes, runs each through :class:`repro.sim.engine.Simulator`, and
fits the line through the two points.  The calibration is memoised, so
a whole scenario (or benchmark sweep) pays for at most two small
simulations per (core, scheme, context) triple.

Swap preemption pays an explicit KV-reload cost on re-admission:
``swap_cycles_per_token`` defaults to the time the core's HBM needs to
stream one token's K/V tensors back on-device.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.errors import ConfigError
from repro.workloads.llm import LLAMA_HIDDEN, LLAMA_LAYERS

#: fp16 K and V vectors for every layer of the default LLaMA2-13B:
#: 2 tensors x layers x hidden x 2 bytes.
KV_BYTES_PER_TOKEN = 2 * LLAMA_LAYERS * LLAMA_HIDDEN * 2

#: Batch sizes the two calibration probes run at.
CALIBRATION_BATCHES = (1, 8)


@dataclass(frozen=True)
class LlmCostModel:
    """``step = d0 + d1 * tokens`` plus the swap-reload coefficient."""

    step_overhead_cycles: float
    cycles_per_token: float
    swap_cycles_per_token: float

    def __post_init__(self) -> None:
        if self.step_overhead_cycles < 0 or self.cycles_per_token <= 0:
            raise ConfigError("step costs must be positive")
        if self.swap_cycles_per_token < 0:
            raise ConfigError("swap cost cannot be negative")

    def batch_cycles(self, tokens: int) -> float:
        """Execution time of one engine step over ``tokens`` batch tokens."""
        if tokens <= 0:
            raise ConfigError("a step must process at least one token")
        return self.step_overhead_cycles + self.cycles_per_token * tokens

    def token_capacity_per_cycle(self, batch_tokens: int) -> float:
        """Steady-state token throughput at a full ``batch_tokens`` step."""
        return batch_tokens / self.batch_cycles(batch_tokens)


def default_swap_cycles_per_token(core: NpuCoreConfig) -> float:
    """Cycles to stream one token's KV tensors over the core's HBM."""
    return KV_BYTES_PER_TOKEN / core.hbm_bytes_per_cycle


@lru_cache(maxsize=64)
def _decode_step_cycles(
    batch: int, context: int, scheme: str, core: NpuCoreConfig
) -> float:
    from repro.api.registries import make_scheduler, scheme_isa
    from repro.compiler.lowering import lower_graph_neuisa, lower_graph_vliw
    from repro.sim.engine import Simulator, Tenant
    from repro.workloads.llm import build_llama

    graph = build_llama(batch, context=context, decode_steps=1)
    if scheme_isa(scheme) == "vliw":
        compiled = lower_graph_vliw(
            graph, core, core.num_mes, core.num_ves, batch_hint=batch
        )
    else:
        compiled = lower_graph_neuisa(graph, core, batch_hint=batch)
    tenant = Tenant(
        tenant_id=0,
        name=f"llm-calib-b{batch}",
        graph=compiled,
        alloc_mes=core.num_mes,
        alloc_ves=core.num_ves,
        target_requests=1,
    )
    result = Simulator(
        core, make_scheduler(scheme), [tenant], record_ops=False
    ).run()
    cycles = result.tenant(0).mean_latency
    if cycles <= 0:
        raise ConfigError(
            f"llm cost calibration produced zero step time (batch {batch})"
        )
    return cycles


def calibrate_llm_cost(
    core: NpuCoreConfig = DEFAULT_CORE,
    scheme: str = "neu10",
    context: int = 512,
    swap_cycles_per_token: Optional[float] = None,
) -> LlmCostModel:
    """Fit ``d0``/``d1`` from two one-decode-step simulator probes."""
    b_lo, b_hi = CALIBRATION_BATCHES
    c_lo = _decode_step_cycles(b_lo, context, scheme, core)
    c_hi = _decode_step_cycles(b_hi, context, scheme, core)
    d1 = (c_hi - c_lo) / (b_hi - b_lo)
    if d1 <= 0:
        # A weight-bound decode can measure flat across batch sizes;
        # keep the marginal cost positive so budgets stay meaningful.
        d1 = max(1.0, 1e-6 * c_lo)
    d0 = max(0.0, c_lo - d1 * b_lo)
    return LlmCostModel(
        step_overhead_cycles=d0,
        cycles_per_token=d1,
        swap_cycles_per_token=(
            swap_cycles_per_token
            if swap_cycles_per_token is not None
            else default_swap_cycles_per_token(core)
        ),
    )
