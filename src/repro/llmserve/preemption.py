"""Pluggable preemption for the continuous-batching engine.

When the running batch's KV growth would exceed the ``m_total`` HBM
token budget, the engine preempts victims until the survivors fit.  Two
orthogonal choices parameterize that moment (mirroring the
swap-vs-sacrifice design of fluid-ODE LLM serving models):

- the **mode** decides what happens to the victim's KV cache --
  ``swap`` preserves it off-device (progress kept, reload paid on
  re-admission), ``sacrifice`` drops it (request restarts from prefill);
- the **victim policy** decides *who* is preempted -- ``lifo`` (newest
  running request, vLLM's default), ``fifo`` (oldest), or ``random``
  (seeded draw).

Victim policies are plain factories behind
:data:`repro.api.registries.PREEMPTION`, so third-party policies (e.g.
smallest-KV-first) plug in by name exactly like schedulers and arrival
processes do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Sequence

from repro.errors import ConfigError
from repro.llmserve.requests import LlmRequest

#: What happens to a victim's KV cache.
PREEMPTION_MODES = ("swap", "sacrifice")


def check_preemption_mode(mode: str) -> str:
    if mode not in PREEMPTION_MODES:
        raise ConfigError(
            f"unknown preemption mode {mode!r}; "
            f"known: {', '.join(PREEMPTION_MODES)}"
        )
    return mode


@dataclass(frozen=True)
class PreemptionEvent:
    """One audit-log entry: the engine evicted a running request."""

    step: int
    time_cycles: float
    rid: int
    tenant: str
    mode: str
    policy: str
    #: Device KV tokens freed by the eviction.
    kv_freed: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "time_cycles": self.time_cycles,
            "rid": self.rid,
            "tenant": self.tenant,
            "mode": self.mode,
            "policy": self.policy,
            "kv_freed": self.kv_freed,
        }


class VictimPolicy:
    """Base class: pick which running request to evict under pressure."""

    name = "base"

    def select(
        self, running: Sequence[LlmRequest], rng: random.Random
    ) -> LlmRequest:
        raise NotImplementedError

    @staticmethod
    def _check(running: Sequence[LlmRequest]) -> None:
        if not running:
            raise ConfigError("victim selection needs a non-empty batch")


class LifoVictimPolicy(VictimPolicy):
    """Evict the request that entered the running batch last (vLLM's
    default: the newest request has the least sunk work)."""

    name = "lifo"

    def select(
        self, running: Sequence[LlmRequest], rng: random.Random
    ) -> LlmRequest:
        self._check(running)
        del rng
        return max(running, key=lambda r: (r.enter_running_cycles, r.rid))


class FifoVictimPolicy(VictimPolicy):
    """Evict the request that entered the running batch first."""

    name = "fifo"

    def select(
        self, running: Sequence[LlmRequest], rng: random.Random
    ) -> LlmRequest:
        self._check(running)
        del rng
        return min(running, key=lambda r: (r.enter_running_cycles, r.rid))


class RandomVictimPolicy(VictimPolicy):
    """Evict a uniformly random running request (seeded, reproducible).

    Candidates are scanned in a deterministic order (rid), so the same
    seed picks the same victim regardless of how the engine happened to
    order its internal batch list.
    """

    name = "random"

    def select(
        self, running: Sequence[LlmRequest], rng: random.Random
    ) -> LlmRequest:
        self._check(running)
        ordered = sorted(running, key=lambda r: r.rid)
        return ordered[rng.randrange(len(ordered))]


#: Built-in policies; the single source the PREEMPTION registry loads.
VICTIM_POLICIES = {
    cls.name: cls
    for cls in (LifoVictimPolicy, FifoVictimPolicy, RandomVictimPolicy)
}
