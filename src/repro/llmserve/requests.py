"""LLM serving requests with a growing KV-cache footprint.

A request arrives with a prompt, is *prefilled* (the whole prompt is
processed in one engine step, producing the first output token and a
``prompt_tokens + 1``-token KV cache), then *decodes* one token per
engine step -- its KV cache growing by one token each time -- until
``decode_tokens`` have been generated.  The device-resident KV cache is
what :mod:`repro.llmserve.engine` charges against the ``m_total`` HBM
token budget; preemption moves it off-device (swap) or drops it
(sacrifice).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigError

#: Request lifecycle states (vLLM-style continuous batching).
WAITING = "waiting"
RUNNING = "running"
SWAPPED = "swapped"
FINISHED = "finished"


@dataclass
class LlmRequest:
    """One in-flight request of a continuous-batching LLM engine."""

    rid: int
    tenant: str
    arrival_cycles: float
    prompt_tokens: int
    decode_tokens: int

    # -- runtime state mutated by the engine -------------------------------
    state: str = WAITING
    #: Output tokens generated so far (1 after the prefill step).
    decoded: int = 0
    #: Device-resident KV-cache footprint in tokens (0 while waiting or
    #: swapped; the swapped copy lives off-device in ``kv_saved``).
    kv_tokens: int = 0
    #: Off-device KV tokens preserved by a swap preemption.
    kv_saved: int = 0
    #: Cycle the request last entered the running batch (victim order).
    enter_running_cycles: float = 0.0
    first_token_cycles: Optional[float] = None
    finish_cycles: Optional[float] = None
    swaps: int = 0
    sacrifices: int = 0

    def __post_init__(self) -> None:
        if self.prompt_tokens < 1 or self.decode_tokens < 1:
            raise ConfigError("request needs positive prompt/decode tokens")

    # ------------------------------------------------------------------
    # Derived accounting
    # ------------------------------------------------------------------
    @property
    def total_tokens(self) -> int:
        """Peak KV footprint: the whole prompt plus every output token."""
        return self.prompt_tokens + self.decode_tokens

    @property
    def finished(self) -> bool:
        return self.state == FINISHED

    @property
    def ttft_cycles(self) -> Optional[float]:
        """Time to first token (set once; survives later sacrifices)."""
        if self.first_token_cycles is None:
            return None
        return self.first_token_cycles - self.arrival_cycles

    @property
    def tpot_cycles(self) -> Optional[float]:
        """Mean time per output token after the first (incl. redone work)."""
        if self.finish_cycles is None or self.first_token_cycles is None:
            return None
        steps = max(1, self.decode_tokens - 1)
        return (self.finish_cycles - self.first_token_cycles) / steps
