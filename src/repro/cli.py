"""Command-line interface: one entry point for every scenario.

Subcommands (``python -m repro.cli ...`` or the installed ``repro``)::

    run scenario.yaml [--json]        # run the scenario(s) in a file
    run scenario.yaml --checkpoint DIR [--resume] [--progress]
    sweep scenario.yaml --param load --values 0.5,0.8,1.1
    serve scenario.yaml [--port 0] [--tick 0.5]  # live HTTP control
    list [--json]                     # figures, schemes, arrivals, models
    fig fig19 fig22 [--json]          # paper-figure experiments
    fig --all                         # every figure (nonzero on failure)
    bench scenario.yaml [--repeats 3] # time a scenario, report cycles/s
    bench scenario.yaml --profile     # + cProfile top-25 (cumulative)
    fuzz --seed 0 --budget 25         # metamorphic fuzzing (exit 1 on bug)
    fuzz --seed 0 --budget 500 --shrink --out /tmp/repros
    traffic ...                       # legacy open-loop flags (deprecated)

``--json`` emits the uniform :class:`repro.api.RunResult` schema on
stdout (one object, or a list when several scenarios ran), so output
is scriptable and CI-checkable via
:func:`repro.api.result.validate_run_result`.

Legacy invocations keep working through deprecation shims::

    python -m repro.cli fig19         # == fig fig19 (notice on stderr)
    python -m repro.cli all           # every experiment; nonzero if any fails
    python -m repro.cli quickstart
    python -m repro.cli traffic ...
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import Neu10Error

SUBCOMMANDS = (
    "run", "sweep", "serve", "list", "fig", "bench", "fuzz", "traffic",
)
#: Legacy positional tokens accepted for backwards compatibility.
LEGACY_EXTRA = ("all", "quickstart")


def _deprecated(old: str, new: str) -> None:
    print(
        f"note: `{old}` is deprecated; use `{new}` "
        "(see `python -m repro.cli --help`)",
        file=sys.stderr,
    )


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
_TENANT_COLUMNS = (
    # (metrics key, header, format)
    ("name", "tenant", "{}"),
    ("offered", "offered", "{}"),
    ("arrived", "offered", "{}"),
    ("completed", "done", "{}"),
    ("completed_requests", "done", "{}"),
    ("attainment", "attain", "{:.1%}"),
    ("ttft_attainment", "ttft", "{:.1%}"),
    ("tpot_attainment", "tpot", "{:.1%}"),
    ("generated_tokens", "tokens", "{}"),
    ("swaps", "swaps", "{}"),
    ("sacrifices", "sacr", "{}"),
    ("goodput_rps", "goodput/s", "{:.0f}"),
    ("throughput_rps", "thr/s", "{:.0f}"),
    ("p95_latency_cycles", "p95(cyc)", "{:.0f}"),
    ("mean_latency_cycles", "mean(cyc)", "{:.0f}"),
    ("me_utilization", "ME", "{:.1%}"),
    ("ve_utilization", "VE", "{:.1%}"),
)


def _print_tenant_table(tenants: Sequence[Dict[str, Any]]) -> None:
    columns = [
        (key, header, fmt)
        for key, header, fmt in _TENANT_COLUMNS
        if all(key in t for t in tenants)
    ]
    rows = [
        [fmt.format(t[key]) for key, _h, fmt in columns] for t in tenants
    ]
    headers = [header for _k, header, _f in columns]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rows))
        for i in range(len(headers))
    ]
    print("  " + "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)))
    for row in rows:
        print("  " + "  ".join(c.rjust(widths[i]) for i, c in enumerate(row)))


def _print_result(result) -> None:
    scheme = f" scheme={result.scheme}" if result.scheme else ""
    print(f"==== {result.scenario} [{result.kind}]{scheme}")
    metrics = dict(result.metrics)
    tenants = metrics.get("tenants")
    if isinstance(tenants, list) and tenants:
        metrics.pop("tenants")
        _print_tenant_table(tenants)
    elif isinstance(tenants, dict) and tenants:
        # llm results key tenant reports by name; tabulate the values.
        metrics.pop("tenants")
        _print_tenant_table(
            [{"name": name, **rep} for name, rep in tenants.items()]
        )
    for key, value in metrics.items():
        if isinstance(value, float):
            print(f"  {key}: {value:.6g}")
        elif isinstance(value, (int, str, bool)) or value is None:
            print(f"  {key}: {value}")
        else:
            value = _summarize_long_series(value)
            blob = json.dumps(value, indent=2, default=list)
            indented = "\n".join("    " + line for line in blob.splitlines())
            print(f"  {key}:\n{indented}")


def _summarize_long_series(value, limit: int = 8):
    """Text mode elides long sample lists (KV timelines and the like);
    the full series stays available under ``--json``."""
    if isinstance(value, dict):
        return {k: _summarize_long_series(v, limit) for k, v in value.items()}
    if isinstance(value, list) and len(value) > limit:
        return [*value[:3], f"... {len(value) - 4} more ...", value[-1]]
    return value


def _emit(results: List, as_json: bool, output: Optional[str] = None) -> None:
    payload = (
        results[0].to_dict() if len(results) == 1
        else [r.to_dict() for r in results]
    )
    text = json.dumps(payload, indent=2, default=list)
    if not as_json:
        for result in results:
            _print_result(result)
    if output:
        with open(output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    elif as_json:
        print(text)


# ----------------------------------------------------------------------
# Subcommand: run
# ----------------------------------------------------------------------
def _select_scenarios(args: argparse.Namespace) -> List:
    """Load the file's scenarios, honouring --scenario NAME."""
    from repro.api import load_scenarios

    scenarios = load_scenarios(args.scenario_file)
    if args.scenario is not None:
        scenarios = [s for s in scenarios if s.name == args.scenario]
        if not scenarios:
            from repro.errors import ConfigError

            raise ConfigError(
                f"no scenario named {args.scenario!r} in "
                f"{args.scenario_file}"
            )
    return scenarios


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import run_scenario

    scenarios = _select_scenarios(args)
    if (args.checkpoint is not None or args.resume) and len(scenarios) != 1:
        from repro.errors import ConfigError

        raise ConfigError(
            "--checkpoint/--resume drive exactly one scenario; "
            "pick one with --scenario NAME"
        )
    # Per-segment ticks are opt-in and never mix into --json output.
    progress = bool(args.progress) and not args.json

    def on_segment(done: int, total: int, observation) -> None:
        if observation is None:
            print(f"  resuming {done}/{total} segment(s) from checkpoint",
                  file=sys.stderr)
            return
        print(f"  [{done}/{total}] segment t={observation.time_s:.6g}s "
              f"hosts={observation.active_hosts} "
              f"offered={observation.offered} "
              f"attained={observation.attained}", file=sys.stderr)

    checkpoint = None
    if args.checkpoint is not None:
        from repro.api import ScenarioCheckpoint

        checkpoint = ScenarioCheckpoint(
            directory=args.checkpoint, every=args.checkpoint_every
        )
    results = []
    for scenario in scenarios:
        hook = on_segment if progress and scenario.kind == "cluster" else None
        if checkpoint is not None or args.resume or hook is not None:
            results.append(run_scenario(
                scenario, resume=args.resume, checkpoint=checkpoint,
                on_segment=hook,
            ))
        else:
            # The exact historical call, bit-identical results included.
            results.append(run_scenario(scenario))
    _emit(results, args.json, args.output)
    return 0


# ----------------------------------------------------------------------
# Subcommand: serve
# ----------------------------------------------------------------------
def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro.api import load_scenario
    from repro.serve import make_server, serve_forever

    scenario = load_scenario(args.scenario_file, name=args.scenario)
    restore_key = args.restore_key or os.environ.get("REPRO_SERVE_KEY")
    server = make_server(
        scenario, host=args.host, port=args.port, tick_s=args.tick,
        restore_key=restore_key,
    )
    host, port = server.server_address[:2]
    # One machine-readable line so wrappers can discover the bound
    # (possibly ephemeral) port before the server blocks.  The restore
    # key rides along so a wrapper can start a replacement server that
    # accepts this one's snapshots; anyone who can read it can POST
    # /restore, which executes pickled state -- treat it as a secret.
    print(json.dumps({
        "host": host, "port": port, "scenario": scenario.name,
        "tick_s": args.tick,
        "restore_key": server.controller.restore_key,
    }), flush=True)
    try:
        serve_forever(server)
    except KeyboardInterrupt:
        pass
    return 0


# ----------------------------------------------------------------------
# Subcommand: sweep
# ----------------------------------------------------------------------
def _parse_value(raw: str) -> Any:
    try:
        return json.loads(raw)
    except json.JSONDecodeError:
        return raw


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.api import (
        load_scenario,
        sweep_scenario,
        sweep_scenario_report,
    )

    scenario = load_scenario(args.scenario_file, name=args.scenario)
    values = (
        [_parse_value(v) for v in args.values.split(",")]
        if args.values is not None
        else None
    )
    executor_requested = (
        args.executor is not None
        or args.checkpoint is not None
        or args.resume
        or args.keep_going
        or args.task_timeout is not None
        or scenario.executor is not None
    )
    if not executor_requested:
        # Bit-identical legacy path: no executor asked for anywhere.
        results = sweep_scenario(
            scenario, param=args.param, values=values,
            max_workers=args.workers,
        )
        _emit(results, args.json, args.output)
        return 0

    progress = args.progress if args.progress is not None else not args.json

    def on_progress(done: int, total: int, outcome) -> None:
        if not progress:
            return
        if outcome is None:
            print(f"  resuming {done}/{total} shard(s) from checkpoint",
                  file=sys.stderr)
            return
        if outcome.ok:
            status = "ok"
        else:
            status = f"FAILED ({outcome.failure.error_type})"
        print(f"  [{done}/{total}] shard {outcome.key[:12]} {status} "
              f"(attempt {outcome.attempts})", file=sys.stderr)

    report = sweep_scenario_report(
        scenario, param=args.param, values=values,
        max_workers=args.workers,
        executor=args.executor,
        checkpoint=args.checkpoint,
        resume=args.resume,
        keep_going=True if args.keep_going else None,
        task_timeout_s=args.task_timeout,
        on_progress=on_progress,
    )
    if progress:
        print(f"  sweep done: {len(report.results)}/{report.total} "
              f"point(s) ({report.resumed} resumed) "
              f"via {report.backend}", file=sys.stderr)
    _emit(report.results, args.json, args.output)
    if report.failures:
        for failure in report.failures:
            print(f"sweep point failed: {failure.describe()}",
                  file=sys.stderr)
        print(f"{len(report.failures)} sweep point(s) failed permanently "
              f"(of {report.total})", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# Subcommand: list
# ----------------------------------------------------------------------
def _cmd_list(args: argparse.Namespace) -> int:
    from repro.api import (
        ARRIVALS,
        AUTOSCALERS,
        CHECKPOINT_FIELD_DOCS,
        EXECUTORS,
        EXECUTOR_FIELD_DOCS,
        FAULT_FIELD_DOCS,
        FIGURES,
        LLM_FIELD_DOCS,
        PREEMPTION,
        SCHEDULERS,
        SCENARIO_KINDS,
        VIRTUALIZATION_FIELD_DOCS,
        workload_names,
    )

    if args.json:
        print(json.dumps({
            "figures": {
                name: info.description for name, info in FIGURES.items()
            },
            "schemes": {
                name: {"isa": info.isa, "default": info.default,
                       "description": info.description}
                for name, info in SCHEDULERS.items()
            },
            "arrivals": {
                name: info.description for name, info in ARRIVALS.items()
            },
            "workloads": list(workload_names()),
            "autoscalers": {
                name: info.description for name, info in AUTOSCALERS.items()
            },
            "preemption_policies": {
                name: info.description for name, info in PREEMPTION.items()
            },
            "executors": {
                name: info.description for name, info in EXECUTORS.items()
            },
            "scenario_kinds": list(SCENARIO_KINDS),
            "virtualization": VIRTUALIZATION_FIELD_DOCS,
            "llm": LLM_FIELD_DOCS,
            "executor": EXECUTOR_FIELD_DOCS,
            "faults": FAULT_FIELD_DOCS,
            "checkpoint": CHECKPOINT_FIELD_DOCS,
        }, indent=2))
        return 0
    print("Scenario kinds (for `repro run <file.yaml>`):")
    print("  " + ", ".join(SCENARIO_KINDS))
    print("Figure experiments (for `repro fig <name>`):")
    for name, info in FIGURES.items():
        print(f"  {name:10s} {info.description}")
    print("Scheduler schemes:")
    for name, info in SCHEDULERS.items():
        flag = "" if info.default else "  (extra)"
        print(f"  {name:16s} isa={info.isa}{flag}  {info.description}")
    print("Arrival processes:")
    for name, info in ARRIVALS.items():
        print(f"  {name:10s} {info.description}")
    print("Workloads:")
    print("  " + ", ".join(workload_names()))
    print("Autoscaler policies (cluster scenarios, `autoscaler:` block):")
    for name, info in AUTOSCALERS.items():
        print(f"  {name:20s} {info.description}")
    print("Virtualization control plane (cluster scenarios, "
          "`virtualization:` block):")
    for field_name, blurb in VIRTUALIZATION_FIELD_DOCS.items():
        print(f"  {field_name:20s} {blurb}")
    print("Preemption victim policies (llm scenarios, "
          "`llm.victim_policy`):")
    for name, info in PREEMPTION.items():
        print(f"  {name:20s} {info.description}")
    print("LLM serving (llm scenarios, `llm:` block):")
    for field_name, blurb in LLM_FIELD_DOCS.items():
        print(f"  {field_name:20s} {blurb}")
    print("Executor backends (sweeps, `executor:` block or "
          "`sweep --executor`):")
    for name, info in EXECUTORS.items():
        print(f"  {name:20s} {info.description}")
    print("Executor block fields (`executor:` block):")
    for field_name, blurb in EXECUTOR_FIELD_DOCS.items():
        print(f"  {field_name:20s} {blurb}")
    print("Fault injection (cluster scenarios, `faults:` list):")
    for field_name, blurb in FAULT_FIELD_DOCS.items():
        print(f"  {field_name:20s} {blurb}")
    print("Checkpoint block fields (`checkpoint:` block, cluster "
          "scenarios; also `run --checkpoint DIR`):")
    for field_name, blurb in CHECKPOINT_FIELD_DOCS.items():
        print(f"  {field_name:20s} {blurb}")
    print("Legacy: traffic  (open-loop flags; prefer `run` with an "
          "open_loop scenario)")
    return 0


# ----------------------------------------------------------------------
# Subcommand: fig
# ----------------------------------------------------------------------
def _run_figures(names: Sequence[str], as_json: bool) -> int:
    """Run figure experiments; never abort the batch on one failure."""
    from repro.api import FIGURES

    unknown = [n for n in names if n not in FIGURES.names()]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    failures: List[str] = []
    results = []
    for name in names:
        info = FIGURES.get(name)
        start = time.time()
        if not as_json:
            print(f"==== {name} " + "=" * max(1, 60 - len(name)))
        try:
            if as_json:
                results.append(info.run_result())
            elif info.render is not None:
                info.render()
            else:
                _print_result(info.run_result())
        except Exception as exc:  # noqa: BLE001 - keep the batch going
            failures.append(name)
            print(f"FAILED {name}: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
        if not as_json:
            print(f"---- {name} done in {time.time() - start:.1f}s\n")
    if as_json:
        _emit(results, as_json=True)
    if failures:
        print(f"{len(failures)} experiment(s) failed: "
              f"{', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from repro.api import FIGURES

    names = list(args.names)
    if args.all:
        names = [n for n in FIGURES.names() if n != "ablations"] + (
            ["ablations"] if "ablations" in names else []
        )
    if not names:
        print("error: name at least one experiment (or --all); "
              "see `repro list`", file=sys.stderr)
        return 2
    return _run_figures(names, args.json)


# ----------------------------------------------------------------------
# Subcommand: bench
# ----------------------------------------------------------------------
def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.api import RunResult, run_scenario
    from repro.api.result import base_provenance

    results = []
    for scenario in _select_scenarios(args):
        last = run_scenario(scenario)  # warm caches
        best = float("inf")
        for _ in range(max(1, args.repeats)):
            t0 = time.perf_counter()
            last = run_scenario(scenario)
            best = min(best, time.perf_counter() - t0)
        if args.profile:
            import cProfile
            import io
            import pstats

            prof = cProfile.Profile()
            prof.runcall(run_scenario, scenario)
            buf = io.StringIO()
            stats = pstats.Stats(prof, stream=buf)
            stats.sort_stats("cumulative").print_stats(args.profile)
            print(f"---- profile: {scenario.name} "
                  f"(top {args.profile} by cumulative time)",
                  file=sys.stderr)
            print(buf.getvalue(), file=sys.stderr)
        cycles = last.metrics.get("simulated_cycles")
        metrics: Dict[str, Any] = {"wall_s": best}
        if isinstance(cycles, (int, float)) and cycles > 0:
            metrics["simulated_cycles"] = cycles
            metrics["simulated_cycles_per_wall_s"] = cycles / best
        results.append(RunResult(
            scenario=scenario.name,
            kind="bench",
            scheme=last.scheme,
            metrics=metrics,
            metadata={"repeats": args.repeats, "benched_kind": scenario.kind},
            provenance=base_provenance(
                seed=scenario.seed, scenario_digest=scenario.digest()
            ),
        ))
    _emit(results, args.json, args.output)
    return 0


# ----------------------------------------------------------------------
# Subcommand: fuzz
# ----------------------------------------------------------------------
def _cmd_fuzz(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.fuzz import FuzzConfig, fuzz_run

    out_dir = Path(args.out) if args.out is not None else None
    cfg = FuzzConfig(
        seed=args.seed,
        budget=args.budget,
        tolerance=args.tolerance,
        deep_every=args.deep_every,
        shrink=args.shrink,
        out_dir=out_dir,
    )
    log = (lambda _msg: None) if args.json else (
        lambda msg: print(msg, file=sys.stderr)
    )
    report = fuzz_run(cfg, log=log)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        for violation in report.violations:
            print(f"VIOLATION {violation}")
        for path in report.repro_paths:
            print(f"repro written: {path}")
        status = "ok" if report.ok else "FAILED"
        print(
            f"fuzz {status}: {report.scenarios} scenario(s), "
            f"{report.checks_run} check(s), "
            f"{len(report.violations)} violation(s) "
            f"[seed={report.seed}] in {report.elapsed_s:.1f}s"
        )
    return 0 if report.ok else 1


# ----------------------------------------------------------------------
# Legacy shims
# ----------------------------------------------------------------------
def _run_quickstart() -> int:
    print("==== quickstart " + "=" * 50)
    try:
        import repro

        repro.quickstart()
    except Exception as exc:  # noqa: BLE001 - keep the batch going
        print(f"FAILED quickstart: {type(exc).__name__}: {exc}",
              file=sys.stderr)
        return 1
    return 0


def _legacy_dispatch(argv: List[str]) -> Optional[int]:
    """Handle pre-subcommand invocations; None = not legacy."""
    if not argv or argv[0].startswith("-") or argv[0] in SUBCOMMANDS:
        return None
    from repro.api import FIGURES

    tokens = list(argv)
    known = set(FIGURES.names()) | set(LEGACY_EXTRA)
    unknown = [t for t in tokens if t not in known]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2
    if tokens == ["all"]:
        _deprecated("all", "repro fig --all")
        names = [n for n in FIGURES.names() if n != "ablations"]
        return _run_figures(names, as_json=False)
    fig_tokens = [t for t in tokens if t != "quickstart"]
    hint = (f"repro fig {' '.join(fig_tokens)}" if fig_tokens
            else "python examples/quickstart.py")
    _deprecated(" ".join(tokens), hint)
    # Run in the order given, quickstart included, never aborting the
    # batch on one failure (mirrors the old sequential loop, minus the
    # old behavior of dying mid-way and skipping the rest).
    code = 0
    for token in tokens:
        code = max(
            code,
            _run_quickstart() if token == "quickstart"
            else _run_figures([token], as_json=False),
        )
    return code


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def _build_parser() -> argparse.ArgumentParser:
    raw = argparse.RawDescriptionHelpFormatter
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Neu10 reproduction (MICRO 2024): scenarios, figures, "
                    "benchmarks.",
        formatter_class=raw,
        epilog=(
            "quickstart:\n"
            "  repro list                                # what's runnable\n"
            "  repro run examples/scenarios/smoke.yaml   # one scenario file\n"
            "  repro fig fig19                           # one paper figure\n"
            "docs: docs/architecture.md, docs/scenario-reference.md"
        ),
    )
    sub = parser.add_subparsers(dest="command")

    def add_io_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", action="store_true",
                       help="emit the RunResult schema on stdout")
        p.add_argument("--output", default=None,
                       help="also write the JSON result(s) to a file")

    p_run = sub.add_parser(
        "run", help="run the scenario(s) in a YAML/JSON file",
        formatter_class=raw,
        epilog=(
            "examples:\n"
            "  repro run examples/scenarios/smoke.yaml --json\n"
            "  repro run examples/scenarios/showcase.yaml"
            " --scenario cluster-autoscale-demo\n"
            "  repro run cluster.yaml --checkpoint /tmp/ck --progress\n"
            "  repro run cluster.yaml --checkpoint /tmp/ck --resume\n"
            "scenario files are YAML/JSON Scenario specs (kind: serving |\n"
            "open_loop | cluster | llm | figure); "
            "see docs/scenario-reference.md\n"
            "segment checkpoints and resume: docs/live-control.md"
        ),
    )
    p_run.add_argument("scenario_file")
    p_run.add_argument("--scenario", default=None,
                       help="pick one scenario by name from a multi-file")
    p_run.add_argument("--checkpoint", default=None, metavar="DIR",
                       help="journal a segment-level cluster checkpoint to "
                            "DIR as the run advances (cluster scenarios; "
                            "overrides the file's `checkpoint:` block)")
    p_run.add_argument("--checkpoint-every", type=int, default=1,
                       metavar="N",
                       help="with --checkpoint, record every N completed "
                            "segments (default 1)")
    p_run.add_argument("--resume", action="store_true",
                       help="restore from the newest checkpoint in the "
                            "journal and finish the run; the result is "
                            "bit-identical to an uninterrupted run")
    p_run.add_argument("--progress", action="store_true",
                       help="per-segment completion ticks on stderr for "
                            "cluster scenarios (off under --json)")
    add_io_flags(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_serve = sub.add_parser(
        "serve", help="drive one cluster scenario live over HTTP",
        formatter_class=raw,
        epilog=(
            "examples:\n"
            "  repro serve cluster.yaml --port 8123\n"
            "  repro serve cluster.yaml --port 0 --tick 0.5\n"
            "prints one JSON line ({\"host\": ..., \"port\": ...}) on stdout\n"
            "once bound, then blocks.  Endpoints: GET /status /metrics\n"
            "/snapshot /segments?since=N; POST /advance /pause /start\n"
            "/restore /inject.  With --tick the run starts paused and\n"
            "auto-steps one segment per interval after POST /start.\n"
            "see docs/live-control.md"
        ),
    )
    p_serve.add_argument("scenario_file")
    p_serve.add_argument("--scenario", default=None,
                         help="pick one scenario by name from a multi-file")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="bind port; 0 picks an ephemeral port "
                              "(reported on stdout)")
    p_serve.add_argument("--tick", type=float, default=None,
                         metavar="SECONDS",
                         help="auto-step one segment per interval "
                              "(starts paused; POST /start begins)")
    p_serve.add_argument("--restore-key", default=None, metavar="KEY",
                         help="HMAC key authenticating POST /restore "
                              "payloads (default: $REPRO_SERVE_KEY, else "
                              "a fresh random key announced in the "
                              "address line); start a replacement server "
                              "with the dead server's key to restore its "
                              "snapshots")
    p_serve.set_defaults(func=_cmd_serve)

    p_sweep = sub.add_parser(
        "sweep", help="run one scenario across several parameter values",
        formatter_class=raw,
        epilog=(
            "examples:\n"
            "  repro sweep examples/scenarios/smoke.yaml --workers 4\n"
            "  repro sweep examples/scenarios/smoke.yaml"
            " --param scheme --values pmt,neu10\n"
            "  repro sweep examples/scenarios/smoke.yaml"
            " --param hardware.num_mes --values 2,4,8 --json\n"
            "  repro sweep smoke.yaml --executor local-queue"
            " --checkpoint /tmp/ck --task-timeout 120\n"
            "  repro sweep smoke.yaml --checkpoint /tmp/ck --resume\n"
            "without --param/--values the file's `sweep:` block is used;\n"
            "executors, checkpoints and resume: docs/sweeps.md"
        ),
    )
    p_sweep.add_argument("scenario_file")
    p_sweep.add_argument("--scenario", default=None)
    p_sweep.add_argument("--param", default=None,
                         help="scenario field to vary (e.g. load, scheme, "
                              "hardware.num_mes); default: the file's sweep block")
    p_sweep.add_argument("--values", default=None,
                         help="comma-separated values (JSON literals)")
    p_sweep.add_argument("--workers", type=int, default=None,
                         help="process-pool width (default: auto)")
    p_sweep.add_argument("--executor", default=None,
                         help="fan-out backend from the EXECUTORS registry "
                              "(serial, pool, local-queue); default: the "
                              "scenario's `executor:` block, else the "
                              "legacy in-process path")
    p_sweep.add_argument("--checkpoint", default=None, metavar="DIR",
                         help="journal completed sweep points to DIR as "
                              "they finish (crash-safe, append-only)")
    p_sweep.add_argument("--resume", action="store_true",
                         help="skip points already journalled in "
                              "--checkpoint DIR; results are bit-identical "
                              "to an uninterrupted run")
    p_sweep.add_argument("--keep-going", action="store_true",
                         help="record permanently failed points as "
                              "structured failures (exit 1) instead of "
                              "aborting the sweep")
    p_sweep.add_argument("--task-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-point wall-clock limit; enforced by the "
                              "local-queue backend (kill + retry)")
    p_sweep.add_argument("--progress", action="store_true", default=None,
                         help="per-shard completion ticks on stderr "
                              "(default: on for executor sweeps unless "
                              "--json)")
    p_sweep.add_argument("--no-progress", dest="progress",
                         action="store_false",
                         help="suppress the progress ticks")
    add_io_flags(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)

    p_list = sub.add_parser(
        "list",
        help="list figures, schemes, arrivals, models, autoscalers",
        formatter_class=raw,
        epilog=(
            "`repro list --json` is machine-readable; tools/gen_docs.py\n"
            "turns it into docs/scenario-reference.md"
        ),
    )
    p_list.add_argument("--json", action="store_true")
    p_list.set_defaults(func=_cmd_list)

    p_fig = sub.add_parser(
        "fig", help="run paper-figure experiments",
        formatter_class=raw,
        epilog=(
            "examples:\n"
            "  repro fig fig19 fig22        # two figures, human reports\n"
            "  repro fig --all              # everything (exit 1 on failure)\n"
            "  repro fig hwcost --json      # structured RunResult"
        ),
    )
    p_fig.add_argument("names", nargs="*", help="figure names (see `list`)")
    p_fig.add_argument("--all", action="store_true",
                       help="every figure experiment (ablations only when "
                            "also named explicitly)")
    p_fig.add_argument("--json", action="store_true",
                       help="structured RunResults instead of reports")
    p_fig.set_defaults(func=_cmd_fig)

    p_bench = sub.add_parser(
        "bench", help="time a scenario (cycles per wall-second)",
        formatter_class=raw,
        epilog=(
            "example:\n"
            "  repro bench examples/scenarios/showcase.yaml"
            " --scenario serving-bench-pair\n"
            "the full benchmark suite lives in benchmarks/bench_serving.py"
        ),
    )
    p_bench.add_argument("scenario_file")
    p_bench.add_argument("--scenario", default=None)
    p_bench.add_argument("--profile", nargs="?", const=25, default=None,
                         type=int, metavar="N",
                         help="also run each scenario once under cProfile "
                              "and print the top N functions by cumulative "
                              "time to stderr (default N=25)")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="timed repetitions, best wins (default 3)")
    add_io_flags(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="fuzz the engines with random scenarios + metamorphic "
             "invariants",
        formatter_class=raw,
        epilog=(
            "examples:\n"
            "  repro fuzz --seed 0 --budget 25           # CI smoke\n"
            "  repro fuzz --seed 7 --budget 500 --shrink --out /tmp/repros\n"
            "checks: serialization round-trip, request conservation,\n"
            "determinism (repeat runs, REPRO_SIM_MEGABATCH=0/1,\n"
            "REPRO_SIM_FAST_PATH=0/1, sweep worker counts), attainment\n"
            "monotonicity in load and KV budget, and checkpoint resume\n"
            "after a torn journal; exit 1 when any invariant breaks.\n"
            "--shrink minimizes each failing spec to a replayable YAML;\n"
            "see docs/fuzzing.md"
        ),
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="campaign seed; scenario i depends only on "
                             "(seed, i) (default 0)")
    p_fuzz.add_argument("--budget", type=int, default=25,
                        help="number of scenarios to generate (default 25)")
    p_fuzz.add_argument("--shrink", action="store_true",
                        help="greedily minimize failing scenarios and write "
                             "repro YAMLs")
    p_fuzz.add_argument("--out", default=None, metavar="DIR",
                        help="directory for shrunk repro YAMLs "
                             "(with --shrink)")
    p_fuzz.add_argument("--tolerance", type=float, default=0.1,
                        help="slack for monotonicity checks, absorbs "
                             "re-drawn arrival noise (default 0.1)")
    p_fuzz.add_argument("--deep-every", type=int, default=5,
                        help="run the expensive differential checks on "
                             "every Nth scenario; 0 disables (default 5)")
    p_fuzz.add_argument("--json", action="store_true",
                        help="emit the campaign report as JSON on stdout")
    p_fuzz.set_defaults(func=_cmd_fuzz)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)

    if argv and argv[0] == "traffic":
        # Flag-driven subcommand with its own parser (deprecated in
        # favour of `run` with an open_loop/cluster scenario file).
        _deprecated("traffic", "repro run <open-loop scenario.yaml>")
        from repro.traffic.cli import main as traffic_main

        return traffic_main(argv[1:])

    legacy = _legacy_dispatch(argv)
    if legacy is not None:
        return legacy

    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "command", None) is None:
        parser.print_help()
        return 0
    try:
        return args.func(args)
    except Neu10Error as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
