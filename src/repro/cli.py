"""Command-line interface for running reproduction experiments.

Usage::

    python -m repro.cli list                 # enumerate experiments
    python -m repro.cli fig19                # one experiment
    python -m repro.cli fig19 fig22          # several
    python -m repro.cli all                  # everything (minutes)
    python -m repro.cli quickstart           # the quickstart demo
    python -m repro.cli traffic --help       # open-loop traffic runs
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List


def _experiments() -> Dict[str, Callable[[], None]]:
    # Imported lazily so `--help` stays instant.
    from repro.experiments import (
        fig02_demand,
        fig04_intensity,
        fig05_utilization,
        fig06_ve_idle,
        fig07_hbm,
        fig12_allocator,
        fig16_neuisa_overhead,
        fig19_22_serving,
        fig23_harvest,
        fig24_assignment,
        fig25_scaling,
        fig26_bandwidth,
        fig27_llm,
        hwcost,
    )
    import repro

    return {
        "fig02": fig02_demand.main,
        "fig04": fig04_intensity.main,
        "fig05": fig05_utilization.main,
        "fig06": fig06_ve_idle.main,
        "fig07": fig07_hbm.main,
        "fig12": fig12_allocator.main,
        "fig16": fig16_neuisa_overhead.main,
        "fig19": fig19_22_serving.main,
        "fig23": fig23_harvest.main,
        "fig24": fig24_assignment.main,
        "fig25": fig25_scaling.main,
        "fig26": fig26_bandwidth.main,
        "fig27": fig27_llm.main,
        "hwcost": hwcost.main,
        "quickstart": repro.quickstart,
    }


def main(argv: List[str] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "traffic":
        # Flag-driven subcommand with its own parser.
        from repro.traffic.cli import main as traffic_main

        return traffic_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Run Neu10 reproduction experiments (MICRO 2024).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["list"],
        help="experiment names (see `list`), or `all`",
    )
    args = parser.parse_args(argv)
    registry = _experiments()

    requested = list(args.experiments)
    if requested == ["list"] or not requested:
        print("Available experiments:")
        for name in registry:
            print(f"  {name}")
        print("  all")
        print("  traffic  (open-loop serving; see `traffic --help`)")
        return 0
    if requested == ["all"]:
        requested = [n for n in registry if n != "quickstart"]

    unknown = [n for n in requested if n not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        return 2

    for name in requested:
        start = time.time()
        print(f"==== {name} " + "=" * max(1, 60 - len(name)))
        registry[name]()
        print(f"---- {name} done in {time.time() - start:.1f}s\n")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
