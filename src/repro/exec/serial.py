"""The in-process executor: the determinism reference.

Runs every task in the calling process, one at a time, in task order.
No isolation from worker death (there are no workers) and no timeout
enforcement -- what it *does* share with the robust backends is the
retry loop and the per-item failure accounting, so ``serial`` is both
the debugging backend (exceptions carry full local tracebacks under a
debugger) and the reference every other backend's merged output must
reproduce bit for bit.
"""

from __future__ import annotations

import time
import warnings
from typing import Any, Callable, List, Optional, Sequence

from repro.exec.base import (
    CompletionHook,
    ExecTask,
    Executor,
    TaskOutcome,
    failure_from_exception,
)


def _warn_timeout_unenforced(backend: str) -> None:
    warnings.warn(
        f"executor backend {backend!r} cannot enforce task_timeout_s "
        "(it cannot kill its worker); use the local-queue backend for "
        "timeout enforcement",
        RuntimeWarning,
        stacklevel=3,
    )


class SerialExecutor(Executor):
    """In-process execution with retries and per-item fault isolation."""

    name = "serial"

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[ExecTask],
        on_complete: Optional[CompletionHook] = None,
    ) -> List[TaskOutcome]:
        if self.spec.task_timeout_s is not None:
            _warn_timeout_unenforced(self.name)
        outcomes: List[TaskOutcome] = []
        for index, task in enumerate(tasks):
            outcome = self._run_one(fn, task, index)
            outcomes.append(outcome)
            self._settle(outcome, on_complete)
        return outcomes

    def _run_one(
        self, fn: Callable[[Any], Any], task: ExecTask, index: int
    ) -> TaskOutcome:
        last_exc: Optional[BaseException] = None
        for attempt in range(1, self.spec.max_attempts + 1):
            delay = self.spec.backoff_before(attempt)
            if delay > 0:
                time.sleep(delay)
            try:
                value = fn(task.payload)
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                last_exc = exc
                continue
            return TaskOutcome(
                key=task.key, index=index, value=value, attempts=attempt
            )
        assert last_exc is not None
        return TaskOutcome(
            key=task.key,
            index=index,
            failure=failure_from_exception(
                task, index, last_exc, self.spec.max_attempts
            ),
            attempts=self.spec.max_attempts,
        )
