"""Append-only sweep checkpoints: survive anything, resume bit-identically.

A :class:`SweepJournal` is the crash-safe ledger behind
``repro sweep --checkpoint DIR --resume``: a directory holding

- ``manifest.json`` -- the identity of the sweep being checkpointed (a
  canonical digest over the base scenario, the swept parameter and its
  values, plus the shard-key list), written once when the journal is
  created.  Resume refuses a directory whose manifest names a
  *different* sweep, so a stale checkpoint can never leak foreign
  results into a run.
- ``journal.jsonl`` -- one JSON line per settled shard, appended and
  flushed as each completes (fsync batched on a short interval; a
  power cut can cost the last interval's shards, which simply re-run
  on resume).  ``{"shard": key, "result": ...}`` records
  a completed shard's full result payload; ``{"shard": key,
  "failure": ...}`` records a permanent failure (informational -- a
  failed shard is retried on resume).

Shard keys are content digests of the shard's spec (sweeps use the
variant scenario's sha256 digest), so sharding is deterministic: the
same sweep always produces the same keys, whatever order shards
complete in, whichever backend ran them, however many times the run
was killed and resumed.

Crash model: the writer may die (SIGKILL included) mid-append, leaving
a torn final line.  Loading tolerates undecodable lines by skipping
them -- the shard simply counts as not-done and is re-run -- so a
journal is never unusable, and a resumed sweep's merged results are bit
identical to an uninterrupted run's (the re-run shard is the same
deterministic function of the same spec).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ConfigError

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
#: Bump when the on-disk layout changes shape.
JOURNAL_SCHEMA_VERSION = 1
#: Minimum spacing between fsyncs.  Every line is *flushed* (visible to
#: other processes, and intact unless the whole machine dies), but
#: durability-fsync is batched: losing the last interval's lines to a
#: power cut just re-runs those shards on resume, while fsyncing every
#: line would dominate the journal's cost on fast sweeps.
_FSYNC_INTERVAL_S = 1.0


class SweepJournal:
    """Checkpoint directory for one deterministic sweep.

    Create with ``resume=False`` to start a fresh ledger (refusing to
    clobber an existing non-empty one) or ``resume=True`` to load the
    completed shards of a previous run and keep appending.  Use as::

        journal = SweepJournal(ckpt_dir, sweep_digest, shard_keys,
                               resume=args.resume)
        todo = [k for k in shard_keys if k not in journal.completed]
        ...
        journal.record(key, result_payload)   # as each shard settles
        journal.close()
    """

    def __init__(
        self,
        directory: Union[str, Path],
        sweep_digest: str,
        shard_keys: Sequence[str],
        resume: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.sweep_digest = sweep_digest
        self.shard_keys = list(shard_keys)
        #: Shard key -> recorded result payload (resume skips these).
        self.completed: Dict[str, Any] = {}
        #: Failure payloads seen in the journal (informational only).
        self.prior_failures: List[Dict[str, Any]] = []
        #: Undecodable lines skipped while loading (torn tail writes).
        self.skipped_lines = 0
        self._fh = None
        self._last_fsync = 0.0

        self.directory.mkdir(parents=True, exist_ok=True)
        if resume:
            self._load()
        else:
            self._create()
        self._fh = open(self.journal_path, "a", encoding="utf-8")

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_NAME

    # ------------------------------------------------------------------
    # Creation / loading
    # ------------------------------------------------------------------
    def _manifest(self) -> Dict[str, Any]:
        return {
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "sweep_digest": self.sweep_digest,
            "shards": len(self.shard_keys),
        }

    def _create(self) -> None:
        if self.journal_path.exists() and self.journal_path.stat().st_size:
            raise ConfigError(
                f"checkpoint {self.directory} already holds a journal; "
                "pass --resume to continue it, or point --checkpoint at a "
                "fresh directory"
            )
        self.manifest_path.write_text(
            json.dumps(self._manifest(), indent=2) + "\n", encoding="utf-8"
        )
        # Truncate any empty leftover so appends start clean.
        self.journal_path.write_text("", encoding="utf-8")

    def _load(self) -> None:
        if not self.manifest_path.exists():
            raise ConfigError(
                f"cannot resume: {self.manifest_path} does not exist "
                "(was this sweep ever checkpointed here?)"
            )
        try:
            manifest = json.loads(
                self.manifest_path.read_text(encoding="utf-8")
            )
        except json.JSONDecodeError as exc:
            raise ConfigError(
                f"cannot resume: {self.manifest_path} is not valid JSON "
                f"({exc})"
            ) from exc
        if manifest.get("schema_version") != JOURNAL_SCHEMA_VERSION:
            raise ConfigError(
                f"cannot resume: {self.manifest_path} has schema_version "
                f"{manifest.get('schema_version')!r} "
                f"(expected {JOURNAL_SCHEMA_VERSION})"
            )
        if manifest.get("sweep_digest") != self.sweep_digest:
            raise ConfigError(
                f"cannot resume: {self.directory} checkpoints a different "
                f"sweep (manifest digest {manifest.get('sweep_digest')!r} "
                f"!= this sweep's {self.sweep_digest!r}); point "
                "--checkpoint at the matching directory"
            )
        known = set(self.shard_keys)
        if self.journal_path.exists():
            with open(self.journal_path, encoding="utf-8") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                        key = entry["shard"]
                    except (json.JSONDecodeError, KeyError, TypeError):
                        # Torn write from a killed run: skip; the shard
                        # counts as not-done and is simply re-run.
                        self.skipped_lines += 1
                        continue
                    if key not in known:
                        # Same sweep digest implies the same shard set,
                        # but stay defensive against hand-edited files.
                        self.skipped_lines += 1
                        continue
                    if "result" in entry:
                        self.completed[key] = entry["result"]
                    elif "failure" in entry:
                        self.prior_failures.append(entry["failure"])
                    else:
                        self.skipped_lines += 1

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _append(self, entry: Mapping[str, Any]) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(entry, separators=(",", ":")) + "\n")
        self._fh.flush()
        now = time.monotonic()
        if now - self._last_fsync >= _FSYNC_INTERVAL_S:
            os.fsync(self._fh.fileno())
            self._last_fsync = now

    def record(self, key: str, result: Any) -> None:
        """Checkpoint one completed shard's result payload."""
        self.completed[key] = result
        self._append({"shard": key, "result": result})

    def record_failure(self, key: str, failure: Mapping[str, Any]) -> None:
        """Record a permanent failure (the shard is retried on resume)."""
        self._append({"shard": key, "failure": dict(failure)})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *_exc) -> Optional[bool]:
        self.close()
        return None
