"""``repro.exec`` -- pluggable fault-tolerant execution for sweeps.

The orchestration layer between "a list of independent simulations" and
"a finished result list": an :class:`Executor` maps a deterministic,
picklable function over keyed tasks and returns outcomes in task order,
whatever ran where, crashed when, or was retried how often.  Three
built-in backends trade robustness for machinery (``serial`` < ``pool``
< ``local-queue``; see :mod:`repro.exec.base`), the
:data:`repro.api.registries.EXECUTORS` registry lets third-party
backends plug in by name, and :class:`SweepJournal` adds append-only
checkpointing so a killed sweep resumes bit-identically instead of
restarting.

Call sites: :func:`repro.api.runner.sweep_scenario` (and the richer
:func:`~repro.api.runner.sweep_scenario_report`) shard sweeps through
an executor, and :mod:`repro.traffic.cluster_sim` fans host segments
out through one.  See ``docs/sweeps.md`` for the how-to.
"""

from repro.errors import ExecError
from repro.exec.base import (
    DEFAULT_BACKOFF_S,
    DEFAULT_RETRIES,
    CompletionHook,
    ExecSpec,
    ExecTask,
    Executor,
    TaskFailure,
    TaskOutcome,
    summarize_failures,
)
from repro.exec.journal import JOURNAL_SCHEMA_VERSION, SweepJournal
from repro.exec.localqueue import LocalQueueExecutor
from repro.exec.pool import PoolExecutor
from repro.exec.serial import SerialExecutor

__all__ = [
    "CompletionHook",
    "DEFAULT_BACKOFF_S",
    "DEFAULT_RETRIES",
    "ExecError",
    "ExecSpec",
    "ExecTask",
    "Executor",
    "JOURNAL_SCHEMA_VERSION",
    "LocalQueueExecutor",
    "PoolExecutor",
    "SerialExecutor",
    "SweepJournal",
    "TaskFailure",
    "TaskOutcome",
    "summarize_failures",
]
