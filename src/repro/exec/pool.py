"""The process-pool executor: ``repro.parallel.parallel_map`` semantics
behind the :class:`~repro.exec.base.Executor` interface.

Same worker model as :func:`repro.parallel.parallel_map` -- a
``ProcessPoolExecutor`` sized by :func:`repro.parallel.default_workers`,
serial degeneration for one worker or one task, serial fallback when a
pool cannot be spawned -- plus what the bare map lacks: per-item
exception isolation (a failing task becomes a
:class:`~repro.exec.base.TaskFailure` instead of poisoning the whole
map) and bounded in-worker retries with backoff.

Limits, by design: a worker *process* death (crash, OOM-kill) breaks a
``concurrent.futures`` pool for every outstanding task, so this backend
raises :class:`~repro.errors.ExecError` on a broken pool rather than
pretending to isolate it; and ``task_timeout_s`` is not enforced (a
pool cannot kill one worker).  The ``local-queue`` backend covers both.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.errors import ExecError
from repro.exec.base import (
    CompletionHook,
    ExecSpec,
    ExecTask,
    Executor,
    TaskFailure,
    TaskOutcome,
)
from repro.exec.serial import SerialExecutor, _warn_timeout_unenforced
from repro.parallel import default_workers, warn_pool_fallback


def _pool_entry(item: Tuple[Callable[[Any], Any], Any, int, float]) -> Tuple:
    """Worker-side task runner: retries happen inside the worker, so a
    flaky task costs no extra round-trips.  Returns plain data."""
    fn, payload, max_attempts, backoff_s = item
    last: Optional[Tuple[str, str]] = None
    for attempt in range(1, max_attempts + 1):
        if attempt > 1 and backoff_s > 0:
            time.sleep(backoff_s * (2 ** (attempt - 2)))
        try:
            value = fn(payload)
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            last = (type(exc).__name__, str(exc))
            continue
        return ("ok", value, attempt)
    assert last is not None
    return ("err", last[0], last[1], max_attempts)


class PoolExecutor(Executor):
    """Process-pool fan-out with per-item isolation and retries."""

    name = "pool"

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[ExecTask],
        on_complete: Optional[CompletionHook] = None,
    ) -> List[TaskOutcome]:
        if self.spec.task_timeout_s is not None:
            _warn_timeout_unenforced(self.name)
        workers = (
            default_workers()
            if self.spec.max_workers is None
            else self.spec.max_workers
        )
        if workers == 1 or len(tasks) <= 1:
            return self._serial(fn, tasks, on_complete)
        try:
            pool = ProcessPoolExecutor(max_workers=min(workers, len(tasks)))
        except OSError as exc:  # pragma: no cover - constrained sandboxes
            warn_pool_fallback(exc)
            return self._serial(fn, tasks, on_complete)
        items = [
            (fn, task.payload, self.spec.max_attempts, self.spec.retry_backoff_s)
            for task in tasks
        ]
        outcomes: List[Optional[TaskOutcome]] = [None] * len(tasks)
        try:
            futures = {
                pool.submit(_pool_entry, item): index
                for index, item in enumerate(items)
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index = futures[future]
                    outcome = self._to_outcome(tasks[index], index, future)
                    outcomes[index] = outcome
                    try:
                        self._settle(outcome, on_complete)
                    except ExecError:
                        for remaining in pending:
                            remaining.cancel()
                        raise
        finally:
            pool.shutdown(cancel_futures=True)
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    def _serial(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[ExecTask],
        on_complete: Optional[CompletionHook],
    ) -> List[TaskOutcome]:
        # One worker (or one task) degenerates to the in-process
        # reference, exactly like parallel_map; drop the timeout first
        # so SerialExecutor does not warn a second time.
        spec = ExecSpec(
            backend=self.name,
            max_workers=1,
            retries=self.spec.retries,
            retry_backoff_s=self.spec.retry_backoff_s,
            keep_going=self.spec.keep_going,
        )
        return SerialExecutor(spec).map_tasks(fn, tasks, on_complete)

    def _to_outcome(self, task: ExecTask, index: int, future) -> TaskOutcome:
        try:
            result = future.result()
        except BrokenProcessPool as exc:
            raise ExecError(
                f"process pool broke while running task {task.key!r} "
                f"(a worker died: {exc}); the pool backend cannot isolate "
                "worker death -- use the local-queue backend"
            ) from exc
        if result[0] == "ok":
            _tag, value, attempts = result
            return TaskOutcome(
                key=task.key, index=index, value=value, attempts=attempts
            )
        _tag, error_type, message, attempts = result
        return TaskOutcome(
            key=task.key,
            index=index,
            failure=TaskFailure(
                key=task.key,
                index=index,
                error_type=error_type,
                message=message,
                attempts=attempts,
            ),
            attempts=attempts,
        )
