"""The local work-queue executor: a crash-tolerant spawn-based crew.

The robustness backend the ``pool`` executor cannot be: each worker is
a freshly spawned process the parent owns outright, so the parent can

- **enforce per-task timeouts** -- a task over ``task_timeout_s`` gets
  its worker killed, the attempt recorded as timed out, and a
  replacement worker spawned;
- **survive worker death** -- a worker that segfaults, is OOM-killed or
  SIGKILLed mid-task costs one attempt of the task it was running, not
  the sweep;
- **bound retries with backoff** -- a task is re-dispatched up to
  ``retries`` extra times, attempt ``k`` held back
  ``retry_backoff_s * 2**(k-2)`` seconds;
- **isolate per-item failures** -- with ``keep_going`` a permanently
  failed task becomes a structured :class:`~repro.exec.base.TaskFailure`
  and the rest of the queue keeps draining.

Dispatch is single-feeder: every worker has its own task queue, so the
parent always knows exactly which task a dead or stuck worker was
holding.  Results are merged by task index, and tasks are deterministic
functions of their payloads, so scheduling nondeterminism (who ran
what, in which order, after how many crashes) never reaches the output:
the merged result list is bit-identical to the ``serial`` backend's.

``spawn`` (not ``fork``) keeps workers independent of parent state --
the same start method on every platform, and no inherited locks to
deadlock on after a kill.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.errors import ExecError
from repro.exec.base import (
    CompletionHook,
    ExecTask,
    Executor,
    TaskFailure,
    TaskOutcome,
)
from repro.parallel import default_workers

#: Parent poll tick while waiting on results/deadlines, in seconds.
_POLL_S = 0.02
#: Grace given to a worker to exit after its sentinel, before kill.
_JOIN_S = 2.0
#: How long a dispatched task may sit without its worker announcing
#: pickup before the worker is presumed hung in spawn boot and killed.
#: task_timeout_s itself only starts once the worker reports it began
#: the task, so slow spawns never eat into a task's budget.
_BOOT_TIMEOUT_S = 60.0

_CTX = multiprocessing.get_context("spawn")


def _worker_main(fn: Callable[[Any], Any], task_queue, result_queue) -> None:
    """Worker loop: one task in, one ``(index, attempt, ...)`` reply out.

    Replies carry the dispatch's attempt number so the parent can drop
    stale replies from a worker it already gave up on (e.g. a result
    that squeaked out right as a timeout fired).
    """
    while True:
        item = task_queue.get()
        if item is None:
            return
        index, attempt, payload = item
        # Announce pickup so the parent's task_timeout_s clock measures
        # the task itself, not queueing or this worker's spawn boot.
        result_queue.put((index, attempt, "start", None))
        try:
            value = fn(payload)
        except Exception as exc:  # noqa: BLE001 - isolation is the point
            result_queue.put(
                (index, attempt, False, (type(exc).__name__, str(exc)))
            )
        else:
            result_queue.put((index, attempt, True, value))


@dataclass
class _Worker:
    process: Any
    task_queue: Any
    #: (task index, attempt, clock start, started?); None when idle.
    #: ``started`` flips True when the worker announces pickup, which
    #: also restarts the clock -- task_timeout_s measures the task
    #: itself, never queueing or the worker's spawn boot (which gets
    #: the separate, generous ``_BOOT_TIMEOUT_S``).
    running: Optional[tuple] = None


class _TaskState:
    """Parent-side bookkeeping for one task."""

    __slots__ = ("task", "index", "attempts", "ready_at", "last_error",
                 "timed_out")

    def __init__(self, task: ExecTask, index: int) -> None:
        self.task = task
        self.index = index
        self.attempts = 0
        self.ready_at = 0.0
        self.last_error = ("ExecError", "never attempted")
        self.timed_out = False


class LocalQueueExecutor(Executor):
    """Spawn-based worker crew with timeouts, retries and isolation."""

    name = "local-queue"

    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[ExecTask],
        on_complete: Optional[CompletionHook] = None,
    ) -> List[TaskOutcome]:
        workers = (
            default_workers()
            if self.spec.max_workers is None
            else self.spec.max_workers
        )
        if not tasks:
            return []
        # No in-process degeneration even at one worker: timeouts and
        # crash isolation need a killable process, and that robustness
        # is this backend's contract (the serial backend is the
        # in-process choice).
        crew_size = min(max(1, workers), len(tasks))
        return _CrewRun(self, fn, tasks, crew_size, on_complete).run()


class _CrewRun:
    """One ``map_tasks`` call: dispatch loop, deadlines, respawns."""

    def __init__(
        self,
        executor: LocalQueueExecutor,
        fn: Callable[[Any], Any],
        tasks: Sequence[ExecTask],
        crew_size: int,
        on_complete: Optional[CompletionHook],
    ) -> None:
        self.executor = executor
        self.spec = executor.spec
        self.fn = fn
        self.tasks = list(tasks)
        self.crew_size = crew_size
        self.on_complete = on_complete
        self.result_queue = _CTX.Queue()
        self.states = [_TaskState(t, i) for i, t in enumerate(self.tasks)]
        self.pending: List[_TaskState] = list(self.states)
        self.outcomes: List[Optional[TaskOutcome]] = [None] * len(self.tasks)
        self.workers: List[_Worker] = []

    # ------------------------------------------------------------------
    # Crew lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self) -> _Worker:
        task_queue = _CTX.Queue()
        process = _CTX.Process(
            target=_worker_main,
            args=(self.fn, task_queue, self.result_queue),
            daemon=True,
        )
        process.start()
        worker = _Worker(process=process, task_queue=task_queue)
        return worker

    def _kill_worker(self, worker: _Worker) -> None:
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(_JOIN_S)
        # Release the queue's feeder thread resources.
        worker.task_queue.close()
        worker.running = None

    def _shutdown(self) -> None:
        for worker in self.workers:
            if worker.running is None and worker.process.is_alive():
                try:
                    worker.task_queue.put_nowait(None)
                except Exception:  # pragma: no cover - queue already gone
                    pass
        deadline = time.monotonic() + _JOIN_S
        for worker in self.workers:
            worker.process.join(max(0.0, deadline - time.monotonic()))
        for worker in self.workers:
            self._kill_worker(worker)
        self.result_queue.close()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> List[TaskOutcome]:
        self.workers = [self._spawn_worker() for _ in range(self.crew_size)]
        try:
            while any(o is None for o in self.outcomes):
                self._dispatch()
                self._collect()
                self._check_deadlines_and_liveness()
            return self.outcomes  # type: ignore[return-value]
        finally:
            self._shutdown()

    def _dispatch(self) -> None:
        now = time.monotonic()
        idle = [w for w in self.workers if w.running is None]
        if not idle or not self.pending:
            return
        ready = [s for s in self.pending if s.ready_at <= now]
        for worker, state in zip(idle, ready):
            self.pending.remove(state)
            state.attempts += 1
            worker.running = (state.index, state.attempts, now, False)
            worker.task_queue.put(
                (state.index, state.attempts, state.task.payload)
            )

    def _collect(self) -> None:
        try:
            reply = self.result_queue.get(timeout=_POLL_S)
        except queue_mod.Empty:
            return
        while True:
            self._absorb(reply)
            try:
                reply = self.result_queue.get_nowait()
            except queue_mod.Empty:
                return

    def _absorb(self, reply: tuple) -> None:
        index, attempt, ok, value = reply
        worker = self._worker_running(index, attempt)
        if worker is None:
            # Stale reply from an attempt the parent already wrote off
            # (timeout fired as the worker finished).  The task was
            # either retried or resolved; drop the duplicate.
            return
        if ok == "start":
            # Worker picked the task up: restart its deadline clock so
            # timeouts measure the task, not queueing or spawn boot.
            worker.running = (index, attempt, time.monotonic(), True)
            return
        worker.running = None
        state = self.states[index]
        if ok:
            self._resolve(
                TaskOutcome(
                    key=state.task.key,
                    index=index,
                    value=value,
                    attempts=state.attempts,
                )
            )
        else:
            state.last_error = value
            state.timed_out = False
            self._retry_or_fail(state)

    def _worker_running(self, index: int, attempt: int) -> Optional[_Worker]:
        for worker in self.workers:
            if worker.running is not None and worker.running[:2] == (
                index, attempt,
            ):
                return worker
        return None

    def _check_deadlines_and_liveness(self) -> None:
        now = time.monotonic()
        timeout = self.spec.task_timeout_s
        for worker in list(self.workers):
            if worker.running is None:
                if not worker.process.is_alive():
                    # An idle worker died (e.g. killed externally);
                    # replace it so the crew keeps its width.
                    self._replace_worker(worker)
                continue
            index, _attempt, clock_start, started = worker.running
            state = self.states[index]
            overdue = (
                timeout is not None and now - clock_start > timeout
                if started
                else now - clock_start > _BOOT_TIMEOUT_S
            )
            if overdue:
                state.last_error = (
                    "TimeoutError",
                    f"exceeded task_timeout_s={timeout:g}s"
                    if started
                    else "worker never started the task "
                    f"(spawn boot exceeded {_BOOT_TIMEOUT_S:g}s)",
                )
                state.timed_out = True
                self._replace_worker(worker)
                self._retry_or_fail(state)
            elif not worker.process.is_alive():
                exit_code = worker.process.exitcode
                state.last_error = (
                    "WorkerDied",
                    f"worker exited with code {exit_code} mid-task",
                )
                state.timed_out = False
                self._replace_worker(worker)
                self._retry_or_fail(state)

    def _replace_worker(self, worker: _Worker) -> None:
        self._kill_worker(worker)
        self.workers.remove(worker)
        if any(o is None for o in self.outcomes):
            self.workers.append(self._spawn_worker())

    # ------------------------------------------------------------------
    # Task settlement
    # ------------------------------------------------------------------
    def _retry_or_fail(self, state: _TaskState) -> None:
        if state.attempts < self.spec.max_attempts:
            state.ready_at = time.monotonic() + self.spec.backoff_before(
                state.attempts + 1
            )
            self.pending.append(state)
            return
        error_type, message = state.last_error
        self._resolve(
            TaskOutcome(
                key=state.task.key,
                index=state.index,
                failure=TaskFailure(
                    key=state.task.key,
                    index=state.index,
                    error_type=error_type,
                    message=message,
                    attempts=state.attempts,
                    timed_out=state.timed_out,
                ),
                attempts=state.attempts,
            )
        )

    def _resolve(self, outcome: TaskOutcome) -> None:
        self.outcomes[outcome.index] = outcome
        try:
            self.executor._settle(outcome, self.on_complete)
        except ExecError:
            # Abort: the finally-block shutdown kills the crew.
            raise
