"""Deterministic misbehaving tasks for exercising executors.

Retry, timeout and crash handling are impossible to test with
well-behaved functions, and test-local lambdas cannot cross a ``spawn``
boundary -- so the library ships its chaos monkeys.  Each task here is
a module-level function (picklable into any backend's workers) whose
misbehaviour is a *deterministic* function of its payload plus a
scratch directory used as cross-process attempt memory:

- :func:`flaky_task` fails its first ``fail_times`` attempts, then
  succeeds -- the deterministic flaky task for retry tests;
- :func:`sleepy_task` sleeps forever (or a set time) on chosen
  attempts -- for timeout enforcement tests;
- :func:`crashing_task` dies via ``os._exit`` on chosen attempts -- a
  worker death no ``except`` can catch, for fault-isolation tests;
- :func:`echo_task` just returns its payload -- the happy path.

Payloads are plain dicts so every backend (and its pickling) sees the
same bytes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict


def _attempt_number(scratch_dir: str, key: str) -> int:
    """Record this attempt in ``scratch_dir`` and return its 1-based
    number.  Marker files survive worker death, unlike worker memory."""
    root = Path(scratch_dir)
    root.mkdir(parents=True, exist_ok=True)
    for attempt in range(1, 10_000):
        marker = root / f"{key}.attempt{attempt}"
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            continue
        return attempt
    raise RuntimeError("attempt marker space exhausted")


def echo_task(payload: Any) -> Any:
    """Return the payload unchanged (the happy path)."""
    return payload


def flaky_task(payload: Dict[str, Any]) -> Any:
    """Fail the first ``payload['fail_times']`` attempts, then return
    ``payload['value']``.

    Payload keys: ``scratch`` (attempt-memory dir), ``key`` (task id),
    ``fail_times``, ``value``.
    """
    attempt = _attempt_number(payload["scratch"], payload["key"])
    if attempt <= payload["fail_times"]:
        raise RuntimeError(
            f"deterministic flake {payload['key']} (attempt {attempt})"
        )
    return payload["value"]


def sleepy_task(payload: Dict[str, Any]) -> Any:
    """Sleep ``payload['sleep_s']`` on the first ``payload['slow_times']``
    attempts (default: every attempt), then return ``payload['value']``.

    Use a ``sleep_s`` far above the executor's ``task_timeout_s`` to
    force timeout kills, with ``slow_times`` bounding how many attempts
    get stuck.
    """
    slow_times = payload.get("slow_times")
    if slow_times is not None:
        attempt = _attempt_number(payload["scratch"], payload["key"])
        if attempt > slow_times:
            return payload["value"]
    time.sleep(payload["sleep_s"])
    return payload["value"]


def crashing_task(payload: Dict[str, Any]) -> Any:
    """Kill the worker process outright (``os._exit``) on the first
    ``payload['crash_times']`` attempts, then return ``payload['value']``.

    ``os._exit`` skips every handler and ``finally`` -- the closest
    in-process stand-in for a segfault or OOM kill.
    """
    attempt = _attempt_number(payload["scratch"], payload["key"])
    if attempt <= payload["crash_times"]:
        os._exit(19)
    return payload["value"]
