"""Executor interface: pluggable fan-out with structured failures.

An :class:`Executor` maps a picklable function over a list of keyed
tasks and returns one :class:`TaskOutcome` per task, **in task order**,
whatever the completion order was.  The interface is deliberately dumb
-- spec in, outcomes out -- so backends can range from an in-process
loop to a crash-tolerant worker crew without the call sites changing:

- ``serial``      (:mod:`repro.exec.serial`)     -- in-process, the
  determinism reference every other backend must reproduce;
- ``pool``        (:mod:`repro.exec.pool`)       -- today's
  :func:`repro.parallel.parallel_map` process-pool semantics, plus
  per-item exception isolation and in-worker retries;
- ``local-queue`` (:mod:`repro.exec.localqueue`) -- a spawn-based
  worker crew with per-task timeouts, bounded retries with backoff,
  and survival of worker death (crash or kill).

Task functions must be deterministic: retries re-run the same function
on the same payload, and results are merged purely by task index, so an
executor can never change *what* a sweep computes -- only whether it
survives computing it.

Failures are data, not control flow: a task that exhausts its retries
produces a :class:`TaskFailure` inside its outcome.  With
``keep_going`` unset the executor raises :class:`ExecError` on the
first permanent failure (after letting in-flight work settle); with it
set the sweep continues and the caller gets the full failure ledger --
the ``--keep-going`` per-item fault isolation mode.

Third-party backends plug in by name through
:data:`repro.api.registries.EXECUTORS`, exactly like schedulers and
preemption policies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError, ExecError

#: Default bounded retries per task (epengine-style ``retries=2``).
DEFAULT_RETRIES = 2
#: Default base backoff between attempts of one task, in seconds;
#: attempt ``k`` waits ``retry_backoff_s * 2**(k-1)``.
DEFAULT_BACKOFF_S = 0.05


@dataclass(frozen=True)
class ExecSpec:
    """Declarative executor configuration (picklable, content-hashable).

    The knobs every backend shares; a backend may ignore ones it cannot
    honour (only ``local-queue`` can enforce ``task_timeout_s``, because
    enforcing a timeout means being able to kill the worker).
    """

    backend: str = "pool"
    #: Worker-crew width (None = :func:`repro.parallel.default_workers`).
    max_workers: Optional[int] = None
    #: Kill-and-retry budget per attempt, in wall seconds
    #: (local-queue only; None = unbounded).
    task_timeout_s: Optional[float] = None
    #: Extra attempts after the first failure (0 = fail fast).
    retries: int = DEFAULT_RETRIES
    #: Base backoff before attempt k: ``retry_backoff_s * 2**(k-1)``.
    retry_backoff_s: float = DEFAULT_BACKOFF_S
    #: Record a TaskFailure and continue instead of aborting the map.
    keep_going: bool = False

    def __post_init__(self) -> None:
        if not self.backend:
            raise ConfigError("executor spec needs a backend name")
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigError("executor max_workers must be >= 1")
        if self.task_timeout_s is not None and self.task_timeout_s <= 0:
            raise ConfigError("executor task_timeout_s must be positive")
        if self.retries < 0:
            raise ConfigError("executor retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ConfigError("executor retry_backoff_s must be >= 0")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def backoff_before(self, attempt: int) -> float:
        """Seconds to wait before dispatching ``attempt`` (1-based)."""
        if attempt <= 1 or self.retry_backoff_s <= 0:
            return 0.0
        return self.retry_backoff_s * (2 ** (attempt - 2))


@dataclass(frozen=True)
class ExecTask:
    """One unit of executor work: a stable key plus a picklable payload.

    ``key`` names the task in failures, journals and progress ticks
    (sweeps use the variant's scenario digest -- the deterministic shard
    id); ``payload`` is the single argument the mapped function gets.
    """

    key: str
    payload: Any

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigError("executor task needs a non-empty key")


@dataclass
class TaskFailure:
    """Structured record of one task that exhausted its attempts."""

    key: str
    index: int
    error_type: str
    message: str
    attempts: int
    timed_out: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "index": self.index,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
            "timed_out": self.timed_out,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TaskFailure":
        return cls(
            key=payload["key"],
            index=payload["index"],
            error_type=payload["error_type"],
            message=payload["message"],
            attempts=payload["attempts"],
            timed_out=bool(payload.get("timed_out", False)),
        )

    def describe(self) -> str:
        cause = "timed out" if self.timed_out else self.error_type
        return (
            f"task {self.key!r} failed after {self.attempts} attempt(s): "
            f"{cause}: {self.message}"
        )


@dataclass
class TaskOutcome:
    """Result of one task: a value, or a permanent failure."""

    key: str
    index: int
    value: Any = None
    failure: Optional[TaskFailure] = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.failure is None


#: Parent-side completion hook: called once per task as it settles
#: (success or permanent failure), in completion order.
CompletionHook = Callable[[TaskOutcome], None]


class Executor(ABC):
    """Maps a picklable function over keyed tasks, deterministically.

    Contract every backend honours:

    - outcomes come back **in task order**, so a deterministic task
      function yields bit-identical merged results on every backend and
      worker count;
    - each task gets up to ``spec.max_attempts`` runs, with
      ``spec.backoff_before`` seconds between attempts;
    - a permanently failed task either aborts the map with
      :class:`ExecError` (``keep_going=False``) or lands as a
      :class:`TaskFailure` in its outcome (``keep_going=True``);
    - ``on_complete`` fires in the parent process once per settled task,
      which is where journals and progress ticks hang.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, spec: ExecSpec) -> None:
        self.spec = spec

    @abstractmethod
    def map_tasks(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[ExecTask],
        on_complete: Optional[CompletionHook] = None,
    ) -> List[TaskOutcome]:
        """Run ``fn`` over ``tasks``; outcomes in task order."""

    # ------------------------------------------------------------------
    # Shared helpers for backends
    # ------------------------------------------------------------------
    def _settle(
        self,
        outcome: TaskOutcome,
        on_complete: Optional[CompletionHook],
    ) -> None:
        """Deliver a settled outcome to the completion hook, then abort
        the map unless failures are being kept."""
        if on_complete is not None:
            on_complete(outcome)
        if outcome.failure is not None and not self.spec.keep_going:
            raise ExecError(outcome.failure.describe())


def failure_from_exception(
    task: ExecTask, index: int, exc: BaseException, attempts: int
) -> TaskFailure:
    return TaskFailure(
        key=task.key,
        index=index,
        error_type=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
    )


def summarize_failures(failures: Sequence[TaskFailure]) -> str:
    lines = [f.describe() for f in failures]
    return "\n".join(lines)


__all__ = [
    "CompletionHook",
    "DEFAULT_BACKOFF_S",
    "DEFAULT_RETRIES",
    "ExecError",
    "ExecSpec",
    "ExecTask",
    "Executor",
    "TaskFailure",
    "TaskOutcome",
    "failure_from_exception",
    "summarize_failures",
]
