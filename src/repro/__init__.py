"""Neu10: hardware-assisted virtualization of NPUs (MICRO 2024).

A full-stack reproduction of the paper's system:

- ``repro.core``      -- the vNPU abstraction, allocator (Eqs. 1-4),
                         mapper and manager.
- ``repro.isa``       -- NeuISA (uTOps, groups, execution table) and the
                         baseline VLIW ISA, with a functional VM.
- ``repro.compiler``  -- the ML-compiler substrate: graphs, cost model,
                         tiling, fusion, VLIW/NeuISA lowering, profiler.
- ``repro.sim``       -- the cycle-level behavioural NPU simulator with
                         the Neu10 harvesting scheduler.
- ``repro.baselines`` -- PMT, V10 and static partitioning (Neu10-NH).
- ``repro.workloads`` -- the Table I model zoo + LLaMA2-13B.
- ``repro.runtime``   -- hypervisor/driver/IOMMU/SR-IOV substrate.
- ``repro.serving``   -- multi-tenant serving harness and metrics.
- ``repro.experiments`` -- one driver per paper table/figure.

Quickstart::

    from repro import quickstart
    quickstart()          # collocate two models under all schemes
"""

from repro.config import (
    DEFAULT_BOARD,
    DEFAULT_CORE,
    NpuBoardConfig,
    NpuChipConfig,
    NpuCoreConfig,
)
from repro.core import VnpuAllocator, VnpuConfig, VnpuManager
from repro.serving import ServingConfig, run_collocation, run_solo
from repro.serving.server import WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_BOARD",
    "DEFAULT_CORE",
    "NpuBoardConfig",
    "NpuChipConfig",
    "NpuCoreConfig",
    "ServingConfig",
    "VnpuAllocator",
    "VnpuConfig",
    "VnpuManager",
    "WorkloadSpec",
    "__version__",
    "quickstart",
    "run_collocation",
    "run_solo",
]


def quickstart() -> None:
    """Collocate an ME-intensive and a VE-intensive model under every
    scheme and print the comparison the paper's Figs. 19-21 make."""
    from repro.serving.server import ALL_SCHEMES

    specs = [WorkloadSpec("DLRM", 32), WorkloadSpec("RetinaNet", 32)]
    cfg = ServingConfig(target_requests=3)
    print(f"{'scheme':12s} {'pair':12s} {'p95 (Mcyc)':>22s} {'thr (rps)':>22s}")
    for scheme in ALL_SCHEMES:
        pair = run_collocation(specs, scheme, cfg)
        p95 = "/".join(f"{t.p95_latency_cycles/1e6:8.2f}" for t in pair.tenants)
        thr = "/".join(f"{t.throughput_rps:8.1f}" for t in pair.tenants)
        print(f"{scheme:12s} {pair.pair:12s} {p95:>22s} {thr:>22s}")
