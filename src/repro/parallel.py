"""Deterministic process-pool fan-out for independent simulations.

Cluster sweeps and experiment grids are embarrassingly parallel: each
host segment, collocation pair, or sweep point is one self-contained
fluid simulation.  :func:`parallel_map` fans such jobs out over a
process pool while keeping the results **deterministic**: outputs are
returned in input order, every stochastic input (arrival streams, RNG
substreams via :func:`repro.config.spawn_rng`) is generated *before*
dispatch, and a worker count of one degenerates to a plain serial map --
so results are bit-identical for any worker count.

Workers default to the machine's CPU count; override with the
``REPRO_PARALLEL_WORKERS`` environment variable (``1`` forces serial
execution, which is also the fallback -- announced once via
:mod:`warnings` -- whenever a pool cannot be spawned).  Job functions
and their arguments must be picklable --
module-level functions with plain-data arguments.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")
R = TypeVar("R")

#: Environment override for the default pool size.
WORKERS_ENV = "REPRO_PARALLEL_WORKERS"

_pool_fallback_warned = False


def warn_pool_fallback(cause: BaseException) -> None:
    """One-time warning that a process pool could not be spawned.

    Falling back to serial execution keeps results bit-identical (the
    one-worker path is the reference), but silently losing all
    parallelism turns a 5-minute sweep into an hour-long one with no
    explanation -- so the first degraded map names its cause.
    """
    global _pool_fallback_warned
    if _pool_fallback_warned:
        return
    _pool_fallback_warned = True
    warnings.warn(
        "process pool unavailable "
        f"({type(cause).__name__}: {cause}); falling back to serial "
        "execution (results are unchanged, wall time is not)",
        RuntimeWarning,
        stacklevel=3,
    )


def default_workers() -> int:
    """Pool size: ``REPRO_PARALLEL_WORKERS`` if set, else the number of
    CPUs this process may actually run on.

    Containerized CI typically pins the process to a subset of the
    machine's cores (cgroup cpusets); ``os.cpu_count()`` reports the
    machine, so a pool sized by it oversubscribes the pinned cores.  The
    scheduling affinity mask is the honest capacity where the platform
    exposes it.
    """
    env = os.environ.get(WORKERS_ENV)
    if env is not None:
        try:
            value = int(env)
        except ValueError as exc:
            raise ConfigError(
                f"{WORKERS_ENV} must be an integer, got {env!r}"
            ) from exc
        if value < 1:
            raise ConfigError(f"{WORKERS_ENV} must be >= 1, got {value}")
        return value
    if hasattr(os, "sched_getaffinity"):
        try:
            return len(os.sched_getaffinity(0)) or 1
        except OSError:  # pragma: no cover - exotic platforms
            pass
    return os.cpu_count() or 1


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    max_workers: Optional[int] = None,
) -> List[R]:
    """Map ``fn`` over ``items`` with deterministic result ordering.

    Results come back in input order regardless of completion order or
    worker count.  ``max_workers=None`` uses :func:`default_workers`;
    one worker (or zero/one items) runs serially in-process, which is
    the reference behaviour every pool size must reproduce exactly.
    Exceptions raised by a job propagate to the caller.
    """
    jobs: Sequence[T] = list(items)
    workers = default_workers() if max_workers is None else int(max_workers)
    if workers < 1:
        raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
    if workers == 1 or len(jobs) <= 1:
        return [fn(job) for job in jobs]
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(jobs)))
    except OSError as exc:  # pragma: no cover - constrained sandboxes
        warn_pool_fallback(exc)
        return [fn(job) for job in jobs]
    try:
        futures = [pool.submit(fn, job) for job in jobs]
        return [future.result() for future in futures]
    finally:
        pool.shutdown()
