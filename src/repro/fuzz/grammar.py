"""Seeded grammar over random *valid* :class:`Scenario` specs.

The generator is the fuzzer's front half: :func:`generate_scenario`
samples one scenario from a tunable :class:`FuzzGrammar` -- kind, tenant
mix, arrival process, optional control blocks (autoscaler,
virtualization, executor, faults, pools, sweep) -- using only the
supplied ``random.Random`` stream, so every spec is reproducible from
``(seed, index)`` alone.  Every sample satisfies construction-time
*and* registry validation: the grammar's job is to explore the valid
space, the invariant harness's job (:mod:`repro.fuzz.invariants`) is to
prove the engines behave there.

Speed is a design constraint (CI smoke-runs a 25-scenario budget):
durations are a few simulated milliseconds, workloads are the cheap
MNIST/NCF traces (their calibrations are lru-cached across scenarios
because the grammar never varies the hardware block), and LLM scenarios
always pin explicit step costs so they skip simulator calibration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.api.scenario import (
    Scenario,
    ScenarioAutoscaler,
    ScenarioChurn,
    ScenarioExecutor,
    ScenarioFault,
    ScenarioLlm,
    ScenarioLlmTenant,
    ScenarioPool,
    ScenarioTenant,
    ScenarioVirtualization,
    SweepSpec,
)
from repro.errors import ConfigError


@dataclass(frozen=True)
class FuzzGrammar:
    """Tunable knobs of the scenario generator.

    Weights and probabilities shape *where* the fuzzer spends its
    budget; every field has a default chosen so the full grammar stays
    fast enough for the CI smoke budget.
    """

    kinds: Tuple[str, ...] = ("open_loop", "serving", "cluster", "llm")
    kind_weights: Tuple[float, ...] = (0.35, 0.15, 0.3, 0.2)
    models: Tuple[str, ...] = ("MNIST", "NCF")
    schemes: Tuple[str, ...] = ("neu10", "pmt", "v10", "neu10-nh")
    arrivals: Tuple[str, ...] = ("poisson", "bursty", "diurnal")
    batches: Tuple[int, ...] = (1, 4, 8)
    max_tenants: int = 3
    duration_range: Tuple[float, float] = (0.0008, 0.003)
    load_range: Tuple[float, float] = (0.2, 1.4)
    max_seed: int = 2 ** 16
    p_drain: float = 0.5
    p_pools: float = 0.35
    p_autoscaler: float = 0.3
    p_virtualization: float = 0.35
    p_hypercall_cost: float = 0.5
    p_executor: float = 0.2
    p_faults: float = 0.4
    p_sweep: float = 0.25
    max_churn_arrivals: int = 4
    p_depart: float = 0.4
    max_faults: int = 2

    def __post_init__(self) -> None:
        if not self.kinds:
            raise ConfigError("fuzz grammar needs at least one kind")
        if len(self.kind_weights) != len(self.kinds):
            raise ConfigError(
                "kind_weights must match kinds "
                f"({len(self.kind_weights)} vs {len(self.kinds)})"
            )
        if not self.models:
            raise ConfigError("fuzz grammar needs at least one model")


def _round(x: float, places: int = 4) -> float:
    """Quantize sampled floats so specs serialize compactly and stably."""
    return round(x, places)


def _tenants(rng: random.Random, g: FuzzGrammar) -> Tuple[ScenarioTenant, ...]:
    n = rng.randint(1, g.max_tenants)
    return tuple(
        ScenarioTenant(
            model=rng.choice(g.models),
            batch=rng.choice(g.batches),
            weight=_round(rng.uniform(0.5, 2.0), 2),
            priority=rng.choice((0.5, 1.0, 2.0)),
            slo_relative=rng.choice((3.0, 5.0, 8.0)),
        )
        for _ in range(n)
    )


def _churn(
    rng: random.Random, g: FuzzGrammar, duration_s: float
) -> Tuple[ScenarioChurn, ...]:
    """A valid churn script: arrivals, some with later departures."""
    n = rng.randint(1, g.max_churn_arrivals)
    events: List[ScenarioChurn] = []
    for i in range(n):
        # First tenant lands at t=0 so the cluster is never fully idle.
        at = 0.0 if i == 0 else _round(rng.uniform(0.0, 0.7 * duration_s), 6)
        name = f"t{i}"
        events.append(
            ScenarioChurn(
                time_s=at,
                action="arrive",
                name=name,
                model=rng.choice(g.models),
                batch=rng.choice(g.batches),
                num_mes=rng.randint(1, 2),
                num_ves=rng.randint(1, 2),
                weight=_round(rng.uniform(0.5, 1.5), 2),
                priority=rng.choice((0.5, 1.0, 2.0)),
            )
        )
        if rng.random() < g.p_depart:
            depart_at = _round(
                rng.uniform(at + 0.1 * duration_s, duration_s * 0.95), 6
            )
            if depart_at > at:
                events.append(
                    ScenarioChurn(
                        time_s=depart_at, action="depart", name=name
                    )
                )
    events.sort(key=lambda e: (e.time_s, e.action != "depart", e.name))
    return tuple(events)


def _pools(rng: random.Random) -> Tuple[ScenarioPool, ...]:
    n = rng.randint(1, 2)
    names = ("std", "edge")
    out = []
    for i in range(n):
        min_hosts = rng.randint(1, 2)
        max_hosts = min_hosts + rng.randint(0, 2)
        out.append(
            ScenarioPool(
                name=names[i],
                cores_per_host=rng.randint(1, 2),
                min_hosts=min_hosts,
                max_hosts=max_hosts,
                initial_hosts=rng.choice((None, min_hosts)),
            )
        )
    return tuple(out)


def _autoscaler(rng: random.Random, duration_s: float) -> ScenarioAutoscaler:
    policy = rng.choice(
        ("static", "threshold", "target-utilization", "slo-burn-rate")
    )
    interval = rng.choice((None, _round(duration_s / 4, 6)))
    return ScenarioAutoscaler(policy=policy, interval_s=interval)


def _virtualization(
    rng: random.Random, g: FuzzGrammar, pools: Tuple[ScenarioPool, ...]
) -> ScenarioVirtualization:
    cost = 0.0
    if rng.random() < g.p_hypercall_cost:
        cost = rng.choice((1e-5, 5e-5, 2e-4))
    pool_vfs = {}
    if pools and rng.random() < 0.5:
        pool_vfs = {pools[0].name: rng.randint(1, 4)}
    return ScenarioVirtualization(
        num_vfs=rng.randint(2, 8),
        pool_num_vfs=pool_vfs,
        hypercall_cost_s=cost,
    )


def _faults(
    rng: random.Random, g: FuzzGrammar, duration_s: float
) -> Tuple[ScenarioFault, ...]:
    out = []
    for _ in range(rng.randint(1, g.max_faults)):
        kind = rng.choice(
            ("host-crash", "vf-loss", "hypercall-spike", "burst-storm")
        )
        at = _round(rng.uniform(0.1 * duration_s, 0.8 * duration_s), 6)
        if kind in ("hypercall-spike", "burst-storm"):
            out.append(
                ScenarioFault(
                    kind=kind,
                    time_s=at,
                    duration_s=_round(
                        rng.uniform(0.1 * duration_s, 0.5 * duration_s), 6
                    ),
                    factor=_round(rng.uniform(1.5, 6.0), 2),
                )
            )
        elif kind == "vf-loss":
            out.append(
                ScenarioFault(kind=kind, time_s=at, count=rng.randint(1, 4))
            )
        else:
            out.append(ScenarioFault(kind=kind, time_s=at))
    return tuple(out)


def _llm_block(rng: random.Random) -> ScenarioLlm:
    batch_tokens = rng.choice((512, 1024, 2048))
    n = rng.randint(1, 3)
    tenants = tuple(
        ScenarioLlmTenant(
            name=f"llm{i}",
            prompt_tokens=rng.choice((64, 128, 256)),
            decode_tokens=rng.choice((16, 32, 64)),
            weight=_round(rng.uniform(0.5, 1.5), 2),
        )
        for i in range(n)
    )
    peak = max(t.prompt_tokens + t.decode_tokens for t in tenants)
    # A KV budget between "one request fits" and "plenty" keeps the
    # preemption machinery exercised without starving every run.
    m_total = rng.choice((max(2 * peak, 512), 2048, 8192))
    return ScenarioLlm(
        tenants=tenants,
        batch_tokens=batch_tokens,
        m_total=m_total,
        preemption_mode=rng.choice(("swap", "sacrifice")),
        victim_policy=rng.choice(("lifo", "fifo", "random")),
        # Explicit costs skip simulator calibration: the fuzzer's budget
        # goes to the serving engine, not to repeated llama builds.
        step_overhead_cycles=float(rng.choice((2000, 5000))),
        cycles_per_token=float(rng.choice((20, 40))),
    )


def generate_scenario(
    rng: random.Random, grammar: Optional[FuzzGrammar] = None, index: int = 0
) -> Scenario:
    """Sample one valid scenario from the grammar.

    Deterministic in the ``rng`` stream: the same ``random.Random``
    state always yields the same spec.  The result passes both
    construction-time shape checks and :meth:`Scenario.validate`.
    """
    g = grammar if grammar is not None else FuzzGrammar()
    kind = rng.choices(g.kinds, weights=g.kind_weights, k=1)[0]
    name = f"fuzz-{index:04d}"
    duration_s = _round(rng.uniform(*g.duration_range), 6)
    load = _round(rng.uniform(*g.load_range), 3)
    seed = rng.randrange(g.max_seed)
    scheme = rng.choice(g.schemes)
    arrival = rng.choice(g.arrivals)

    common = dict(
        name=name,
        description=f"fuzz grammar sample #{index}",
        scheme=scheme,
        seed=seed,
    )
    executor = (
        ScenarioExecutor(backend="serial")
        if rng.random() < g.p_executor
        else None
    )
    sweep = (
        SweepSpec(
            param="load",
            values=(load, _round(load * 1.5, 3)),
        )
        if rng.random() < g.p_sweep
        else None
    )

    if kind == "serving":
        return Scenario(
            kind="serving",
            tenants=_tenants(rng, g),
            target_requests=rng.randint(2, 5),
            executor=executor,
            **common,
        )
    if kind == "open_loop":
        return Scenario(
            kind="open_loop",
            tenants=_tenants(rng, g),
            arrival=arrival,
            load=load,
            duration_s=duration_s,
            drain=rng.random() < g.p_drain,
            executor=executor,
            sweep=sweep,
            **common,
        )
    if kind == "cluster":
        pools = _pools(rng) if rng.random() < g.p_pools else ()
        virtualization = (
            _virtualization(rng, g, pools)
            if rng.random() < g.p_virtualization
            else None
        )
        autoscaler = (
            _autoscaler(rng, duration_s)
            if rng.random() < g.p_autoscaler
            else None
        )
        faults = (
            _faults(rng, g, duration_s) if rng.random() < g.p_faults else ()
        )
        return Scenario(
            kind="cluster",
            churn=_churn(rng, g, duration_s),
            hosts=rng.randint(1, 3),
            cores_per_host=rng.randint(1, 2),
            arrival=arrival,
            load=load,
            duration_s=duration_s,
            pools=pools,
            autoscaler=autoscaler,
            virtualization=virtualization,
            faults=faults,
            executor=executor,
            **common,
        )
    if kind == "llm":
        return Scenario(
            kind="llm",
            llm=_llm_block(rng),
            arrival=arrival,
            load=load,
            duration_s=duration_s,
            drain=rng.random() < g.p_drain,
            executor=executor,
            sweep=sweep,
            **common,
        )
    raise ConfigError(f"fuzz grammar cannot generate kind {kind!r}")
