"""Metamorphic invariants checked over fuzzer-generated scenarios.

Each check states a property the engines must satisfy for *every* valid
scenario -- not a golden value, but a relation between runs or between
fields of one run:

- **round-trip**: YAML/JSON serialisation is lossless and
  digest-stable.
- **conservation**: requests cannot appear or vanish -- per tenant,
  ``attained <= completed <= offered``, drain runs complete everything
  offered, and LLM per-tenant counts sum to the headline counts.
- **determinism**: the same spec yields a bit-identical
  :class:`RunResult` on a repeated run, across
  ``REPRO_SIM_MEGABATCH=0/1``, across ``REPRO_SIM_FAST_PATH=0/1``
  (metrics-identical; the provenance flag legitimately differs), and
  across sweep worker counts.
- **monotonicity**: SLO attainment cannot *improve* when offered load
  doubles (open loop), and cannot *degrade* when the LLM KV budget
  doubles -- within a tolerance that absorbs re-drawn arrival noise.
- **resume**: an executor sweep checkpoint truncated at a random byte
  (a simulated SIGKILL mid-write) resumes to bit-identical results.
- **snapshot-restore**: a cluster run snapshotted at a random segment
  boundary and restored *in a fresh process* finishes with metrics
  bit-identical to the uninterrupted run.

Checks that need extra simulations are gated behind ``deep`` so a small
smoke budget stays fast; the harness samples deep scenarios evenly.
"""

from __future__ import annotations

import contextlib
import os
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.api.result import RunResult, canonical_digest
from repro.api.runner import run_scenario, sweep_scenario, sweep_scenario_report
from repro.api.scenario import Scenario

#: Invariant names, as reported in violations and the CLI summary.
INV_ROUNDTRIP = "roundtrip"
INV_CONSERVATION = "conservation"
INV_DETERMINISM = "determinism"
INV_MEGABATCH = "megabatch-differential"
INV_FAST_PATH = "fast-path-differential"
INV_WORKERS = "worker-differential"
INV_LOAD_MONOTONE = "load-monotonicity"
INV_KV_MONOTONE = "kv-monotonicity"
INV_RESUME = "resume-bit-equality"
INV_SNAPSHOT = "snapshot-restore"


@dataclass
class Violation:
    """One invariant broken by one scenario."""

    invariant: str
    scenario_name: str
    detail: str
    scenario: Optional[Scenario] = None

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.scenario_name}: {self.detail}"

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "invariant": self.invariant,
            "scenario": self.scenario_name,
            "detail": self.detail,
        }
        if self.scenario is not None:
            out["spec"] = self.scenario.to_dict()
        return out


@dataclass
class CheckOutcome:
    """What one scenario's pass over the catalog settled."""

    violations: List[Violation] = field(default_factory=list)
    checks_run: int = 0


@contextlib.contextmanager
def _env(name: str, value: Optional[str]):
    """Temporarily set (or clear, with None) one environment variable."""
    old = os.environ.get(name)
    if value is None:
        os.environ.pop(name, None)
    else:
        os.environ[name] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = old


def _metrics_digest(result: RunResult) -> str:
    """Digest of what the simulation *computed*, excluding provenance.

    The provenance block records how the run was dispatched (fast-path
    flag, executor backend); differential checks that legitimately vary
    those knobs compare this digest instead of the full one.
    """
    return canonical_digest(
        {"metrics": result.metrics, "metadata": result.metadata}
    )


# ----------------------------------------------------------------------
# Structural checks (no extra simulation)
# ----------------------------------------------------------------------
def check_roundtrip(scenario: Scenario) -> List[Violation]:
    """YAML and JSON round-trips are lossless and digest-stable."""
    out: List[Violation] = []
    for fmt, dump, load in (
        ("yaml", scenario.to_yaml, Scenario.from_yaml),
        ("json", scenario.to_json, Scenario.from_json),
    ):
        try:
            text = dump()
            back = load(text)
        except Exception as exc:  # pragma: no cover - a bug if reached
            out.append(Violation(
                INV_ROUNDTRIP, scenario.name,
                f"{fmt} round-trip raised {type(exc).__name__}: {exc}",
                scenario,
            ))
            continue
        if back != scenario:
            out.append(Violation(
                INV_ROUNDTRIP, scenario.name,
                f"{fmt} round-trip changed the spec", scenario,
            ))
        elif back.digest() != scenario.digest():
            out.append(Violation(
                INV_ROUNDTRIP, scenario.name,
                f"{fmt} round-trip changed the digest", scenario,
            ))
    return out


def check_conservation(
    scenario: Scenario, result: RunResult
) -> List[Violation]:
    """Requests can be completed, missed or rejected -- never lost."""
    out: List[Violation] = []

    def bad(detail: str) -> None:
        out.append(
            Violation(INV_CONSERVATION, scenario.name, detail, scenario)
        )

    if scenario.kind in ("open_loop", "cluster"):
        for t in result.metrics.get("tenants", ()):
            offered, completed = t["offered"], t["completed"]
            attained = t["attained"]
            if not 0 <= attained <= completed <= offered:
                bad(
                    f"tenant {t['name']!r}: attained={attained} "
                    f"completed={completed} offered={offered}"
                )
            if offered > 0:
                expect = attained / offered
                if abs(t["attainment"] - expect) > 1e-9:
                    bad(
                        f"tenant {t['name']!r}: attainment="
                        f"{t['attainment']} != attained/offered={expect}"
                    )
        if scenario.kind == "open_loop" and scenario.drain:
            for t in result.metrics.get("tenants", ()):
                if t["completed"] != t["offered"]:
                    bad(
                        f"drain leak: tenant {t['name']!r} offered="
                        f"{t['offered']} completed={t['completed']}"
                    )
        if scenario.kind == "cluster":
            rate = result.metrics.get("admission_rate", 0.0)
            if not 0.0 <= rate <= 1.0:
                bad(f"admission_rate {rate} outside [0, 1]")
    elif scenario.kind == "llm":
        headline = result.metrics["requests"]
        tenants = result.metrics["tenants"]
        arrived = sum(t["arrived"] for t in tenants.values())
        completed = sum(t["completed"] for t in tenants.values())
        if arrived != headline["arrived"]:
            bad(
                f"per-tenant arrived sum {arrived} != "
                f"headline {headline['arrived']}"
            )
        if completed != headline["completed"]:
            bad(
                f"per-tenant completed sum {completed} != "
                f"headline {headline['completed']}"
            )
        if headline["completed"] > headline["arrived"]:
            bad(
                f"completed {headline['completed']} > "
                f"arrived {headline['arrived']}"
            )
        if scenario.drain and headline["completed"] != headline["arrived"]:
            bad(
                f"drain leak: arrived={headline['arrived']} "
                f"completed={headline['completed']}"
            )
    elif scenario.kind == "serving":
        target = result.metadata.get("target_requests")
        for t in result.metrics.get("tenants", ()):
            if t["completed_requests"] < target:
                bad(
                    f"tenant {t['name']!r} completed "
                    f"{t['completed_requests']} < target {target}"
                )
    return out


# ----------------------------------------------------------------------
# Differential checks (extra simulations)
# ----------------------------------------------------------------------
def check_determinism(
    scenario: Scenario,
    result: RunResult,
    run: Callable[[Scenario], RunResult] = run_scenario,
) -> List[Violation]:
    """Same spec, same pipeline -> bit-identical result."""
    again = run(scenario)
    if canonical_digest(again.to_dict()) != canonical_digest(result.to_dict()):
        return [Violation(
            INV_DETERMINISM, scenario.name,
            "repeated run produced a different RunResult digest", scenario,
        )]
    return []


def check_megabatch(
    scenario: Scenario, result: RunResult
) -> List[Violation]:
    """REPRO_SIM_MEGABATCH=0 and =1 agree bit for bit.

    Cluster scenarios exercise the toggle through their host-segment
    fan-out on a plain run; other kinds go through a 2-point
    single-worker sweep so the sweep chunking path is the thing under
    test.
    """
    out: List[Violation] = []
    if scenario.kind == "cluster":
        digests = []
        for flag in ("0", "1"):
            with _env("REPRO_SIM_MEGABATCH", flag):
                digests.append(_metrics_digest(run_scenario(scenario)))
        if digests[0] != digests[1]:
            out.append(Violation(
                INV_MEGABATCH, scenario.name,
                "cluster run differs between REPRO_SIM_MEGABATCH=0 and =1",
                scenario,
            ))
        return out
    values = [scenario.load, round(scenario.load * 1.5, 4)]
    digests = []
    base = scenario.replaced(executor=None, sweep=None)
    for flag in ("0", "1"):
        with _env("REPRO_SIM_MEGABATCH", flag):
            results = sweep_scenario(
                base, param="load", values=values, max_workers=1
            )
            digests.append([_metrics_digest(r) for r in results])
    if digests[0] != digests[1]:
        out.append(Violation(
            INV_MEGABATCH, scenario.name,
            "sweep differs between REPRO_SIM_MEGABATCH=0 and =1", scenario,
        ))
    return out


def check_fast_path(
    scenario: Scenario, result: RunResult
) -> List[Violation]:
    """The optimized simulator path computes what the plain path does."""
    with _env("REPRO_SIM_FAST_PATH", "0"):
        slow = run_scenario(scenario)
    if _metrics_digest(slow) != _metrics_digest(result):
        return [Violation(
            INV_FAST_PATH, scenario.name,
            "metrics differ between REPRO_SIM_FAST_PATH=0 and the default",
            scenario,
        )]
    return []


def check_workers(scenario: Scenario) -> List[Violation]:
    """A sweep's results do not depend on the worker count."""
    base = scenario.replaced(executor=None, sweep=None)
    values = [scenario.load, round(scenario.load * 1.25, 4)]
    serial = sweep_scenario(base, param="load", values=values, max_workers=1)
    pooled = sweep_scenario(base, param="load", values=values, max_workers=2)
    if [canonical_digest(r.to_dict()) for r in serial] != [
        canonical_digest(r.to_dict()) for r in pooled
    ]:
        return [Violation(
            INV_WORKERS, scenario.name,
            "sweep results differ between max_workers=1 and =2", scenario,
        )]
    return []


def _weighted_attainment(result: RunResult, kind: str) -> Optional[float]:
    """Attained / offered over every tenant (None when nothing offered)."""
    if kind == "llm":
        tenants = result.metrics["tenants"].values()
        completed = sum(t["completed"] for t in tenants)
        if completed == 0:
            return None
        attained = sum(
            t["ttft_attainment"] * t["completed"] for t in tenants
        )
        return attained / completed
    offered = sum(t["offered"] for t in result.metrics.get("tenants", ()))
    if offered == 0:
        return None
    attained = sum(t["attained"] for t in result.metrics.get("tenants", ()))
    return attained / offered


def check_load_monotonicity(
    scenario: Scenario, result: RunResult, tolerance: float
) -> List[Violation]:
    """Doubling offered load cannot *raise* SLO attainment.

    The doubled run draws fresh arrivals, so the comparison carries
    sampling noise; ``tolerance`` absorbs it.  Only open-loop scenarios
    are checked -- cluster admission control and autoscalers may
    legitimately reshape the outcome under pressure.
    """
    if scenario.kind != "open_loop":
        return []
    base = _weighted_attainment(result, scenario.kind)
    if base is None:
        return []
    doubled = run_scenario(
        scenario.replaced(load=round(scenario.load * 2, 6))
    )
    high = _weighted_attainment(doubled, scenario.kind)
    if high is not None and high > base + tolerance:
        return [Violation(
            INV_LOAD_MONOTONE, scenario.name,
            f"attainment rose from {base:.4f} to {high:.4f} "
            f"when load doubled (tolerance {tolerance})", scenario,
        )]
    return []


def check_kv_monotonicity(
    scenario: Scenario, result: RunResult, tolerance: float
) -> List[Violation]:
    """Doubling the LLM KV budget cannot *hurt* TTFT attainment.

    Arrivals are independent of ``m_total`` (capacity pressure comes
    from ``batch_tokens``), so the two runs see identical offered
    streams -- the relation is tight up to preemption-order effects
    absorbed by ``tolerance``.
    """
    if scenario.kind != "llm":
        return []
    base = _weighted_attainment(result, "llm")
    if base is None:
        return []
    block = scenario.llm
    import dataclasses

    bigger = dataclasses.replace(block, m_total=block.m_total * 2)
    roomy = run_scenario(scenario.replaced(llm=bigger))
    high = _weighted_attainment(roomy, "llm")
    if high is not None and high < base - tolerance:
        return [Violation(
            INV_KV_MONOTONE, scenario.name,
            f"TTFT attainment fell from {base:.4f} to {high:.4f} "
            f"when m_total doubled (tolerance {tolerance})", scenario,
        )]
    return []


def check_resume(
    scenario: Scenario, rng: random.Random, workdir: Optional[Path] = None
) -> List[Violation]:
    """A journal truncated at a random byte resumes bit-identically.

    Simulates SIGKILL mid-``fwrite``: run a 2-point sweep journalled to
    disk, chop the journal at a random offset (possibly mid-line), then
    resume -- the merged results must equal an uninterrupted run's.
    """
    base = scenario.replaced(executor=None, sweep=None)
    values = [scenario.load, round(scenario.load * 1.25, 4)]
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        clean_dir = Path(tmp) / "clean"
        torn_dir = Path(tmp) / "torn"
        clean = sweep_scenario_report(
            base, param="load", values=values, executor="serial",
            checkpoint=clean_dir,
        )
        sweep_scenario_report(
            base, param="load", values=values, executor="serial",
            checkpoint=torn_dir,
        )
        journal = torn_dir / "journal.jsonl"
        data = journal.read_bytes()
        if data:
            cut = rng.randrange(0, len(data))
            journal.write_bytes(data[:cut])
        resumed = sweep_scenario_report(
            base, param="load", values=values, executor="serial",
            checkpoint=torn_dir, resume=True,
        )
    clean_digests = [canonical_digest(r.to_dict()) for r in clean.results]
    resumed_digests = [canonical_digest(r.to_dict()) for r in resumed.results]
    if clean_digests != resumed_digests:
        return [Violation(
            INV_RESUME, scenario.name,
            f"resume after truncation diverged "
            f"(resumed {resumed.resumed}/{resumed.total} shards)", scenario,
        )]
    return []


def _finish_from_checkpoint(
    scenario_dict: Dict[str, object], checkpoint_dict: Dict[str, object]
) -> str:
    """Restore a cluster checkpoint and finish the run (child process).

    Module-level so the ``spawn`` context can import it by name; the
    fresh interpreter proves no hidden process state (module-global
    counters, RNG, caches) leaks into the checkpoint contract.
    """
    from repro.api.runner import _cluster_run_result, cluster_inputs
    from repro.traffic.cluster_sim import ClusterSimulation
    from repro.traffic.stepper import ClusterCheckpoint

    scenario = Scenario.from_dict(scenario_dict)
    events, cfg = cluster_inputs(scenario)
    sim = ClusterSimulation.restore(
        ClusterCheckpoint.from_dict(checkpoint_dict), events, cfg
    )
    result = sim.run()
    return _metrics_digest(_cluster_run_result(scenario, cfg, result))


def check_snapshot_restore(
    scenario: Scenario, result: RunResult, rng: random.Random
) -> List[Violation]:
    """A mid-run snapshot restores bit-identically across processes.

    Steps a cluster simulation to a random interior segment boundary,
    snapshots, then restores and completes the run in a *fresh spawned
    interpreter*; its metrics digest must match the uninterrupted
    run's.
    """
    if scenario.kind != "cluster":
        return []
    import multiprocessing

    from repro.api.runner import cluster_inputs
    from repro.traffic.cluster_sim import ClusterSimulation

    events, cfg = cluster_inputs(scenario)
    sim = ClusterSimulation(events, cfg)
    if sim.config_digest is None or sim.total_segments < 2:
        return []
    cut = rng.randrange(1, sim.total_segments)
    while sim.segments_completed < cut and not sim.done:
        sim.step_segment()
    checkpoint = sim.snapshot().to_dict()
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(1) as pool:
        digest = pool.apply(
            _finish_from_checkpoint, (scenario.to_dict(), checkpoint)
        )
    if digest != _metrics_digest(result):
        return [Violation(
            INV_SNAPSHOT, scenario.name,
            f"run restored at segment {cut}/{sim.total_segments} in a "
            "fresh process diverged from the uninterrupted run", scenario,
        )]
    return []


# ----------------------------------------------------------------------
# Catalog driver
# ----------------------------------------------------------------------
def check_scenario(
    scenario: Scenario,
    rng: random.Random,
    tolerance: float = 0.1,
    deep: bool = False,
    workdir: Optional[Path] = None,
    run: Callable[[Scenario], RunResult] = run_scenario,
) -> CheckOutcome:
    """Run the invariant catalog over one scenario.

    Cheap checks (round-trip, conservation, determinism) always run;
    ``deep`` adds the differential and metamorphic ones (each costs
    extra simulations).  ``run`` is injectable for tests.
    """
    outcome = CheckOutcome()

    def record(violations: List[Violation]) -> None:
        outcome.checks_run += 1
        outcome.violations.extend(violations)

    record(check_roundtrip(scenario))
    try:
        result = run(scenario)
    except Exception as exc:
        outcome.checks_run += 1
        outcome.violations.append(Violation(
            INV_CONSERVATION, scenario.name,
            f"run_scenario raised {type(exc).__name__}: {exc}", scenario,
        ))
        return outcome
    record(check_conservation(scenario, result))
    record(check_determinism(scenario, result, run))
    if deep:
        record(check_megabatch(scenario, result))
        record(check_fast_path(scenario, result))
        record(check_load_monotonicity(scenario, result, tolerance))
        record(check_kv_monotonicity(scenario, result, tolerance))
        if scenario.kind in ("open_loop", "llm"):
            record(check_workers(scenario))
            record(check_resume(scenario, rng, workdir))
        if scenario.kind == "cluster":
            record(check_snapshot_restore(scenario, result, rng))
    return outcome
