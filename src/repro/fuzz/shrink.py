"""Greedy scenario shrinker: minimize a failing spec, keep it failing.

Given a scenario and a predicate ``fails(candidate) -> bool``, the
shrinker repeatedly tries structural simplifications -- drop optional
blocks, drop tenants and churn events, reset the scheme and arrival to
their plainest values, halve the duration -- keeping each change only if
the candidate still fails.  It loops to a fixed point, so a shrunk repro
is *1-minimal* with respect to the candidate moves: undoing any single
simplification makes the failure disappear or was never tried because
the scenario no longer has that structure.

The output is meant for humans: :func:`write_repro` serialises the
shrunk spec to a small YAML whose header comment names the violated
invariant, ready to replay with ``repro run``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Callable, Iterator, List

from repro.api.scenario import Scenario

Predicate = Callable[[Scenario], bool]


def _safe_fails(fails: Predicate, candidate: Scenario) -> bool:
    """A candidate that cannot even run does not reproduce the failure."""
    try:
        return bool(fails(candidate))
    except Exception:
        return False


def _without_tenant(scenario: Scenario, idx: int) -> Scenario:
    tenants = scenario.tenants[:idx] + scenario.tenants[idx + 1:]
    return scenario.replaced(tenants=tenants)


def _without_churn(scenario: Scenario, name: str) -> Scenario:
    churn = tuple(e for e in scenario.churn if e.name != name)
    return scenario.replaced(churn=churn)


def _without_fault(scenario: Scenario, idx: int) -> Scenario:
    faults = scenario.faults[:idx] + scenario.faults[idx + 1:]
    return scenario.replaced(faults=faults)


def _without_llm_tenant(scenario: Scenario, idx: int) -> Scenario:
    block = scenario.llm
    tenants = block.tenants[:idx] + block.tenants[idx + 1:]
    return scenario.replaced(llm=dataclasses.replace(block, tenants=tenants))


def _candidates(scenario: Scenario) -> Iterator[Scenario]:
    """Simplification moves, cheapest structural cuts first."""
    # Optional blocks carry whole subsystems; dropping one removes the
    # most machinery per move, so try those before element-wise cuts.
    for blk in ("sweep", "executor", "autoscaler", "virtualization"):
        if getattr(scenario, blk) is not None:
            yield scenario.replaced(**{blk: None})
    if scenario.faults:
        for i in range(len(scenario.faults)):
            yield _without_fault(scenario, i)
    if scenario.pools:
        yield scenario.replaced(pools=())
    if len(scenario.tenants) > 1:
        for i in range(len(scenario.tenants)):
            yield _without_tenant(scenario, i)
    arrivals = {e.name for e in scenario.churn if e.action == "arrive"}
    if len(arrivals) > 1:
        for name in sorted(arrivals):
            yield _without_churn(scenario, name)
    departures = [e for e in scenario.churn if e.action == "depart"]
    if departures:
        churn = tuple(e for e in scenario.churn if e.action != "depart")
        yield scenario.replaced(churn=churn)
    if scenario.llm is not None and len(scenario.llm.tenants) > 1:
        for i in range(len(scenario.llm.tenants)):
            yield _without_llm_tenant(scenario, i)
    # Value resets: plainer names shrink the search space for a human.
    if scenario.scheme != "neu10":
        yield scenario.replaced(scheme="neu10")
    if scenario.kind != "serving" and scenario.arrival != "poisson":
        yield scenario.replaced(arrival="poisson")
    if scenario.seed != 0:
        yield scenario.replaced(seed=0)
    if scenario.kind == "cluster" and scenario.hosts > 1:
        yield scenario.replaced(hosts=scenario.hosts - 1)
    if scenario.kind != "serving" and scenario.duration_s > 2e-4:
        yield scenario.replaced(
            duration_s=round(max(scenario.duration_s / 2, 1e-4), 6)
        )


def shrink_scenario(
    scenario: Scenario, fails: Predicate, max_rounds: int = 32
) -> Scenario:
    """Greedily minimize ``scenario`` while ``fails`` stays true.

    ``fails(scenario)`` should already be true; if it is not, the input
    comes back unchanged (nothing to preserve).  ``max_rounds`` bounds
    the fixed-point loop -- each round either commits at least one
    simplification or terminates, so the bound is a safety net, not a
    tuning knob.
    """
    if not _safe_fails(fails, scenario):
        return scenario
    current = scenario
    for _ in range(max_rounds):
        for candidate in _candidates(current):
            if _safe_fails(fails, candidate):
                current = candidate
                break
        else:
            break
    return current


def repro_yaml(scenario: Scenario, header_lines: List[str]) -> str:
    """The shrunk spec as YAML with a ``#``-comment header."""
    header = "".join(f"# {line}\n" for line in header_lines)
    return header + scenario.to_yaml()


def write_repro(scenario: Scenario, violation, out_dir: Path) -> Path:
    """Persist a replayable repro YAML; returns its path."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"repro-{violation.invariant}-{scenario.name}.yaml"
    path.write_text(repro_yaml(scenario, [
        f"fuzz repro: violated invariant {violation.invariant!r}",
        f"detail: {violation.detail}",
        "replay: repro run <this file>",
    ]))
    return path
