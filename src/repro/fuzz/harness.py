"""The fuzz loop: generate scenarios, check invariants, shrink failures.

:func:`fuzz_run` drives ``budget`` iterations.  Each iteration derives a
fresh :class:`random.Random` from ``spawn_rng(seed, "fuzz", i)``, samples
one scenario from the grammar, and runs the invariant catalog over it.
Every ``deep_every``-th scenario also gets the expensive differential
checks (megabatch/fast-path toggles, monotonicity, resume after a torn
journal).  When a scenario breaks an invariant and shrinking is on, the
greedy shrinker minimizes it and the repro YAML lands in ``out_dir``.

The loop is restartable by construction: iteration ``i`` depends only on
``(seed, i)``, never on previous iterations, so ``--seed S --budget N``
always revisits the same scenarios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional

from repro.config import spawn_rng
from repro.fuzz.grammar import FuzzGrammar, generate_scenario
from repro.fuzz.invariants import CheckOutcome, Violation, check_scenario
from repro.fuzz.shrink import shrink_scenario, write_repro


@dataclass(frozen=True)
class FuzzConfig:
    """Knobs of one fuzz campaign."""

    seed: int = 0
    budget: int = 25
    grammar: FuzzGrammar = field(default_factory=FuzzGrammar)
    tolerance: float = 0.1
    #: Every Nth scenario gets the expensive differential checks.
    deep_every: int = 5
    shrink: bool = False
    #: Where shrunk repro YAMLs are written (None disables writing).
    out_dir: Optional[Path] = None


@dataclass
class FuzzReport:
    """What a campaign covered and what it broke."""

    seed: int
    budget: int
    scenarios: int = 0
    checks_run: int = 0
    kind_counts: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)
    repro_paths: List[str] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "scenarios": self.scenarios,
            "checks_run": self.checks_run,
            "kind_counts": dict(sorted(self.kind_counts.items())),
            "ok": self.ok,
            "violations": [v.to_dict() for v in self.violations],
            "repro_paths": list(self.repro_paths),
            "elapsed_s": round(self.elapsed_s, 3),
        }


def _shrink_and_write(
    report: FuzzReport,
    cfg: FuzzConfig,
    violation: Violation,
    checker: Callable[..., CheckOutcome],
) -> None:
    """Minimize the violating scenario and persist a repro YAML."""
    scenario = violation.scenario
    if scenario is None:
        return
    target = violation.invariant

    def still_fails(candidate) -> bool:
        rng = spawn_rng(cfg.seed, "shrink", candidate.name)
        outcome = checker(
            candidate, rng, tolerance=cfg.tolerance, deep=True
        )
        return any(v.invariant == target for v in outcome.violations)

    small = shrink_scenario(scenario, still_fails)
    violation.scenario = small
    if cfg.out_dir is not None:
        path = write_repro(small, violation, cfg.out_dir)
        report.repro_paths.append(str(path))


def fuzz_run(
    cfg: FuzzConfig,
    log: Optional[Callable[[str], None]] = None,
    checker: Callable[..., CheckOutcome] = check_scenario,
) -> FuzzReport:
    """Run one fuzz campaign and return its report.

    ``checker`` is injectable so tests can plant deliberate bugs (a
    mutated engine) and assert the loop catches and shrinks them.
    """
    say = log if log is not None else (lambda _msg: None)
    report = FuzzReport(seed=cfg.seed, budget=cfg.budget)
    start = time.perf_counter()
    for i in range(cfg.budget):
        rng = spawn_rng(cfg.seed, "fuzz", i)
        scenario = generate_scenario(rng, cfg.grammar, index=i)
        report.scenarios += 1
        report.kind_counts[scenario.kind] = (
            report.kind_counts.get(scenario.kind, 0) + 1
        )
        deep = cfg.deep_every > 0 and i % cfg.deep_every == 0
        outcome = checker(
            scenario, rng, tolerance=cfg.tolerance, deep=deep
        )
        report.checks_run += outcome.checks_run
        for violation in outcome.violations:
            say(f"FAIL {violation}")
            if cfg.shrink:
                _shrink_and_write(report, cfg, violation, checker)
        report.violations.extend(outcome.violations)
    report.elapsed_s = time.perf_counter() - start
    say(
        f"fuzz: {report.scenarios} scenarios, {report.checks_run} checks, "
        f"{len(report.violations)} violation(s) in {report.elapsed_s:.1f}s"
    )
    return report
