"""``repro.fuzz`` -- grammar fuzzing with metamorphic invariants.

Where the test suite pins known answers, the fuzzer explores: a seeded
grammar (:mod:`repro.fuzz.grammar`) samples random valid scenarios
across every kind, an invariant catalog (:mod:`repro.fuzz.invariants`)
checks properties that must hold for *any* spec -- request conservation,
determinism across engine toggles and worker counts, monotonicity in
load and KV budget, bit-equal resume from torn checkpoints -- and a
greedy shrinker (:mod:`repro.fuzz.shrink`) minimizes anything that
breaks into a replayable repro YAML.

Typical use::

    from repro.fuzz import FuzzConfig, fuzz_run

    report = fuzz_run(FuzzConfig(seed=0, budget=25))
    assert report.ok, report.to_dict()

or, from the CLI: ``repro fuzz --seed 0 --budget 25 --shrink``.
"""

from repro.fuzz.grammar import FuzzGrammar, generate_scenario
from repro.fuzz.harness import FuzzConfig, FuzzReport, fuzz_run
from repro.fuzz.invariants import (
    CheckOutcome,
    Violation,
    check_conservation,
    check_determinism,
    check_fast_path,
    check_kv_monotonicity,
    check_load_monotonicity,
    check_megabatch,
    check_resume,
    check_roundtrip,
    check_scenario,
    check_workers,
)
from repro.fuzz.shrink import repro_yaml, shrink_scenario, write_repro

__all__ = [
    "CheckOutcome",
    "FuzzConfig",
    "FuzzGrammar",
    "FuzzReport",
    "Violation",
    "check_conservation",
    "check_determinism",
    "check_fast_path",
    "check_kv_monotonicity",
    "check_load_monotonicity",
    "check_megabatch",
    "check_resume",
    "check_roundtrip",
    "check_scenario",
    "check_workers",
    "fuzz_run",
    "generate_scenario",
    "repro_yaml",
    "shrink_scenario",
    "write_repro",
]
