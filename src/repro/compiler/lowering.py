"""Graph lowering: DNN graphs -> executable descriptors.

Two backends mirror the paper's compilers:

- :func:`lower_graph_vliw` -- the conventional VLIW backend.  Each ME
  operator is compiled for a *fixed* number of MEs (baked into the
  binary); the whole set behaves as one indivisible unit at runtime
  (paper SectionII-C, Fig. 9).
- :func:`lower_graph_neuisa` -- the NeuISA backend.  Each operator is
  partitioned into up to ``nx`` uTOps (``nx`` = physical ME count, so a
  program can scale from one ME to all of them without recompilation),
  organised in uTOp groups; a reduction split appends a VE-combine group.

Both produce :class:`CompiledGraph` -- the unit the cycle-level simulator
executes.  For instruction-level studies (Fig. 6 and ISA tests) the
module also lowers small matmuls to real instruction sequences.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.compiler.cost_model import CostModel, OpCost
from repro.compiler.graph import Graph
from repro.compiler.operators import ElementwiseKind, MatMul, Operator
from repro.compiler.tiling import TilingPlan, tile_operator, vliw_me_count
from repro.config import NpuCoreConfig
from repro.errors import CompileError
from repro.isa.control import ControlOp, ControlOpcode
from repro.isa.program import NeuIsaProgram
from repro.isa.utop import (
    ExecutionTable,
    UTopGroup,
    UTopInstruction,
    make_me_utop,
    make_ve_utop,
)
from repro.isa.vliw import (
    MatrixOp,
    MatrixOpcode,
    VectorOp,
    VectorOpcode,
    VliwInstruction,
    VliwProgram,
)

_snippet_counter = itertools.count(0x1000, 0x40)


def _fresh_snippet_addr() -> int:
    return next(_snippet_counter)


@dataclass
class CompiledOp:
    """One operator lowered for execution.

    For NeuISA ops, ``groups`` carries the uTOp groups.  For VLIW ops the
    coupling metadata describes the indivisible engine block the binary
    demands: ``coupled_me_count`` MEs for ``me_cycles_per_engine`` cycles
    each, with ``ve_cycles`` of vector work pipelined alongside.
    """

    name: str
    op_index: int
    isa: str  # "vliw" | "neuisa"
    is_me_op: bool
    cost: OpCost
    groups: List[UTopGroup] = field(default_factory=list)
    coupled_me_count: int = 0
    me_cycles_per_engine: float = 0.0
    ve_cycles: float = 0.0
    hbm_bytes: float = 0.0
    reduction_split: bool = False
    ve_parallelism: int = 1

    @property
    def num_utops(self) -> int:
        return sum(len(g.utops) for g in self.groups)

    @property
    def total_me_cycles(self) -> float:
        if self.isa == "vliw":
            return self.coupled_me_count * self.me_cycles_per_engine
        return sum(g.total_me_cycles for g in self.groups)

    @property
    def total_ve_cycles(self) -> float:
        if self.isa == "vliw":
            return self.ve_cycles
        return sum(g.total_ve_cycles for g in self.groups)


@dataclass
class CompiledGraph:
    """A fully lowered DNN program, executed per inference request."""

    name: str
    isa: str
    ops: List[CompiledOp] = field(default_factory=list)
    core: Optional[NpuCoreConfig] = None

    def __len__(self) -> int:
        return len(self.ops)

    @property
    def total_me_cycles(self) -> float:
        return sum(op.total_me_cycles for op in self.ops)

    @property
    def total_ve_cycles(self) -> float:
        return sum(op.total_ve_cycles for op in self.ops)

    @property
    def total_hbm_bytes(self) -> float:
        return sum(op.hbm_bytes for op in self.ops)

    def solo_lower_bound_cycles(self, num_mes: int, num_ves: int) -> float:
        """Loose lower bound on one request's runtime: per-op critical
        path with perfectly parallel engines.  Used for sanity checks."""
        total = 0.0
        for op in self.ops:
            me = op.total_me_cycles / max(1, num_mes)
            ve = op.total_ve_cycles / max(1, num_ves)
            total += max(me, ve)
        return total


# ----------------------------------------------------------------------
# VLIW backend
# ----------------------------------------------------------------------
def lower_graph_vliw(
    graph: Graph,
    core: NpuCoreConfig,
    num_mes: int,
    num_ves: int,
    batch_hint: int = 1,
) -> CompiledGraph:
    """Compile for a fixed ``num_mes`` x ``num_ves`` engine allocation.

    The returned ops are *coupled*: at runtime each ME op needs exactly
    ``coupled_me_count`` MEs simultaneously -- it can neither shrink nor
    grow (the VLIW limitation Neu10 removes).
    """
    if num_mes < 1 or num_ves < 1:
        raise CompileError("VLIW lowering needs at least 1 ME and 1 VE")
    model = CostModel(core)
    compiled = CompiledGraph(name=graph.name, isa="vliw", core=core)
    for idx, node in enumerate(graph.topo_order()):
        cost = model.cost(node.op)
        if node.op.is_me_op:
            coupled = vliw_me_count(cost, num_mes)
            compiled.ops.append(
                CompiledOp(
                    name=node.name,
                    op_index=idx,
                    isa="vliw",
                    is_me_op=True,
                    cost=cost,
                    coupled_me_count=coupled,
                    me_cycles_per_engine=cost.me_cycles / max(1, coupled),
                    ve_cycles=cost.ve_cycles,
                    hbm_bytes=cost.hbm_bytes,
                )
            )
        else:
            compiled.ops.append(
                CompiledOp(
                    name=node.name,
                    op_index=idx,
                    isa="vliw",
                    is_me_op=False,
                    cost=cost,
                    coupled_me_count=0,
                    me_cycles_per_engine=0.0,
                    ve_cycles=cost.ve_cycles,
                    hbm_bytes=cost.hbm_bytes,
                    ve_parallelism=max(1, min(num_ves, cost.parallel_tiles)),
                )
            )
    return compiled


# ----------------------------------------------------------------------
# NeuISA backend
# ----------------------------------------------------------------------
def lower_graph_neuisa(
    graph: Graph,
    core: NpuCoreConfig,
    nx: Optional[int] = None,
    batch_hint: int = 1,
) -> CompiledGraph:
    """Compile to uTOp groups for a core with ``nx`` MEs (defaults to the
    physical count, letting the program scale to every ME at runtime)."""
    nx = core.num_mes if nx is None else nx
    if nx < 1:
        raise CompileError("NeuISA lowering needs nx >= 1")
    model = CostModel(core)
    compiled = CompiledGraph(name=graph.name, isa="neuisa", core=core)
    for idx, node in enumerate(graph.topo_order()):
        cost = model.cost(node.op)
        plan = tile_operator(node.op, cost, nx, core, batch_hint=batch_hint)
        groups = _plan_to_groups(node.name, node.op, plan, core)
        compiled.ops.append(
            CompiledOp(
                name=node.name,
                op_index=idx,
                isa="neuisa",
                is_me_op=node.op.is_me_op,
                cost=cost,
                groups=groups,
                hbm_bytes=cost.hbm_bytes,
                ve_cycles=cost.ve_cycles,
                reduction_split=plan.reduction_split,
                ve_parallelism=plan.ve_parallelism,
            )
        )
    return compiled


def _plan_to_groups(
    op_name: str, op: Operator, plan: TilingPlan, core: NpuCoreConfig
) -> List[UTopGroup]:
    groups: List[UTopGroup] = []
    if op.is_me_op:
        # Tiles of the same operator share one code snippet (paper:
        # "NeuISA minimizes code inflation by sharing the same code
        # snippet among uTOps").
        shared_addr = _fresh_snippet_addr()
        me_utops = [
            make_me_utop(
                snippet_addr=shared_addr,
                me_cycles=tile.me_cycles,
                ve_cycles=tile.ve_cycles,
                hbm_bytes=tile.hbm_bytes,
                sram_bytes=tile.sram_bytes,
                label=f"{op_name}.tile{i}",
            )
            for i, tile in enumerate(plan.tiles)
        ]
        groups.append(UTopGroup(me_utops=me_utops, label=op_name))
        if plan.combine is not None:
            combine_utop = make_ve_utop(
                snippet_addr=_fresh_snippet_addr(),
                ve_cycles=plan.combine.ve_cycles,
                hbm_bytes=plan.combine.hbm_bytes,
                sram_bytes=plan.combine.sram_bytes,
                parallelism=core.num_ves,
                label=f"{op_name}.combine",
            )
            groups.append(UTopGroup(ve_utop=combine_utop, label=f"{op_name}.combine"))
    else:
        tile = plan.tiles[0]
        ve_utop = make_ve_utop(
            snippet_addr=_fresh_snippet_addr(),
            ve_cycles=tile.ve_cycles,
            hbm_bytes=tile.hbm_bytes,
            sram_bytes=tile.sram_bytes,
            parallelism=max(1, min(core.num_ves, plan.ve_parallelism)),
            label=op_name,
        )
        groups.append(UTopGroup(ve_utop=ve_utop, label=op_name))
    return groups


# ----------------------------------------------------------------------
# Instruction-level lowering for small matmuls (Fig. 6 / ISA studies)
# ----------------------------------------------------------------------
def lower_matmul_instructions_vliw(
    matmul: MatMul, num_mes: int, num_ves: int, pops_per_tile: int = 16
) -> VliwProgram:
    """Lower a small fused MatMul(+activation) to actual VLIW words.

    The emitted pattern reproduces paper Fig. 6: each instruction pops an
    8x128 output vector from every coupled ME (8-cycle latency), and the
    following instruction post-processes the popped vectors on the VEs
    (1 cycle) -- leaving VEs idle most of the time.
    """
    if num_mes < 1 or num_ves < 1:
        raise CompileError("need at least one ME and one VE")
    program = VliwProgram(
        instructions=[], num_mes_used=num_mes, num_ves_used=num_ves,
        name=f"{matmul.name}-vliw",
    )
    activation = (
        VectorOpcode.RELU
        if ElementwiseKind.RELU in matmul.epilogue
        else VectorOpcode.COPY
    )
    reg = 0
    for _ in range(pops_per_tile):
        pops = tuple(
            MatrixOp(MatrixOpcode.POP, engine=e, dst=reg + e) for e in range(num_mes)
        )
        program.append(
            VliwInstruction.build(
                me_ops=pops,
                num_me_slots=num_mes,
                num_ve_slots=num_ves,
            )
        )
        post = tuple(
            VectorOp(activation, engine=v, dst=reg + v, src_a=reg + v)
            for v in range(min(num_ves, num_mes))
        )
        program.append(
            VliwInstruction.build(
                ve_ops=post,
                num_me_slots=num_mes,
                num_ve_slots=num_ves,
            )
        )
        reg = (reg + num_mes) % 64
    return program


def lower_matmul_instructions_neuisa(
    matmul: MatMul, nx: int, ny: int, pops_per_tile: int = 16
) -> NeuIsaProgram:
    """Lower the same fused MatMul to a NeuISA program: one ME uTOp per
    tile, all sharing a single code snippet (paper Figs. 8/13)."""
    if nx < 1 or ny < 1:
        raise CompileError("need at least one ME and one VE")
    activation = (
        VectorOpcode.RELU
        if ElementwiseKind.RELU in matmul.epilogue
        else VectorOpcode.COPY
    )
    body: List[UTopInstruction] = []
    for i in range(pops_per_tile):
        body.append(
            UTopInstruction(
                me_slot=MatrixOp(MatrixOpcode.POP, engine=0, dst=i % 64),
                ve_slots=tuple(
                    VectorOp(VectorOpcode.NOP) for _ in range(ny)
                ),
            )
        )
        last = i == pops_per_tile - 1
        body.append(
            UTopInstruction(
                ve_slots=(
                    VectorOp(activation, engine=0, dst=i % 64, src_a=i % 64),
                )
                + tuple(VectorOp(VectorOpcode.NOP) for _ in range(ny - 1)),
                control=ControlOp(ControlOpcode.FINISH) if last else None,
            )
        )
    addr = _fresh_snippet_addr()
    me_utops = [
        make_me_utop(
            snippet_addr=addr,
            me_cycles=float(pops_per_tile * 8),
            ve_cycles=float(pops_per_tile),
            label=f"{matmul.name}.tile{t}",
            instructions=body,
        )
        for t in range(nx)
    ]
    table = ExecutionTable(nx=nx, ny=ny)
    table.append(UTopGroup(me_utops=me_utops, label=matmul.name))
    return NeuIsaProgram(
        table=table, snippets={addr: body}, name=f"{matmul.name}-neuisa"
    )


def vliw_ve_idle_fraction(program: VliwProgram) -> float:
    """Fraction of issue cycles during which every VE slot is idle --
    quantifies the VE under-utilisation of paper Fig. 6."""
    idle = 0
    total = 0
    for inst in program.instructions:
        cycles = inst.issue_cycles
        total += cycles
        if not inst.active_ves:
            idle += cycles
        else:
            idle += cycles - 1  # VE ops retire in one cycle
    if total == 0:
        return 0.0
    return idle / total
