"""ROLLER-style operator tiling (paper SectionIII-D, compiler support).

NeuISA asks the compiler to partition each tensor operator into up to
``nx`` tiles, one per potential ME, so the hardware can pick how many to
run concurrently.  The partitioning rules follow the paper:

- prefer splitting *parallel* output dimensions (batch / rows / columns):
  tiles are then fully independent;
- split the *reduction* dimension only when the parallel dimensions do
  not provide enough tiles; this requires a separate VE combine step in a
  following uTOp group, which is the main source of NeuISA overhead
  (paper Fig. 16) because it breaks ME/VE pipelining;
- never create more tiles than there is work (tiny operators stay whole).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.compiler.cost_model import OpCost
from repro.compiler.operators import Operator
from repro.config import NpuCoreConfig
from repro.errors import CompileError


@dataclass(frozen=True)
class TileSpec:
    """Costs of one tile (one future uTOp)."""

    me_cycles: float
    ve_cycles: float
    hbm_bytes: float
    sram_bytes: int

    def __post_init__(self) -> None:
        if self.me_cycles < 0 or self.ve_cycles < 0:
            raise CompileError("tile cycle costs cannot be negative")


@dataclass
class TilingPlan:
    """The compiler's partitioning decision for one operator."""

    op_name: str
    tiles: List[TileSpec] = field(default_factory=list)
    #: True when the reduction dimension was split across tiles.
    reduction_split: bool = False
    #: VE work needed to combine partial sums after a reduction split;
    #: it must run in a separate uTOp group (cannot pipeline with MEs).
    combine: Optional[TileSpec] = None
    #: Parallelism available to a VE operator (chunks the VEs can share).
    ve_parallelism: int = 1

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def total_me_cycles(self) -> float:
        total = sum(t.me_cycles for t in self.tiles)
        if self.combine is not None:
            total += self.combine.me_cycles
        return total

    @property
    def total_ve_cycles(self) -> float:
        total = sum(t.ve_cycles for t in self.tiles)
        if self.combine is not None:
            total += self.combine.ve_cycles
        return total


def tile_operator(
    op: Operator,
    cost: OpCost,
    nx: int,
    core: NpuCoreConfig,
    batch_hint: int = 1,
) -> TilingPlan:
    """Partition ``op`` into at most ``nx`` tiles.

    ``batch_hint`` tells the tiler how large the batch dimension is; with
    large batches the parallel dimensions usually already provide ``nx``
    tiles, so the reduction dimension stays intact and NeuISA overhead
    vanishes (paper SectionIII-D, "The overhead is smaller for larger
    batch sizes").
    """
    if nx < 1:
        raise CompileError("cannot tile for fewer than one ME")
    if not op.is_me_op:
        return _tile_ve_operator(op, cost)

    parallel_avail = cost.parallel_tiles
    num_parallel = min(nx, parallel_avail)
    reduction_splits = 1
    if num_parallel < nx and cost.reduction_tiles > 1:
        # Not enough parallel tiles: split the reduction dimension to
        # reach nx total tiles (bounded by available k-tiles).
        reduction_splits = min(
            cost.reduction_tiles, max(1, nx // max(1, num_parallel))
        )
    num_tiles = max(1, min(nx, num_parallel * reduction_splits))

    per_me = cost.me_cycles / num_tiles
    per_ve = cost.ve_cycles / num_tiles
    per_hbm = cost.hbm_bytes / num_tiles
    tiles = [
        TileSpec(
            me_cycles=per_me,
            ve_cycles=per_ve,
            hbm_bytes=per_hbm,
            sram_bytes=cost.sram_bytes,
        )
        for _ in range(num_tiles)
    ]

    combine: Optional[TileSpec] = None
    reduction_split = reduction_splits > 1
    if reduction_split:
        # Partial sums from each reduction chunk must be added on the VEs
        # in a separate uTOp group: (splits - 1) elementwise adds over the
        # output tile, plus traffic to spill/reload the partials.
        out_bytes = float(op.output_bytes)
        add_elements = (reduction_splits - 1) * out_bytes / 4.0
        combine_cycles = max(1.0, add_elements / core.ve_flops_per_cycle)
        combine = TileSpec(
            me_cycles=0.0,
            ve_cycles=combine_cycles,
            hbm_bytes=0.0,
            sram_bytes=cost.sram_bytes,
        )

    return TilingPlan(
        op_name=op.name,
        tiles=tiles,
        reduction_split=reduction_split,
        combine=combine,
        ve_parallelism=1,
    )


def _tile_ve_operator(op: Operator, cost: OpCost) -> TilingPlan:
    """A VE operator stays one uTOp; its parallelism tells the scheduler
    how many VEs it can productively occupy at once."""
    tile = TileSpec(
        me_cycles=0.0,
        ve_cycles=cost.ve_cycles,
        hbm_bytes=cost.hbm_bytes,
        sram_bytes=cost.sram_bytes,
    )
    return TilingPlan(
        op_name=op.name,
        tiles=[tile],
        ve_parallelism=max(1, cost.parallel_tiles),
    )


def vliw_me_count(cost: OpCost, available_mes: int) -> int:
    """How many MEs the VLIW compiler statically targets for an ME op.

    The conventional compiler also tiles, but bakes the ME count into the
    binary: it picks the count that keeps every targeted ME busy
    (bounded by available tiles), mirroring "the ML compiler picks the
    number of compute units for each operator to maximize the overall
    efficiency" (paper SectionII-B).
    """
    if cost.me_cycles <= 0:
        return 0
    usable = min(available_mes, cost.parallel_tiles * cost.reduction_tiles)
    return max(1, usable)


def compiler_demanded_engines(
    cost: OpCost, max_mes: int, max_ves: int
) -> "tuple[int, int]":
    """(MEs, VEs) the compiler would demand for an operator, used by the
    characterisation experiments (paper Figs. 2/3)."""
    if cost.me_cycles > 0:
        mes = min(max_mes, cost.parallel_tiles * cost.reduction_tiles)
        mes = max(1, mes)
        ve_ratio = cost.ve_cycles / max(cost.me_cycles, 1e-9)
        ves = min(max_ves, max(1, math.ceil(ve_ratio * mes)))
        return mes, ves
    ves = min(max_ves, max(1, cost.parallel_tiles))
    return 0, ves
