"""Tensor shapes and data types for the compiler substrate."""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import CompileError


class DType(enum.Enum):
    """Element data types with their storage size in bytes."""

    FP32 = ("fp32", 4)
    BF16 = ("bf16", 2)
    INT8 = ("int8", 1)

    def __init__(self, label: str, nbytes: int) -> None:
        self.label = label
        self.nbytes = nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


@dataclass(frozen=True)
class TensorShape:
    """An immutable tensor shape plus dtype."""

    dims: Tuple[int, ...]
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if not self.dims:
            raise CompileError("a tensor needs at least one dimension")
        for d in self.dims:
            if d < 1:
                raise CompileError(f"dimension {d} must be positive")

    @staticmethod
    def of(*dims: int, dtype: DType = DType.FP32) -> "TensorShape":
        return TensorShape(tuple(dims), dtype)

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        return math.prod(self.dims)

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.dtype.nbytes

    def with_dim(self, axis: int, size: int) -> "TensorShape":
        dims = list(self.dims)
        dims[axis] = size
        return TensorShape(tuple(dims), self.dtype)

    def __str__(self) -> str:
        inner = "x".join(str(d) for d in self.dims)
        return f"{inner}:{self.dtype.label}"


def total_bytes(shapes: Iterable[TensorShape]) -> int:
    return sum(s.nbytes for s in shapes)
