"""Operator fusion pass.

ML compilers fuse ME operators with their elementwise epilogues
(MatMul+ReLU, Conv+bias+activation) so the VE post-processing pipelines
with the systolic-array drain (paper Figs. 6/8).  The paper notes that
"such fusion opportunities are limited" -- most operators keep imbalanced
ME/VE demands even after fusion -- so this pass is deliberately
conservative:

- only a ``MatMul``/``Conv2D`` followed by a single-consumer, arity-1
  ``Elementwise`` of exactly matching size is fused;
- at most :data:`MAX_EPILOGUE_OPS` elementwise ops are folded per ME op.
"""

from __future__ import annotations

from typing import List

from repro.compiler.graph import Graph
from repro.compiler.operators import Conv2D, Elementwise, MatMul


#: Maximum elementwise operations folded into one ME operator's epilogue.
MAX_EPILOGUE_OPS = 2


def _output_elements(op) -> int:
    if isinstance(op, MatMul):
        return op.output_elements
    if isinstance(op, Conv2D):
        return op.output_elements
    return 0


def fuse_graph(graph: Graph) -> int:
    """Fuse eligible elementwise consumers into ME-op epilogues, in
    place.  Returns the number of operators fused away."""
    fused = 0
    changed = True
    while changed:
        changed = False
        for node in list(graph):
            op = node.op
            if not isinstance(op, (MatMul, Conv2D)):
                continue
            if len(op.epilogue) >= MAX_EPILOGUE_OPS:
                continue
            consumers = graph.consumers(node.node_id)
            if len(consumers) != 1:
                continue
            consumer = graph.node(consumers[0])
            eltwise = consumer.op
            if not isinstance(eltwise, Elementwise):
                continue
            if eltwise.arity != 1:
                continue
            if eltwise.elements != _output_elements(op):
                continue
            # Fold: the ME op absorbs the elementwise kind, downstream
            # nodes re-point to the ME op.
            op.epilogue.append(eltwise.kind)
            for grandchild_id in graph.consumers(consumer.node_id):
                grandchild = graph.node(grandchild_id)
                new_inputs = [
                    node.node_id if dep == consumer.node_id else dep
                    for dep in grandchild.inputs
                ]
                graph.rewire(grandchild_id, new_inputs)
            graph.remove(consumer.node_id)
            fused += 1
            changed = True
            break
    return fused


def fusion_candidates(graph: Graph) -> List[int]:
    """Node ids of ME ops that would accept another epilogue op --
    useful for tests and for reporting fusion coverage."""
    out: List[int] = []
    for node in graph:
        if isinstance(node.op, (MatMul, Conv2D)):
            if len(node.op.epilogue) < MAX_EPILOGUE_OPS:
                out.append(node.node_id)
    return out
