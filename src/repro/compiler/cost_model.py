"""Per-operator cost estimation (the compiler's performance model).

For every operator the model produces an :class:`OpCost`:

- ``me_cycles``: busy cycles on *one* matrix engine (128x128 systolic
  array by default).  MatMul/Conv costs account for array fill/drain and
  weight-loading inefficiency on edge tiles, which is why small or skinny
  matmuls utilise the array poorly.
- ``ve_cycles``: busy cycles on *one* vector engine (128 lanes x 8
  ops/cycle).  For ME operators this is the fused epilogue work (pop
  post-processing, bias, activation -- paper Fig. 6); for VE operators it
  is the whole operator.
- ``hbm_bytes``: DMA traffic to/from HBM.
- ``sram_bytes``: working-set footprint in the on-chip SRAM.

These numbers play the role of the per-operator traces the paper
collected from real TPUv4 runs (ME/VE time, HBM time, tile sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.compiler.operators import (
    Conv2D,
    DepthwiseConv2D,
    Elementwise,
    EmbeddingLookup,
    LayerNorm,
    MatMul,
    Operator,
    Pooling,
    Reduction,
    Softmax,
    me_equivalent_dims,
)
from repro.config import NpuCoreConfig
from repro.errors import CompileError

#: Random-access inefficiency of embedding gathers: each gathered row
#: wastes part of an HBM burst, so effective traffic exceeds useful bytes.
GATHER_OVERHEAD = 2.0
#: Fraction of peak HBM bandwidth random gathers sustain (row-buffer
#: misses and short bursts): gathers occupy the VE for their traffic at
#: this efficiency, which is what keeps DLRM's *average* bandwidth near
#: 40-50% of peak (paper Fig. 7: ~494 GB/s of 1.2 TB/s).
GATHER_BANDWIDTH_EFFICIENCY = 0.45


@dataclass(frozen=True)
class OpCost:
    """Resource demands of one operator on one ME and one VE."""

    me_cycles: float
    ve_cycles: float
    hbm_bytes: float
    sram_bytes: int
    #: Number of independent output tiles an ME op can be split into
    #: without touching the reduction dimension.
    parallel_tiles: int = 1
    #: Number of reduction-dimension chunks (k-tiles); splitting across
    #: them requires a separate VE combine step (NeuISA overhead, Fig 16).
    reduction_tiles: int = 1

    def __post_init__(self) -> None:
        if self.me_cycles < 0 or self.ve_cycles < 0:
            raise CompileError("cycle costs cannot be negative")
        if self.hbm_bytes < 0 or self.sram_bytes < 0:
            raise CompileError("memory costs cannot be negative")

    @property
    def dominant_cycles(self) -> float:
        return max(self.me_cycles, self.ve_cycles)

    @property
    def is_me_bound(self) -> bool:
        return self.me_cycles >= self.ve_cycles


class CostModel:
    """Maps operators to :class:`OpCost` on a given core configuration."""

    def __init__(self, core: NpuCoreConfig) -> None:
        self.core = core

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def cost(self, op: Operator) -> OpCost:
        if isinstance(op, MatMul):
            return self._cost_matmul(op)
        if isinstance(op, Conv2D):
            return self._cost_conv(op)
        if isinstance(op, DepthwiseConv2D):
            return self._cost_ve_generic(op, op.flops)
        if isinstance(op, Elementwise):
            return self._cost_ve_generic(op, op.flops)
        if isinstance(op, Softmax):
            return self._cost_ve_generic(op, op.flops)
        if isinstance(op, LayerNorm):
            return self._cost_ve_generic(op, op.flops)
        if isinstance(op, Reduction):
            return self._cost_ve_generic(op, op.flops)
        if isinstance(op, Pooling):
            return self._cost_ve_generic(op, op.flops)
        if isinstance(op, EmbeddingLookup):
            return self._cost_embedding(op)
        raise CompileError(f"no cost model for operator type {type(op).__name__}")

    # ------------------------------------------------------------------
    # ME operators
    # ------------------------------------------------------------------
    def _matmul_cost(
        self, m: int, k: int, n: int, epilogue_factor: float, op: Operator
    ) -> OpCost:
        rows, cols = self.core.me_rows, self.core.me_cols
        tm = math.ceil(m / rows)
        tn = math.ceil(n / cols)
        tk = math.ceil(k / rows)
        # Weight-stationary systolic timing: for each (n-tile, k-tile)
        # pair the array loads a rows x cols weight block (`rows` cycles,
        # one row per cycle) and then streams all m input rows through
        # it.  Partial sums accumulate across k-tiles in place.
        load_and_stream = tn * tk * (rows + m)
        # Output drain: every output row pops once per n-tile (an 8-row
        # vector drains per cycle, so m rows cost m/8 pops of 8 cycles).
        drain_cycles = tn * m
        me_cycles = float(load_and_stream + drain_cycles)

        # VE side: every popped 8x128 output vector takes one VE cycle to
        # post-process (paper Fig. 6), plus fused epilogue passes.
        out_elements = m * n
        pop_vectors = tn * max(1, m // 8)
        ve_cycles = float(pop_vectors) + (
            out_elements * epilogue_factor / self.core.ve_flops_per_cycle
        )

        hbm_bytes = op.hbm_bytes
        tile_bytes = rows * cols * 4
        sram_bytes = 3 * tile_bytes  # input + weight + output tiles
        return OpCost(
            me_cycles=me_cycles,
            ve_cycles=ve_cycles,
            hbm_bytes=hbm_bytes,
            sram_bytes=sram_bytes,
            parallel_tiles=max(1, tm * tn),
            reduction_tiles=max(1, tk),
        )

    def _cost_matmul(self, op: MatMul) -> OpCost:
        factor = sum(e.cost_factor for e in op.epilogue)
        return self._matmul_cost(op.m, op.k, op.n, factor, op)

    def _cost_conv(self, op: Conv2D) -> OpCost:
        m, k, n = op.as_matmul_dims()
        factor = sum(e.cost_factor for e in op.epilogue)
        return self._matmul_cost(m, k, n, factor, op)

    # ------------------------------------------------------------------
    # VE operators
    # ------------------------------------------------------------------
    def _cost_ve_generic(self, op: Operator, lane_ops: float) -> OpCost:
        ve_cycles = max(1.0, lane_ops / self.core.ve_flops_per_cycle)
        sram_bytes = min(int(op.hbm_bytes), self.core.sram_bytes // 8)
        chunk = self.core.ve_flops_per_cycle * 64
        parallel = max(1, int(lane_ops // chunk))
        return OpCost(
            me_cycles=0.0,
            ve_cycles=ve_cycles,
            hbm_bytes=op.hbm_bytes,
            sram_bytes=sram_bytes,
            parallel_tiles=parallel,
        )

    def _cost_embedding(self, op: EmbeddingLookup) -> OpCost:
        hbm_bytes = op.input_bytes * GATHER_OVERHEAD + op.output_bytes
        # A gather keeps the vector unit busy issuing addresses and
        # pooling rows for as long as the random-access traffic takes at
        # full bandwidth: embedding lookups are memory-bound VE time
        # (this is what makes DLRM/NCF "VE-intensive" in paper Fig. 4).
        compute_cycles = op.flops / self.core.ve_flops_per_cycle
        gather_rate = self.core.hbm_bytes_per_cycle * GATHER_BANDWIDTH_EFFICIENCY
        memory_cycles = hbm_bytes / gather_rate
        ve_cycles = max(1.0, compute_cycles, memory_cycles)
        sram_bytes = min(op.input_bytes, self.core.sram_bytes // 8)
        # A gather is one memory-bound stream: granting more VEs does
        # not raise the random-access bandwidth the channel sustains, so
        # the lowered uTOp must not scale with VE count (this is what
        # pins DLRM's average bandwidth near 45% of peak, paper Fig. 7).
        return OpCost(
            me_cycles=0.0,
            ve_cycles=ve_cycles,
            hbm_bytes=hbm_bytes,
            sram_bytes=sram_bytes,
            parallel_tiles=1,
        )


def me_utilization_efficiency(op: Operator, core: NpuCoreConfig) -> float:
    """Fraction of peak MACs an ME op achieves (1.0 = perfectly tiled).

    Used by characterisation experiments to explain why small batch sizes
    under-utilise the systolic array.
    """
    dims = me_equivalent_dims(op)
    if dims is None:
        return 0.0
    m, k, n = dims
    rows, cols = core.me_rows, core.me_cols
    padded = math.ceil(m / rows) * rows * math.ceil(n / cols) * cols
    padded_k = math.ceil(k / rows) * rows
    return (m * n * k) / (padded * padded_k)
