"""DNN dataflow graphs.

A :class:`Graph` is a DAG of operators.  The frontend of an ML framework
produces one per model; our workload zoo (:mod:`repro.workloads`) builds
them programmatically.  The compiler passes (fusion, lowering) and the
profiler consume graphs in topological order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.compiler.operators import Operator
from repro.errors import CompileError


@dataclass
class GraphNode:
    """One operator instance in a graph."""

    node_id: int
    op: Operator
    inputs: List[int] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.op.name


class Graph:
    """A DAG of operators with insertion-order node ids.

    The common construction pattern is sequential chaining via
    :meth:`add` (each node depends on the previous one unless explicit
    ``inputs`` are given), which matches how layer-by-layer model
    definitions are written.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self._nodes: Dict[int, GraphNode] = {}
        self._next_id = 0
        self._last_id: Optional[int] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        op: Operator,
        inputs: Optional[Iterable[int]] = None,
        chain: bool = True,
    ) -> int:
        """Add an operator; returns its node id.

        With ``chain=True`` (default) and no explicit ``inputs``, the node
        depends on the most recently added node, building a pipeline.
        """
        if inputs is not None:
            input_ids = list(inputs)
        elif chain and self._last_id is not None:
            input_ids = [self._last_id]
        else:
            input_ids = []
        for dep in input_ids:
            if dep not in self._nodes:
                raise CompileError(f"unknown input node id {dep}")
        node_id = self._next_id
        self._next_id += 1
        self._nodes[node_id] = GraphNode(node_id=node_id, op=op, inputs=input_ids)
        self._last_id = node_id
        return node_id

    def remove(self, node_id: int) -> None:
        if node_id not in self._nodes:
            raise CompileError(f"unknown node id {node_id}")
        for node in self._nodes.values():
            if node_id in node.inputs:
                raise CompileError(f"node {node_id} still has consumers")
        del self._nodes[node_id]
        if self._last_id == node_id:
            self._last_id = max(self._nodes) if self._nodes else None

    def rewire(self, node_id: int, new_inputs: List[int]) -> None:
        node = self.node(node_id)
        for dep in new_inputs:
            if dep not in self._nodes:
                raise CompileError(f"unknown input node id {dep}")
        node.inputs = list(new_inputs)

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> GraphNode:
        if node_id not in self._nodes:
            raise CompileError(f"unknown node id {node_id}")
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[GraphNode]:
        return iter(self._nodes.values())

    @property
    def node_ids(self) -> List[int]:
        return list(self._nodes)

    def consumers(self, node_id: int) -> List[int]:
        return [n.node_id for n in self._nodes.values() if node_id in n.inputs]

    # ------------------------------------------------------------------
    # Topological order + validation
    # ------------------------------------------------------------------
    def topo_order(self) -> List[GraphNode]:
        """Kahn's algorithm; raises on cycles."""
        in_degree: Dict[int, int] = {nid: 0 for nid in self._nodes}
        for node in self._nodes.values():
            for dep in node.inputs:
                in_degree[node.node_id] += 1
                del dep  # degree counts inputs; dep identity unused here
        ready = sorted(nid for nid, deg in in_degree.items() if deg == 0)
        order: List[GraphNode] = []
        satisfied: Set[int] = set()
        ready_set = list(ready)
        while ready_set:
            nid = ready_set.pop(0)
            order.append(self._nodes[nid])
            satisfied.add(nid)
            for consumer in sorted(self.consumers(nid)):
                if consumer in satisfied:
                    continue
                if all(dep in satisfied for dep in self._nodes[consumer].inputs):
                    if consumer not in ready_set:
                        ready_set.append(consumer)
        if len(order) != len(self._nodes):
            raise CompileError(f"graph {self.name!r} contains a cycle")
        return order

    def validate(self) -> None:
        self.topo_order()

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_flops(self) -> float:
        return sum(node.op.flops for node in self._nodes.values())

    @property
    def total_hbm_bytes(self) -> float:
        return sum(node.op.hbm_bytes for node in self._nodes.values())

    @property
    def total_weight_bytes(self) -> int:
        return sum(node.op.weight_bytes for node in self._nodes.values())

    def count_me_ops(self) -> int:
        return sum(1 for node in self._nodes.values() if node.op.is_me_op)

    def count_ve_ops(self) -> int:
        return sum(1 for node in self._nodes.values() if not node.op.is_me_op)
