"""Operator taxonomy for the compiler substrate.

Operators carry only the shape parameters the cost model needs.  Two
families matter to the paper:

- **ME operators** (matrix multiplication, convolution) run on the
  systolic-array matrix engines, with optional fused VE epilogues
  (bias add, activation) -- paper Fig. 6/8.
- **VE operators** (elementwise math, normalisation, softmax, reductions,
  embedding lookups, pooling) run purely on the vector engines.

Every operator exposes ``flops`` and HBM traffic estimates; the cost
model (:mod:`repro.compiler.cost_model`) turns these into ME/VE cycles
for a concrete core configuration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.compiler.tensor import DType, TensorShape
from repro.errors import CompileError


class ElementwiseKind(enum.Enum):
    """Vector-engine elementwise operations with their per-element
    cost factor (how many VE lane-ops one element costs)."""

    RELU = ("relu", 1.0)
    GELU = ("gelu", 4.0)
    SIGMOID = ("sigmoid", 3.0)
    TANH = ("tanh", 3.0)
    ADD = ("add", 1.0)
    MUL = ("mul", 1.0)
    SWISH = ("swish", 4.0)
    COPY = ("copy", 1.0)

    def __init__(self, label: str, cost_factor: float) -> None:
        self.label = label
        self.cost_factor = cost_factor


@dataclass
class Operator:
    """Base class for all operators."""

    name: str

    @property
    def is_me_op(self) -> bool:
        """True when the operator's main work runs on matrix engines."""
        return False

    @property
    def flops(self) -> float:
        """Floating-point operations performed by the operator."""
        raise NotImplementedError

    @property
    def input_bytes(self) -> int:
        raise NotImplementedError

    @property
    def output_bytes(self) -> int:
        raise NotImplementedError

    @property
    def weight_bytes(self) -> int:
        return 0

    @property
    def hbm_bytes(self) -> float:
        """Unique HBM traffic: inputs + outputs + weights."""
        return float(self.input_bytes + self.output_bytes + self.weight_bytes)


@dataclass
class MatMul(Operator):
    """Dense matrix multiplication ``[m, k] @ [k, n] -> [m, n]``.

    ``epilogue`` lists fused VE operations applied to the output (bias
    add, activation); the compiler fusion pass populates it.
    """

    m: int = 1
    k: int = 1
    n: int = 1
    dtype: DType = DType.FP32
    epilogue: List[ElementwiseKind] = field(default_factory=list)
    #: True when the weight matrix streams from HBM (e.g. MLP layers);
    #: False when it is resident in SRAM across invocations.
    weights_streamed: bool = True

    def __post_init__(self) -> None:
        if min(self.m, self.k, self.n) < 1:
            raise CompileError("MatMul dimensions must be positive")

    @property
    def is_me_op(self) -> bool:
        return True

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.k * self.n

    @property
    def input_bytes(self) -> int:
        return self.m * self.k * self.dtype.nbytes

    @property
    def output_bytes(self) -> int:
        return self.m * self.n * self.dtype.nbytes

    @property
    def weight_bytes(self) -> int:
        if not self.weights_streamed:
            return 0
        return self.k * self.n * self.dtype.nbytes

    @property
    def output_elements(self) -> int:
        return self.m * self.n


@dataclass
class Conv2D(Operator):
    """2-D convolution, modelled through its im2col MatMul equivalent."""

    batch: int = 1
    in_h: int = 1
    in_w: int = 1
    in_ch: int = 1
    out_ch: int = 1
    kernel: int = 1
    stride: int = 1
    dtype: DType = DType.FP32
    epilogue: List[ElementwiseKind] = field(default_factory=list)

    def __post_init__(self) -> None:
        if min(self.batch, self.in_h, self.in_w, self.in_ch, self.out_ch) < 1:
            raise CompileError("Conv2D dimensions must be positive")
        if self.kernel < 1 or self.stride < 1:
            raise CompileError("kernel and stride must be positive")

    @property
    def out_h(self) -> int:
        return max(1, self.in_h // self.stride)

    @property
    def out_w(self) -> int:
        return max(1, self.in_w // self.stride)

    def as_matmul_dims(self) -> Tuple[int, int, int]:
        """(m, k, n) of the im2col-lowered matrix multiplication."""
        m = self.batch * self.out_h * self.out_w
        k = self.kernel * self.kernel * self.in_ch
        n = self.out_ch
        return m, k, n

    @property
    def is_me_op(self) -> bool:
        return True

    @property
    def flops(self) -> float:
        m, k, n = self.as_matmul_dims()
        return 2.0 * m * k * n

    @property
    def input_bytes(self) -> int:
        return self.batch * self.in_h * self.in_w * self.in_ch * self.dtype.nbytes

    @property
    def output_bytes(self) -> int:
        return self.batch * self.out_h * self.out_w * self.out_ch * self.dtype.nbytes

    @property
    def weight_bytes(self) -> int:
        return self.kernel * self.kernel * self.in_ch * self.out_ch * self.dtype.nbytes

    @property
    def output_elements(self) -> int:
        return self.batch * self.out_h * self.out_w * self.out_ch


@dataclass
class DepthwiseConv2D(Operator):
    """Depthwise convolution.

    Its arithmetic intensity is far too low for a 128x128 systolic array
    (one MAC column per channel), so production compilers map it to the
    vector engines; we follow that convention, which is what makes
    EfficientNet comparatively VE-hungry (paper Fig. 4).
    """

    batch: int = 1
    in_h: int = 1
    in_w: int = 1
    channels: int = 1
    kernel: int = 3
    stride: int = 1
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if min(self.batch, self.in_h, self.in_w, self.channels) < 1:
            raise CompileError("DepthwiseConv2D dimensions must be positive")

    @property
    def out_h(self) -> int:
        return max(1, self.in_h // self.stride)

    @property
    def out_w(self) -> int:
        return max(1, self.in_w // self.stride)

    @property
    def flops(self) -> float:
        return (
            2.0
            * self.batch
            * self.out_h
            * self.out_w
            * self.channels
            * self.kernel
            * self.kernel
        )

    @property
    def input_bytes(self) -> int:
        return self.batch * self.in_h * self.in_w * self.channels * self.dtype.nbytes

    @property
    def output_bytes(self) -> int:
        return self.batch * self.out_h * self.out_w * self.channels * self.dtype.nbytes

    @property
    def weight_bytes(self) -> int:
        return self.kernel * self.kernel * self.channels * self.dtype.nbytes


@dataclass
class Elementwise(Operator):
    """Pure elementwise VE operator over ``elements`` values."""

    kind: ElementwiseKind = ElementwiseKind.RELU
    elements: int = 1
    dtype: DType = DType.FP32
    #: Number of distinct input tensors (2 for add/mul, 1 for relu...).
    arity: int = 1

    def __post_init__(self) -> None:
        if self.elements < 1:
            raise CompileError("elementwise needs at least one element")
        if self.arity < 1:
            raise CompileError("arity must be positive")

    @property
    def flops(self) -> float:
        return self.elements * self.kind.cost_factor

    @property
    def input_bytes(self) -> int:
        return self.arity * self.elements * self.dtype.nbytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.dtype.nbytes


@dataclass
class Softmax(Operator):
    """Row-wise softmax: ~4 VE passes (max, sub+exp, sum, div)."""

    rows: int = 1
    cols: int = 1
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise CompileError("softmax dimensions must be positive")

    @property
    def elements(self) -> int:
        return self.rows * self.cols

    @property
    def flops(self) -> float:
        return 4.0 * self.elements

    @property
    def input_bytes(self) -> int:
        return self.elements * self.dtype.nbytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.dtype.nbytes


@dataclass
class LayerNorm(Operator):
    """Layer normalisation: ~3 VE passes (mean, var, normalise)."""

    rows: int = 1
    cols: int = 1
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise CompileError("layernorm dimensions must be positive")

    @property
    def elements(self) -> int:
        return self.rows * self.cols

    @property
    def flops(self) -> float:
        return 3.0 * self.elements

    @property
    def input_bytes(self) -> int:
        return self.elements * self.dtype.nbytes

    @property
    def output_bytes(self) -> int:
        return self.elements * self.dtype.nbytes


@dataclass
class Reduction(Operator):
    """Reduce ``elements`` values down to ``outputs`` values on the VEs."""

    elements: int = 1
    outputs: int = 1
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if self.elements < 1 or self.outputs < 1:
            raise CompileError("reduction sizes must be positive")

    @property
    def flops(self) -> float:
        return float(self.elements)

    @property
    def input_bytes(self) -> int:
        return self.elements * self.dtype.nbytes

    @property
    def output_bytes(self) -> int:
        return self.outputs * self.dtype.nbytes


@dataclass
class EmbeddingLookup(Operator):
    """Sparse embedding gather: dominated by HBM traffic (DLRM/NCF).

    ``table_bytes`` is informational (HBM footprint); traffic is
    ``num_lookups * dim`` elements gathered plus pooling output.
    """

    num_lookups: int = 1
    dim: int = 1
    table_bytes: int = 0
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if self.num_lookups < 1 or self.dim < 1:
            raise CompileError("embedding lookup sizes must be positive")

    @property
    def flops(self) -> float:
        # pooling (sum) across gathered rows
        return float(self.num_lookups * self.dim)

    @property
    def input_bytes(self) -> int:
        return self.num_lookups * self.dim * self.dtype.nbytes

    @property
    def output_bytes(self) -> int:
        return self.dim * self.dtype.nbytes


@dataclass
class Pooling(Operator):
    """Spatial pooling on the VEs."""

    batch: int = 1
    in_h: int = 1
    in_w: int = 1
    channels: int = 1
    window: int = 2
    dtype: DType = DType.FP32

    def __post_init__(self) -> None:
        if min(self.batch, self.in_h, self.in_w, self.channels) < 1:
            raise CompileError("pooling dimensions must be positive")
        if self.window < 1:
            raise CompileError("pooling window must be positive")

    @property
    def out_h(self) -> int:
        return max(1, self.in_h // self.window)

    @property
    def out_w(self) -> int:
        return max(1, self.in_w // self.window)

    @property
    def flops(self) -> float:
        return float(
            self.batch * self.out_h * self.out_w * self.channels * self.window**2
        )

    @property
    def input_bytes(self) -> int:
        return self.batch * self.in_h * self.in_w * self.channels * self.dtype.nbytes

    @property
    def output_bytes(self) -> int:
        return self.batch * self.out_h * self.out_w * self.channels * self.dtype.nbytes


def me_equivalent_dims(op: Operator) -> Optional[Tuple[int, int, int]]:
    """(m, k, n) MatMul dimensions of an ME operator, or None."""
    if isinstance(op, MatMul):
        return op.m, op.k, op.n
    if isinstance(op, Conv2D):
        return op.as_matmul_dims()
    return None
