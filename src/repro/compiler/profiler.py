"""Compile-time workload profiling (paper SectionIII-B).

The vNPU allocator needs two numbers per workload, obtained "via
profiling at the compilation stage":

- ``m`` -- ME active runtime / NPU total runtime, on one ME + one VE;
- ``v`` -- VE active runtime / NPU total runtime, on one ME + one VE.

The profiler runs the cost model over a graph and assumes per-operator
ME/VE pipelining (fused epilogues overlap with the systolic drain), so an
operator's duration on a 1ME+1VE core is ``max(me_cycles, ve_cycles)``
and consequently ``m + v >= 1`` -- matching the paper's assumption that
"at least one of ME/VE is active during the execution of an NPU core".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.compiler.cost_model import CostModel, OpCost
from repro.compiler.graph import Graph
from repro.config import NpuCoreConfig
from repro.errors import CompileError


@dataclass(frozen=True)
class OpProfile:
    """Per-operator slice of the profile timeline."""

    name: str
    is_me_op: bool
    me_cycles: float
    ve_cycles: float
    hbm_bytes: float
    duration_cycles: float


@dataclass
class WorkloadProfile:
    """Profile of a whole DNN graph on a 1ME + 1VE core."""

    name: str
    ops: List[OpProfile] = field(default_factory=list)

    @property
    def total_cycles(self) -> float:
        return sum(op.duration_cycles for op in self.ops)

    @property
    def total_me_cycles(self) -> float:
        return sum(op.me_cycles for op in self.ops)

    @property
    def total_ve_cycles(self) -> float:
        return sum(op.ve_cycles for op in self.ops)

    @property
    def total_hbm_bytes(self) -> float:
        return sum(op.hbm_bytes for op in self.ops)

    @property
    def m(self) -> float:
        """ME active-time ratio (paper's ``m``)."""
        total = self.total_cycles
        if total <= 0:
            raise CompileError("cannot profile an empty workload")
        return min(1.0, self.total_me_cycles / total)

    @property
    def v(self) -> float:
        """VE active-time ratio (paper's ``v``)."""
        total = self.total_cycles
        if total <= 0:
            raise CompileError("cannot profile an empty workload")
        return min(1.0, self.total_ve_cycles / total)

    @property
    def me_ve_intensity_ratio(self) -> float:
        """Execution-time ratio of ME vs VE work (paper Fig. 4's metric)."""
        ve = self.total_ve_cycles
        if ve <= 0:
            return float("inf")
        return self.total_me_cycles / ve

    def average_hbm_bandwidth(self, core: NpuCoreConfig) -> float:
        """Average HBM bandwidth demand in bytes/second on a 1ME+1VE run."""
        total_cycles = self.total_cycles
        if total_cycles <= 0:
            return 0.0
        seconds = core.cycles_to_seconds(total_cycles)
        return self.total_hbm_bytes / seconds

    def timeline(self) -> List[Tuple[float, float, OpProfile]]:
        """(start_cycle, end_cycle, profile) tuples in execution order."""
        out: List[Tuple[float, float, OpProfile]] = []
        t = 0.0
        for op in self.ops:
            out.append((t, t + op.duration_cycles, op))
            t += op.duration_cycles
        return out


def profile_graph(graph: Graph, core: NpuCoreConfig) -> WorkloadProfile:
    """Profile ``graph`` on one ME + one VE of ``core``."""
    model = CostModel(core)
    profile = WorkloadProfile(name=graph.name)
    for node in graph.topo_order():
        cost: OpCost = model.cost(node.op)
        duration = max(cost.me_cycles, cost.ve_cycles)
        duration = max(duration, 1.0)
        profile.ops.append(
            OpProfile(
                name=node.name,
                is_me_op=node.op.is_me_op,
                me_cycles=cost.me_cycles,
                ve_cycles=cost.ve_cycles,
                hbm_bytes=cost.hbm_bytes,
                duration_cycles=duration,
            )
        )
    if not profile.ops:
        raise CompileError(f"graph {graph.name!r} has no operators")
    return profile
