"""ML compiler substrate.

The paper relies on an ML compiler (XLA-like) for three things:

1. estimating per-operator ME/VE/HBM demands from tensor shapes
   (:mod:`repro.compiler.cost_model`) -- this drives the workload
   characterisation of SectionII-B and the vNPU allocator of SectionIII-B;
2. partitioning operators into tiles that become uTOps
   (:mod:`repro.compiler.tiling`, ROLLER-style even partitioning);
3. lowering DNN graphs to either the conventional VLIW ISA or NeuISA
   (:mod:`repro.compiler.lowering`), including operator fusion
   (:mod:`repro.compiler.fusion`) and compile-time m/v profiling
   (:mod:`repro.compiler.profiler`).
"""

from repro.compiler.cost_model import CostModel, OpCost
from repro.compiler.graph import Graph, GraphNode
from repro.compiler.lowering import (
    CompiledGraph,
    CompiledOp,
    lower_graph_neuisa,
    lower_graph_vliw,
)
from repro.compiler.operators import (
    Conv2D,
    DepthwiseConv2D,
    Elementwise,
    ElementwiseKind,
    EmbeddingLookup,
    LayerNorm,
    MatMul,
    Operator,
    Pooling,
    Reduction,
    Softmax,
)
from repro.compiler.profiler import WorkloadProfile, profile_graph
from repro.compiler.tensor import DType, TensorShape
from repro.compiler.tiling import TilingPlan, tile_operator

__all__ = [
    "CompiledGraph",
    "CompiledOp",
    "Conv2D",
    "CostModel",
    "DType",
    "DepthwiseConv2D",
    "Elementwise",
    "ElementwiseKind",
    "EmbeddingLookup",
    "Graph",
    "GraphNode",
    "LayerNorm",
    "MatMul",
    "OpCost",
    "Operator",
    "Pooling",
    "Reduction",
    "Softmax",
    "TensorShape",
    "TilingPlan",
    "WorkloadProfile",
    "lower_graph_neuisa",
    "lower_graph_vliw",
    "profile_graph",
    "tile_operator",
]
