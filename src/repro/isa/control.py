"""NeuISA uTOp control instructions (paper Fig. 14).

Four control operations let uTOps interact with the hardware uTOp
scheduler:

``uTop.finish``
    Signal the scheduler that this uTOp is complete; the scheduler may
    dispatch the next ready uTOp onto the freed engine.
``uTop.nextGroup %reg``
    Set the uTOp group to execute after the current group completes.  The
    target group index is read from scalar register ``%reg``.  Multiple
    uTOps in one group may execute it, but they must agree on the target
    -- a mismatch raises an exception (modelled as :class:`IsaError`).
``uTop.group %reg``
    Write the group index of the current uTOp into ``%reg``.
``uTop.index %reg``
    Write the uTOp's index within its group into ``%reg``.

Scalar register 0 (``%r0``) is read-only and always reads as zero.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.errors import IsaError

#: Number of scalar registers visible to control instructions.
NUM_SCALAR_REGISTERS = 16


class ControlOpcode(enum.Enum):
    FINISH = "uTop.finish"
    NEXT_GROUP = "uTop.nextGroup"
    GROUP = "uTop.group"
    INDEX = "uTop.index"


@dataclass(frozen=True)
class ControlOp:
    """One control-slot operation inside a uTOp instruction."""

    opcode: ControlOpcode
    reg: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.reg < NUM_SCALAR_REGISTERS:
            raise IsaError(f"scalar register %r{self.reg} out of range")
        if self.opcode is ControlOpcode.FINISH and self.reg != 0:
            raise IsaError("uTop.finish takes no register operand")

    def __str__(self) -> str:
        if self.opcode is ControlOpcode.FINISH:
            return "uTop.finish;"
        return f"{self.opcode.value} %r{self.reg};"


class ScalarRegisterFile:
    """Per-uTOp scalar register file; ``%r0`` is hard-wired to zero."""

    def __init__(self) -> None:
        self._regs: List[int] = [0] * NUM_SCALAR_REGISTERS

    def read(self, reg: int) -> int:
        if not 0 <= reg < NUM_SCALAR_REGISTERS:
            raise IsaError(f"scalar register %r{reg} out of range")
        if reg == 0:
            return 0
        return self._regs[reg]

    def write(self, reg: int, value: int) -> None:
        if not 0 <= reg < NUM_SCALAR_REGISTERS:
            raise IsaError(f"scalar register %r{reg} out of range")
        if reg == 0:
            return  # %r0 is read-only; writes are silently dropped
        self._regs[reg] = int(value)

    def snapshot(self) -> List[int]:
        return list(self._regs)
