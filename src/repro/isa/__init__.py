"""NeuISA and the baseline VLIW-style NPU ISA.

This package models both instruction sets the paper discusses:

- :mod:`repro.isa.vliw` -- the conventional VLIW-style NPU ISA, in which
  one instruction carries slots for every ME and VE on the core and the
  compiler statically couples the control flow of all compute units.
- :mod:`repro.isa.utop` / :mod:`repro.isa.program` -- NeuISA, the paper's
  extension that reorganises VLIW instructions into independently
  schedulable micro tensor operators (uTOps) arranged in uTOp groups and
  indexed by an execution table (paper SectionIII-D, Figs. 13-15).
- :mod:`repro.isa.control` -- the four uTOp control instructions
  (``uTop.finish``, ``uTop.nextGroup``, ``uTop.group``, ``uTop.index``).
- :mod:`repro.isa.interpreter` -- a functional VM used to validate
  program structure and derive dynamic uTOp sequences for the simulator.
- :mod:`repro.isa.encoding` -- fixed-width binary encode/decode.
"""

from repro.isa.control import ControlOp, ControlOpcode
from repro.isa.program import NeuIsaProgram
from repro.isa.utop import ExecutionTable, UTop, UTopGroup, UTopInstruction, UTopKind
from repro.isa.vliw import (
    MiscOp,
    MiscOpcode,
    ScalarOp,
    ScalarOpcode,
    VectorOp,
    VectorOpcode,
    MatrixOp,
    MatrixOpcode,
    VliwInstruction,
    VliwProgram,
)

__all__ = [
    "ControlOp",
    "ControlOpcode",
    "ExecutionTable",
    "MatrixOp",
    "MatrixOpcode",
    "MiscOp",
    "MiscOpcode",
    "NeuIsaProgram",
    "ScalarOp",
    "ScalarOpcode",
    "UTop",
    "UTopGroup",
    "UTopInstruction",
    "UTopKind",
    "VectorOp",
    "VectorOpcode",
    "VliwInstruction",
    "VliwProgram",
]
