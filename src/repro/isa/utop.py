"""Micro tensor operators (uTOps) and uTOp groups (paper SectionIII-D).

NeuISA decouples the execution of independent MEs in a tensor operator by
separating the control flow of each ME into its own instruction sequence,
the *uTOp* (paper Fig. 13).  Two kinds exist for a core with ``nx`` MEs
and ``ny`` VEs:

- an **ME uTOp** carries instructions with exactly one ME slot and ``ny``
  VE slots.  It drives one ME for its whole lifetime; the VE slots let the
  compiler pipeline post-processing (e.g. the ReLU of a fused
  MatMul+ReLU) with the systolic array drain.
- a **VE uTOp** carries no ME slot and ``ny`` VE slots.  It performs pure
  vector work and may spread over every VE of the vNPU.

uTOps are organised in **uTOp groups**: up to ``nx`` ME uTOps plus up to
one VE uTOp.  uTOps inside one group may run concurrently in any order;
groups execute sequentially (group ``i+1`` after group ``i``) unless a
``uTop.nextGroup`` redirects control (paper Fig. 15).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import IsaError
from repro.isa.control import ControlOp, ControlOpcode
from repro.isa.vliw import MatrixOp, MiscOp, ScalarOp, VectorOp


class UTopKind(enum.Enum):
    ME = "me"
    VE = "ve"


@dataclass(frozen=True)
class UTopInstruction:
    """One instruction inside a uTOp code snippet.

    The format resembles the original VLIW ISA (paper SectionIII-D: "the
    instruction format inside a uTOp resembles the original VLIW ISA")
    but carries at most one ME slot.  An optional control slot holds one
    of the four uTOp control operations.
    """

    me_slot: Optional[MatrixOp] = None
    ve_slots: Tuple[VectorOp, ...] = ()
    scalar_slot: Optional[ScalarOp] = None
    misc_slot: MiscOp = field(default_factory=MiscOp)
    control: Optional[ControlOp] = None

    @property
    def uses_me(self) -> bool:
        return self.me_slot is not None and not self.me_slot.is_nop

    @property
    def active_ve_count(self) -> int:
        return sum(1 for op in self.ve_slots if not op.is_nop)

    @property
    def issue_cycles(self) -> int:
        latency = 1
        if self.me_slot is not None:
            latency = max(latency, self.me_slot.latency_cycles)
        return latency


@dataclass(frozen=True)
class UTopCost:
    """Performance annotations attached by the compiler.

    The cycle-level simulator consumes these instead of re-executing every
    instruction: ``me_cycles`` is the ME busy time, ``ve_cycles`` the
    embedded VE work, ``hbm_bytes`` the DMA traffic, ``sram_bytes`` the
    peak scratchpad footprint.  ``parallelism`` bounds how many VEs a VE
    uTOp can productively use at once.
    """

    me_cycles: float = 0.0
    ve_cycles: float = 0.0
    hbm_bytes: float = 0.0
    sram_bytes: int = 0
    parallelism: int = 1

    def __post_init__(self) -> None:
        if self.me_cycles < 0 or self.ve_cycles < 0:
            raise IsaError("uTOp cycle costs cannot be negative")
        if self.hbm_bytes < 0 or self.sram_bytes < 0:
            raise IsaError("uTOp memory costs cannot be negative")
        if self.parallelism < 1:
            raise IsaError("uTOp parallelism must be at least 1")

    @property
    def total_cycles(self) -> float:
        return max(self.me_cycles, self.ve_cycles)


@dataclass
class UTop:
    """A micro tensor operator.

    ``snippet_addr`` names the shared code snippet this uTOp executes
    (NeuISA shares snippets between uTOps to limit code inflation, paper
    SectionIII-D); ``instructions`` optionally carries the decoded snippet
    for functional execution.
    """

    kind: UTopKind
    snippet_addr: int
    cost: UTopCost = field(default_factory=UTopCost)
    instructions: Optional[List[UTopInstruction]] = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.snippet_addr < 0:
            raise IsaError("snippet address cannot be negative")
        if self.kind is UTopKind.VE and self.cost.me_cycles > 0:
            raise IsaError("a VE uTOp cannot carry ME work")
        if self.instructions is not None:
            self._validate_instructions()

    def _validate_instructions(self) -> None:
        assert self.instructions is not None
        if not self.instructions:
            raise IsaError("a decoded uTOp needs at least one instruction")
        for inst in self.instructions:
            if self.kind is UTopKind.VE and inst.uses_me:
                raise IsaError("VE uTOp contains an active ME slot")
        last = self.instructions[-1]
        if last.control is None or last.control.opcode is not ControlOpcode.FINISH:
            raise IsaError("uTOp must end with uTop.finish")

    @property
    def occupies_me(self) -> bool:
        return self.kind is UTopKind.ME


@dataclass
class UTopGroup:
    """A set of uTOps that may execute concurrently (paper Fig. 13).

    Constraints (enforced against the core's engine counts by
    :class:`ExecutionTable`): at most ``nx`` ME uTOps and at most one VE
    uTOp, because a single VE uTOp already carries ``ny`` VE slots.
    """

    me_utops: List[UTop] = field(default_factory=list)
    ve_utop: Optional[UTop] = None
    label: str = ""

    def __post_init__(self) -> None:
        for utop in self.me_utops:
            if utop.kind is not UTopKind.ME:
                raise IsaError("me_utops may only contain ME uTOps")
        if self.ve_utop is not None and self.ve_utop.kind is not UTopKind.VE:
            raise IsaError("ve_utop must be a VE uTOp")
        if not self.me_utops and self.ve_utop is None:
            raise IsaError("a uTOp group cannot be empty")

    @property
    def utops(self) -> List[UTop]:
        items = list(self.me_utops)
        if self.ve_utop is not None:
            items.append(self.ve_utop)
        return items

    @property
    def num_me_utops(self) -> int:
        return len(self.me_utops)

    @property
    def total_me_cycles(self) -> float:
        return sum(u.cost.me_cycles for u in self.me_utops)

    @property
    def total_ve_cycles(self) -> float:
        total = sum(u.cost.ve_cycles for u in self.me_utops)
        if self.ve_utop is not None:
            total += self.ve_utop.cost.ve_cycles
        return total

    @property
    def total_hbm_bytes(self) -> float:
        return sum(u.cost.hbm_bytes for u in self.utops)


@dataclass
class ExecutionTable:
    """The uTOp execution table (paper Fig. 15).

    Each row defines one uTOp group; each cell holds the start address of
    a uTOp code snippet (``None`` encodes a null entry).  For a physical
    core with ``nx`` MEs a row has ``nx`` ME entries plus one VE entry.
    """

    nx: int
    ny: int
    rows: List[UTopGroup] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1:
            raise IsaError("execution table needs nx >= 1 and ny >= 1")
        for idx, group in enumerate(self.rows):
            self._check_group(idx, group)

    def _check_group(self, idx: int, group: UTopGroup) -> None:
        if group.num_me_utops > self.nx:
            raise IsaError(
                f"group {idx} has {group.num_me_utops} ME uTOps "
                f"but the core has only {self.nx} MEs"
            )

    def append(self, group: UTopGroup) -> int:
        """Add a group as the next row; returns its group index."""
        self._check_group(len(self.rows), group)
        self.rows.append(group)
        return len(self.rows) - 1

    def __len__(self) -> int:
        return len(self.rows)

    def group(self, index: int) -> UTopGroup:
        if not 0 <= index < len(self.rows):
            raise IsaError(f"uTOp group index {index} out of range")
        return self.rows[index]

    def row_cells(self, index: int) -> List[Optional[int]]:
        """Snippet addresses of row ``index`` padded with ``None`` to the
        hardware row width (nx ME entries + 1 VE entry)."""
        group = self.group(index)
        cells: List[Optional[int]] = [u.snippet_addr for u in group.me_utops]
        cells.extend([None] * (self.nx - len(cells)))
        cells.append(group.ve_utop.snippet_addr if group.ve_utop else None)
        return cells

    def snippet_addresses(self) -> Dict[int, int]:
        """Map of snippet address -> number of uTOps referencing it."""
        refs: Dict[int, int] = {}
        for group in self.rows:
            for utop in group.utops:
                refs[utop.snippet_addr] = refs.get(utop.snippet_addr, 0) + 1
        return refs


def make_me_utop(
    snippet_addr: int,
    me_cycles: float,
    ve_cycles: float = 0.0,
    hbm_bytes: float = 0.0,
    sram_bytes: int = 0,
    label: str = "",
    instructions: Optional[Sequence[UTopInstruction]] = None,
) -> UTop:
    """Convenience constructor for an ME uTOp with cost annotations."""
    return UTop(
        kind=UTopKind.ME,
        snippet_addr=snippet_addr,
        cost=UTopCost(
            me_cycles=me_cycles,
            ve_cycles=ve_cycles,
            hbm_bytes=hbm_bytes,
            sram_bytes=sram_bytes,
        ),
        instructions=list(instructions) if instructions is not None else None,
        label=label,
    )


def make_ve_utop(
    snippet_addr: int,
    ve_cycles: float,
    hbm_bytes: float = 0.0,
    sram_bytes: int = 0,
    parallelism: int = 1,
    label: str = "",
    instructions: Optional[Sequence[UTopInstruction]] = None,
) -> UTop:
    """Convenience constructor for a VE uTOp with cost annotations."""
    return UTop(
        kind=UTopKind.VE,
        snippet_addr=snippet_addr,
        cost=UTopCost(
            ve_cycles=ve_cycles,
            hbm_bytes=hbm_bytes,
            sram_bytes=sram_bytes,
            parallelism=parallelism,
        ),
        instructions=list(instructions) if instructions is not None else None,
        label=label,
    )
