"""The baseline VLIW-style NPU ISA (paper SectionII-A).

A conventional NPU instruction is very wide: it carries one slot per
matrix engine (ME), one slot per vector engine (VE), load/store slots for
the on-chip SRAM and a miscellaneous slot for DMA and scalar bookkeeping.
The ML compiler statically schedules operations into slots, which couples
the control flow of every engine (the root cause of the inflexibility the
paper identifies in SectionII-C, Fig. 9).

The same slot vocabulary is reused inside NeuISA uTOps
(:mod:`repro.isa.utop`), where an instruction carries at most one ME slot.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import IsaError


class MatrixOpcode(enum.Enum):
    """Operations accepted by an ME slot."""

    NOP = "nop"
    #: Push one input vector into the systolic array.
    PUSH = "push"
    #: Pop one 8x128 result vector out of the systolic array (8 cycles).
    POP = "pop"
    #: Pre-load weights into the array.
    LOAD_WEIGHTS = "load_weights"


class VectorOpcode(enum.Enum):
    """Operations accepted by a VE slot (one cycle each)."""

    NOP = "nop"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAX = "max"
    RELU = "relu"
    EXP = "exp"
    RSQRT = "rsqrt"
    REDUCE = "reduce"
    COPY = "copy"


class ScalarOpcode(enum.Enum):
    """Scalar/load-store slot operations."""

    NOP = "nop"
    LOAD = "load"
    STORE = "store"
    ADDI = "addi"
    CMP = "cmp"
    BRANCH = "branch"


class MiscOpcode(enum.Enum):
    """Misc slot: DMA engine control and synchronisation."""

    NOP = "nop"
    DMA_IN = "dma_in"
    DMA_OUT = "dma_out"
    SYNC = "sync"


@dataclass(frozen=True)
class MatrixOp:
    """One ME-slot operation.

    ``engine`` identifies the statically targeted ME in the VLIW ISA;
    NeuISA uTOps always use engine 0 because the hardware binds the uTOp
    to a physical ME at dispatch time (paper SectionIII-D).
    """

    opcode: MatrixOpcode = MatrixOpcode.NOP
    engine: int = 0
    dst: int = 0
    src: int = 0

    @property
    def is_nop(self) -> bool:
        return self.opcode is MatrixOpcode.NOP

    @property
    def latency_cycles(self) -> int:
        """Issue-to-retire latency used by the functional model."""
        if self.opcode is MatrixOpcode.NOP:
            return 0
        if self.opcode is MatrixOpcode.POP:
            return 8  # an 8x128 output vector drains over 8 cycles
        return 1


@dataclass(frozen=True)
class VectorOp:
    """One VE-slot operation (single cycle on a 128x8 ALU)."""

    opcode: VectorOpcode = VectorOpcode.NOP
    engine: int = 0
    dst: int = 0
    src_a: int = 0
    src_b: int = 0

    @property
    def is_nop(self) -> bool:
        return self.opcode is VectorOpcode.NOP


@dataclass(frozen=True)
class ScalarOp:
    opcode: ScalarOpcode = ScalarOpcode.NOP
    dst: int = 0
    src: int = 0
    imm: int = 0

    @property
    def is_nop(self) -> bool:
        return self.opcode is ScalarOpcode.NOP


@dataclass(frozen=True)
class MiscOp:
    opcode: MiscOpcode = MiscOpcode.NOP
    addr: int = 0
    size: int = 0

    @property
    def is_nop(self) -> bool:
        return self.opcode is MiscOpcode.NOP


def _pad(ops: Sequence, width: int, filler) -> Tuple:
    """Pad a slot list with NOPs up to ``width``; reject overflow."""
    ops = tuple(ops)
    if len(ops) > width:
        raise IsaError(f"{len(ops)} operations for {width} slots")
    return ops + tuple(filler() for _ in range(width - len(ops)))


@dataclass(frozen=True)
class VliwInstruction:
    """One very-long instruction word.

    The slot widths are fixed per program (they reflect the number of
    engines the compiler targeted), so instructions store plain tuples and
    :class:`VliwProgram` validates uniformity.
    """

    me_slots: Tuple[MatrixOp, ...] = ()
    ve_slots: Tuple[VectorOp, ...] = ()
    ls_slots: Tuple[ScalarOp, ...] = ()
    misc_slot: MiscOp = field(default_factory=MiscOp)

    @staticmethod
    def build(
        me_ops: Iterable[MatrixOp] = (),
        ve_ops: Iterable[VectorOp] = (),
        ls_ops: Iterable[ScalarOp] = (),
        misc: Optional[MiscOp] = None,
        num_me_slots: int = 0,
        num_ve_slots: int = 0,
        num_ls_slots: int = 2,
    ) -> "VliwInstruction":
        """Construct an instruction, padding unused slots with NOPs."""
        return VliwInstruction(
            me_slots=_pad(tuple(me_ops), num_me_slots, MatrixOp),
            ve_slots=_pad(tuple(ve_ops), num_ve_slots, VectorOp),
            ls_slots=_pad(tuple(ls_ops), num_ls_slots, ScalarOp),
            misc_slot=misc if misc is not None else MiscOp(),
        )

    @property
    def num_me_slots(self) -> int:
        return len(self.me_slots)

    @property
    def num_ve_slots(self) -> int:
        return len(self.ve_slots)

    @property
    def active_mes(self) -> Tuple[int, ...]:
        """Indices of MEs this instruction drives (non-NOP slots)."""
        return tuple(i for i, op in enumerate(self.me_slots) if not op.is_nop)

    @property
    def active_ves(self) -> Tuple[int, ...]:
        return tuple(i for i, op in enumerate(self.ve_slots) if not op.is_nop)

    @property
    def is_nop(self) -> bool:
        return (
            not self.active_mes
            and not self.active_ves
            and all(op.is_nop for op in self.ls_slots)
            and self.misc_slot.is_nop
        )

    @property
    def issue_cycles(self) -> int:
        """Cycles the instruction occupies the issue stage.

        In the in-order VLIW pipeline an instruction retires when its
        slowest slot retires; POP operations dominate at 8 cycles.
        """
        latency = 1 if not self.is_nop else 1
        for op in self.me_slots:
            latency = max(latency, op.latency_cycles)
        return latency


@dataclass
class VliwProgram:
    """A straight-line VLIW program plus the engine counts it was
    compiled for.

    The key property the paper leans on (SectionII-C): ``num_mes_used`` is
    baked in at compile time -- the program can run *only* on exactly that
    many MEs, which is what NeuISA removes.
    """

    instructions: List[VliwInstruction] = field(default_factory=list)
    num_mes_used: int = 1
    num_ves_used: int = 1
    name: str = "vliw-program"

    def __post_init__(self) -> None:
        if self.num_mes_used < 0 or self.num_ves_used < 0:
            raise IsaError("engine counts cannot be negative")
        for idx, inst in enumerate(self.instructions):
            if inst.num_me_slots != self.num_mes_used:
                raise IsaError(
                    f"instruction {idx} has {inst.num_me_slots} ME slots, "
                    f"program compiled for {self.num_mes_used}"
                )
            if inst.num_ve_slots != self.num_ves_used:
                raise IsaError(
                    f"instruction {idx} has {inst.num_ve_slots} VE slots, "
                    f"program compiled for {self.num_ves_used}"
                )

    def __len__(self) -> int:
        return len(self.instructions)

    def append(self, inst: VliwInstruction) -> None:
        if inst.num_me_slots != self.num_mes_used:
            raise IsaError("ME slot width mismatch")
        if inst.num_ve_slots != self.num_ves_used:
            raise IsaError("VE slot width mismatch")
        self.instructions.append(inst)

    @property
    def total_issue_cycles(self) -> int:
        """Sequential issue time of the whole program, in cycles."""
        return sum(inst.issue_cycles for inst in self.instructions)

    def me_busy_cycles(self, engine: int) -> int:
        """Cycles engine ``engine`` is driven by a non-NOP ME op."""
        busy = 0
        for inst in self.instructions:
            if engine < len(inst.me_slots) and not inst.me_slots[engine].is_nop:
                busy += max(1, inst.me_slots[engine].latency_cycles)
        return busy

    def ve_busy_cycles(self, engine: int) -> int:
        busy = 0
        for inst in self.instructions:
            if engine < len(inst.ve_slots) and not inst.ve_slots[engine].is_nop:
                busy += 1
        return busy
