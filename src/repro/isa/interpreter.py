"""Functional NeuISA virtual machine.

The interpreter executes a :class:`~repro.isa.program.NeuIsaProgram` at
control-flow granularity.  It walks the uTOp execution table, runs every
uTOp's snippet (scalar slots, control slots), enforces the
``uTop.nextGroup`` agreement rule and resolves cross-group branches such
as the loop in paper Fig. 15.  The output is the *dynamic uTOp sequence*
-- the order in which uTOp groups (and their member uTOps) would reach
the hardware scheduler -- which the performance simulator replays.

Scalar-slot semantics used by control flow:

``load  %rd, [addr]``   read scratch memory word ``addr`` into ``%rd``
``store %rs, [addr]``   write ``%rs`` into scratch memory word ``addr``
``addi  %rd, %rs, imm`` ``%rd = %rs + imm``
``cmp   %rd, %rs, imm`` ``%rd = 1 if %rs < imm else 0``
``branch %rs, imm``     if ``%rs == 0`` skip the next ``imm`` instructions

Scratch memory models the on-chip SRAM words that hold loop counters
(paper Fig. 15: "the loop counter Count is stored in the on-chip SRAM").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import IsaError
from repro.isa.control import ControlOpcode, ScalarRegisterFile
from repro.isa.program import NeuIsaProgram
from repro.isa.utop import UTop, UTopInstruction
from repro.isa.vliw import ScalarOpcode

#: Safety valve against runaway control flow in malformed programs.
DEFAULT_MAX_GROUP_EXECUTIONS = 100_000


@dataclass
class UTopExecution:
    """Record of one dynamic uTOp execution."""

    group_index: int
    utop_index: int
    utop: UTop
    instructions_executed: int


@dataclass
class GroupExecution:
    """Record of one dynamic uTOp-group execution."""

    group_index: int
    utop_runs: List[UTopExecution] = field(default_factory=list)
    next_group: Optional[int] = None


@dataclass
class InterpreterResult:
    """Dynamic trace of a whole program run."""

    groups: List[GroupExecution] = field(default_factory=list)
    scratch: Dict[int, int] = field(default_factory=dict)

    @property
    def dynamic_utops(self) -> List[UTop]:
        out: List[UTop] = []
        for grp in self.groups:
            out.extend(run.utop for run in grp.utop_runs)
        return out

    @property
    def dynamic_group_indices(self) -> List[int]:
        return [grp.group_index for grp in self.groups]

    @property
    def total_instructions(self) -> int:
        return sum(
            run.instructions_executed for grp in self.groups for run in grp.utop_runs
        )


class NeuIsaInterpreter:
    """Executes NeuISA programs functionally.

    The interpreter is deterministic: uTOps within a group are executed in
    table order (ME uTOps by index, then the VE uTOp).  Well-formed
    programs must not depend on intra-group ordering, and the
    ``uTop.nextGroup`` agreement rule is checked exactly as the hardware
    would: if two uTOps of the same group name different targets an
    exception is raised (paper Fig. 14).
    """

    def __init__(
        self,
        program: NeuIsaProgram,
        max_group_executions: int = DEFAULT_MAX_GROUP_EXECUTIONS,
    ) -> None:
        if not program.snippets:
            raise IsaError("interpreter needs decoded snippets")
        self.program = program
        self.max_group_executions = max_group_executions
        self.scratch: Dict[int, int] = dict(program.scratch_init)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> InterpreterResult:
        """Execute from group 0 until control falls off the table."""
        result = InterpreterResult()
        group_idx = 0
        executed = 0
        while 0 <= group_idx < self.program.num_groups:
            if executed >= self.max_group_executions:
                raise IsaError(
                    "group execution limit exceeded; "
                    "the program likely contains an unbounded loop"
                )
            grp_exec = self._run_group(group_idx)
            result.groups.append(grp_exec)
            executed += 1
            if grp_exec.next_group is not None:
                group_idx = grp_exec.next_group
            else:
                group_idx += 1
        result.scratch = dict(self.scratch)
        return result

    # ------------------------------------------------------------------
    # Group / uTOp execution
    # ------------------------------------------------------------------
    def _run_group(self, group_idx: int) -> GroupExecution:
        group = self.program.group(group_idx)
        grp_exec = GroupExecution(group_index=group_idx)
        proposed: Optional[int] = None
        for utop_index, utop in enumerate(group.utops):
            run, target = self._run_utop(group_idx, utop_index, utop)
            grp_exec.utop_runs.append(run)
            if target is not None:
                if proposed is not None and proposed != target:
                    raise IsaError(
                        f"uTop.nextGroup divergence in group {group_idx}: "
                        f"{proposed} vs {target}"
                    )
                proposed = target
        grp_exec.next_group = proposed
        return grp_exec

    def _run_utop(
        self, group_idx: int, utop_index: int, utop: UTop
    ) -> Tuple[UTopExecution, Optional[int]]:
        body = self.program.snippet(utop.snippet_addr)
        regs = ScalarRegisterFile()
        next_group: Optional[int] = None
        pc = 0
        executed = 0
        finished = False
        while pc < len(body):
            inst = body[pc]
            executed += 1
            skip = self._exec_scalar(inst, regs)
            ctrl_target, finished = self._exec_control(
                inst, regs, group_idx, utop_index
            )
            if ctrl_target is not None:
                next_group = ctrl_target
            if finished:
                break
            pc += 1 + skip
        if not finished:
            raise IsaError(
                f"uTOp (group {group_idx}, index {utop_index}) "
                "ran off its snippet without uTop.finish"
            )
        run = UTopExecution(
            group_index=group_idx,
            utop_index=utop_index,
            utop=utop,
            instructions_executed=executed,
        )
        return run, next_group

    # ------------------------------------------------------------------
    # Slot semantics
    # ------------------------------------------------------------------
    def _exec_scalar(self, inst: UTopInstruction, regs: ScalarRegisterFile) -> int:
        """Execute the scalar slot; returns how many following
        instructions to skip (non-zero only for a not-taken branch)."""
        op = inst.scalar_slot
        if op is None or op.opcode is ScalarOpcode.NOP:
            return 0
        if op.opcode is ScalarOpcode.LOAD:
            regs.write(op.dst, self.scratch.get(op.imm, 0))
            return 0
        if op.opcode is ScalarOpcode.STORE:
            self.scratch[op.imm] = regs.read(op.src)
            return 0
        if op.opcode is ScalarOpcode.ADDI:
            regs.write(op.dst, regs.read(op.src) + op.imm)
            return 0
        if op.opcode is ScalarOpcode.CMP:
            regs.write(op.dst, 1 if regs.read(op.src) < op.imm else 0)
            return 0
        if op.opcode is ScalarOpcode.BRANCH:
            if regs.read(op.src) == 0:
                if op.imm < 0:
                    raise IsaError("branch skip count cannot be negative")
                return op.imm
            return 0
        raise IsaError(f"unhandled scalar opcode {op.opcode}")

    def _exec_control(
        self,
        inst: UTopInstruction,
        regs: ScalarRegisterFile,
        group_idx: int,
        utop_index: int,
    ) -> Tuple[Optional[int], bool]:
        """Execute the control slot; returns (nextGroup target, finished)."""
        op = inst.control
        if op is None:
            return None, False
        if op.opcode is ControlOpcode.FINISH:
            return None, True
        if op.opcode is ControlOpcode.NEXT_GROUP:
            target = regs.read(op.reg)
            if not 0 <= target < self.program.num_groups:
                raise IsaError(f"uTop.nextGroup target {target} out of range")
            return target, False
        if op.opcode is ControlOpcode.GROUP:
            regs.write(op.reg, group_idx)
            return None, False
        if op.opcode is ControlOpcode.INDEX:
            regs.write(op.reg, utop_index)
            return None, False
        raise IsaError(f"unhandled control opcode {op.opcode}")


def run_program(program: NeuIsaProgram) -> InterpreterResult:
    """One-shot convenience wrapper around :class:`NeuIsaInterpreter`."""
    return NeuIsaInterpreter(program).run()
