"""Fixed-width binary encoding for VLIW and NeuISA instructions.

The encoding is not meant to match any proprietary format; it exists so
the repository has a concrete, testable binary layout (round-trip encode
-> decode is property-tested) and so code-size numbers reported by the
NeuISA-overhead experiment rest on real byte counts.

Layout (little-endian):

- ME slot:      1 byte opcode, 1 byte engine, 2 bytes dst, 2 bytes src
- VE slot:      1 byte opcode, 1 byte engine, 2 bytes dst, 2x2 bytes srcs
- scalar slot:  1 byte opcode, 1 byte dst, 1 byte src, 4 bytes imm
- misc slot:    1 byte opcode, 4 bytes addr, 4 bytes size
- control slot: 1 byte opcode, 1 byte reg

A uTOp instruction is tagged with a presence bitmap so optional slots do
not consume space; a VLIW instruction is prefixed with its slot counts.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from repro.errors import IsaError
from repro.isa.control import ControlOp, ControlOpcode
from repro.isa.utop import UTopInstruction
from repro.isa.vliw import (
    MatrixOp,
    MatrixOpcode,
    MiscOp,
    MiscOpcode,
    ScalarOp,
    ScalarOpcode,
    VectorOp,
    VectorOpcode,
    VliwInstruction,
)

_ME_FMT = "<BBHH"
_VE_FMT = "<BBHHH"
_SC_FMT = "<BBBi"
_MISC_FMT = "<BII"
_CTRL_FMT = "<BB"

_ME_OPCODES = list(MatrixOpcode)
_VE_OPCODES = list(VectorOpcode)
_SC_OPCODES = list(ScalarOpcode)
_MISC_OPCODES = list(MiscOpcode)
_CTRL_OPCODES = list(ControlOpcode)


def _opcode_index(opcodes: list, opcode) -> int:
    try:
        return opcodes.index(opcode)
    except ValueError as exc:  # pragma: no cover - enum guarantees member
        raise IsaError(f"unknown opcode {opcode}") from exc


def _opcode_from_index(opcodes: list, index: int):
    if not 0 <= index < len(opcodes):
        raise IsaError(f"opcode index {index} out of range")
    return opcodes[index]


# ----------------------------------------------------------------------
# Slot encoders/decoders
# ----------------------------------------------------------------------
def encode_matrix_op(op: MatrixOp) -> bytes:
    return struct.pack(
        _ME_FMT, _opcode_index(_ME_OPCODES, op.opcode), op.engine, op.dst, op.src
    )


def decode_matrix_op(data: bytes, offset: int = 0) -> Tuple[MatrixOp, int]:
    opc, engine, dst, src = struct.unpack_from(_ME_FMT, data, offset)
    op = MatrixOp(_opcode_from_index(_ME_OPCODES, opc), engine, dst, src)
    return op, offset + struct.calcsize(_ME_FMT)


def encode_vector_op(op: VectorOp) -> bytes:
    return struct.pack(
        _VE_FMT,
        _opcode_index(_VE_OPCODES, op.opcode),
        op.engine,
        op.dst,
        op.src_a,
        op.src_b,
    )


def decode_vector_op(data: bytes, offset: int = 0) -> Tuple[VectorOp, int]:
    opc, engine, dst, src_a, src_b = struct.unpack_from(_VE_FMT, data, offset)
    op = VectorOp(_opcode_from_index(_VE_OPCODES, opc), engine, dst, src_a, src_b)
    return op, offset + struct.calcsize(_VE_FMT)


def encode_scalar_op(op: ScalarOp) -> bytes:
    return struct.pack(
        _SC_FMT, _opcode_index(_SC_OPCODES, op.opcode), op.dst, op.src, op.imm
    )


def decode_scalar_op(data: bytes, offset: int = 0) -> Tuple[ScalarOp, int]:
    opc, dst, src, imm = struct.unpack_from(_SC_FMT, data, offset)
    op = ScalarOp(_opcode_from_index(_SC_OPCODES, opc), dst, src, imm)
    return op, offset + struct.calcsize(_SC_FMT)


def encode_misc_op(op: MiscOp) -> bytes:
    return struct.pack(
        _MISC_FMT, _opcode_index(_MISC_OPCODES, op.opcode), op.addr, op.size
    )


def decode_misc_op(data: bytes, offset: int = 0) -> Tuple[MiscOp, int]:
    opc, addr, size = struct.unpack_from(_MISC_FMT, data, offset)
    op = MiscOp(_opcode_from_index(_MISC_OPCODES, opc), addr, size)
    return op, offset + struct.calcsize(_MISC_FMT)


def encode_control_op(op: ControlOp) -> bytes:
    return struct.pack(_CTRL_FMT, _opcode_index(_CTRL_OPCODES, op.opcode), op.reg)


def decode_control_op(data: bytes, offset: int = 0) -> Tuple[ControlOp, int]:
    opc, reg = struct.unpack_from(_CTRL_FMT, data, offset)
    op = ControlOp(_opcode_from_index(_CTRL_OPCODES, opc), reg)
    return op, offset + struct.calcsize(_CTRL_FMT)


# ----------------------------------------------------------------------
# uTOp instruction: presence bitmap + optional slots
# ----------------------------------------------------------------------
_HAS_ME = 1 << 0
_HAS_SCALAR = 1 << 1
_HAS_MISC = 1 << 2
_HAS_CONTROL = 1 << 3


def encode_utop_instruction(inst: UTopInstruction) -> bytes:
    flags = 0
    if inst.me_slot is not None:
        flags |= _HAS_ME
    if inst.scalar_slot is not None:
        flags |= _HAS_SCALAR
    if not inst.misc_slot.is_nop:
        flags |= _HAS_MISC
    if inst.control is not None:
        flags |= _HAS_CONTROL
    parts = [struct.pack("<BB", flags, len(inst.ve_slots))]
    if inst.me_slot is not None:
        parts.append(encode_matrix_op(inst.me_slot))
    for ve_op in inst.ve_slots:
        parts.append(encode_vector_op(ve_op))
    if inst.scalar_slot is not None:
        parts.append(encode_scalar_op(inst.scalar_slot))
    if not inst.misc_slot.is_nop:
        parts.append(encode_misc_op(inst.misc_slot))
    if inst.control is not None:
        parts.append(encode_control_op(inst.control))
    return b"".join(parts)


def decode_utop_instruction(data: bytes, offset: int = 0) -> Tuple[UTopInstruction, int]:
    flags, n_ve = struct.unpack_from("<BB", data, offset)
    offset += 2
    me_slot: Optional[MatrixOp] = None
    if flags & _HAS_ME:
        me_slot, offset = decode_matrix_op(data, offset)
    ve_slots = []
    for _ in range(n_ve):
        ve_op, offset = decode_vector_op(data, offset)
        ve_slots.append(ve_op)
    scalar_slot: Optional[ScalarOp] = None
    if flags & _HAS_SCALAR:
        scalar_slot, offset = decode_scalar_op(data, offset)
    misc_slot = MiscOp()
    if flags & _HAS_MISC:
        misc_slot, offset = decode_misc_op(data, offset)
    control: Optional[ControlOp] = None
    if flags & _HAS_CONTROL:
        control, offset = decode_control_op(data, offset)
    inst = UTopInstruction(
        me_slot=me_slot,
        ve_slots=tuple(ve_slots),
        scalar_slot=scalar_slot,
        misc_slot=misc_slot,
        control=control,
    )
    return inst, offset


def encode_snippet(body: List[UTopInstruction]) -> bytes:
    parts = [struct.pack("<I", len(body))]
    parts.extend(encode_utop_instruction(inst) for inst in body)
    return b"".join(parts)


def decode_snippet(data: bytes, offset: int = 0) -> Tuple[List[UTopInstruction], int]:
    (count,) = struct.unpack_from("<I", data, offset)
    offset += 4
    body: List[UTopInstruction] = []
    for _ in range(count):
        inst, offset = decode_utop_instruction(data, offset)
        body.append(inst)
    return body, offset


# ----------------------------------------------------------------------
# VLIW instruction
# ----------------------------------------------------------------------
def encode_vliw_instruction(inst: VliwInstruction) -> bytes:
    parts = [
        struct.pack(
            "<BBB", len(inst.me_slots), len(inst.ve_slots), len(inst.ls_slots)
        )
    ]
    parts.extend(encode_matrix_op(op) for op in inst.me_slots)
    parts.extend(encode_vector_op(op) for op in inst.ve_slots)
    parts.extend(encode_scalar_op(op) for op in inst.ls_slots)
    parts.append(encode_misc_op(inst.misc_slot))
    return b"".join(parts)


def decode_vliw_instruction(data: bytes, offset: int = 0) -> Tuple[VliwInstruction, int]:
    n_me, n_ve, n_ls = struct.unpack_from("<BBB", data, offset)
    offset += 3
    me_slots = []
    for _ in range(n_me):
        op, offset = decode_matrix_op(data, offset)
        me_slots.append(op)
    ve_slots = []
    for _ in range(n_ve):
        op, offset = decode_vector_op(data, offset)
        ve_slots.append(op)
    ls_slots = []
    for _ in range(n_ls):
        op, offset = decode_scalar_op(data, offset)
        ls_slots.append(op)
    misc, offset = decode_misc_op(data, offset)
    inst = VliwInstruction(
        me_slots=tuple(me_slots),
        ve_slots=tuple(ve_slots),
        ls_slots=tuple(ls_slots),
        misc_slot=misc,
    )
    return inst, offset


def vliw_instruction_size_bytes(inst: VliwInstruction) -> int:
    return len(encode_vliw_instruction(inst))


def utop_instruction_size_bytes(inst: UTopInstruction) -> int:
    return len(encode_utop_instruction(inst))
