"""NeuISA program container (paper Fig. 15).

A NeuISA binary holds:

- *uTOp code snippets*: straight-line VLIW-like assembly fragments,
  keyed by start address.  Snippets are shared between uTOps to limit
  code inflation (paper SectionIII-D, "NeuISA minimizes code inflation by
  sharing the same code snippet among uTOps").
- the *uTOp execution table*: one row per uTOp group, one cell per
  potential uTOp (``nx`` ME entries + 1 VE entry), each holding a snippet
  start address or null.
- *program metadata*: entry group, scratch-memory initial values (e.g.
  loop counters held in SRAM), and the engine geometry the table was
  built for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import IsaError
from repro.isa.utop import ExecutionTable, UTop, UTopGroup, UTopInstruction


@dataclass
class NeuIsaProgram:
    """A complete NeuISA binary for one DNN program."""

    table: ExecutionTable
    snippets: Dict[int, List[UTopInstruction]] = field(default_factory=dict)
    scratch_init: Dict[int, int] = field(default_factory=dict)
    name: str = "neuisa-program"

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Static checks: every referenced snippet exists and decoded
        uTOps are well-formed (a dynamic check catches nextGroup
        divergence, see :mod:`repro.isa.interpreter`)."""
        if len(self.table) == 0:
            raise IsaError("a NeuISA program needs at least one uTOp group")
        for gidx in range(len(self.table)):
            group = self.table.group(gidx)
            for utop in group.utops:
                if self.snippets and utop.snippet_addr not in self.snippets:
                    raise IsaError(
                        f"group {gidx} references missing snippet "
                        f"0x{utop.snippet_addr:x}"
                    )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_groups(self) -> int:
        return len(self.table)

    @property
    def num_utops(self) -> int:
        return sum(len(self.table.group(g).utops) for g in range(len(self.table)))

    @property
    def num_me_utops(self) -> int:
        return sum(self.table.group(g).num_me_utops for g in range(len(self.table)))

    def group(self, index: int) -> UTopGroup:
        return self.table.group(index)

    def snippet(self, addr: int) -> List[UTopInstruction]:
        if addr not in self.snippets:
            raise IsaError(f"no snippet at 0x{addr:x}")
        return self.snippets[addr]

    # ------------------------------------------------------------------
    # Cost aggregation (used by the NeuISA-overhead experiment, Fig. 16)
    # ------------------------------------------------------------------
    @property
    def total_me_cycles(self) -> float:
        return sum(self.group(g).total_me_cycles for g in range(self.num_groups))

    @property
    def total_ve_cycles(self) -> float:
        return sum(self.group(g).total_ve_cycles for g in range(self.num_groups))

    @property
    def total_hbm_bytes(self) -> float:
        return sum(self.group(g).total_hbm_bytes for g in range(self.num_groups))

    def code_size_instructions(self) -> int:
        """Static code size in instructions (snippets are shared, so
        shared snippets count once)."""
        return sum(len(body) for body in self.snippets.values())

    def code_size_without_sharing(self) -> int:
        """Code size if every uTOp duplicated its snippet -- used to
        quantify how much snippet sharing saves."""
        total = 0
        for gidx in range(self.num_groups):
            for utop in self.group(gidx).utops:
                if utop.snippet_addr in self.snippets:
                    total += len(self.snippets[utop.snippet_addr])
        return total

    def sharing_factor(self) -> float:
        """Ratio of unshared to shared code size (>= 1.0)."""
        shared = self.code_size_instructions()
        if shared == 0:
            return 1.0
        return self.code_size_without_sharing() / shared


def utop_dependencies(program: NeuIsaProgram) -> Dict[int, List[int]]:
    """Return the group-level dependency structure.

    Groups form a chain by default (group ``i+1`` depends on group ``i``);
    the result maps each group index to the indices it depends on.  This
    mirrors how the compiler extracts dependencies from the DNN execution
    graph (paper SectionIII-D, "Compiler support for NeuISA").
    """
    deps: Dict[int, List[int]] = {}
    for gidx in range(program.num_groups):
        deps[gidx] = [gidx - 1] if gidx > 0 else []
    return deps


def flatten_utops(program: NeuIsaProgram) -> List[UTop]:
    """All uTOps of a program in (group, position) order."""
    out: List[UTop] = []
    for gidx in range(program.num_groups):
        out.extend(program.group(gidx).utops)
    return out
