"""Hardware configuration for the simulated NPU (paper Table II).

The default :class:`NpuCoreConfig` mirrors the simulator configuration the
paper evaluates on:

====================  =========================================
# of MEs / VEs        4 MEs & 4 VEs
ME dimension          128 x 128 systolic array
VE ALU dimension      128 x 8 FP32 operations / cycle
Frequency             1050 MHz
On-chip SRAM          128 MB
HBM                   64 GB capacity, 1200 GB/s bandwidth
====================  =========================================

All timing inside the simulator is expressed in *cycles* of the core
clock; helper properties convert between cycles, seconds and bytes/cycle
so workload definitions can use natural units.
"""

from __future__ import annotations

import dataclasses
import hashlib
import random
from dataclasses import dataclass
from typing import Union

from repro.errors import ConfigError

#: Default seed for every stochastic component (traffic generators,
#: placement tie-breaking experiments, ...).  One seed reproduces a
#: whole scenario end to end.
DEFAULT_SEED = 2024


def make_rng(seed: Union[int, None] = None) -> random.Random:
    """The repo-wide RNG factory: one seed, one stream."""
    return random.Random(DEFAULT_SEED if seed is None else seed)


def spawn_rng(seed: Union[int, None], *keys: object) -> random.Random:
    """Derive an independent, deterministic child stream.

    Hashing the (seed, keys) tuple decorrelates substreams (e.g. one per
    tenant per segment) while keeping every scenario reproducible from a
    single top-level seed.
    """
    base = DEFAULT_SEED if seed is None else seed
    material = repr((base,) + tuple(keys)).encode()
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


class MonotonicIds:
    """A repositionable ``itertools.count``: the process-wide id source
    for placement requests, vNPUs and ring commands.

    Checkpoint restore needs to continue an id stream exactly where a
    snapshot left off (restored state holds ids issued before the
    snapshot; a fresh process would otherwise re-issue them and collide
    in dict-keyed bookkeeping), so unlike ``itertools.count`` the
    position can be read (:meth:`peek`) and set (:meth:`jump_to`).
    Repositioning assumes the restoring process owns the stream -- do
    not jump a counter backward while other live simulations in the
    same process still issue from it.
    """

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def __iter__(self) -> "MonotonicIds":
        return self

    def __next__(self) -> int:
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """The id the next ``next()`` call will return."""
        return self._next

    def jump_to(self, value: int) -> None:
        """Reposition so the next ``next()`` call returns ``value``."""
        self._next = int(value)

#: Bytes in one gigabyte (decimal, as used for HBM marketing capacities).
GB = 10**9
#: Bytes in one mebibyte / gibibyte (binary, used for SRAM and footprints).
MiB = 2**20
GiB = 2**30

#: Size of one SRAM protection segment (paper SectionIII-C: 2 MB).
SRAM_SEGMENT_BYTES = 2 * MiB
#: Size of one HBM protection segment (paper SectionIII-C: 1 GB).
HBM_SEGMENT_BYTES = 1 * GiB

#: ME context-switch (preemption) penalty in cycles: 128 cycles to pop the
#: partial sums plus 128 cycles to pop the weights of the preempted uTOp
#: (paper SectionIII-G, for a 128x128 systolic array).
ME_PREEMPTION_CYCLES = 256


@dataclass(frozen=True)
class NpuCoreConfig:
    """Static configuration of one physical NPU core.

    Parameters mirror paper Table II.  The config is immutable; derived
    quantities are exposed as properties.
    """

    num_mes: int = 4
    num_ves: int = 4
    me_rows: int = 128
    me_cols: int = 128
    ve_lanes: int = 128
    ve_ops_per_lane: int = 8
    frequency_hz: float = 1_050e6
    sram_bytes: int = 128 * MiB
    hbm_bytes: int = 64 * GB
    hbm_bandwidth_bytes_per_s: float = 1_200e9
    me_preemption_cycles: int = ME_PREEMPTION_CYCLES

    def __post_init__(self) -> None:
        if self.num_mes < 1 or self.num_ves < 1:
            raise ConfigError("an NPU core needs at least one ME and one VE")
        if self.me_rows < 1 or self.me_cols < 1:
            raise ConfigError("systolic array dimensions must be positive")
        if self.ve_lanes < 1 or self.ve_ops_per_lane < 1:
            raise ConfigError("vector engine dimensions must be positive")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if self.sram_bytes <= 0 or self.hbm_bytes <= 0:
            raise ConfigError("memory sizes must be positive")
        if self.hbm_bandwidth_bytes_per_s <= 0:
            raise ConfigError("HBM bandwidth must be positive")
        if self.me_preemption_cycles < 0:
            raise ConfigError("preemption penalty cannot be negative")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def ve_flops_per_cycle(self) -> int:
        """FP32 operations one VE retires per cycle (128 x 8 by default)."""
        return self.ve_lanes * self.ve_ops_per_lane

    @property
    def me_macs_per_cycle(self) -> int:
        """Peak MACs one ME performs per cycle once the array is full."""
        return self.me_rows * self.me_cols

    @property
    def hbm_bytes_per_cycle(self) -> float:
        """HBM bandwidth expressed in bytes per core clock cycle."""
        return self.hbm_bandwidth_bytes_per_s / self.frequency_hz

    @property
    def num_sram_segments(self) -> int:
        return self.sram_bytes // SRAM_SEGMENT_BYTES

    @property
    def num_hbm_segments(self) -> int:
        return self.hbm_bytes // HBM_SEGMENT_BYTES

    # ------------------------------------------------------------------
    # Unit conversions
    # ------------------------------------------------------------------
    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / self.frequency_hz * 1e6

    def seconds_to_cycles(self, seconds: float) -> float:
        return seconds * self.frequency_hz

    def with_engines(self, num_mes: int, num_ves: int) -> "NpuCoreConfig":
        """Return a copy with a different engine count (paper Fig. 25)."""
        return dataclasses.replace(self, num_mes=num_mes, num_ves=num_ves)

    def with_bandwidth(self, bytes_per_s: float) -> "NpuCoreConfig":
        """Return a copy with a different HBM bandwidth (paper Fig. 26)."""
        return dataclasses.replace(self, hbm_bandwidth_bytes_per_s=bytes_per_s)


@dataclass(frozen=True)
class NpuChipConfig:
    """A chip groups cores that share a board (paper Fig. 1)."""

    core: NpuCoreConfig = NpuCoreConfig()
    num_cores: int = 2

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError("a chip needs at least one core")


@dataclass(frozen=True)
class NpuBoardConfig:
    """A board groups chips behind one PCIe endpoint (paper Fig. 1)."""

    chip: NpuChipConfig = NpuChipConfig()
    num_chips: int = 4

    def __post_init__(self) -> None:
        if self.num_chips < 1:
            raise ConfigError("a board needs at least one chip")

    @property
    def total_cores(self) -> int:
        return self.num_chips * self.chip.num_cores

    @property
    def total_mes(self) -> int:
        return self.total_cores * self.chip.core.num_mes

    @property
    def total_ves(self) -> int:
        return self.total_cores * self.chip.core.num_ves


#: The paper's evaluation core (Table II).
DEFAULT_CORE = NpuCoreConfig()
#: A TPUv4-like board: 4 chips x 2 cores.
DEFAULT_BOARD = NpuBoardConfig()
