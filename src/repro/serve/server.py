"""``repro serve``: JSON-over-HTTP live control of a cluster run.

Stdlib only (:mod:`http.server`); one
:class:`~repro.serve.controller.ServeController` behind a threading
HTTP server, plus an optional auto-tick thread that keeps stepping the
simulation while it is not paused.

Endpoints (all JSON in, JSON out):

==========================  ===========================================
``GET  /status``            live run state (time, segments, fleet)
``GET  /segments?since=N``  streamed per-segment observations
``GET  /metrics``           RunResult dict for the run so far
``GET  /snapshot``          versioned, digest-stamped checkpoint
``POST /advance``           ``{"segments": N}`` or ``{"until_s": T}``
``POST /pause``             stop the auto-tick
``POST /start``             resume the auto-tick
``POST /restore``           body = a ``/snapshot`` payload (HMAC-gated)
``POST /inject``            live tenant / traffic-spike / fault event
==========================  ===========================================

Errors return ``{"error": ...}`` with a 4xx status; an invalid
injection, a malformed parameter, or a corrupt checkpoint never kills
the server.  ``/restore`` is the one endpoint that unpickles its
input, so it only accepts payloads carrying a valid ``auth`` HMAC
under the server's restore key (see
:func:`repro.serve.controller.sign_checkpoint` and
``docs/live-control.md`` for the trust model).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.api.scenario import Scenario
from repro.errors import CheckpointError, ConfigError, Neu10Error
from repro.serve.controller import ServeController

#: Default auto-tick cadence: one segment per wall-clock interval.
DEFAULT_TICK_S = 0.5


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto the server's controller; never raises."""

    server_version = "repro-serve/1"
    #: Quiet by default; the CLI owns stderr.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    # ------------------------------------------------------------------
    @property
    def controller(self) -> ServeController:
        return self.server.controller  # type: ignore[attr-defined]

    def _reply(self, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ConfigError(f"request body is not JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigError("request body must be a JSON object")
        return payload

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/status":
                self._reply(self.controller.status())
            elif parsed.path == "/metrics":
                self._reply(self.controller.metrics())
            elif parsed.path == "/snapshot":
                self._reply(self.controller.snapshot())
            elif parsed.path == "/segments":
                query = parse_qs(parsed.query)
                since = int(query.get("since", ["0"])[0])
                self._reply(self.controller.segments(since))
            else:
                self._reply({"error": f"unknown path {parsed.path!r}"}, 404)
        except Neu10Error as exc:
            self._reply({"error": str(exc)}, 400)
        except (ValueError, TypeError) as exc:
            # Parameter coercion (int("abc"), float(None), ...) raises
            # bare built-ins; they are client errors, not crashes.
            self._reply({"error": f"invalid parameter: {exc}"}, 400)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        parsed = urlparse(self.path)
        try:
            body = self._body()
            if parsed.path == "/advance":
                observations = self.controller.advance(
                    until_s=body.get("until_s"),
                    segments=body.get("segments"),
                )
                self._reply({
                    "segments": observations,
                    "status": self.controller.status(),
                })
            elif parsed.path == "/pause":
                self._reply(self.controller.pause())
            elif parsed.path == "/start":
                self._reply(self.controller.start())
            elif parsed.path == "/restore":
                self._reply(self.controller.restore(body))
            elif parsed.path == "/inject":
                self._reply(self.controller.inject(body))
            else:
                self._reply({"error": f"unknown path {parsed.path!r}"}, 404)
        except CheckpointError as exc:
            self._reply({"error": str(exc)}, 409)
        except Neu10Error as exc:
            self._reply({"error": str(exc)}, 400)
        except (ValueError, TypeError) as exc:
            self._reply({"error": f"invalid parameter: {exc}"}, 400)


class ServeServer(ThreadingHTTPServer):
    """Threading HTTP server owning one controller and one tick thread."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        controller: ServeController,
        tick_s: Optional[float] = None,
    ) -> None:
        super().__init__(address, _Handler)
        self.controller = controller
        self._tick_s = tick_s
        self._stop = threading.Event()
        self._ticker: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start_ticker(self) -> None:
        """Start the auto-tick thread (no-op without a cadence)."""
        if self._tick_s is None or self._ticker is not None:
            return

        def _run() -> None:
            while not self._stop.wait(self._tick_s):
                self.controller.tick()

        self._ticker = threading.Thread(
            target=_run, name="repro-serve-tick", daemon=True
        )
        self._ticker.start()

    def shutdown(self) -> None:
        self._stop.set()
        super().shutdown()


def make_server(
    scenario: Scenario,
    host: str = "127.0.0.1",
    port: int = 0,
    tick_s: Optional[float] = None,
    restore_key: Optional[str] = None,
) -> ServeServer:
    """Build (but do not run) a serve server for one cluster scenario.

    ``port=0`` binds an ephemeral port; read the bound address back
    from ``server.server_address``.  ``tick_s`` enables the auto-tick
    thread once :meth:`ServeServer.start_ticker` is called.
    ``restore_key`` is the HMAC key authenticating ``POST /restore``
    payloads (``None`` generates a fresh random key, readable back from
    ``server.controller.restore_key``); a fresh server restoring a
    snapshot from a dead one must be started with the dead server's
    key.
    """
    controller = ServeController(scenario, restore_key=restore_key)
    if tick_s is not None:
        # A ticking server starts paused so a client can attach and
        # decide before any segment is consumed.
        controller.paused = True
    return ServeServer((host, port), controller, tick_s)


def serve_forever(server: ServeServer) -> None:
    """Run the server until interrupted (the CLI's blocking loop)."""
    server.start_ticker()
    try:
        server.serve_forever()
    finally:
        server.shutdown()
        server.server_close()
