"""Live control of cluster simulations over HTTP (``repro serve``).

Built on the steppable :class:`repro.traffic.cluster_sim.ClusterSimulation`
core: :class:`~repro.serve.controller.ServeController` wraps one
simulation behind a lock, and :class:`~repro.serve.server.ServeServer`
exposes it as stdlib-only JSON endpoints -- advance, pause, snapshot,
restore, metrics, and live injection of tenants and traffic spikes.
Snapshots are the same versioned :class:`~repro.traffic.stepper.ClusterCheckpoint`
payloads the checkpointed ``repro run`` path journals, so a run can
move between the CLI and a live server mid-flight.
"""

from repro.serve.controller import (
    INJECT_KINDS,
    ServeController,
    sign_checkpoint,
)
from repro.serve.server import (
    DEFAULT_TICK_S,
    ServeServer,
    make_server,
    serve_forever,
)

__all__ = [
    "DEFAULT_TICK_S",
    "INJECT_KINDS",
    "ServeController",
    "ServeServer",
    "make_server",
    "serve_forever",
    "sign_checkpoint",
]
