"""Live control of one steppable cluster simulation.

:class:`ServeController` wraps a
:class:`repro.traffic.cluster_sim.ClusterSimulation` behind a lock and
exposes exactly the verbs ``repro serve`` maps to HTTP: advance (by
segments or to a simulated time), pause/start the auto-tick, snapshot
and restore (the same versioned, digest-stamped
:class:`~repro.traffic.stepper.ClusterCheckpoint` the checkpointed CLI
path journals, so a serve snapshot restores under ``repro run
--resume`` and vice versa), partial metrics at any point, and live
injection of tenants and traffic spikes through the simulation's
churn/fault machinery.

Everything the controller returns is a JSON-safe dict; the HTTP layer
(:mod:`repro.serve.server`) only serialises.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets
import threading
from typing import Any, Dict, List, Mapping, Optional

from repro.api.runner import _cluster_run_result, cluster_inputs
from repro.api.scenario import Scenario
from repro.cluster.virt import (
    FAULT_BURST_STORM,
    FAULT_HOST_CRASH,
    FAULT_HYPERCALL_SPIKE,
    FAULT_VF_LOSS,
    FaultSpec,
)
from repro.errors import CheckpointError, ConfigError, ValidationError
from repro.traffic.cluster_sim import (
    ACTION_ARRIVE,
    ACTION_DEPART,
    ChurnEvent,
    ClusterSimulation,
)
from repro.traffic.openloop import TrafficTenantSpec
from repro.traffic.slo import SloSpec
from repro.traffic.stepper import ClusterCheckpoint

#: ``POST /inject`` kinds and the churn/fault machinery each maps to.
INJECT_KINDS = (
    "tenant-arrive",
    "tenant-depart",
    "traffic-spike",
    "hypercall-spike",
    "host-crash",
    "vf-loss",
)

#: Injection kinds that map straight onto a window/point fault kind.
_FAULT_KIND_MAP = {
    "traffic-spike": FAULT_BURST_STORM,
    "hypercall-spike": FAULT_HYPERCALL_SPIKE,
    "host-crash": FAULT_HOST_CRASH,
    "vf-loss": FAULT_VF_LOSS,
}


def _checkpoint_hmac(payload: Mapping[str, Any], key: str) -> str:
    """HMAC-SHA256 of a checkpoint payload (sans ``auth``) under ``key``."""
    try:
        canonical = json.dumps(
            {k: v for k, v in payload.items() if k != "auth"},
            sort_keys=True,
            separators=(",", ":"),
        )
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint: {exc}") from exc
    return hmac.new(
        key.encode("utf-8"), canonical.encode("utf-8"), hashlib.sha256
    ).hexdigest()


def sign_checkpoint(
    payload: Mapping[str, Any], key: str
) -> Dict[str, Any]:
    """Return ``payload`` with the ``auth`` HMAC a server holding ``key``
    accepts.

    A checkpoint payload embeds pickled simulator state, and unpickling
    attacker-supplied bytes executes arbitrary code -- so ``POST
    /restore`` only unpickles payloads whose ``auth`` field carries a
    valid HMAC under the server's restore key.  Snapshots minted by
    ``GET /snapshot`` arrive pre-signed; use this helper to push an
    unsigned journal checkpoint (``repro run --checkpoint``) into a
    live server whose key you hold.
    """
    signed = {k: v for k, v in payload.items() if k != "auth"}
    signed["auth"] = _checkpoint_hmac(signed, key)
    return signed


class ServeController:
    """One scenario, one live simulation, one lock.

    Thread-safe: every verb takes the controller lock, so the HTTP
    server's worker threads and the auto-tick thread serialise their
    access to the underlying :class:`ClusterSimulation`.
    """

    def __init__(
        self, scenario: Scenario, restore_key: Optional[str] = None
    ) -> None:
        if scenario.kind != "cluster":
            raise ConfigError(
                f"scenario {scenario.name!r} is kind {scenario.kind!r}; "
                "repro serve drives kind: cluster scenarios"
            )
        scenario.validate()
        self.scenario = scenario
        self._lock = threading.RLock()
        self._events, self._cfg = cluster_inputs(scenario)
        self.sim = ClusterSimulation(self._events, self._cfg)
        self.paused = False
        #: HMAC key gating ``restore`` -- the one verb that unpickles
        #: its input.  Anyone holding the key can run code as the
        #: server, so it never appears in any endpoint's output.
        self.restore_key = (
            restore_key if restore_key else secrets.token_hex(32)
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def status(self) -> Dict[str, Any]:
        with self._lock:
            sim = self.sim
            return {
                "scenario": self.scenario.name,
                "kind": self.scenario.kind,
                "time_s": sim.time_s,
                "end_s": self._cfg.end_s,
                "segments_completed": sim.segments_completed,
                "total_segments": sim.total_segments,
                "done": sim.done,
                "paused": self.paused,
                "resident_tenants": len(sim.residents),
                "rejected": len(sim.rejected),
                "active_hosts": sim.fleet.active_count(),
                "config_digest": sim.config_digest,
            }

    def segments(self, since: int = 0) -> List[Dict[str, Any]]:
        """Per-segment observations streamed so far, from index ``since``."""
        with self._lock:
            return [
                obs.to_dict()
                for obs in self.sim.segment_log
                if obs.segment_index >= since
            ]

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def advance(
        self,
        until_s: Optional[float] = None,
        segments: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Advance by ``segments`` steps or to simulated time ``until_s``.

        With neither given, advances one segment.  Returns the new
        per-segment observations.
        """
        with self._lock:
            sim = self.sim
            out = []
            if until_s is not None:
                out.extend(sim.advance(float(until_s)))
            else:
                steps = 1 if segments is None else int(segments)
                if steps < 0:
                    raise ValidationError(
                        "segments", segments, "cannot step backwards"
                    )
                for _ in range(steps):
                    if sim.done:
                        break
                    obs = sim.step_segment()
                    if obs is not None:
                        out.append(obs)
            return [obs.to_dict() for obs in out]

    def tick(self) -> bool:
        """One auto-tick step; returns False once done or paused."""
        with self._lock:
            if self.paused or self.sim.done:
                return False
            self.sim.step_segment()
            return not self.sim.done

    def pause(self) -> Dict[str, Any]:
        with self._lock:
            self.paused = True
            return self.status()

    def start(self) -> Dict[str, Any]:
        with self._lock:
            self.paused = False
            return self.status()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return sign_checkpoint(
                self.sim.snapshot().to_dict(), self.restore_key
            )

    def restore(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        # Authenticate before anything else touches the payload: the
        # checkpoint embeds a pickle, and unpickling unauthenticated
        # input would hand remote clients arbitrary code execution.
        provided = payload.get("auth")
        expected = _checkpoint_hmac(payload, self.restore_key)
        if not isinstance(provided, str) or not hmac.compare_digest(
            provided, expected
        ):
            raise CheckpointError(
                "restore payload is not authenticated: checkpoints embed "
                "pickled simulator state, so restore only accepts "
                "payloads whose 'auth' HMAC matches this server's "
                "restore key (see repro.serve.sign_checkpoint)"
            )
        checkpoint = ClusterCheckpoint.from_dict(payload)
        with self._lock:
            # Rebuild the inputs from the scenario rather than reusing
            # the live ones: the running simulation mutates its
            # autoscaler (which the config carries), and the restore
            # digest check needs the pristine configuration.  The
            # checkpoint itself carries any events injected before it
            # was taken.
            events, cfg = cluster_inputs(self.scenario)
            sim = ClusterSimulation.restore(checkpoint, events, cfg)
            # Adopt the rebuilt inputs only after restore succeeds: a
            # refused checkpoint (digest mismatch -> 409) must leave
            # the controller on the live simulation and its config.
            self._events, self._cfg, self.sim = events, cfg, sim
            return self.status()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, Any]:
        """The scenario's RunResult dict for the run so far.

        Mid-run this reports consistent partial metrics; once ``done``
        it is bit-identical to ``repro run``'s result for the same
        scenario (injections aside).
        """
        with self._lock:
            result = self.sim.result()
            return _cluster_run_result(
                self.scenario, self._cfg, result
            ).to_dict()

    # ------------------------------------------------------------------
    # Live injection
    # ------------------------------------------------------------------
    def inject(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Splice a live event into the not-yet-simulated timeline.

        ``payload["kind"]`` picks one of :data:`INJECT_KINDS`;
        ``time_s`` must land strictly in the simulation's future.
        Tenant kinds build a churn event (``tenant-arrive`` needs
        ``name`` and ``model``); the rest build the matching
        :class:`~repro.cluster.virt.FaultSpec`.
        """
        data = dict(payload)
        kind = data.pop("kind", None)
        if kind not in INJECT_KINDS:
            raise ValidationError(
                "kind", kind,
                f"unknown injection kind (expected one of {INJECT_KINDS})",
            )
        try:
            time_s = float(data.pop("time_s"))
        except KeyError:
            raise ValidationError(
                "time_s", None, "injection needs a time_s"
            ) from None
        with self._lock:
            if kind in ("tenant-arrive", "tenant-depart"):
                event = self._churn_event(kind, time_s, data)
                self.sim.inject_churn(event)
            else:
                fault = self._fault(kind, time_s, data)
                self.sim.inject_fault(fault)
            return self.status()

    def _churn_event(
        self, kind: str, time_s: float, data: Dict[str, Any]
    ) -> ChurnEvent:
        name = data.pop("name", None)
        if not name:
            raise ValidationError("name", name, "tenant injection needs a name")
        if kind == "tenant-depart":
            self._refuse_extras(kind, data)
            return ChurnEvent(
                time_s=time_s, action=ACTION_DEPART, name=str(name)
            )
        model = data.pop("model", None)
        if not model:
            raise ValidationError(
                "model", model, "tenant-arrive injection needs a model"
            )
        spec = TrafficTenantSpec(
            model=str(model),
            batch=int(data.pop("batch", 8)),
            weight=float(data.pop("weight", 1.0)),
            slo=SloSpec(relative=float(data.pop("slo_relative", 5.0))),
            priority=float(data.pop("priority", 1.0)),
        )
        num_mes = int(data.pop("num_mes", 1))
        num_ves = int(data.pop("num_ves", 1))
        self._refuse_extras(kind, data)
        return ChurnEvent(
            time_s=time_s,
            action=ACTION_ARRIVE,
            name=str(name),
            spec=spec,
            num_mes=num_mes,
            num_ves=num_ves,
        )

    def _fault(
        self, kind: str, time_s: float, data: Dict[str, Any]
    ) -> FaultSpec:
        fault_kind = _FAULT_KIND_MAP[kind]
        kwargs: Dict[str, Any] = {"kind": fault_kind, "time_s": time_s}
        if kind in ("traffic-spike", "hypercall-spike"):
            try:
                kwargs["duration_s"] = float(data.pop("duration_s"))
            except KeyError:
                raise ValidationError(
                    "duration_s", None, f"{kind} injection needs a duration_s"
                ) from None
            kwargs["factor"] = float(data.pop("factor", 4.0))
        if kind in ("host-crash", "vf-loss") and "host" in data:
            kwargs["host"] = str(data.pop("host"))
        if kind == "vf-loss":
            kwargs["count"] = int(data.pop("count", 1))
        self._refuse_extras(kind, data)
        return FaultSpec(**kwargs)

    @staticmethod
    def _refuse_extras(kind: str, data: Dict[str, Any]) -> None:
        if data:
            raise ValidationError(
                "payload", sorted(data),
                f"unknown key(s) for {kind} injection",
            )
