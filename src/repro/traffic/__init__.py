"""Open-loop traffic generation and cluster-scale serving simulation.

The package adds the production workload axis the paper's closed-loop
methodology leaves out: stochastic arrivals (Poisson / bursty / diurnal
/ trace replay), per-tenant latency SLOs with attainment and goodput
accounting, open-loop single-core runs, and a cluster churn driver that
plays tenant arrive/depart scripts through the orchestrator.
"""

from repro.traffic.arrivals import (
    ARRIVAL_KINDS,
    ArrivalProcess,
    DiurnalProcess,
    OnOffProcess,
    PoissonProcess,
    TraceProcess,
    load_trace_csv,
    make_arrival_process,
)
from repro.traffic.cluster_sim import (
    ACTION_ARRIVE,
    ACTION_DEPART,
    ChurnEvent,
    ClusterTrafficConfig,
    ClusterTrafficResult,
    run_cluster_traffic,
)
from repro.traffic.openloop import (
    OpenLoopConfig,
    OpenLoopResult,
    TrafficTenantSpec,
    isolated_service_cycles,
    run_open_loop,
    sweep_load,
)
from repro.traffic.slo import SloReport, SloSpec, build_slo_report

__all__ = [
    "ACTION_ARRIVE",
    "ACTION_DEPART",
    "ARRIVAL_KINDS",
    "ArrivalProcess",
    "ChurnEvent",
    "ClusterTrafficConfig",
    "ClusterTrafficResult",
    "DiurnalProcess",
    "OnOffProcess",
    "OpenLoopConfig",
    "OpenLoopResult",
    "PoissonProcess",
    "SloReport",
    "SloSpec",
    "TraceProcess",
    "TrafficTenantSpec",
    "build_slo_report",
    "isolated_service_cycles",
    "load_trace_csv",
    "make_arrival_process",
    "run_cluster_traffic",
    "run_open_loop",
    "sweep_load",
]
