"""Per-tenant latency SLOs and attainment reports.

An :class:`SloSpec` names the target; an :class:`SloReport` is the
per-tenant outcome of one open-loop run: offered vs completed vs
attained requests, latency percentiles, queueing delay and goodput.
Unfinished requests (still queued when the horizon hits) count as SLO
misses -- that is what makes attainment degrade monotonically as load
crosses saturation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError
from repro.serving import metrics
from repro.serving.metrics import percentile
from repro.sim.engine import TenantResult


@dataclass(frozen=True)
class SloSpec:
    """Latency target, absolute or relative to isolated service time.

    ``target_cycles`` wins when both are given; ``relative`` expresses
    the target as a multiple of the tenant's calibrated closed-loop
    service time (5x is a common serving-system default: generous at low
    load, violated quickly past saturation).
    """

    target_cycles: Optional[float] = None
    relative: float = 5.0

    def __post_init__(self) -> None:
        if self.target_cycles is not None and self.target_cycles <= 0:
            raise ConfigError("absolute SLO target must be positive")
        if self.relative <= 0:
            raise ConfigError("relative SLO target must be positive")

    def resolve(self, service_cycles: float) -> float:
        if self.target_cycles is not None:
            return self.target_cycles
        return self.relative * service_cycles


@dataclass
class SloReport:
    """One tenant's open-loop scorecard."""

    name: str
    scheme: str
    target_cycles: float
    offered: int
    completed: int
    attained: int
    duration_s: float
    latencies_cycles: List[float] = field(default_factory=list)
    queueing_cycles: List[float] = field(default_factory=list)

    @property
    def attainment(self) -> float:
        """Fraction of *offered* requests served within the SLO."""
        return metrics.slo_attainment(
            self.latencies_cycles, self.target_cycles, offered=self.offered
        )

    @property
    def goodput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return metrics.goodput_rps(
            self.latencies_cycles, self.target_cycles, self.duration_s
        )

    @property
    def throughput_rps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.completed / self.duration_s

    @property
    def mean_latency(self) -> float:
        if not self.latencies_cycles:
            return 0.0
        return sum(self.latencies_cycles) / len(self.latencies_cycles)

    @property
    def p50_latency(self) -> float:
        return percentile(self.latencies_cycles, 50.0)

    @property
    def p95_latency(self) -> float:
        return percentile(self.latencies_cycles, 95.0)

    @property
    def p99_latency(self) -> float:
        return percentile(self.latencies_cycles, 99.0)

    @property
    def mean_queueing_delay(self) -> float:
        if not self.queueing_cycles:
            return 0.0
        return sum(self.queueing_cycles) / len(self.queueing_cycles)

    def merged_with(self, other: "SloReport") -> "SloReport":
        """Combine two windows of the same tenant (cluster aggregation)."""
        if other.name != self.name:
            raise ConfigError(
                f"cannot merge reports for {self.name!r} and {other.name!r}"
            )
        return SloReport(
            name=self.name,
            scheme=self.scheme,
            target_cycles=self.target_cycles,
            offered=self.offered + other.offered,
            completed=self.completed + other.completed,
            attained=self.attained + other.attained,
            duration_s=self.duration_s + other.duration_s,
            latencies_cycles=self.latencies_cycles + other.latencies_cycles,
            queueing_cycles=self.queueing_cycles + other.queueing_cycles,
        )


def build_slo_report(
    name: str,
    scheme: str,
    target_cycles: float,
    result: TenantResult,
    duration_s: float,
    offered: Optional[int] = None,
) -> SloReport:
    """Score one tenant's :class:`TenantResult` against its SLO.

    ``offered`` overrides the engine's issued-request count with the
    number of arrivals *generated* for the window.  The two differ only
    when an arrival lands exactly on the horizon (the engine never
    issues it) -- a measure-zero event for continuous arrival processes,
    but systematic when control-plane onboarding latency clamps a late
    tenant's arrivals to the segment boundary.  Counting those requests
    as offered-but-missed keeps conservation exact: a request offered
    inside the window can never silently vanish from the denominator.
    """
    if target_cycles <= 0:
        raise ConfigError("SLO target must be positive")
    attained = sum(1 for lat in result.latencies_cycles if lat <= target_cycles)
    return SloReport(
        name=name,
        scheme=scheme,
        target_cycles=target_cycles,
        # Never below the issued count: attained <= completed <= offered.
        offered=(
            result.offered_requests
            if offered is None
            else max(offered, result.offered_requests)
        ),
        completed=result.completed_requests,
        attained=attained,
        duration_s=duration_s,
        latencies_cycles=list(result.latencies_cycles),
        queueing_cycles=list(result.queueing_cycles),
    )
