"""Open-loop serving runs on one NPU core.

The closed-loop methodology (``serving.server.run_collocation``) answers
"how fast can collocated tenants go"; this module answers the production
question: "at a given *offered load*, do tenants meet their SLOs?".

Load is expressed as a utilization factor per tenant: ``load=0.8`` means
each tenant's mean arrival rate is 80% of the reciprocal of its
*calibrated* closed-loop service time at its own allocation.  Below 1.0
queues stay short; above 1.0 the tenant is offered more work than its
vNPU can serve and attainment collapses -- the regime the paper's
harvesting story is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.config import DEFAULT_CORE, DEFAULT_SEED, NpuCoreConfig, spawn_rng
from repro.errors import ConfigError
from repro.api.registries import scheme_isa
from repro.serving.server import make_scheduler
from repro.sim.engine import Simulator, Tenant
from repro.traffic.arrivals import ArrivalProcess, make_arrival_process
from repro.traffic.slo import SloReport, SloSpec, build_slo_report
from repro.workloads.traces import build_trace


@dataclass(frozen=True)
class TrafficTenantSpec:
    """One tenant of an open-loop scenario."""

    model: str
    batch: int = 8
    #: Relative share of the configured load factor.
    weight: float = 1.0
    slo: SloSpec = field(default_factory=SloSpec)
    alloc_mes: Optional[int] = None
    alloc_ves: Optional[int] = None
    priority: float = 1.0
    #: Per-tenant arrival-kind override (None = scenario default).
    arrival: Optional[str] = None


@dataclass
class OpenLoopConfig:
    """Parameters of one open-loop measurement window."""

    core: NpuCoreConfig = field(default_factory=lambda: DEFAULT_CORE)
    duration_s: float = 0.002
    load: float = 0.8
    arrival: str = "poisson"
    seed: int = DEFAULT_SEED
    #: Drain mode runs past the window until every admitted request is
    #: served (latency-complete); otherwise the horizon cuts queues off
    #: and unfinished requests count as SLO misses.
    drain: bool = False
    record_ops: bool = False

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigError("duration must be positive")
        if self.load <= 0:
            raise ConfigError("load factor must be positive")


@dataclass
class OpenLoopResult:
    scheme: str
    load: float
    duration_s: float
    reports: List[SloReport]
    me_utilization: float
    ve_utilization: float
    total_cycles: float

    def report(self, name: str) -> SloReport:
        for rep in self.reports:
            if rep.name == name:
                return rep
        raise KeyError(f"no tenant {name!r} in this run")

    @property
    def min_attainment(self) -> float:
        if not self.reports:
            return 1.0
        return min(r.attainment for r in self.reports)


def _default_allocs(
    specs: Sequence[TrafficTenantSpec], core: NpuCoreConfig
) -> List[tuple]:
    share_mes = max(1, core.num_mes // max(1, len(specs)))
    share_ves = max(1, core.num_ves // max(1, len(specs)))
    return [
        (
            s.alloc_mes if s.alloc_mes is not None else share_mes,
            s.alloc_ves if s.alloc_ves is not None else share_ves,
        )
        for s in specs
    ]


@lru_cache(maxsize=256)
def _calibrate_cached(
    model: str,
    batch: int,
    alloc_mes: int,
    alloc_ves: int,
    scheme: str,
    core: NpuCoreConfig,
) -> float:
    """Mean closed-loop latency (cycles) of the model running alone at
    the allocation it will hold in the collocated open-loop run."""
    trace = build_trace(model, batch, core=core)
    tenant = Tenant(
        tenant_id=0,
        name=trace.abbrev,
        graph=trace.compiled(scheme_isa(scheme)),
        alloc_mes=alloc_mes,
        alloc_ves=alloc_ves,
        target_requests=3,
    )
    result = Simulator(core, make_scheduler(scheme), [tenant], record_ops=False).run()
    svc = result.tenant(0).mean_latency
    if svc <= 0:
        raise ConfigError(f"calibration produced zero service time for {model}")
    return svc


def isolated_service_cycles(
    spec: TrafficTenantSpec,
    scheme: str,
    core: NpuCoreConfig,
    n_tenants: int = 1,
) -> float:
    """Public calibration entry point (memoised)."""
    share_mes = max(1, core.num_mes // max(1, n_tenants))
    share_ves = max(1, core.num_ves // max(1, n_tenants))
    return _calibrate_cached(
        spec.model,
        spec.batch,
        spec.alloc_mes if spec.alloc_mes is not None else share_mes,
        spec.alloc_ves if spec.alloc_ves is not None else share_ves,
        scheme,
        core,
    )


def arrival_process_for(
    spec: TrafficTenantSpec,
    cfg: OpenLoopConfig,
    service_cycles: float,
    duration_cycles: float,
) -> ArrivalProcess:
    rate = cfg.load * spec.weight / service_cycles
    return make_arrival_process(
        spec.arrival or cfg.arrival, rate, duration_cycles=duration_cycles
    )


@dataclass
class PreparedOpenLoop:
    """A built-but-unrun open-loop window.

    ``prepare_open_loop`` front-loads everything stochastic or
    structural (calibration, arrival streams, tenant construction) so
    the simulator can be stepped by any driver -- ``sim.run()`` alone
    or co-stepped with other windows in a
    :class:`repro.megabatch.MegaBatchEngine` batch -- and scored
    afterwards with :func:`finalize_open_loop`.  Results are identical
    either way.
    """

    sim: Simulator
    scheme: str
    cfg: OpenLoopConfig
    tenants: List[Tenant]
    targets: Dict[int, float]
    #: Arrivals *generated* per tenant for the window; the conservation
    #: source of truth for ``offered`` (an arrival exactly on the
    #: horizon is never issued by the engine but was still offered).
    offered: Dict[int, int] = field(default_factory=dict)


def prepare_open_loop(
    specs: Sequence[TrafficTenantSpec],
    scheme: str,
    cfg: Optional[OpenLoopConfig] = None,
) -> PreparedOpenLoop:
    """Build the simulator and SLO targets for one open-loop window."""
    if not specs:
        raise ConfigError("open-loop run needs at least one tenant")
    cfg = cfg if cfg is not None else OpenLoopConfig()
    core = cfg.core
    duration_cycles = core.seconds_to_cycles(cfg.duration_s)
    allocs = _default_allocs(specs, core)
    isa = scheme_isa(scheme)

    tenants: List[Tenant] = []
    targets: Dict[int, float] = {}
    offered: Dict[int, int] = {}
    model_counts: Dict[str, int] = {}
    for spec in specs:
        model_counts[spec.model] = model_counts.get(spec.model, 0) + 1
    for idx, (spec, (mes, ves)) in enumerate(zip(specs, allocs)):
        svc = _calibrate_cached(spec.model, spec.batch, mes, ves, scheme, core)
        process = arrival_process_for(spec, cfg, svc, duration_cycles)
        rng = spawn_rng(cfg.seed, scheme, spec.model, idx)
        arrivals = process.generate(duration_cycles, rng)
        trace = build_trace(spec.model, spec.batch, core=core)
        # Repeated models get an index suffix so reports stay addressable.
        name = (
            trace.abbrev
            if model_counts[spec.model] == 1
            else f"{trace.abbrev}#{idx}"
        )
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=name,
                graph=trace.compiled(isa),
                alloc_mes=mes,
                alloc_ves=ves,
                target_requests=None,
                priority=spec.priority,
                arrivals=arrivals,
            )
        )
        targets[idx] = spec.slo.resolve(svc)
        offered[idx] = len(arrivals)

    sim = Simulator(
        core,
        make_scheduler(scheme),
        tenants,
        horizon_cycles=float("inf") if cfg.drain else duration_cycles,
        record_ops=cfg.record_ops,
    )
    return PreparedOpenLoop(
        sim=sim, scheme=scheme, cfg=cfg, tenants=tenants, targets=targets,
        offered=offered,
    )


def finalize_open_loop(prep: PreparedOpenLoop, result) -> OpenLoopResult:
    """Score a finished window's :class:`SimResult` into reports."""
    reports = [
        build_slo_report(
            tenant.name,
            prep.scheme,
            prep.targets[tenant.tenant_id],
            result.tenant(tenant.tenant_id),
            prep.cfg.duration_s,
            offered=prep.offered.get(tenant.tenant_id),
        )
        for tenant in prep.tenants
    ]
    return OpenLoopResult(
        scheme=prep.scheme,
        load=prep.cfg.load,
        duration_s=prep.cfg.duration_s,
        reports=reports,
        me_utilization=result.stats.me_utilization(),
        ve_utilization=result.stats.ve_utilization(),
        total_cycles=result.total_cycles,
    )


def run_open_loop(
    specs: Sequence[TrafficTenantSpec],
    scheme: str,
    cfg: Optional[OpenLoopConfig] = None,
) -> OpenLoopResult:
    """Simulate one open-loop window and score every tenant's SLO."""
    prep = prepare_open_loop(specs, scheme, cfg)
    return finalize_open_loop(prep, prep.sim.run())


def sweep_load(
    specs: Sequence[TrafficTenantSpec],
    scheme: str,
    loads: Sequence[float],
    cfg: Optional[OpenLoopConfig] = None,
) -> List[OpenLoopResult]:
    """One open-loop run per load factor (same seed, same window)."""
    cfg = cfg if cfg is not None else OpenLoopConfig()
    return [run_open_loop(specs, scheme, replace(cfg, load=load)) for load in loads]
