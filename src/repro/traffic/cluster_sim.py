"""Cluster-scale open-loop serving under tenant churn.

Plays a *churn script* -- timestamped tenant arrive/depart events --
through :class:`repro.cluster.orchestrator.ClusterOrchestrator` (the
KubeVirt stand-in), then simulates every host's resident tenants with
one :class:`Simulator` per host per stable interval.  The timeline is
cut at churn events; within each segment the tenant population is fixed,
so the per-host fluid simulation is exact, and the per-tenant metrics
are merged across segments into one :class:`SloReport` each.

Hosts with several cores are simulated as one core with the host's
aggregate engine count -- a fluid approximation consistent with the
engine's execution model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.host import Host
from repro.cluster.orchestrator import ClusterOrchestrator, PlacementRequest
from repro.cluster.placement import LeastLoadedPolicy, PlacementPolicy
from repro.config import DEFAULT_CORE, DEFAULT_SEED, NpuCoreConfig, spawn_rng
from repro.errors import ConfigError
from repro.parallel import parallel_map
from repro.api.registries import SCHEDULERS, scheme_isa
from repro.serving.server import make_scheduler
from repro.sim.engine import Simulator, Tenant
from repro.traffic.openloop import (
    OpenLoopConfig,
    TrafficTenantSpec,
    _calibrate_cached,
    arrival_process_for,
)
from repro.traffic.slo import SloReport, build_slo_report
from repro.workloads.traces import build_trace

ACTION_ARRIVE = "arrive"
ACTION_DEPART = "depart"


@dataclass(frozen=True)
class ChurnEvent:
    """One tenant joining or leaving the cluster."""

    time_s: float
    action: str
    name: str
    spec: Optional[TrafficTenantSpec] = None
    num_mes: int = 2
    num_ves: int = 2

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ConfigError("churn events cannot happen before t=0")
        if self.action not in (ACTION_ARRIVE, ACTION_DEPART):
            raise ConfigError(f"unknown churn action {self.action!r}")
        if self.action == ACTION_ARRIVE and self.spec is None:
            raise ConfigError(f"arrive event for {self.name!r} needs a spec")


@dataclass
class ClusterTrafficConfig:
    """Cluster geometry + the shared open-loop knobs."""

    num_hosts: int = 2
    cores_per_host: int = 1
    core: NpuCoreConfig = field(default_factory=lambda: DEFAULT_CORE)
    scheme: str = "neu10"
    arrival: str = "poisson"
    load: float = 0.6
    end_s: float = 0.002
    seed: int = DEFAULT_SEED
    policy: Optional[PlacementPolicy] = None
    #: Process-pool width for simulating independent hosts of one
    #: segment concurrently (None = REPRO_PARALLEL_WORKERS / CPU count;
    #: 1 = serial).  Results are identical for any worker count: every
    #: stochastic input is drawn before dispatch and merged in host
    #: order.
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_hosts < 1 or self.cores_per_host < 1:
            raise ConfigError("cluster needs at least one host and core")
        if self.end_s <= 0:
            raise ConfigError("cluster run needs a positive end time")


@dataclass
class ClusterTrafficResult:
    reports: Dict[str, SloReport]
    #: Time-weighted mean ME utilization per host over the whole run.
    host_me_utilization: Dict[str, float]
    host_ve_utilization: Dict[str, float]
    admission_rate: float
    rejected: List[str]
    segments: int
    #: Core-cycles actually simulated, summed over hosts and segments
    #: (drained hosts stop before the segment boundary, so this can be
    #: below ``hosts x horizon``).
    simulated_cycles: float = 0.0

    @property
    def cluster_me_utilization(self) -> float:
        if not self.host_me_utilization:
            return 0.0
        vals = self.host_me_utilization.values()
        return sum(vals) / len(vals)

    @property
    def cluster_ve_utilization(self) -> float:
        if not self.host_ve_utilization:
            return 0.0
        vals = self.host_ve_utilization.values()
        return sum(vals) / len(vals)


@dataclass
class _Resident:
    request_id: int
    host: Host
    spec: TrafficTenantSpec
    num_mes: int
    num_ves: int


@dataclass(frozen=True)
class _TenantJob:
    """Picklable description of one tenant of a host-segment job."""

    name: str
    model: str
    batch: int
    alloc_mes: int
    alloc_ves: int
    priority: float
    target_cycles: float
    arrivals: Tuple[float, ...]


@dataclass(frozen=True)
class _HostSegmentJob:
    """One host's simulation work for one stable churn segment.

    Fully self-contained and picklable so host segments can be simulated
    in worker processes; the arrival streams are drawn in the parent
    (seeded per tenant and segment) to keep results independent of the
    worker count.
    """

    host_name: str
    host_core: NpuCoreConfig
    scheme: str
    seg_s: float
    seg_cycles: float
    tenants: Tuple[_TenantJob, ...]


def _simulate_host_segment(
    job: _HostSegmentJob,
) -> Tuple[str, float, float, float, List[Tuple[str, SloReport]]]:
    """Worker entry point: simulate one host over one segment."""
    isa = scheme_isa(job.scheme)
    tenants: List[Tenant] = []
    for idx, tj in enumerate(job.tenants):
        trace = build_trace(tj.model, tj.batch, core=job.host_core)
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=tj.name,
                graph=trace.compiled(isa),
                alloc_mes=tj.alloc_mes,
                alloc_ves=tj.alloc_ves,
                target_requests=None,
                priority=tj.priority,
                arrivals=list(tj.arrivals),
            )
        )
    sim = Simulator(
        job.host_core,
        make_scheduler(job.scheme),
        tenants,
        horizon_cycles=job.seg_cycles,
        record_ops=False,
    )
    result = sim.run()
    # Drain can end the simulation before the segment boundary;
    # utilization only covers the cycles actually simulated.
    simulated_s = min(
        job.seg_s, job.host_core.cycles_to_seconds(result.total_cycles)
    )
    reports = [
        (
            tj.name,
            build_slo_report(
                tj.name, job.scheme, tj.target_cycles,
                result.tenant(idx), job.seg_s,
            ),
        )
        for idx, tj in enumerate(job.tenants)
    ]
    return (
        job.host_name,
        result.stats.me_utilization() * simulated_s,
        result.stats.ve_utilization() * simulated_s,
        min(result.total_cycles, job.seg_cycles),
        reports,
    )


def _segment_boundaries(events: Sequence[ChurnEvent], end_s: float) -> List[float]:
    cuts = {0.0, end_s}
    for ev in events:
        if ev.time_s < end_s:
            cuts.add(ev.time_s)
    return sorted(cuts)


def run_cluster_traffic(
    events: Sequence[ChurnEvent],
    cfg: Optional[ClusterTrafficConfig] = None,
) -> ClusterTrafficResult:
    """Play a churn script and aggregate cluster-wide SLO metrics."""
    cfg = cfg if cfg is not None else ClusterTrafficConfig()
    host_core = cfg.core.with_engines(
        cfg.core.num_mes * cfg.cores_per_host,
        cfg.core.num_ves * cfg.cores_per_host,
    )
    hosts = [Host(f"host{i}", [cfg.core] * cfg.cores_per_host)
             for i in range(cfg.num_hosts)]
    orch = ClusterOrchestrator(
        hosts, cfg.policy if cfg.policy is not None else LeastLoadedPolicy()
    )

    ordered = sorted(events, key=lambda e: (e.time_s, e.action != ACTION_DEPART))
    residents: Dict[str, _Resident] = {}
    rejected: List[str] = []
    reports: Dict[str, SloReport] = {}
    busy: Dict[str, Tuple[float, float]] = {h.name: (0.0, 0.0) for h in hosts}
    SCHEDULERS.get(cfg.scheme)  # helpful unknown-scheme error up front

    def apply_events(at: float) -> None:
        for ev in ordered:
            if ev.time_s != at:
                continue
            if ev.action == ACTION_ARRIVE:
                if ev.name in residents:
                    raise ConfigError(f"tenant {ev.name!r} is already resident")
                placement = orch.submit(
                    PlacementRequest(
                        owner=ev.name, num_mes=ev.num_mes, num_ves=ev.num_ves
                    )
                )
                if placement is None:
                    rejected.append(ev.name)
                    continue
                residents[ev.name] = _Resident(
                    request_id=placement.request.request_id,
                    host=placement.host,
                    spec=ev.spec,
                    num_mes=ev.num_mes,
                    num_ves=ev.num_ves,
                )
            else:
                resident = residents.pop(ev.name, None)
                if resident is None:
                    if ev.name in rejected:
                        continue  # never admitted; nothing to release
                    raise ConfigError(f"tenant {ev.name!r} is not resident")
                orch.release(resident.request_id)

    boundaries = _segment_boundaries(ordered, cfg.end_s)
    segments = 0
    simulated_cycles = 0.0
    for seg_index, (t0, t1) in enumerate(zip(boundaries, boundaries[1:])):
        apply_events(t0)
        seg_s = t1 - t0
        if seg_s <= 0:
            continue
        segments += 1
        seg_cycles = cfg.core.seconds_to_cycles(seg_s)
        by_host: Dict[str, List[Tuple[str, _Resident]]] = {}
        for name, resident in residents.items():
            by_host.setdefault(resident.host.name, []).append((name, resident))

        ol_cfg = OpenLoopConfig(
            core=host_core,
            duration_s=seg_s,
            load=cfg.load,
            arrival=cfg.arrival,
            seed=cfg.seed,
        )
        jobs: List[_HostSegmentJob] = []
        for host in hosts:
            group = by_host.get(host.name, [])
            if not group:
                continue
            tenant_jobs: List[_TenantJob] = []
            for name, resident in sorted(group):
                spec = resident.spec
                svc = _calibrate_cached(
                    spec.model, spec.batch, resident.num_mes, resident.num_ves,
                    cfg.scheme, host_core,
                )
                process = arrival_process_for(spec, ol_cfg, svc, seg_cycles)
                rng = spawn_rng(cfg.seed, name, seg_index)
                arrivals = process.generate(seg_cycles, rng)
                tenant_jobs.append(
                    _TenantJob(
                        name=name,
                        model=spec.model,
                        batch=spec.batch,
                        alloc_mes=resident.num_mes,
                        alloc_ves=resident.num_ves,
                        priority=spec.priority,
                        target_cycles=spec.slo.resolve(svc),
                        arrivals=tuple(arrivals),
                    )
                )
            if all(not tj.arrivals for tj in tenant_jobs):
                continue
            jobs.append(
                _HostSegmentJob(
                    host_name=host.name,
                    host_core=host_core,
                    scheme=cfg.scheme,
                    seg_s=seg_s,
                    seg_cycles=seg_cycles,
                    tenants=tuple(tenant_jobs),
                )
            )

        # Hosts are independent within a stable segment: fan out, then
        # merge in deterministic host order.
        outcomes = parallel_map(
            _simulate_host_segment, jobs, max_workers=cfg.max_workers
        )
        for host_name, me_seconds, ve_seconds, cycles, host_reports in outcomes:
            me_s, ve_s = busy[host_name]
            busy[host_name] = (me_s + me_seconds, ve_s + ve_seconds)
            simulated_cycles += cycles
            for name, report in host_reports:
                reports[name] = (
                    reports[name].merged_with(report) if name in reports else report
                )

    total_s = cfg.end_s
    return ClusterTrafficResult(
        reports=reports,
        host_me_utilization={h: me / total_s for h, (me, _) in busy.items()},
        host_ve_utilization={h: ve / total_s for h, (_, ve) in busy.items()},
        admission_rate=orch.admission_rate(),
        rejected=rejected,
        segments=segments,
        simulated_cycles=simulated_cycles,
    )
