"""Cluster-scale open-loop serving under tenant churn and autoscaling.

Plays a *churn script* -- timestamped tenant arrive/depart events --
through :class:`repro.cluster.orchestrator.ClusterOrchestrator` (the
KubeVirt stand-in), then simulates every host's resident tenants with
one :class:`Simulator` per host per stable interval.  The timeline is
cut at churn events; within each segment the tenant population is fixed,
so the per-host fluid simulation is exact, and the per-tenant metrics
are merged across segments into one :class:`SloReport` each.

Tenant admission, departure and migration go through each host's real
virtualization control plane (:mod:`repro.runtime`): placement opens a
guest driver -- a create hypercall, an SR-IOV virtual function, IOMMU
DMA registration -- and release closes it again.  A
:class:`~repro.cluster.virt.VirtualizationSpec` makes that control
plane bind: per-pool VF budgets turn SR-IOV exhaustion into an
admission-rejection cause, per-hypercall latency holds a tenant's
arrivals back while it onboards, and the run reports hypercall counts,
VF-occupancy timelines and IOMMU mapping counts (also fed to the
autoscaler through :class:`SegmentObservation`).  Without a spec the
driver behaves exactly as before virtualization was wired in.

When :attr:`ClusterTrafficConfig.autoscaler` is set the loop closes:
after every segment the controller receives a
:class:`~repro.cluster.autoscale.SegmentObservation` (attainment,
utilization, rejections over that segment) and may activate hosts from
the configured :class:`~repro.cluster.autoscale.HostPoolSpec` pools or
drain hosts -- migrating their tenants through the placement policy --
before the next segment's arrivals are drawn.  With the autoscaler
unset (the default) the driver takes exactly the pre-autoscaling code
path, so results are bit-identical to earlier releases.

Hosts with several cores are simulated as one core with the host's
aggregate engine count -- a fluid approximation consistent with the
engine's execution model.  Tenant demand (arrival rates, SLO targets)
is always calibrated against the *nominal* host defined by
``core``/``cores_per_host``, so migrating a tenant between
heterogeneous pool hosts changes its service capacity, never its
offered load.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster import orchestrator as _orchestrator_module
from repro.cluster.autoscale import (
    ACTION_ADD,
    ACTION_DRAIN,
    ACTION_REBALANCE,
    Autoscaler,
    AutoscaleEvent,
    HostPoolSpec,
    ScalingAction,
    SegmentObservation,
)
from repro.cluster.host import Host
from repro.cluster.orchestrator import ClusterOrchestrator, PlacementRequest
from repro.cluster.placement import PlacementPolicy
from repro.cluster.virt import (
    FAULT_BURST_STORM,
    FAULT_HOST_CRASH,
    FAULT_HYPERCALL_SPIKE,
    FAULT_VF_LOSS,
    FaultSpec,
    REJECT_CAPACITY,
    REJECT_VF_EXHAUSTED,
    VirtualizationSpec,
    VirtualizationSummary,
    remove_free_vfs,
)
from repro.config import DEFAULT_CORE, DEFAULT_SEED, NpuCoreConfig, spawn_rng
from repro.core import vnpu as _vnpu_module
from repro.errors import (
    CheckpointError,
    ConfigError,
    SimulationError,
    ValidationError,
)
from repro.megabatch import megabatch_default
from repro.parallel import parallel_map
from repro.runtime import command as _command_module
from repro.api.registries import SCHEDULERS, scheme_isa
from repro.serving.server import make_scheduler
from repro.sim.engine import Simulator, Tenant
from repro.traffic.stepper import (
    EVENT_CHURN,
    EVENT_FAULT,
    ClusterCheckpoint,
    Timeline,
    build_timeline,
    merge_boundaries,
)
from repro.traffic.openloop import (
    OpenLoopConfig,
    TrafficTenantSpec,
    _calibrate_cached,
    arrival_process_for,
)
from repro.traffic.slo import SloReport, build_slo_report
from repro.workloads.traces import build_trace

ACTION_ARRIVE = "arrive"
ACTION_DEPART = "depart"


@dataclass(frozen=True)
class ChurnEvent:
    """One tenant joining or leaving the cluster."""

    time_s: float
    action: str
    name: str
    spec: Optional[TrafficTenantSpec] = None
    num_mes: int = 2
    num_ves: int = 2

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValidationError(
                "time_s", self.time_s, "churn events cannot happen before t=0"
            )
        if self.action not in (ACTION_ARRIVE, ACTION_DEPART):
            raise ValidationError(
                "action", self.action,
                f"unknown churn action (expected {ACTION_ARRIVE!r} or "
                f"{ACTION_DEPART!r})",
            )
        if self.action == ACTION_ARRIVE and self.spec is None:
            raise ValidationError(
                "spec", None, f"arrive event for {self.name!r} needs a spec"
            )


@dataclass
class ClusterTrafficConfig:
    """Cluster geometry + the shared open-loop knobs.

    Two geometry spellings: the legacy ``num_hosts``/``cores_per_host``
    pair (a fixed homogeneous fleet), or explicit ``pools`` of
    :class:`~repro.cluster.autoscale.HostPoolSpec` for elastic and
    heterogeneous clusters.  ``pools`` wins when both are given.
    """

    num_hosts: int = 2
    cores_per_host: int = 1
    core: NpuCoreConfig = field(default_factory=lambda: DEFAULT_CORE)
    scheme: str = "neu10"
    arrival: str = "poisson"
    load: float = 0.6
    end_s: float = 0.002
    seed: int = DEFAULT_SEED
    policy: Optional[PlacementPolicy] = None
    #: Process-pool width for simulating independent hosts of one
    #: segment concurrently (None = REPRO_PARALLEL_WORKERS / CPU count;
    #: 1 = serial).  Results are identical for any worker count: every
    #: stochastic input is drawn before dispatch and merged in host
    #: order.
    max_workers: Optional[int] = None
    #: Elastic host pools (empty = the fixed num_hosts x cores_per_host
    #: fleet).
    pools: Tuple[HostPoolSpec, ...] = ()
    #: Closed-loop scaling policy (None = static cluster, the exact
    #: pre-autoscaling code path).
    autoscaler: Optional[Autoscaler] = None
    #: Extra observation boundaries every ``interval`` seconds, so the
    #: controller acts even between churn events (None = churn cuts
    #: only).  Ignored without an autoscaler.
    autoscale_interval_s: Optional[float] = None
    #: Virtualization control-plane knobs (None = default VF pools,
    #: free hypercalls, no control-plane telemetry on the result --
    #: the exact pre-virtualization code path).
    virtualization: Optional[VirtualizationSpec] = None
    #: Fan host segments out through a :mod:`repro.exec` backend
    #: (an :class:`repro.exec.ExecSpec`; None = the plain
    #: ``parallel_map`` path, bit-identical to pre-executor releases).
    #: ``keep_going`` is coerced off: host segments are partial products
    #: of one simulation, so a dropped segment must abort, not skew.
    executor: Optional[object] = None
    #: Injected failures (host crashes, VF loss, hypercall spikes,
    #: traffic burst storms); empty = the exact fault-free code path,
    #: bit-identical to releases without fault injection.
    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.num_hosts < 1:
            raise ValidationError(
                "num_hosts", self.num_hosts,
                "a cluster needs at least one host",
            )
        if self.cores_per_host < 1:
            raise ValidationError(
                "cores_per_host", self.cores_per_host,
                "hosts need at least one core",
            )
        if self.end_s <= 0:
            raise ValidationError(
                "end_s", self.end_s, "cluster run needs a positive end time"
            )
        self.pools = tuple(self.pools)
        self.faults = tuple(self.faults)
        names = [p.name for p in self.pools]
        if len(set(names)) != len(names):
            raise ValidationError(
                "pools", names, "host pool names must be unique"
            )
        if self.autoscale_interval_s is not None and self.autoscale_interval_s <= 0:
            raise ValidationError(
                "autoscale_interval_s", self.autoscale_interval_s,
                "autoscale interval must be positive",
            )


@dataclass
class ClusterTrafficResult:
    reports: Dict[str, SloReport]
    #: Time-weighted mean ME utilization per host over the whole run.
    host_me_utilization: Dict[str, float]
    host_ve_utilization: Dict[str, float]
    admission_rate: float
    rejected: List[str]
    segments: int
    #: Core-cycles actually simulated, summed over hosts and segments
    #: (drained hosts stop before the segment boundary, so this can be
    #: below ``hosts x horizon``).
    simulated_cycles: float = 0.0
    #: Audit log of applied scaling steps (empty without an autoscaler).
    autoscale_events: List[AutoscaleEvent] = field(default_factory=list)
    #: (time_s, live host count) after every boundary's actions.
    host_count_timeline: List[Tuple[float, int]] = field(default_factory=list)
    #: Time-weighted mean live host count over the run.
    mean_active_hosts: float = 0.0
    #: Control-plane telemetry (None unless
    #: :attr:`ClusterTrafficConfig.virtualization` was configured).
    virtualization: Optional[VirtualizationSummary] = None
    #: Audit log of injected faults as applied (empty without a
    #: ``faults`` config): one dict per fault with what it actually did
    #: (victim host, migrations, evictions, VFs removed, ...).
    fault_events: List[Dict[str, object]] = field(default_factory=list)

    @property
    def cluster_me_utilization(self) -> float:
        if not self.host_me_utilization:
            return 0.0
        vals = self.host_me_utilization.values()
        return sum(vals) / len(vals)

    @property
    def cluster_ve_utilization(self) -> float:
        if not self.host_ve_utilization:
            return 0.0
        vals = self.host_ve_utilization.values()
        return sum(vals) / len(vals)

    @property
    def cluster_attainment(self) -> float:
        """Attained / offered over every admitted tenant (1.0 if idle)."""
        offered = sum(r.offered for r in self.reports.values())
        if offered == 0:
            return 1.0
        attained = sum(r.attained for r in self.reports.values())
        return attained / offered


@dataclass
class _Resident:
    request_id: int
    host: Host
    spec: TrafficTenantSpec
    num_mes: int
    num_ves: int


@dataclass(frozen=True)
class _TenantJob:
    """Picklable description of one tenant of a host-segment job."""

    name: str
    model: str
    batch: int
    alloc_mes: int
    alloc_ves: int
    priority: float
    target_cycles: float
    arrivals: Tuple[float, ...]
    #: Arrivals generated for the segment (conservation source of truth
    #: for ``offered``; None = legacy jobs, fall back to the issued
    #: count).  Differs from ``len(arrivals)`` never -- kept explicit so
    #: the job stays self-describing across pickling.
    offered: Optional[int] = None


@dataclass(frozen=True)
class _HostSegmentJob:
    """One host's simulation work for one stable churn segment.

    Fully self-contained and picklable so host segments can be simulated
    in worker processes; the arrival streams are drawn in the parent
    (seeded per tenant and segment) to keep results independent of the
    worker count.
    """

    host_name: str
    host_core: NpuCoreConfig
    scheme: str
    seg_s: float
    seg_cycles: float
    tenants: Tuple[_TenantJob, ...]


def _build_host_segment(job: _HostSegmentJob) -> Simulator:
    """Construct the one-host simulator for a segment job."""
    isa = scheme_isa(job.scheme)
    tenants: List[Tenant] = []
    for idx, tj in enumerate(job.tenants):
        trace = build_trace(tj.model, tj.batch, core=job.host_core)
        tenants.append(
            Tenant(
                tenant_id=idx,
                name=tj.name,
                graph=trace.compiled(isa),
                alloc_mes=tj.alloc_mes,
                alloc_ves=tj.alloc_ves,
                target_requests=None,
                priority=tj.priority,
                arrivals=list(tj.arrivals),
            )
        )
    return Simulator(
        job.host_core,
        make_scheduler(job.scheme),
        tenants,
        horizon_cycles=job.seg_cycles,
        record_ops=False,
    )


def _finalize_host_segment(
    job: _HostSegmentJob, result
) -> Tuple[str, float, float, float, List[Tuple[str, SloReport]]]:
    """Score a finished segment simulation into the merge tuple."""
    # Drain can end the simulation before the segment boundary;
    # utilization only covers the cycles actually simulated.
    simulated_s = min(
        job.seg_s, job.host_core.cycles_to_seconds(result.total_cycles)
    )
    reports = [
        (
            tj.name,
            build_slo_report(
                tj.name, job.scheme, tj.target_cycles,
                result.tenant(idx), job.seg_s,
                offered=tj.offered,
            ),
        )
        for idx, tj in enumerate(job.tenants)
    ]
    return (
        job.host_name,
        result.stats.me_utilization() * simulated_s,
        result.stats.ve_utilization() * simulated_s,
        min(result.total_cycles, job.seg_cycles),
        reports,
    )


def _simulate_host_segment(
    job: _HostSegmentJob,
) -> Tuple[str, float, float, float, List[Tuple[str, SloReport]]]:
    """Worker entry point: simulate one host over one segment."""
    return _finalize_host_segment(job, _build_host_segment(job).run())


#: Host segments co-stepped per mega-batch worker (see
#: ``repro.megabatch``); chunking keeps multi-process fan-out useful on
#: big fleets while each worker amortises its batch engine.
_SEGMENT_BATCH = 64


def _simulate_host_segment_batch(
    jobs: Sequence[_HostSegmentJob],
) -> List[Tuple[str, float, float, float, List[Tuple[str, SloReport]]]]:
    """Worker entry point: co-step one chunk of host segments through a
    single mega-batch engine.  Bit-identical to mapping
    ``_simulate_host_segment`` over the chunk."""
    sims = [_build_host_segment(job) for job in jobs]
    if len(sims) > 1:
        from repro.megabatch import run_simulators

        results = run_simulators(sims)
    else:
        results = [sim.run() for sim in sims]
    return [
        _finalize_host_segment(job, result)
        for job, result in zip(jobs, results)
    ]


def _executor_fan_out(
    jobs: Sequence[_HostSegmentJob], cfg: "ClusterTrafficConfig"
) -> List[Tuple[str, float, float, float, List[Tuple[str, SloReport]]]]:
    """Fan one segment's host jobs out through a ``repro.exec`` backend.

    Mirrors the ``parallel_map`` branch exactly (same mega-batch
    chunking, same merge order), adding the executor's retry/timeout
    robustness.  ``keep_going`` is coerced off: unlike sweep points,
    host segments are partial products of one simulation -- silently
    dropping one would skew cluster metrics rather than shrink a result
    list -- so a permanently failed segment aborts the run with
    :class:`repro.errors.ExecError`.
    """
    import dataclasses

    from repro.api.registries import make_executor
    from repro.exec import ExecTask

    spec = cfg.executor
    changes = {}
    if spec.keep_going:
        changes["keep_going"] = False
    if spec.max_workers is None and cfg.max_workers is not None:
        changes["max_workers"] = cfg.max_workers
    if changes:
        spec = dataclasses.replace(spec, **changes)
    executor = make_executor(spec)
    if megabatch_default() and len(jobs) > 1:
        chunks = [
            jobs[i : i + _SEGMENT_BATCH]
            for i in range(0, len(jobs), _SEGMENT_BATCH)
        ]
        tasks = [
            ExecTask(key=f"chunk-{i}-{chunk[0].host_name}", payload=chunk)
            for i, chunk in enumerate(chunks)
        ]
        outcomes = executor.map_tasks(_simulate_host_segment_batch, tasks)
        return [item for o in outcomes for item in o.value]
    tasks = [
        ExecTask(key=f"host-{job.host_name}", payload=job) for job in jobs
    ]
    outcomes = executor.map_tasks(_simulate_host_segment, tasks)
    return [o.value for o in outcomes]


#: The boundary merge now lives in :mod:`repro.traffic.stepper` (it is
#: property-tested there); this alias keeps the historical name.
_segment_boundaries = merge_boundaries


class _Fleet:
    """Live-host bookkeeping: activation order, pools, drain targets."""

    def __init__(
        self,
        pools: Sequence[HostPoolSpec],
        core: NpuCoreConfig,
        policy: Optional[PlacementPolicy],
        virtualization: Optional[VirtualizationSpec] = None,
    ) -> None:
        self.pools = {p.name: p for p in pools}

        def host_kwargs(pool: HostPoolSpec) -> Dict[str, int]:
            # No spec -> no kwarg, so Host's own default VF pool applies.
            if virtualization is None:
                return {}
            return {"num_vfs": virtualization.vfs_for(pool.name)}

        #: Every host the pools could ever provide, in activation order.
        self.hosts: Dict[str, List[Host]] = {
            p.name: [
                Host(
                    f"{p.name}{i}",
                    [core] * p.cores_per_host,
                    **host_kwargs(p),
                )
                for i in range(p.max_hosts)
            ]
            for p in pools
        }
        self.host_core: Dict[str, NpuCoreConfig] = {}
        for p in pools:
            aggregate = core.with_engines(
                core.num_mes * p.cores_per_host,
                core.num_ves * p.cores_per_host,
            )
            for host in self.hosts[p.name]:
                self.host_core[host.name] = aggregate
        self.active: Dict[str, List[bool]] = {
            p.name: [i < p.start_hosts for i in range(p.max_hosts)]
            for p in pools
        }
        #: Crashed host indices per pool: never re-activated.
        self.failed: Dict[str, set] = {p.name: set() for p in pools}
        initial = [
            self.hosts[p.name][i] for p in pools for i in range(p.start_hosts)
        ]
        if not initial:
            raise ConfigError("cluster needs at least one live host at t=0")
        self.orch = ClusterOrchestrator(initial, policy)
        #: Hosts that were live at any point (utilization accounting).
        self.ever_active: List[Host] = list(initial)

    # ------------------------------------------------------------------
    def active_hosts(self) -> List[Host]:
        """Live hosts in deterministic (pool, index) order."""
        out: List[Host] = []
        for name, hosts in self.hosts.items():
            flags = self.active[name]
            out.extend(h for h, live in zip(hosts, flags) if live)
        return out

    def all_hosts(self) -> List[Host]:
        """Every host of every pool, live or not (telemetry sums)."""
        return [h for hosts in self.hosts.values() for h in hosts]

    def active_count(self, pool: Optional[str] = None) -> int:
        if pool is None:
            return sum(sum(flags) for flags in self.active.values())
        return sum(self.active[pool])

    def pool_counts(self) -> Dict[str, int]:
        return {name: sum(flags) for name, flags in self.active.items()}

    # ------------------------------------------------------------------
    def activate(self, pool: str, time_s: float, reason: str,
                 log: List[AutoscaleEvent]) -> bool:
        """Bring the lowest-index inactive host of ``pool`` online."""
        spec = self.pools[pool]
        flags = self.active[pool]
        if sum(flags) >= spec.max_hosts:
            return False
        failed = self.failed[pool]
        idx = next(
            (i for i, on in enumerate(flags) if not on and i not in failed),
            None,
        )
        if idx is None:  # every spare host of the pool has crashed
            return False
        host = self.hosts[pool][idx]
        flags[idx] = True
        self.orch.add_host(host)
        if host not in self.ever_active:
            self.ever_active.append(host)
        log.append(AutoscaleEvent(time_s, ACTION_ADD, host.name, pool, reason))
        return True

    def drain(
        self,
        pool: str,
        time_s: float,
        reason: str,
        residents: Dict[str, _Resident],
        log: List[AutoscaleEvent],
    ) -> bool:
        """Drain the least-loaded live host of ``pool`` and retire it.

        Residents are migrated one by one through the placement policy;
        if any tenant cannot be re-placed elsewhere the drain is
        abandoned (already-moved tenants stay moved -- they are valid
        placements either way) and the host remains live.
        """
        spec = self.pools[pool]
        flags = self.active[pool]
        if sum(flags) <= max(spec.min_hosts, 0) or self.active_count() <= 1:
            return False
        live = [
            (h.load, h.name, i)
            for i, (h, on) in enumerate(zip(self.hosts[pool], flags))
            if on
        ]
        _, victim_name, victim_idx = min(live)
        victim = self.hosts[pool][victim_idx]
        moved: List[Tuple[str, str, str]] = []
        for tenant in sorted(
            n for n, r in residents.items() if r.host is victim
        ):
            resident = residents[tenant]
            placement = self.orch.migrate(
                resident.request_id, exclude=(victim.name,)
            )
            if placement is None:
                log.append(AutoscaleEvent(
                    time_s, "drain-aborted", victim.name, pool,
                    f"{tenant!r} does not fit elsewhere", moved,
                ))
                return False
            resident.host = placement.host
            moved.append((tenant, victim.name, placement.host.name))
        self.orch.remove_host(victim.name)
        flags[victim_idx] = False
        log.append(AutoscaleEvent(
            time_s, ACTION_DRAIN, victim.name, pool, reason, moved
        ))
        return True

    def locate(self, host_name: str) -> Optional[Tuple[str, int]]:
        """``(pool, index)`` of a host by name, live or not."""
        for pool, hosts in self.hosts.items():
            for i, host in enumerate(hosts):
                if host.name == host_name:
                    return pool, i
        return None

    def crash(
        self,
        host_name: str,
        residents: Dict[str, "_Resident"],
    ) -> Tuple[List[Tuple[str, str, str]], List[str]]:
        """Fail a live host hard: re-place its residents, mark it dead.

        Unlike :meth:`drain`, a crash cannot be abandoned -- tenants
        that fit nowhere else are *evicted* (their placement released,
        their remaining traffic lost).  The host never returns: its
        pool index lands in :attr:`failed` so the autoscaler cannot
        re-activate it.  Returns ``(migrated, evicted)``.
        """
        located = self.locate(host_name)
        if located is None:
            raise ConfigError(f"cannot crash unknown host {host_name!r}")
        pool, idx = located
        victim = self.hosts[pool][idx]
        migrated: List[Tuple[str, str, str]] = []
        evicted: List[str] = []
        for tenant in sorted(
            n for n, r in residents.items() if r.host is victim
        ):
            resident = residents[tenant]
            placement = self.orch.migrate(
                resident.request_id, exclude=(victim.name,)
            )
            if placement is None:
                self.orch.release(resident.request_id)
                del residents[tenant]
                evicted.append(tenant)
                continue
            resident.host = placement.host
            migrated.append((tenant, victim.name, placement.host.name))
        self.orch.remove_host(victim.name)
        self.active[pool][idx] = False
        self.failed[pool].add(idx)
        return migrated, evicted

    def rebalance(
        self,
        max_moves: int,
        time_s: float,
        reason: str,
        residents: Dict[str, _Resident],
        log: List[AutoscaleEvent],
    ) -> bool:
        """Migrate tenants from the most- to the least-loaded live host.

        Each move must strictly shrink the committed-load spread, so the
        loop terminates and never ping-pongs a tenant; moves go through
        :meth:`ClusterOrchestrator.migrate` with every host but the
        chosen destination excluded, so the placement policy still gets
        the final say on feasibility.
        """
        moved: List[Tuple[str, str, str]] = []
        for _ in range(max_moves):
            active = sorted(
                self.active_hosts(), key=lambda h: (h.load, h.name)
            )
            if len(active) < 2:
                break
            dst, src = active[0], active[-1]
            names = sorted(
                n for n, r in residents.items() if r.host is src
            )
            # First tenant (in name order) whose move strictly shrinks
            # the spread -- a big tenant may overshoot where a small
            # one still helps.
            chosen = None
            for name in names:
                resident = residents[name]
                eu = resident.num_mes + resident.num_ves
                new_src = src.load - eu / (src.total_mes + src.total_ves)
                new_dst = dst.load + eu / (dst.total_mes + dst.total_ves)
                if max(new_src, new_dst) < src.load - 1e-12:
                    chosen = name
                    break
            if chosen is None:
                break
            resident = residents[chosen]
            placement = self.orch.migrate(
                resident.request_id,
                exclude=tuple(
                    h.name for h in active if h.name != dst.name
                ),
            )
            if placement is None:
                break
            resident.host = placement.host
            moved.append((chosen, src.name, placement.host.name))
        if moved:
            log.append(AutoscaleEvent(
                time_s, ACTION_REBALANCE, "", "", reason, moved
            ))
        return bool(moved)


def _default_pools(cfg: ClusterTrafficConfig) -> Tuple[HostPoolSpec, ...]:
    """The pool set: explicit, or synthesized from the legacy fields.

    Without an autoscaler the synthesized pool is pinned at
    ``num_hosts``; with one, the fleet may grow to twice the configured
    size (a sensible headroom default -- set ``pools`` explicitly for
    tighter control).
    """
    if cfg.pools:
        return cfg.pools
    max_hosts = cfg.num_hosts if cfg.autoscaler is None else 2 * cfg.num_hosts
    return (
        HostPoolSpec(
            name="host",
            cores_per_host=cfg.cores_per_host,
            min_hosts=1 if cfg.autoscaler is not None else cfg.num_hosts,
            max_hosts=max_hosts,
            initial_hosts=cfg.num_hosts,
        ),
    )


def run_cluster_traffic(
    events: Sequence[ChurnEvent],
    cfg: Optional[ClusterTrafficConfig] = None,
) -> ClusterTrafficResult:
    """Play a churn script and aggregate cluster-wide SLO metrics.

    With ``cfg.autoscaler`` set, scaling actions are applied at segment
    boundaries (before that boundary's churn events) based on the
    previous segment's observation; the action log, host-count timeline
    and time-weighted mean fleet size land on the result.

    Thin wrapper over :class:`ClusterSimulation`: constructing the
    state machine and running it straight to the horizon is exactly the
    code path earlier releases took, so results are bit-identical.
    """
    return ClusterSimulation(events, cfg).run()


#: Progress callback for stepped cluster runs:
#: ``(segments_completed, total_segments, observation)``; the
#: observation is ``None`` for the initial resumed-count notification.
SegmentHook = Callable[[int, int, Optional[SegmentObservation]], None]

#: Every mutable attribute a checkpoint captures, pickled as one dict so
#: shared object identity (a resident's ``host`` *is* the fleet's host,
#: which *is* an orchestrator entry) survives the round trip.
_STATE_ATTRS = (
    # The live churn/fault scripts (injection can extend them mid-run).
    "churn",
    "faults",
    # Fleet + orchestration state (hosts, hypervisors, placements).
    "fleet",
    "residents",
    "rejected",
    "rejection_causes",
    "onboard_until",
    "onboarding_delay_s",
    # Accumulated metrics.
    "reports",
    "busy",
    "segments",
    "simulated_cycles",
    "autoscale_events",
    "host_count_timeline",
    "host_seconds",
    "fault_events",
    "vf_timeline",
    "last_hypercalls",
    # Controller state between segments.
    "autoscaler",
    "seg_stats",
    "rejected_before_segment",
    # Streaming per-segment observations (serve replay).
    "segment_log",
)


class ClusterSimulation:
    """Steppable cluster-simulation state machine.

    The timeline (churn, faults, autoscale ticks, load-phase edges) is
    built once as a unified sorted :class:`~repro.traffic.stepper.Timeline`;
    :meth:`step_segment` consumes it one segment at a time --
    apply the previous segment's autoscale observation, apply the
    opening boundary's churn and point faults, simulate every live
    host's resident tenants to the next boundary, merge the per-tenant
    reports.  :meth:`run` steps to the horizon and scores, which is the
    exact code path (and bit-identical output) of the historical
    one-shot ``run_cluster_traffic``.

    Between segments the entire mutable state can be captured with
    :meth:`snapshot` and rebuilt -- in this process or a fresh one --
    with :meth:`restore`, so interrupted runs resume bit-identically.
    Per-(tenant, segment) RNG streams are derived from the seed and
    never persist across segments, so the checkpoint carries no RNG
    state; the three process-wide id streams (placement requests,
    vNPUs, ring commands) are repositioned on restore instead.

    A live run can also be steered: :meth:`inject_churn` /
    :meth:`inject_fault` splice new events into the not-yet-simulated
    part of the timeline (``repro serve`` maps tenant and traffic-spike
    injection onto these).
    """

    def __init__(
        self,
        events: Sequence[ChurnEvent],
        cfg: Optional[ClusterTrafficConfig] = None,
    ) -> None:
        cfg = cfg if cfg is not None else ClusterTrafficConfig()
        self.cfg = cfg
        #: Demand reference: arrival rates and SLO targets are calibrated
        #: against this nominal host, independent of actual placement.
        self.nominal_core = cfg.core.with_engines(
            cfg.core.num_mes * cfg.cores_per_host,
            cfg.core.num_ves * cfg.cores_per_host,
        )
        pools = _default_pools(cfg)
        virt = cfg.virtualization
        if virt is not None:
            unknown = set(virt.pool_num_vfs) - {p.name for p in pools}
            if unknown:
                known = ", ".join(sorted(p.name for p in pools))
                raise ConfigError(
                    f"virtualization names unknown pool(s) {sorted(unknown)}; "
                    f"known: {known}"
                )
        self.virt = virt
        self.virt_cost = virt.hypercall_cost_s if virt is not None else 0.0
        self.fleet = _Fleet(pools, cfg.core, cfg.policy, virt)
        self.orch = self.fleet.orch

        self.fault_events: List[Dict[str, object]] = []
        self.residents: Dict[str, _Resident] = {}
        self.rejected: List[str] = []
        self.rejection_causes: Dict[str, str] = {}
        #: Simulated time until which a tenant's arrivals are held back
        #: by control-plane latency (admission / migration hypercalls).
        self.onboard_until: Dict[str, float] = {}
        self.onboarding_delay_s = 0.0
        self.reports: Dict[str, SloReport] = {}
        self.busy: Dict[str, Tuple[float, float]] = {
            h.name: (0.0, 0.0) for h in self.fleet.ever_active
        }
        SCHEDULERS.get(cfg.scheme)  # helpful unknown-scheme error up front

        self.autoscaler = cfg.autoscaler
        self.interval = (
            cfg.autoscale_interval_s if cfg.autoscaler is not None else None
        )
        #: Deterministic application order: time, departs before arrives.
        ordered = sorted(
            events, key=lambda e: (e.time_s, e.action != ACTION_DEPART)
        )
        #: Deterministic fault order: fire time, then kind, then target.
        faults = sorted(
            cfg.faults, key=lambda f: (f.time_s, f.kind, f.host or "", f.count)
        )
        self._install_script(ordered, faults)
        for fault in self.storms + self.spikes:
            if fault.time_s < cfg.end_s:
                self.fault_events.append({
                    "time_s": fault.time_s, "kind": fault.kind,
                    "applied": True,
                    "duration_s": fault.duration_s, "factor": fault.factor,
                })

        self.segments = 0
        self.simulated_cycles = 0.0
        self.autoscale_events: List[AutoscaleEvent] = []
        self.host_count_timeline: List[Tuple[float, int]] = []
        self.host_seconds = 0.0
        #: Stats of the segment just simulated, consumed by the controller.
        self.seg_stats: Optional[Dict[str, object]] = None
        self.rejected_before_segment = 0
        self.first_pool = next(iter(self.fleet.pools))
        #: Control-plane telemetry is only consumed by the virtualization
        #: summary and the autoscaler's observations; skip the per-segment
        #: fleet walks entirely on the plain path.
        self.track_control_plane = virt is not None or cfg.autoscaler is not None
        #: Fleet-wide hypercall reading at the previous segment start, for
        #: per-segment deltas (boundary churn is attributed to the segment
        #: it opens).
        self.last_hypercalls = 0
        self.vf_timeline: List[Tuple[float, int, int]] = []
        self.segment_log: List[SegmentObservation] = []
        self._next = 0
        #: Identity of this (events, config) pair, stamped into every
        #: checkpoint.  Computed before any stepping: the configured
        #: autoscaler's *internal* state mutates as the run advances, so
        #: the digest is only stable at construction time.  ``None``
        #: when the configuration is not picklable (e.g. an ad-hoc local
        #: autoscaler class): such runs simulate fine, they just cannot
        #: be checkpointed.
        try:
            self.config_digest: Optional[str] = hashlib.sha256(
                pickle.dumps((ordered, cfg), protocol=4)
            ).hexdigest()
        except (AttributeError, TypeError, pickle.PicklingError):
            self.config_digest = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def total_segments(self) -> int:
        return len(self.boundaries) - 1

    @property
    def segments_completed(self) -> int:
        return self._next

    @property
    def done(self) -> bool:
        return self._next >= self.total_segments

    @property
    def time_s(self) -> float:
        """Current simulated time (the boundary opening the next segment)."""
        return self.boundaries[self._next]

    # ------------------------------------------------------------------
    # Timeline installation (construction, restore, live injection)
    # ------------------------------------------------------------------
    def _install_script(
        self, churn: Sequence[ChurnEvent], faults: Sequence[FaultSpec]
    ) -> None:
        """(Re)build the unified timeline from churn + fault scripts."""
        self.churn = list(churn)
        self.faults = list(faults)
        self.storms = [f for f in self.faults if f.kind == FAULT_BURST_STORM]
        self.spikes = [
            f for f in self.faults if f.kind == FAULT_HYPERCALL_SPIKE
        ]
        self.point_faults = [
            f for f in self.faults
            if f.kind in (FAULT_HOST_CRASH, FAULT_VF_LOSS)
        ]
        self.timeline: Timeline = build_timeline(
            self.churn, self.faults, self.cfg.end_s, self.interval
        )
        self.boundaries = list(self.timeline.boundaries)

    def inject_churn(self, event: ChurnEvent) -> None:
        """Splice a live churn event into the remaining timeline."""
        self._inject(churn=(event,))

    def inject_fault(self, fault: FaultSpec) -> None:
        """Splice a live fault into the remaining timeline."""
        self._inject(faults=(fault,))

    def _inject(
        self,
        churn: Sequence[ChurnEvent] = (),
        faults: Sequence[FaultSpec] = (),
    ) -> None:
        if self.done:
            raise SimulationError(
                "cannot inject into a finished simulation"
            )
        now = self.time_s
        for item in list(churn) + list(faults):
            if item.time_s <= now:
                raise ValidationError(
                    "time_s", item.time_s,
                    f"injected events must land strictly after t={now}",
                )
            if item.time_s >= self.cfg.end_s:
                raise ValidationError(
                    "time_s", item.time_s,
                    "injected events must land before the horizon "
                    f"end_s={self.cfg.end_s}",
                )
        old_churn, old_faults = self.churn, self.faults
        old_prefix = self.boundaries[: self._next + 1]
        new_churn = sorted(
            list(self.churn) + list(churn),
            key=lambda e: (e.time_s, e.action != ACTION_DEPART),
        )
        new_faults = sorted(
            list(self.faults) + list(faults),
            key=lambda f: (f.time_s, f.kind, f.host or "", f.count),
        )
        for event in churn:
            self._validate_injected_churn(event, new_churn)
        self._install_script(new_churn, new_faults)
        if self.boundaries[: self._next + 1] != old_prefix:
            # A new cut within float-epsilon of an already-consumed
            # autoscale tick would rewrite history; refuse it.
            self._install_script(old_churn, old_faults)
            raise ValidationError(
                "time_s", [item.time_s for item in list(churn) + list(faults)],
                "injection would perturb already-simulated boundaries",
            )
        for fault in faults:
            if (
                fault.kind in (FAULT_BURST_STORM, FAULT_HYPERCALL_SPIKE)
                and fault.time_s < self.cfg.end_s
            ):
                self.fault_events.append({
                    "time_s": fault.time_s, "kind": fault.kind,
                    "applied": True,
                    "duration_s": fault.duration_s, "factor": fault.factor,
                })

    def _validate_injected_churn(
        self, event: ChurnEvent, new_churn: Sequence[ChurnEvent]
    ) -> None:
        """Refuse a churn injection that could blow up at its boundary.

        Projects the tenant's residency through the pending (not yet
        simulated) part of the new script.  An arrival's admit/reject
        outcome depends on future capacity and cannot be known here, so
        anything that *might* make :meth:`_apply_churn` raise is
        refused up front -- a live injection must never corrupt the run
        it steers.
        """
        now = self.time_s
        if event.name in self.residents:
            state = "resident"
        elif event.name in self.rejected:
            state = "rejected"
        else:
            state = "absent"
        for ev in new_churn:
            if ev is event:
                break
            if ev.time_s < now or ev.name != event.name:
                continue
            if ev.action == ACTION_ARRIVE:
                state = "maybe-resident"
            elif state == "resident":
                state = "absent"
            elif state == "maybe-resident":
                state = "maybe-gone"
        if event.action == ACTION_ARRIVE and state in (
            "resident", "maybe-resident"
        ):
            raise ValidationError(
                "name", event.name,
                f"tenant is (or may still be) resident at t={event.time_s}; "
                "schedule a depart first",
            )
        if event.action == ACTION_DEPART and state in (
            "absent", "maybe-gone"
        ):
            raise ValidationError(
                "name", event.name,
                f"tenant is not (or may not be) resident at t={event.time_s}",
            )

    # ------------------------------------------------------------------
    # Boundary application
    # ------------------------------------------------------------------
    def _check_boundary_churn(self, at: float) -> None:
        """Pre-flight a boundary's churn before anything mutates.

        Raises the exact :class:`ConfigError` :meth:`_apply_churn`
        would, but *before* the autoscaler acts or any earlier event at
        the boundary lands, so a failing :meth:`step_segment` leaves
        the simulation untouched and retryable instead of half-applied.
        (An arrival's admit/reject outcome cannot be predicted without
        simulating, so a same-boundary re-arrival of one name passes
        here; :meth:`_inject` refuses to produce one.)
        """
        resident = set(self.residents)
        rejected = set(self.rejected)
        arrived: set = set()
        for tev in self.timeline.events_at.get(at, ()):
            if tev.kind != EVENT_CHURN:
                continue
            ev = tev.payload
            if ev.action == ACTION_ARRIVE:
                if ev.name in resident:
                    raise ConfigError(
                        f"tenant {ev.name!r} is already resident"
                    )
                arrived.add(ev.name)
            elif ev.name in resident:
                resident.discard(ev.name)
            elif ev.name not in rejected and ev.name not in arrived:
                raise ConfigError(f"tenant {ev.name!r} is not resident")

    def _hypercall_cost_at(self, at: float) -> float:
        """Control-plane latency per hypercall at time ``at``."""
        cost = self.virt_cost
        for spike in self.spikes:
            if spike.covers(at):
                cost *= spike.factor
        return cost

    def _load_multiplier(self, t0: float, t1: float) -> float:
        """Offered-load factor for the segment ``[t0, t1)``.

        Storm edges cut the timeline, so a segment is either fully
        inside or fully outside every storm window; the midpoint test
        is robust to float jitter at the edges.
        """
        mid = 0.5 * (t0 + t1)
        mult = 1.0
        for storm in self.storms:
            if storm.covers(mid):
                mult *= storm.factor
        return mult

    def _apply_churn(self, ev: ChurnEvent, at: float) -> None:
        if ev.action == ACTION_ARRIVE:
            if ev.name in self.residents:
                raise ConfigError(f"tenant {ev.name!r} is already resident")
            request = PlacementRequest(
                owner=ev.name, num_mes=ev.num_mes, num_ves=ev.num_ves
            )
            placement = self.orch.submit(request)
            if placement is None:
                self.rejected.append(ev.name)
                self.rejection_causes[ev.name] = self.orch.rejection_causes.get(
                    request.request_id, REJECT_CAPACITY
                )
                return
            self.residents[ev.name] = _Resident(
                request_id=placement.request.request_id,
                host=placement.host,
                spec=ev.spec,
                num_mes=ev.num_mes,
                num_ves=ev.num_ves,
            )
            if self.virt_cost > 0:
                # One create hypercall stands between admission and
                # the tenant's first served request.
                self.onboard_until[ev.name] = at + self._hypercall_cost_at(at)
        else:
            resident = self.residents.pop(ev.name, None)
            if resident is None:
                if ev.name in self.rejected:
                    return  # never admitted; nothing to release
                raise ConfigError(f"tenant {ev.name!r} is not resident")
            self.orch.release(resident.request_id)
            self.onboard_until.pop(ev.name, None)

    def _apply_fault(self, fault: FaultSpec, at: float) -> None:
        """Fire one point fault at boundary ``at``."""
        fleet = self.fleet
        if fault.kind == FAULT_HOST_CRASH:
            live = fleet.active_hosts()
            victim = None
            if fault.host is not None:
                victim = next(
                    (h for h in live if h.name == fault.host), None
                )
            elif len(live) > 1:
                # Most-loaded live host; name-order tiebreak.
                victim = max(live, key=lambda h: (h.load, h.name))
            if victim is None or len(live) <= 1:
                # Never crash the last live host (the run could not
                # continue) or a host that is not live.
                self.fault_events.append({
                    "time_s": at, "kind": fault.kind,
                    "host": fault.host, "applied": False,
                })
                return
            migrated, evicted = fleet.crash(victim.name, self.residents)
            for name in evicted:
                self.onboard_until.pop(name, None)
            if self.virt_cost > 0:
                # Every re-placed tenant pays destroy + create.
                cost = self._hypercall_cost_at(at)
                for tenant, _src, _dst in migrated:
                    self.onboard_until[tenant] = max(
                        self.onboard_until.get(tenant, 0.0), at + 2 * cost
                    )
            self.fault_events.append({
                "time_s": at, "kind": fault.kind, "host": victim.name,
                "applied": True,
                "migrated": [list(m) for m in migrated],
                "evicted": list(evicted),
            })
        elif fault.kind == FAULT_VF_LOSS:
            live = fleet.active_hosts()
            victim = None
            if fault.host is not None:
                victim = next(
                    (h for h in live if h.name == fault.host), None
                )
            elif live:
                # Host with the most free VFs; name-order tiebreak.
                victim = max(live, key=lambda h: (h.free_vfs, h.name))
            removed = (
                remove_free_vfs(victim, fault.count)
                if victim is not None
                else 0
            )
            self.fault_events.append({
                "time_s": at, "kind": fault.kind,
                "host": victim.name if victim is not None else fault.host,
                "applied": removed > 0,
                "removed": removed,
            })

    def _apply_actions(
        self, actions: Sequence[ScalingAction], at: float
    ) -> None:
        fleet = self.fleet
        for act in actions:
            if act.action == ACTION_REBALANCE:
                fleet.rebalance(
                    act.count, at, act.reason, self.residents,
                    self.autoscale_events,
                )
                continue
            pool = act.pool or self.first_pool
            if pool not in fleet.pools:
                known = ", ".join(sorted(fleet.pools))
                raise ConfigError(
                    f"autoscaler targeted unknown pool {pool!r}; "
                    f"known: {known}"
                )
            for _ in range(act.count):
                done = (
                    fleet.activate(
                        pool, at, act.reason, self.autoscale_events
                    )
                    if act.action == ACTION_ADD
                    else fleet.drain(
                        pool, at, act.reason, self.residents,
                        self.autoscale_events,
                    )
                )
                if not done:
                    break

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def step_segment(self) -> Optional[SegmentObservation]:
        """Simulate the next segment; return its observation.

        Applies the previous segment's autoscale observation, the
        opening boundary's churn and point faults, then simulates every
        live host to the next boundary and merges the results.  Returns
        ``None`` only for a (defensively handled) zero-width segment;
        raises :class:`~repro.errors.SimulationError` past the horizon
        -- check :attr:`done` first.
        """
        if self.done:
            raise SimulationError(
                "cluster simulation already reached its horizon"
            )
        cfg = self.cfg
        fleet = self.fleet
        seg_index = self._next
        t0 = self.boundaries[seg_index]
        t1 = self.boundaries[seg_index + 1]
        # All-or-nothing boundary application: reject a bad boundary
        # before the autoscaler or any of its events touch state, so a
        # caller observing the error holds an intact, retryable run.
        self._check_boundary_churn(t0)
        if self.autoscaler is not None and self.seg_stats is not None:
            seg_stats = self.seg_stats
            obs = SegmentObservation(
                segment_index=seg_index - 1,
                time_s=t0,
                duration_s=seg_stats["seg_s"],
                active_hosts=int(seg_stats["active_hosts"]),
                pool_hosts=seg_stats["pool_hosts"],
                resident_tenants=len(self.residents),
                rejections=len(self.rejected) - self.rejected_before_segment,
                me_utilization=seg_stats["me_utilization"],
                ve_utilization=seg_stats["ve_utilization"],
                offered=int(seg_stats["offered"]),
                attained=int(seg_stats["attained"]),
                hypercalls=int(seg_stats["hypercalls"]),
                vf_in_use=int(seg_stats["vf_in_use"]),
                vf_capacity=int(seg_stats["vf_capacity"]),
                iommu_mappings=int(seg_stats["iommu_mappings"]),
            )
            events_before = len(self.autoscale_events)
            self._apply_actions(self.autoscaler.observe(obs), t0)
            if self.virt_cost > 0:
                # A migration is one destroy plus one create hypercall;
                # the moved tenant is off the air for both.
                for aev in self.autoscale_events[events_before:]:
                    for tenant, _src, _dst in aev.migrations:
                        if tenant in self.residents:
                            self.onboard_until[tenant] = max(
                                self.onboard_until.get(tenant, 0.0),
                                t0 + 2 * self._hypercall_cost_at(t0),
                            )
        self.rejected_before_segment = len(self.rejected)
        for tev in self.timeline.events_at.get(t0, ()):
            if tev.kind == EVENT_CHURN:
                self._apply_churn(tev.payload, t0)
            elif tev.kind == EVENT_FAULT:
                self._apply_fault(tev.payload, t0)
        self._next = seg_index + 1
        seg_s = t1 - t0
        if seg_s <= 0:  # defensive: boundaries are strictly increasing
            return None
        self.segments += 1
        active = fleet.active_hosts()
        self.host_count_timeline.append((t0, len(active)))
        self.host_seconds += len(active) * seg_s
        seg_vf_in_use = seg_vf_capacity = seg_iommu = seg_hypercalls = 0
        if self.track_control_plane:
            # Control-plane occupancy over the live hosts at segment
            # start; hypercall delta over the whole fleet.
            seg_vf_in_use = sum(h.hypervisor.vf_in_use for h in active)
            seg_vf_capacity = sum(h.hypervisor.vf_capacity for h in active)
            seg_iommu = sum(h.hypervisor.iommu_mapping_count for h in active)
            if self.virt is not None:  # only the summary consumes the timeline
                self.vf_timeline.append((t0, seg_vf_in_use, seg_vf_capacity))
            hypercalls_now = sum(
                h.hypervisor.hypercall_count for h in fleet.all_hosts()
            )
            seg_hypercalls = hypercalls_now - self.last_hypercalls
            self.last_hypercalls = hypercalls_now
        seg_cycles = cfg.core.seconds_to_cycles(seg_s)
        by_host: Dict[str, List[Tuple[str, _Resident]]] = {}
        for name, resident in self.residents.items():
            by_host.setdefault(resident.host.name, []).append((name, resident))

        seg_load = cfg.load
        if self.storms:
            seg_load = cfg.load * self._load_multiplier(t0, t1)
        ol_cfg = OpenLoopConfig(
            core=self.nominal_core,
            duration_s=seg_s,
            load=seg_load,
            arrival=cfg.arrival,
            seed=cfg.seed,
        )
        jobs: List[_HostSegmentJob] = []
        for host in active:
            group = by_host.get(host.name, [])
            if not group:
                continue
            tenant_jobs: List[_TenantJob] = []
            for name, resident in sorted(group):
                spec = resident.spec
                svc = _calibrate_cached(
                    spec.model, spec.batch, resident.num_mes, resident.num_ves,
                    cfg.scheme, self.nominal_core,
                )
                process = arrival_process_for(spec, ol_cfg, svc, seg_cycles)
                rng = spawn_rng(cfg.seed, name, seg_index)
                arrivals = process.generate(seg_cycles, rng)
                hold_s = self.onboard_until.get(name, 0.0) - t0
                if hold_s > 0:
                    # Requests landing while the control plane is still
                    # onboarding the tenant queue until it comes up:
                    # the hypercall latency is paid in queueing delay.
                    hold_s = min(hold_s, seg_s)
                    hold_cycles = cfg.core.seconds_to_cycles(hold_s)
                    arrivals = [max(a, hold_cycles) for a in arrivals]
                    self.onboarding_delay_s += hold_s
                tenant_jobs.append(
                    _TenantJob(
                        name=name,
                        model=spec.model,
                        batch=spec.batch,
                        alloc_mes=resident.num_mes,
                        alloc_ves=resident.num_ves,
                        priority=spec.priority,
                        target_cycles=spec.slo.resolve(svc),
                        arrivals=tuple(arrivals),
                        offered=len(arrivals),
                    )
                )
            if all(not tj.arrivals for tj in tenant_jobs):
                continue
            jobs.append(
                _HostSegmentJob(
                    host_name=host.name,
                    host_core=fleet.host_core[host.name],
                    scheme=cfg.scheme,
                    seg_s=seg_s,
                    seg_cycles=seg_cycles,
                    tenants=tuple(tenant_jobs),
                )
            )

        # Hosts are independent within a stable segment: fan out, then
        # merge in deterministic host order.  The mega-batch path
        # co-steps each chunk's hosts through one engine per worker;
        # REPRO_SIM_MEGABATCH=0 restores the one-sim-per-job fan-out.
        if cfg.executor is not None and len(jobs) > 0:
            outcomes = _executor_fan_out(jobs, cfg)
        elif megabatch_default() and len(jobs) > 1:
            chunks = [
                jobs[i : i + _SEGMENT_BATCH]
                for i in range(0, len(jobs), _SEGMENT_BATCH)
            ]
            outcomes = [
                outcome
                for chunk in parallel_map(
                    _simulate_host_segment_batch,
                    chunks,
                    max_workers=cfg.max_workers,
                )
                for outcome in chunk
            ]
        else:
            outcomes = parallel_map(
                _simulate_host_segment, jobs, max_workers=cfg.max_workers
            )
        seg_me = seg_ve = 0.0
        seg_offered = seg_attained = 0
        for host_name, me_seconds, ve_seconds, cycles, host_reports in outcomes:
            me_s, ve_s = self.busy.get(host_name, (0.0, 0.0))
            self.busy[host_name] = (me_s + me_seconds, ve_s + ve_seconds)
            self.simulated_cycles += cycles
            seg_me += me_seconds
            seg_ve += ve_seconds
            for name, report in host_reports:
                seg_offered += report.offered
                seg_attained += report.attained
                self.reports[name] = (
                    self.reports[name].merged_with(report)
                    if name in self.reports
                    else report
                )
        denom = max(1, len(active)) * seg_s
        self.seg_stats = {
            "seg_s": seg_s,
            "active_hosts": len(active),
            "pool_hosts": fleet.pool_counts(),
            "me_utilization": seg_me / denom,
            "ve_utilization": seg_ve / denom,
            "offered": seg_offered,
            "attained": seg_attained,
            "hypercalls": seg_hypercalls,
            "vf_in_use": seg_vf_in_use,
            "vf_capacity": seg_vf_capacity,
            "iommu_mappings": seg_iommu,
        }
        observation = SegmentObservation(
            segment_index=seg_index,
            time_s=t1,
            duration_s=seg_s,
            active_hosts=len(active),
            pool_hosts=self.seg_stats["pool_hosts"],
            resident_tenants=len(self.residents),
            rejections=len(self.rejected) - self.rejected_before_segment,
            me_utilization=self.seg_stats["me_utilization"],
            ve_utilization=self.seg_stats["ve_utilization"],
            offered=seg_offered,
            attained=seg_attained,
            hypercalls=seg_hypercalls,
            vf_in_use=seg_vf_in_use,
            vf_capacity=seg_vf_capacity,
            iommu_mappings=seg_iommu,
        )
        self.segment_log.append(observation)
        return observation

    def advance(self, until_s: float) -> List[SegmentObservation]:
        """Step every segment that ends at or before ``until_s``."""
        out: List[SegmentObservation] = []
        while not self.done and self.boundaries[self._next + 1] <= until_s:
            observation = self.step_segment()
            if observation is not None:
                out.append(observation)
        return out

    def run(self) -> ClusterTrafficResult:
        """Step to the horizon and score (the classic one-shot path)."""
        while not self.done:
            self.step_segment()
        return self.result()

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _virtualization_summary(self) -> Optional[VirtualizationSummary]:
        virt = self.virt
        if virt is None:
            return None
        hypercalls: Dict[str, int] = {
            "create": 0, "reconfigure": 0, "destroy": 0
        }
        for host in self.fleet.all_hosts():
            for kind, count in host.hypervisor.hypercall_counts.items():
                hypercalls[kind] = hypercalls.get(kind, 0) + count
        return VirtualizationSummary(
            hypercalls=hypercalls,
            vf_occupancy_timeline=self.vf_timeline,
            peak_vf_in_use=max(
                (used for _, used, _ in self.vf_timeline), default=0
            ),
            # Counted per rejected *request* (a tenant retried after a
            # rejection counts each attempt, matching ``rejected``);
            # ``rejection_causes`` keeps the last cause per tenant name.
            vf_exhaustion_rejections=self.orch.rejection_cause_counts().get(
                REJECT_VF_EXHAUSTED, 0
            ),
            rejection_causes=dict(self.rejection_causes),
            iommu_windows_attached=sum(
                h.hypervisor.iommu.windows_attached_total
                for h in self.fleet.all_hosts()
            ),
            iommu_dma_registrations=sum(
                h.hypervisor.iommu.dma_registrations_total
                for h in self.fleet.all_hosts()
            ),
            final_iommu_mappings=sum(
                h.hypervisor.iommu_mapping_count
                for h in self.fleet.all_hosts()
            ),
            final_vf_in_use=sum(
                h.hypervisor.vf_in_use for h in self.fleet.all_hosts()
            ),
            onboarding_delay_s=self.onboarding_delay_s,
            hypercall_cost_s=virt.hypercall_cost_s,
        )

    def result(self) -> ClusterTrafficResult:
        """Score the run so far into a :class:`ClusterTrafficResult`.

        Callable mid-run: every aggregate (per-tenant reports, host
        busy-seconds, control-plane counters) is maintained as
        mergeable partial state, so a paused or restored simulation
        reports consistent partial metrics.  After the final segment
        the result is bit-identical to the one-shot path's.
        """
        total_s = self.cfg.end_s
        return ClusterTrafficResult(
            reports=self.reports,
            host_me_utilization={
                h.name: self.busy.get(h.name, (0.0, 0.0))[0] / total_s
                for h in self.fleet.ever_active
            },
            host_ve_utilization={
                h.name: self.busy.get(h.name, (0.0, 0.0))[1] / total_s
                for h in self.fleet.ever_active
            },
            admission_rate=self.orch.admission_rate(),
            rejected=self.rejected,
            segments=self.segments,
            simulated_cycles=self.simulated_cycles,
            autoscale_events=self.autoscale_events,
            host_count_timeline=self.host_count_timeline,
            mean_active_hosts=self.host_seconds / total_s,
            virtualization=self._virtualization_summary(),
            fault_events=sorted(
                self.fault_events, key=lambda e: (e["time_s"], str(e["kind"]))
            ),
        )

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> ClusterCheckpoint:
        """Capture the complete between-segments state.

        One pickle over every mutable piece -- fleet (hosts,
        hypervisors, orchestrator), residents, accumulated metrics, the
        autoscaler's internal state, the live churn/fault scripts, and
        the positions of the three process-wide id streams -- so
        :meth:`restore` continues bit-identically, in this process or a
        fresh one.  Per-(tenant, segment) RNG streams are derived from
        the seed and need no state here.
        """
        if self.config_digest is None:
            raise CheckpointError(
                "this configuration is not picklable (custom autoscaler "
                "or executor?); checkpointing is unavailable for it"
            )
        state: Dict[str, object] = {
            name: getattr(self, name) for name in _STATE_ATTRS
        }
        state["ids"] = {
            "request": _orchestrator_module._request_ids.peek(),
            "vnpu": _vnpu_module._vnpu_ids.peek(),
            "command": _command_module._seq.peek(),
        }
        return ClusterCheckpoint.create(
            state, self.config_digest, self._next, self.time_s
        )

    @classmethod
    def restore(
        cls,
        checkpoint: ClusterCheckpoint,
        events: Sequence[ChurnEvent],
        cfg: Optional[ClusterTrafficConfig] = None,
    ) -> "ClusterSimulation":
        """Rebuild a simulation from a :meth:`snapshot` checkpoint.

        ``events`` and ``cfg`` must be the same script and
        configuration the snapshot was taken under (enforced via the
        config digest).  Repositions the process-wide id streams to the
        snapshot's positions -- the restoring process must not have
        other live simulations issuing from them.
        """
        sim = cls(events, cfg)
        if sim.config_digest is None:
            raise CheckpointError(
                "this configuration is not picklable (custom autoscaler "
                "or executor?); checkpoints cannot restore under it"
            )
        if checkpoint.config_digest != sim.config_digest:
            raise CheckpointError(
                "checkpoint was taken under a different scenario (config "
                f"digest {checkpoint.config_digest[:12]}... != this run's "
                f"{sim.config_digest[:12]}...)"
            )
        state = checkpoint.state()
        try:
            ids = state["ids"]
            for name in _STATE_ATTRS:
                setattr(sim, name, state[name])
            request_pos = ids["request"]
            vnpu_pos = ids["vnpu"]
            command_pos = ids["command"]
        except (KeyError, TypeError) as exc:
            raise CheckpointError(
                f"checkpoint state is incomplete: {exc}"
            ) from exc
        sim.orch = sim.fleet.orch
        sim._install_script(sim.churn, sim.faults)
        index = int(checkpoint.segment_index)
        if not 0 <= index <= sim.total_segments:
            raise CheckpointError(
                f"checkpoint segment index {index} is outside the "
                f"{sim.total_segments}-segment timeline"
            )
        if sim.boundaries[index] != checkpoint.time_s:
            raise CheckpointError(
                f"checkpoint time {checkpoint.time_s} does not match "
                f"boundary {sim.boundaries[index]} at segment {index}"
            )
        sim._next = index
        # Continue the process-wide id streams exactly where the
        # snapshot left off: restored bookkeeping holds earlier ids, and
        # exact continuation keeps a resumed run's ids identical to an
        # uninterrupted run's.
        _orchestrator_module._request_ids.jump_to(request_pos)
        _vnpu_module._vnpu_ids.jump_to(vnpu_pos)
        _command_module._seq.jump_to(command_pos)
        return sim


def _segment_key(index: int) -> str:
    """Journal shard key of the checkpoint after ``index`` segments."""
    return f"segment-{index:06d}"


def run_cluster_checkpointed(
    events: Sequence[ChurnEvent],
    cfg: Optional[ClusterTrafficConfig] = None,
    *,
    directory: Optional[str] = None,
    resume: bool = False,
    every: int = 1,
    on_segment: Optional[SegmentHook] = None,
) -> ClusterTrafficResult:
    """Run a cluster simulation with journaled segment checkpoints.

    With ``directory`` set, a :class:`repro.exec.journal.SweepJournal`
    under it records a :class:`ClusterCheckpoint` every ``every``
    completed segments (shard keys ``segment-NNNNNN``; the manifest
    digest is the simulation's config digest, so a directory from a
    different run is refused).  ``resume=True`` restores from the
    furthest recorded checkpoint and continues: the completed run is
    bit-identical to an uninterrupted one.  Without a directory this is
    the plain stepped path, useful for ``on_segment`` progress alone.
    """
    cfg = cfg if cfg is not None else ClusterTrafficConfig()
    if every < 1:
        raise ValidationError(
            "every", every, "checkpoint cadence must be >= 1"
        )
    if resume and directory is None:
        raise ConfigError("resuming a cluster run needs a checkpoint directory")
    sim = ClusterSimulation(events, cfg)
    total = sim.total_segments
    journal = None
    if directory is not None:
        if sim.config_digest is None:
            raise CheckpointError(
                "this configuration is not picklable (custom autoscaler "
                "or executor?); checkpointing is unavailable for it"
            )
        from repro.exec.journal import SweepJournal

        keys = [_segment_key(i) for i in range(1, total + 1)]
        journal = SweepJournal(
            directory, sim.config_digest, keys, resume=resume
        )
        if resume and journal.completed:
            latest = max(
                journal.completed,
                key=lambda k: int(k.rsplit("-", 1)[1]),
            )
            cp = ClusterCheckpoint.from_dict(journal.completed[latest])
            sim = ClusterSimulation.restore(cp, events, cfg)
    try:
        if on_segment is not None and sim.segments_completed:
            on_segment(sim.segments_completed, total, None)
        while not sim.done:
            observation = sim.step_segment()
            done_count = sim.segments_completed
            if journal is not None and (done_count % every == 0 or sim.done):
                key = _segment_key(done_count)
                if key not in journal.completed:
                    journal.record(key, sim.snapshot().to_dict())
            if on_segment is not None:
                on_segment(done_count, total, observation)
        return sim.result()
    finally:
        if journal is not None:
            journal.close()
