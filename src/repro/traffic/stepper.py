"""Segment timeline and checkpoint primitives for the steppable
cluster-simulation core.

:func:`merge_boundaries` is the single source of truth for where the
cluster timeline is cut: churn events, fault fire times and window
edges, and autoscale observation ticks all land here, deduplicated and
strictly ordered.  :func:`build_timeline` turns the same inputs into a
unified, sorted :class:`Timeline` -- one stream of typed
:class:`TimelineEvent` entries grouped by the boundary that applies
them -- which :class:`repro.traffic.cluster_sim.ClusterSimulation`
consumes one segment at a time instead of re-scanning interleaved
churn/fault lists at every boundary.

:class:`ClusterCheckpoint` is the serialized between-segments state of
a :class:`~repro.traffic.cluster_sim.ClusterSimulation`: versioned,
digest-stamped (both the configuration that produced it and the
payload bytes), and JSON-safe via :meth:`ClusterCheckpoint.to_dict`,
so it rides the :class:`repro.exec.SweepJournal` machinery and plain
HTTP alike.  The payload is one pickle of the simulation's entire
mutable state, taken in a single ``pickle.dumps`` call so shared
object identity (a resident's host *is* the fleet's host) survives the
round trip.

Because the payload is a pickle, restoring a checkpoint executes
whatever its bytes describe: :meth:`ClusterCheckpoint.verify` only
proves integrity (the payload matches its own recorded digest), never
provenance.  Only restore checkpoints from sources you trust -- your
own journal directory, your own process.  Network-facing paths must
authenticate first: ``repro serve`` refuses ``POST /restore`` payloads
that do not carry a valid HMAC under the server's restore key (see
:mod:`repro.serve.controller`).
"""

from __future__ import annotations

import base64
import hashlib
import pickle
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cluster.virt import (
    FAULT_BURST_STORM,
    FAULT_HOST_CRASH,
    FAULT_HYPERCALL_SPIKE,
    FAULT_VF_LOSS,
    FaultSpec,
)
from repro.errors import CheckpointError

#: Timeline event kinds, in the order one boundary applies them:
#: autoscale actions first (not timeline events -- they happen at every
#: boundary), then churn, then point faults.  ``phase`` and ``tick``
#: entries are informational: load-phase edges only *cut* the timeline
#: (the load multiplier is evaluated per segment), and autoscale ticks
#: exist purely so the controller observes between churn events.
EVENT_CHURN = "churn"
EVENT_FAULT = "fault"
EVENT_PHASE = "load-phase"
EVENT_TICK = "autoscale-tick"

#: Schema version of :class:`ClusterCheckpoint`.  Bump on any change to
#: the payload layout; :meth:`ClusterCheckpoint.verify` refuses other
#: versions rather than unpickling a layout it does not understand.
CHECKPOINT_VERSION = 1

#: Pickle protocol pinned for checkpoint payloads so snapshots written
#: by one interpreter restore under another (protocol 4 is available
#: from Python 3.4 on).
_PICKLE_PROTOCOL = 4

_WINDOW_KINDS = (FAULT_BURST_STORM, FAULT_HYPERCALL_SPIKE)
_POINT_KINDS = (FAULT_HOST_CRASH, FAULT_VF_LOSS)


def merge_boundaries(
    events: Sequence[object],
    end_s: float,
    interval_s: Optional[float] = None,
    extra_cuts: Sequence[float] = (),
) -> List[float]:
    """Merge churn, fault and autoscale-interval cut times.

    Returns the deduplicated, strictly increasing boundary list starting
    at ``0.0`` and ending at ``end_s``.  ``events`` need only expose
    ``time_s``; ``extra_cuts`` carries fault fire times and window
    edges, which cut the timeline exactly like churn events so a fault
    never lands mid-segment.
    """
    cuts = {0.0, end_s}
    for ev in events:
        if ev.time_s < end_s:
            cuts.add(ev.time_s)
    for t in extra_cuts:
        # Fault fire times and window edges cut the timeline exactly
        # like churn events, so a fault never lands mid-segment.
        if 0.0 < t < end_s:
            cuts.add(t)
    if interval_s is not None:
        # Multiply rather than accumulate, and drop ticks that land
        # within float jitter of an existing cut: a phantom ~0-width
        # segment would otherwise reach the autoscaler as a fully idle
        # observation and trigger spurious drains.
        eps = end_s * 1e-9
        exact = sorted(cuts)
        i = 1
        while True:
            t = i * interval_s
            if t >= end_s - eps:
                break
            if all(abs(t - c) > eps for c in exact):
                cuts.add(t)
            i += 1
    return sorted(cuts)


@dataclass(frozen=True)
class TimelineEvent:
    """One entry of the unified timeline.

    ``payload`` is the underlying object: a
    :class:`~repro.traffic.cluster_sim.ChurnEvent` for ``churn``, a
    :class:`~repro.cluster.virt.FaultSpec` for ``fault`` and ``phase``
    entries, and ``None`` for autoscale ticks.
    """

    time_s: float
    kind: str
    payload: object = None


@dataclass(frozen=True)
class Timeline:
    """The unified sorted event timeline of one cluster run.

    ``boundaries`` is the full cut list (including ``0.0`` and the
    horizon); ``events_at`` groups the events each boundary applies, in
    application order (churn before point faults, each preserving its
    deterministic input order).
    """

    boundaries: Tuple[float, ...]
    events_at: Mapping[float, Tuple[TimelineEvent, ...]]

    @property
    def total_segments(self) -> int:
        return max(0, len(self.boundaries) - 1)

    @property
    def events(self) -> Tuple[TimelineEvent, ...]:
        """Every timeline event, flattened in boundary order."""
        return tuple(
            ev for t in self.boundaries for ev in self.events_at.get(t, ())
        )


def build_timeline(
    churn: Sequence[object],
    faults: Sequence[FaultSpec],
    end_s: float,
    interval_s: Optional[float] = None,
) -> Timeline:
    """Build the unified timeline from churn + fault scripts.

    ``churn`` must already be in deterministic application order
    (time, departs-before-arrives) and ``faults`` in deterministic
    fault order (time, kind, target); within one boundary the grouped
    events preserve those orders, churn first.
    """
    windows = [f for f in faults if f.kind in _WINDOW_KINDS]
    point = [f for f in faults if f.kind in _POINT_KINDS]
    extra = [f.time_s for f in faults] + [w.end_s for w in windows]
    boundaries = merge_boundaries(churn, end_s, interval_s, extra)
    cut_set = set(boundaries)

    events_at: Dict[float, List[TimelineEvent]] = {}
    for ev in churn:
        if ev.time_s < end_s:
            events_at.setdefault(ev.time_s, []).append(
                TimelineEvent(ev.time_s, EVENT_CHURN, ev)
            )
    for f in point:
        # A point fault fires iff its time opens a segment: every fire
        # time in (0, end_s) is a cut, t=0 opens the first segment, and
        # anything at/after the horizon (or negative) never fires.
        if 0.0 <= f.time_s < end_s:
            events_at.setdefault(f.time_s, []).append(
                TimelineEvent(f.time_s, EVENT_FAULT, f)
            )
    for w in windows:
        if w.time_s in cut_set and w.time_s < end_s:
            events_at.setdefault(w.time_s, []).append(
                TimelineEvent(w.time_s, EVENT_PHASE, w)
            )
    known = (
        {0.0, end_s}
        | {ev.time_s for ev in churn if ev.time_s < end_s}
        | {t for t in extra if 0.0 < t < end_s}
    )
    for t in boundaries:
        if t not in known:
            events_at.setdefault(t, []).append(
                TimelineEvent(t, EVENT_TICK, None)
            )
    return Timeline(
        boundaries=tuple(boundaries),
        events_at={t: tuple(evs) for t, evs in events_at.items()},
    )


@dataclass(frozen=True)
class ClusterCheckpoint:
    """Serialized between-segments state of a cluster simulation.

    ``config_digest`` identifies the (events, config) pair the snapshot
    was taken under -- restore refuses a checkpoint from a different
    run.  ``payload_digest`` covers the pickle bytes, so torn or
    bit-rotted checkpoints fail loudly instead of unpickling garbage.
    """

    config_digest: str
    #: Number of segments completed when the snapshot was taken (the
    #: next segment to simulate).
    segment_index: int
    #: Simulated time of the snapshot (the boundary opening the next
    #: segment).
    time_s: float
    payload: bytes
    payload_digest: str
    version: int = CHECKPOINT_VERSION

    @classmethod
    def create(
        cls,
        state: object,
        config_digest: str,
        segment_index: int,
        time_s: float,
    ) -> "ClusterCheckpoint":
        payload = pickle.dumps(state, protocol=_PICKLE_PROTOCOL)
        return cls(
            config_digest=config_digest,
            segment_index=segment_index,
            time_s=time_s,
            payload=payload,
            payload_digest=hashlib.sha256(payload).hexdigest(),
        )

    def verify(self) -> None:
        """Raise :class:`CheckpointError` on version or digest mismatch."""
        if self.version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint version {self.version} is not supported "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        digest = hashlib.sha256(self.payload).hexdigest()
        if digest != self.payload_digest:
            raise CheckpointError(
                "checkpoint payload is corrupt: digest "
                f"{digest[:12]}... does not match the recorded "
                f"{self.payload_digest[:12]}..."
            )

    def state(self) -> object:
        """Verify and unpickle the captured simulation state."""
        self.verify()
        return pickle.loads(self.payload)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (payload base64-encoded)."""
        return {
            "version": self.version,
            "config_digest": self.config_digest,
            "segment_index": self.segment_index,
            "time_s": self.time_s,
            "payload": base64.b64encode(self.payload).decode("ascii"),
            "payload_digest": self.payload_digest,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ClusterCheckpoint":
        try:
            raw = base64.b64decode(str(payload["payload"]).encode("ascii"))
            cp = cls(
                config_digest=str(payload["config_digest"]),
                segment_index=int(payload["segment_index"]),
                time_s=float(payload["time_s"]),
                payload=raw,
                payload_digest=str(payload["payload_digest"]),
                version=int(payload["version"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed checkpoint: {exc}") from exc
        cp.verify()
        return cp
