"""The ``traffic`` CLI subcommand.

Single-core::

    python -m repro.cli traffic --scheme neu10 --arrival poisson --load 0.8

Cluster churn::

    python -m repro.cli traffic --cluster --hosts 4 --load 0.6

Prints per-tenant SLO attainment, p95/p99 latency and utilization.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.api.registries import all_scheme_names, arrival_kind_names
from repro.config import DEFAULT_CORE, DEFAULT_SEED
from repro.errors import Neu10Error
from repro.traffic.cluster_sim import (
    ChurnEvent,
    ClusterTrafficConfig,
    run_cluster_traffic,
)
from repro.traffic.openloop import (
    OpenLoopConfig,
    TrafficTenantSpec,
    run_open_loop,
)
from repro.traffic.slo import SloReport


def _parse_models(raw: str) -> List[TrafficTenantSpec]:
    specs: List[TrafficTenantSpec] = []
    for chunk in raw.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if ":" in chunk:
            model, batch = chunk.split(":", 1)
            try:
                specs.append(TrafficTenantSpec(model=model, batch=int(batch)))
            except ValueError:
                raise argparse.ArgumentTypeError(
                    f"bad model spec {chunk!r}: expected MODEL[:BATCH]"
                )
        else:
            specs.append(TrafficTenantSpec(model=chunk))
    if not specs:
        raise argparse.ArgumentTypeError("no models given")
    return specs


def _print_reports(reports: Sequence[SloReport], header: str) -> None:
    core = DEFAULT_CORE
    print(header)
    print(
        f"  {'tenant':<10} {'offered':>7} {'done':>6} {'attain':>7} "
        f"{'goodput':>10} {'p95(us)':>9} {'p99(us)':>9} {'queue(us)':>10}"
    )
    for rep in reports:
        print(
            f"  {rep.name:<10} {rep.offered:>7} {rep.completed:>6} "
            f"{rep.attainment * 100:>6.1f}% "
            f"{rep.goodput_rps:>8.0f}/s "
            f"{core.cycles_to_us(rep.p95_latency):>9.1f} "
            f"{core.cycles_to_us(rep.p99_latency):>9.1f} "
            f"{core.cycles_to_us(rep.mean_queueing_delay):>10.2f}"
        )


def _run_single(args: argparse.Namespace) -> int:
    specs = args.models
    cfg = OpenLoopConfig(
        duration_s=args.duration_s,
        load=args.load,
        arrival=args.arrival,
        seed=args.seed,
        drain=args.drain,
    )
    result = run_open_loop(specs, args.scheme, cfg)
    _print_reports(
        result.reports,
        f"open-loop: scheme={args.scheme} arrival={args.arrival} "
        f"load={args.load:g} window={args.duration_s:g}s",
    )
    print(
        f"  core utilization: ME {result.me_utilization * 100:.1f}%  "
        f"VE {result.ve_utilization * 100:.1f}%  "
        f"({result.total_cycles:.0f} cycles simulated)"
    )
    return 0


def _default_churn_script(end_s: float) -> List[ChurnEvent]:
    """A small canned script: steady pair, mid-run departure + arrival."""
    mnist = TrafficTenantSpec(model="MNIST", batch=8)
    dlrm = TrafficTenantSpec(model="DLRM", batch=8)
    bert = TrafficTenantSpec(model="BERT", batch=4)
    return [
        ChurnEvent(0.0, "arrive", "mnist-a", spec=mnist),
        ChurnEvent(0.0, "arrive", "dlrm-a", spec=dlrm),
        ChurnEvent(0.0, "arrive", "mnist-b", spec=mnist),
        ChurnEvent(end_s / 2, "depart", "mnist-b"),
        ChurnEvent(end_s / 2, "arrive", "bert-a", spec=bert),
    ]


def _run_cluster(args: argparse.Namespace) -> int:
    cfg = ClusterTrafficConfig(
        num_hosts=args.hosts,
        scheme=args.scheme,
        arrival=args.arrival,
        load=args.load,
        end_s=args.duration_s,
        seed=args.seed,
    )
    events = _default_churn_script(args.duration_s)
    result = run_cluster_traffic(events, cfg)
    _print_reports(
        sorted(result.reports.values(), key=lambda r: r.name),
        f"cluster open-loop: hosts={args.hosts} scheme={args.scheme} "
        f"arrival={args.arrival} load={args.load:g} window={args.duration_s:g}s "
        f"segments={result.segments}",
    )
    print(
        f"  cluster utilization: ME {result.cluster_me_utilization * 100:.1f}%  "
        f"VE {result.cluster_ve_utilization * 100:.1f}%  "
        f"admission {result.admission_rate * 100:.0f}%"
        + (f"  rejected: {', '.join(result.rejected)}" if result.rejected else "")
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.cli traffic",
        description="Open-loop traffic simulation (SLO attainment under load).",
    )
    parser.add_argument("--scheme", default="neu10",
                        choices=all_scheme_names())
    parser.add_argument("--arrival", default="poisson",
                        choices=arrival_kind_names(generative_only=True))
    parser.add_argument("--load", type=float, default=0.8,
                        help="offered load as a fraction of per-tenant capacity")
    parser.add_argument("--duration-s", type=float, default=0.002,
                        help="simulated window in seconds of core time")
    parser.add_argument("--models", type=_parse_models,
                        default=_parse_models("MNIST:8,DLRM:8"),
                        help="comma-separated model[:batch] list")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--drain", action="store_true",
                        help="run past the window until every request finishes")
    parser.add_argument("--cluster", action="store_true",
                        help="run the cluster churn demo instead of one core")
    parser.add_argument("--hosts", type=int, default=2,
                        help="cluster size (with --cluster)")
    args = parser.parse_args(argv)

    try:
        if args.cluster:
            return _run_cluster(args)
        return _run_single(args)
    except Neu10Error as exc:
        print(f"error: {exc}")
        return 1
