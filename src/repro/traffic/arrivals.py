"""Open-loop arrival processes.

Every process generates per-tenant request timestamps (in core cycles,
sorted, within ``[0, duration)``) from an explicit ``random.Random``
stream, so a whole traffic scenario replays bit-exactly from one seed
(see :func:`repro.config.spawn_rng`).

Four families cover the workload axis the closed-loop methodology
cannot:

- :class:`PoissonProcess`     -- memoryless steady load;
- :class:`OnOffProcess`       -- bursty MMPP-style on/off modulation;
- :class:`DiurnalProcess`     -- slow sinusoidal rate swing (day/night);
- :class:`TraceProcess`       -- replay of recorded timestamps (CSV).
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence

from repro.errors import ConfigError


class ArrivalProcess:
    """Base class: a rate-parameterised generator of arrival times."""

    kind = "base"

    #: Mean arrivals per cycle (used for load accounting and display).
    mean_rate_per_cycle: float = 0.0

    def generate(self, duration_cycles: float, rng: random.Random) -> List[float]:
        raise NotImplementedError

    @staticmethod
    def _check_duration(duration_cycles: float) -> None:
        if duration_cycles <= 0:
            raise ConfigError("arrival window must be positive")


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals: exponential inter-arrival gaps."""

    kind = "poisson"

    def __init__(self, rate_per_cycle: float) -> None:
        if rate_per_cycle <= 0:
            raise ConfigError("arrival rate must be positive")
        self.mean_rate_per_cycle = rate_per_cycle

    def generate(self, duration_cycles: float, rng: random.Random) -> List[float]:
        self._check_duration(duration_cycles)
        out: List[float] = []
        t = rng.expovariate(self.mean_rate_per_cycle)
        while t < duration_cycles:
            out.append(t)
            t += rng.expovariate(self.mean_rate_per_cycle)
        return out


class OnOffProcess(ArrivalProcess):
    """Two-state MMPP: Poisson bursts separated by silent periods.

    State dwell times are exponential with means ``mean_on_cycles`` and
    ``mean_off_cycles``; during ON the instantaneous rate is scaled so
    the *long-run* mean rate equals ``mean_rate_per_cycle``.  The same
    mean load as :class:`PoissonProcess` therefore arrives with a much
    higher inter-arrival coefficient of variation -- the interesting
    regime for SLO attainment.
    """

    kind = "bursty"

    def __init__(
        self,
        mean_rate_per_cycle: float,
        mean_on_cycles: float,
        mean_off_cycles: float,
    ) -> None:
        if mean_rate_per_cycle <= 0:
            raise ConfigError("arrival rate must be positive")
        if mean_on_cycles <= 0 or mean_off_cycles < 0:
            raise ConfigError("burst durations must be positive")
        self.mean_rate_per_cycle = mean_rate_per_cycle
        self.mean_on = mean_on_cycles
        self.mean_off = mean_off_cycles
        duty = mean_on_cycles / (mean_on_cycles + mean_off_cycles)
        self.on_rate = mean_rate_per_cycle / duty

    def generate(self, duration_cycles: float, rng: random.Random) -> List[float]:
        self._check_duration(duration_cycles)
        out: List[float] = []
        t = 0.0
        on = True
        while t < duration_cycles:
            dwell = rng.expovariate(1.0 / (self.mean_on if on else self.mean_off))
            end = min(duration_cycles, t + dwell)
            if on:
                s = t + rng.expovariate(self.on_rate)
                while s < end:
                    out.append(s)
                    s += rng.expovariate(self.on_rate)
            t = end
            on = not on
        return out


class DiurnalProcess(ArrivalProcess):
    """Non-homogeneous Poisson with a sinusoidal rate (thinning method).

    ``rate(t) = mean * (1 + amplitude * sin(2*pi*t/period))`` -- the
    cluster-scale day/night swing compressed into simulation time.
    """

    kind = "diurnal"

    def __init__(
        self,
        mean_rate_per_cycle: float,
        period_cycles: float,
        amplitude: float = 0.8,
    ) -> None:
        if mean_rate_per_cycle <= 0:
            raise ConfigError("arrival rate must be positive")
        if period_cycles <= 0:
            raise ConfigError("diurnal period must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigError("diurnal amplitude must be in [0, 1)")
        self.mean_rate_per_cycle = mean_rate_per_cycle
        self.period = period_cycles
        self.amplitude = amplitude

    def rate_at(self, t: float) -> float:
        return self.mean_rate_per_cycle * (
            1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)
        )

    def generate(self, duration_cycles: float, rng: random.Random) -> List[float]:
        self._check_duration(duration_cycles)
        peak = self.mean_rate_per_cycle * (1.0 + self.amplitude)
        out: List[float] = []
        t = rng.expovariate(peak)
        while t < duration_cycles:
            if rng.random() <= self.rate_at(t) / peak:
                out.append(t)
            t += rng.expovariate(peak)
        return out


class TraceProcess(ArrivalProcess):
    """Replay recorded arrival timestamps (already in cycles)."""

    kind = "trace"

    def __init__(self, times_cycles: Sequence[float]) -> None:
        times = sorted(float(t) for t in times_cycles)
        if times and times[0] < 0:
            raise ConfigError("trace timestamps cannot be negative")
        self.times = times
        if times:
            span = max(times[-1], 1.0)
            self.mean_rate_per_cycle = len(times) / span

    def generate(self, duration_cycles: float, rng: random.Random) -> List[float]:
        self._check_duration(duration_cycles)
        del rng  # replay is deterministic by construction
        return [t for t in self.times if t < duration_cycles]


def load_trace_csv(path: str, frequency_hz: Optional[float] = None) -> List[float]:
    """Read one timestamp per line (first CSV column, seconds).

    With ``frequency_hz`` the timestamps are converted to cycles, the
    unit every simulator API expects.
    """
    times: List[float] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            cell = line.split(",")[0].strip()
            if not cell or cell.startswith("#"):
                continue
            try:
                value = float(cell)
            except ValueError as exc:
                raise ConfigError(f"bad trace line {line!r} in {path}") from exc
            times.append(value * frequency_hz if frequency_hz else value)
    return sorted(times)


# ----------------------------------------------------------------------
# Builders (the entries the ARRIVALS registry exposes)
#
# Every builder takes ``(mean_rate_per_cycle, **kwargs)`` and ignores
# the kwargs it does not use, so one factory signature serves every
# kind -- including third-party processes registered through
# :data:`repro.api.registries.ARRIVALS`.
# ----------------------------------------------------------------------
def build_poisson(mean_rate_per_cycle: float, **_kwargs) -> ArrivalProcess:
    return PoissonProcess(mean_rate_per_cycle)


def build_bursty(
    mean_rate_per_cycle: float,
    *,
    duration_cycles: Optional[float] = None,
    mean_on_cycles: Optional[float] = None,
    mean_off_cycles: Optional[float] = None,
    **_kwargs,
) -> ArrivalProcess:
    # Default each dwell time independently (~10 bursts per window
    # with a 1:3 duty cycle) so a supplied value is never discarded.
    if (mean_on_cycles is None or mean_off_cycles is None) and (
        duration_cycles is None
    ):
        raise ConfigError("bursty arrivals need durations or a window")
    if mean_on_cycles is None:
        mean_on_cycles = duration_cycles / 40.0
    if mean_off_cycles is None:
        mean_off_cycles = 3.0 * duration_cycles / 40.0
    return OnOffProcess(mean_rate_per_cycle, mean_on_cycles, mean_off_cycles)


def build_diurnal(
    mean_rate_per_cycle: float,
    *,
    duration_cycles: Optional[float] = None,
    period_cycles: Optional[float] = None,
    amplitude: float = 0.8,
    **_kwargs,
) -> ArrivalProcess:
    if period_cycles is None:
        if duration_cycles is None:
            raise ConfigError("diurnal arrivals need a period or a window")
        period_cycles = duration_cycles / 2.0
    return DiurnalProcess(mean_rate_per_cycle, period_cycles, amplitude)


def build_trace_process(
    mean_rate_per_cycle: float,
    *,
    trace_times: Optional[Sequence[float]] = None,
    **_kwargs,
) -> ArrivalProcess:
    del mean_rate_per_cycle  # the replayed timestamps define the rate
    if trace_times is None:
        raise ConfigError("trace arrivals need timestamps")
    return TraceProcess(trace_times)


#: Built-in builders; the single source the ARRIVALS registry loads.
BUILDERS = {
    "poisson": build_poisson,
    "bursty": build_bursty,
    "diurnal": build_diurnal,
    "trace": build_trace_process,
}

ARRIVAL_KINDS = tuple(BUILDERS)


def make_arrival_process(
    kind: str,
    mean_rate_per_cycle: float,
    *,
    duration_cycles: Optional[float] = None,
    mean_on_cycles: Optional[float] = None,
    mean_off_cycles: Optional[float] = None,
    period_cycles: Optional[float] = None,
    amplitude: float = 0.8,
    trace_times: Optional[Sequence[float]] = None,
) -> ArrivalProcess:
    """Factory used by the CLI and the open-loop runners.

    Dispatches through :data:`repro.api.registries.ARRIVALS`, so kinds
    registered by third parties are constructed the same way as the
    built-ins.  Burst/period defaults are derived from
    ``duration_cycles`` so a bare ``--arrival bursty`` or ``--arrival
    diurnal`` is immediately usable.
    """
    from repro.api.registries import ARRIVALS

    info = ARRIVALS.get(kind)
    return info.builder(
        mean_rate_per_cycle,
        duration_cycles=duration_cycles,
        mean_on_cycles=mean_on_cycles,
        mean_off_cycles=mean_off_cycles,
        period_cycles=period_cycles,
        amplitude=amplitude,
        trace_times=trace_times,
    )
