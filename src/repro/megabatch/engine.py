"""Struct-of-arrays batch engine over independent simulators.

The scalar engine spends most of a steady-state epoch on bookkeeping
that is a pure function of the *structural* state: building the
scheduler fingerprint, replaying the memoised plan onto unit objects,
and retiring/spawning ``ExecUnit`` shells.  This module interns those
structural states once -- as :class:`_ChainNode` -- and advances lanes
that sit on a node through plain remaining-work arrays:

- one node = one decision-memo entry (the plan: per-slot rates, busy
  dicts, blocked/serving sets) plus the tenants' op/group cursors, so
  every lane on a node shares the epoch plan verbatim;
- per-lane state shrinks to two float lists (remaining ME/VE work per
  slot), the clock, and the real ``Tenant`` request queues;
- epoch-boundary detection (the ``delta`` min-scan) and the work
  advance run vectorised with numpy across all lanes of a node;
- a completion triggers a *transition*: the successor fingerprint key
  is constructed arithmetically from the node (packed template ids,
  updated states, creation-rank permutation) and looked up in the same
  process-wide plan memo the scalar fast path uses.  Known transitions
  are cached per node, so recurring steady-state cycles never touch a
  unit object.

Anything the chain representation does not model -- preemptions,
reclaim timers, arrivals landing on an idle tenant, a cold memo, op
recording -- *materialises* the lane back into ordinary unit objects
and falls back to the scalar engine's own step functions.  Every float
operation on the array path replicates the scalar expression grouping
(``rate * delta``, ``remaining - progress``,
``(progress * ve_rate) * granted``) and the scalar accumulation order,
so results are bit-identical, not approximately equal.
"""

from __future__ import annotations

import gc
import math
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.engine import EPS, MIN_DELTA, Request, Simulator, SimResult
from repro.sim.scheduler_base import ExecUnit, UnitState

try:  # numpy is optional: the scalar lane path is complete without it.
    import numpy as _np
except ImportError:  # pragma: no cover - baked into the CI image
    _np = None

#: Environment escape hatch: set REPRO_SIM_MEGABATCH=0 to disable the
#: batched sweep/cluster call sites (one simulation per job, exactly the
#: pre-megabatch behaviour).
MEGABATCH_ENV = "REPRO_SIM_MEGABATCH"

#: Minimum lanes sharing a node before the numpy kernel takes over from
#: the per-lane Python loops (both produce identical bits).  ``None``
#: disables bucketing: at the slot widths the serving scenarios produce
#: (~10 units per lane) the fused interpreter path beats the numpy
#: kernel -- list<->ndarray conversion per epoch costs more than the
#: vectorised math saves -- so the kernel is opt-in via
#: ``numpy_min_lanes`` and kept bit-identical by the differential tests.
_NUMPY_MIN_LANES = None

#: Safety valves for the process-wide chain caches.
_SCOPE_LIMIT = 256
_NODE_LIMIT = 4096

_READY = UnitState.READY
_RUNNING = UnitState.RUNNING
_DONE = UnitState.DONE
_STATE_CODE = {_READY: 0, _RUNNING: 1, _DONE: 2}


def megabatch_default() -> bool:
    """Whether the mega-batch call sites are enabled (default: yes)."""
    return os.environ.get(MEGABATCH_ENV, "1").lower() not in ("0", "false", "off")


# ----------------------------------------------------------------------
# Chain scopes: interned structural states shared across lanes
# ----------------------------------------------------------------------
#: Process-wide scope cache.  A scope pins the decision memo and the
#: compiled graphs its node keys are derived from, so object ids stay
#: valid for the cache's lifetime.
_CHAIN_SCOPES: Dict[Tuple, "_ChainScope"] = {}


class _ChainScope:
    """Chain-node namespace for one (memo context, graph layout).

    Lanes may share nodes only when their decision memo *and* their
    tenants' compiled graphs and loop kinds coincide: the memo pins the
    scheduler/core/allocation layout (decisions), the graphs pin the
    unit templates (successor structure), and ``closed_loop`` pins the
    request-completion effects.
    """

    __slots__ = ("memo", "graphs", "templates", "closed", "nodes")

    def __init__(self, sim: Simulator) -> None:
        self.memo = sim._decision_memo
        self.graphs = tuple(t.graph for t in sim.tenants)
        self.templates = [t._templates for t in sim.tenants]
        self.closed = tuple(t.closed_loop for t in sim.tenants)
        self.nodes: Dict[Tuple, Optional[_ChainNode]] = {}

    def node(self, plan_key: Tuple, cursors: Tuple) -> Optional["_ChainNode"]:
        """Interned node for (memo key, cursors); None when the state is
        outside the chain representation (reclaims in the key, preempt
        effects in the plan, grants too large to pack)."""
        nkey = (plan_key, cursors)
        node = self.nodes.get(nkey)
        if node is None and nkey not in self.nodes:
            node = _ChainNode.build(self, plan_key, cursors)
            if node is None and plan_key[0] is None and plan_key not in self.memo:
                # Transient failure: the scalar path has not planned
                # this state yet, so the memo entry is missing.  Do NOT
                # cache the None -- once a materialised lane visits the
                # state, the memo fills and the retry succeeds.
                return None
            if len(self.nodes) >= _NODE_LIMIT:
                self.nodes.clear()
            self.nodes[nkey] = node
        return node


def _scope_for(sim: Simulator) -> Optional[_ChainScope]:
    ctx = sim._memo_ctx
    if ctx is None:
        return None
    key = (
        ctx,
        id(sim._decision_memo),
        tuple(id(t.graph) for t in sim.tenants),
        tuple(t.closed_loop for t in sim.tenants),
    )
    scope = _CHAIN_SCOPES.get(key)
    if scope is None:
        if len(_CHAIN_SCOPES) >= _SCOPE_LIMIT:
            _CHAIN_SCOPES.clear()
        scope = _ChainScope(sim)
        _CHAIN_SCOPES[key] = scope
    return scope


class _Transition:
    """One learned structural transition: winners + start flags in,
    successor node plus remaining-work carry/init recipe out."""

    __slots__ = ("next_node", "carry", "me_base", "ve_base", "completers")

    def __init__(self, next_node, carry, me_base, ve_base, completers):
        self.next_node = next_node
        #: (new_slot, old_slot) pairs whose remaining work carries over.
        self.carry = carry
        #: Successor remaining-work vectors with every fresh value
        #: (template work for spawns, zeros for lingering DONE winners)
        #: pre-filled -- copy, then overwrite the carry slots.
        self.me_base = me_base
        self.ve_base = ve_base
        #: Tenant positions whose request completed at this transition.
        self.completers = completers


class _ChainNode:
    """One interned structural state with its memoised epoch plan.

    ``plan_key`` is the scalar fast path's fingerprint key; the node
    decodes that key's memo entry once into slot-indexed rate/accounting
    vectors shared by every lane and every visit.  Slots follow the
    fingerprint order (tenant order x active-unit order), and each
    tenant's active units are exactly its current template group in
    template order -- the invariant that lets cursors plus the compiled
    graph reconstruct every unit attribute.
    """

    __slots__ = (
        "scope", "plan_key", "cursors", "n_slots", "tenant_slots",
        "slot_tenant", "slot_templates", "slot_tpl_ids", "dense",
        "dense_codes", "creation_order", "me_adv", "ve_adv", "delta_me",
        "delta_ve", "blocked_tids", "serving_pos", "me_busy", "ve_busy",
        "harvested", "me_busy_items", "ve_busy_items", "harv_items",
        "trans", "start_trans", "completers_cache", "np_ready", "np_d_me",
        "np_d_me_rates", "np_d_ve", "np_d_ve_rates", "np_a_me",
        "np_a_me_rates", "np_emb_idx", "np_emb_slots", "np_emb_ve",
        "np_emb_granted", "np_a_ve", "np_a_ve_rates", "me_slot_list",
        "ve_slot_list",
    )

    @classmethod
    def build(
        cls, scope: _ChainScope, plan_key: Tuple, cursors: Tuple
    ) -> Optional["_ChainNode"]:
        if plan_key[0] is not None:
            return None  # reclaim counts in the key: outside the chain
        entry = scope.memo.get(plan_key)
        if entry is None or entry[0]:
            return None  # evicted, or a preempting plan
        (_pre, dense, enc_rates, enc_ve_exec, _hbm, enc_blocked,
         enc_serving, me_busy, ve_busy, harvested, _ma, _va) = entry

        node = cls()
        node.scope = scope
        node.plan_key = plan_key
        node.cursors = cursors
        tenant_slots: List[Tuple[int, int]] = []
        slot_tenant: List[int] = []
        slot_templates: List[Tuple] = []
        pos = 0
        for tpos, cur in enumerate(cursors):
            if cur is None:
                tenant_slots.append((pos, pos))
                continue
            op, grp = cur
            templates_t = scope.templates[tpos]
            if op >= len(templates_t) or grp >= len(templates_t[op]):
                return None
            group = templates_t[op][grp]
            tenant_slots.append((pos, pos + len(group)))
            for tpl in group:
                slot_tenant.append(tpos)
                slot_templates.append(tpl)
            pos += len(group)
        if pos != len(dense):
            return None  # layout mismatch: fall back to the object path
        node.n_slots = pos
        node.tenant_slots = tuple(tenant_slots)
        node.slot_tenant = tuple(slot_tenant)
        node.slot_templates = tuple(slot_templates)
        node.slot_tpl_ids = tuple(tpl[10] for tpl in slot_templates)
        node.dense = dense
        codes = []
        for slot, d in enumerate(dense):
            # Fingerprint packing guards: units outside the packed-int
            # encoding (huge grants, template-less units) fall back to
            # tuple encoding in the scalar path, which the chain's
            # arithmetic key construction does not model.
            if d[0] >= 64 or node.slot_tpl_ids[slot] < 0:
                return None
            codes.append(_STATE_CODE[d[3]])
        node.dense_codes = tuple(codes)
        rank_perm = plan_key[1]
        node.creation_order = rank_perm if rank_perm else tuple(range(pos))

        # Advance vectors: every rates entry updates remaining ME work
        # (and its embedded VE stream); VE-exec entries update VE work.
        me_adv = []
        for i, rate, _harv in enc_rates:
            tpl = slot_templates[i]
            me_adv.append((i, rate, tpl[5], dense[i][0]))
        node.me_adv = tuple(me_adv)
        node.ve_adv = tuple(enc_ve_exec)
        node.delta_me = tuple((i, r) for i, r, _v, _g in me_adv if r > EPS)
        node.delta_ve = tuple((i, r) for i, r in enc_ve_exec if r > EPS)
        node.blocked_tids = tuple(tid for tid, _i in enc_blocked)
        node.serving_pos = enc_serving
        node.me_busy = me_busy
        node.ve_busy = ve_busy
        node.harvested = harvested
        # Tuple snapshots of the shared entry dicts: same pairs in the
        # same iteration order (so accumulation order matches the scalar
        # engine bitwise), minus the dict-view overhead per epoch.
        node.me_busy_items = tuple(me_busy.items())
        node.ve_busy_items = tuple(ve_busy.items())
        node.harv_items = tuple(harvested.items())
        node.trans = {}
        node.start_trans = {}
        node.completers_cache = {}
        node.np_ready = False
        return node

    # ------------------------------------------------------------------
    def request_completers(self, winners: Tuple[int, ...]) -> Tuple[int, ...]:
        """Tenant positions whose *request* completes when ``winners``
        finish (a pure function of the structure, independent of queue
        contents)."""
        cached = self.completers_cache.get(winners)
        if cached is not None:
            return cached
        winnerset = frozenset(winners)
        dense_codes = self.dense_codes
        out = []
        for tpos, cur in enumerate(self.cursors):
            if cur is None:
                continue
            start, end = self.tenant_slots[tpos]
            all_done = True
            for s in range(start, end):
                if dense_codes[s] != 2 and s not in winnerset:
                    all_done = False
                    break
            if not all_done:
                continue
            op, grp = cur
            templates_t = self.scope.templates[tpos]
            if grp + 1 >= len(templates_t[op]) and op + 1 >= len(templates_t):
                out.append(tpos)
        cached = tuple(out)
        self.completers_cache[winners] = cached
        return cached

    def transition(
        self, winners: Tuple[int, ...], flags: Tuple[bool, ...]
    ) -> Optional[_Transition]:
        """Successor for (winners, per-completer start flags); None when
        the successor plan is not (yet) in the memo -- the caller
        materialises and the scalar path fills the memo in."""
        tkey = (winners, flags)
        trans = self.trans.get(tkey)
        if trans is None:
            trans = self._build_transition(winners, flags)
            if trans is not None:
                self.trans[tkey] = trans
        return trans

    def _build_transition(
        self, winners: Tuple[int, ...], flags: Tuple[bool, ...]
    ) -> Optional[_Transition]:
        scope = self.scope
        winnerset = frozenset(winners)
        dense = self.dense
        dense_codes = self.dense_codes
        tpl_ids = self.slot_tpl_ids
        new_cursors: List[Optional[Tuple[int, int]]] = []
        carry: List[Tuple[int, int]] = []
        fresh: List[Tuple[int, float, float]] = []
        completers: List[int] = []
        flat: List[int] = []
        old_to_new: Dict[int, int] = {}
        fresh_runs: List[List[int]] = []
        fi = 0
        new_idx = 0
        for tpos, cur in enumerate(self.cursors):
            flat.append(-1)
            if cur is None:
                new_cursors.append(None)
                continue
            start, end = self.tenant_slots[tpos]
            all_done = True
            for s in range(start, end):
                if dense_codes[s] != 2 and s not in winnerset:
                    all_done = False
                    break
            templates_t = scope.templates[tpos]
            if not all_done:
                # Partial completion: the group lingers; winners become
                # DONE slots with cleared grants, survivors keep their
                # post-decision state and grant.
                new_cursors.append(cur)
                for s in range(start, end):
                    if s in winnerset:
                        fresh.append((new_idx, 0.0, 0.0))
                        flat.append(tpl_ids[s] * 256 + 2 * 64)
                    else:
                        carry.append((new_idx, s))
                        flat.append(
                            tpl_ids[s] * 256 + dense_codes[s] * 64 + dense[s][0]
                        )
                    old_to_new[s] = new_idx
                    new_idx += 1
                continue
            # Whole group retired: replay Tenant.on_unit_done's cursor
            # walk (spawned units cannot finish in the same epoch, so at
            # most one group boundary per tenant per transition).
            op, grp = cur
            grp += 1
            if grp < len(templates_t[op]):
                spawn: Optional[Tuple[int, int]] = (op, grp)
            elif op + 1 < len(templates_t):
                spawn = (op + 1, 0)
            else:
                completers.append(tpos)
                if fi >= len(flags):
                    return None  # flag arity mismatch; be conservative
                spawn = (0, 0) if flags[fi] else None
                fi += 1
            new_cursors.append(spawn)
            if spawn is None:
                continue
            group = templates_t[spawn[0]][spawn[1]]
            run: List[int] = []
            for tpl in group:
                fresh.append((new_idx, tpl[3], tpl[4]))
                flat.append(tpl[10] * 256)  # READY, no grant
                run.append(new_idx)
                new_idx += 1
            fresh_runs.append(run)

        # Creation order: survivors keep their relative spawn order and
        # fresh units append in tenant order (the order on_unit_done
        # assigns unit ids), which pins the fingerprint's cross-tenant
        # FIFO permutation.
        order = [old_to_new[s] for s in self.creation_order if s in old_to_new]
        for run in fresh_runs:
            order.extend(run)
        if new_idx <= 1 or order == list(range(new_idx)):
            rank_perm: Tuple[int, ...] = ()
        else:
            rank_perm = tuple(order)
        fp_key = (None, rank_perm, tuple(flat))
        next_node = scope.node(fp_key, tuple(new_cursors))
        if next_node is None or next_node.n_slots != new_idx:
            return None
        me_base = [0.0] * new_idx
        ve_base = [0.0] * new_idx
        for slot, m0, v0 in fresh:
            me_base[slot] = m0
            ve_base[slot] = v0
        return _Transition(
            next_node, tuple(carry), me_base, ve_base, tuple(completers)
        )

    def start_transition(
        self, starters: Tuple[int, ...]
    ) -> Optional[_Transition]:
        """Successor when idle tenants ``starters`` begin a request (an
        arrival admitted onto an empty queue): every existing slot
        carries, each starter spawns its op-0/group-0 templates at
        cursors (0, 0) -- exactly ``_maybe_start_request`` plus
        ``_spawn_group_units`` in tenant order.  None when the successor
        plan is not (yet) in the memo."""
        trans = self.start_trans.get(starters)
        if trans is not None or starters in self.start_trans:
            return trans
        scope = self.scope
        starterset = frozenset(starters)
        dense = self.dense
        dense_codes = self.dense_codes
        tpl_ids = self.slot_tpl_ids
        new_cursors: List[Optional[Tuple[int, int]]] = []
        carry: List[Tuple[int, int]] = []
        fresh: List[Tuple[int, float, float]] = []
        flat: List[int] = []
        old_to_new: Dict[int, int] = {}
        fresh_runs: List[List[int]] = []
        new_idx = 0
        ok = True
        for tpos, cur in enumerate(self.cursors):
            flat.append(-1)
            if cur is not None:
                new_cursors.append(cur)
                start, end = self.tenant_slots[tpos]
                for s in range(start, end):
                    carry.append((new_idx, s))
                    flat.append(
                        tpl_ids[s] * 256 + dense_codes[s] * 64 + dense[s][0]
                    )
                    old_to_new[s] = new_idx
                    new_idx += 1
                continue
            if tpos not in starterset:
                new_cursors.append(None)
                continue
            templates_t = scope.templates[tpos]
            if not templates_t or not templates_t[0]:
                ok = False
                break
            new_cursors.append((0, 0))
            group = templates_t[0][0]
            run: List[int] = []
            for tpl in group:
                fresh.append((new_idx, tpl[3], tpl[4]))
                flat.append(tpl[10] * 256)  # READY, no grant
                run.append(new_idx)
                new_idx += 1
            fresh_runs.append(run)

        trans = None
        if ok:
            order = [
                old_to_new[s] for s in self.creation_order if s in old_to_new
            ]
            for run in fresh_runs:
                order.extend(run)
            if new_idx <= 1 or order == list(range(new_idx)):
                rank_perm: Tuple[int, ...] = ()
            else:
                rank_perm = tuple(order)
            fp_key = (None, rank_perm, tuple(flat))
            next_node = scope.node(fp_key, tuple(new_cursors))
            if next_node is not None and next_node.n_slots == new_idx:
                me_base = [0.0] * new_idx
                ve_base = [0.0] * new_idx
                for slot, m0, v0 in fresh:
                    me_base[slot] = m0
                    ve_base[slot] = v0
                trans = _Transition(next_node, tuple(carry), me_base, ve_base, ())
        if trans is not None:
            # Only cache successes: a miss just means the scalar memo
            # has not seen the successor yet -- it will after the
            # materialise fallback, so retrying later can succeed.
            self.start_trans[starters] = trans
        return trans

    # ------------------------------------------------------------------
    def ensure_numpy(self) -> None:
        """Lazily build the numpy views of the per-slot vectors."""
        if self.np_ready:
            return
        asarray = _np.asarray
        self.np_d_me = asarray([i for i, _r in self.delta_me], dtype=_np.intp)
        self.np_d_me_rates = asarray([r for _i, r in self.delta_me])
        self.np_d_ve = asarray([i for i, _r in self.delta_ve], dtype=_np.intp)
        self.np_d_ve_rates = asarray([r for _i, r in self.delta_ve])
        self.np_a_me = asarray([e[0] for e in self.me_adv], dtype=_np.intp)
        self.np_a_me_rates = asarray([e[1] for e in self.me_adv])
        emb = [
            (k, e[0], e[2], e[3])
            for k, e in enumerate(self.me_adv)
            if e[2] > 0
        ]
        self.np_emb_idx = asarray([k for k, _s, _v, _g in emb], dtype=_np.intp)
        self.np_emb_slots = asarray([s for _k, s, _v, _g in emb], dtype=_np.intp)
        self.np_emb_ve = asarray([v for _k, _s, v, _g in emb])
        self.np_emb_granted = asarray(
            [float(g) for _k, _s, _v, g in emb]
        )
        self.np_a_ve = asarray([i for i, _r in self.ve_adv], dtype=_np.intp)
        self.np_a_ve_rates = asarray([r for _i, r in self.ve_adv])
        self.me_slot_list = [e[0] for e in self.me_adv]
        self.ve_slot_list = [i for i, _r in self.ve_adv]
        self.np_ready = True


# ----------------------------------------------------------------------
# Lanes
# ----------------------------------------------------------------------
class _Lane:
    """One simulator threaded through the batch loop.

    Caches every per-epoch-stable reference (stats accumulator dicts,
    the tenants list, the arrival watch list) so the array-mode inner
    loop touches no attribute chains."""

    __slots__ = (
        "sim", "scope", "chain_ok", "node", "rem_me", "rem_ve", "epochs",
        "check_finish", "done", "result", "array_epochs", "object_epochs",
        "stats", "tenants", "blocked_map", "me_map", "ve_map", "harv_map",
        "arrival_watch", "horizon",
    )

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        stats = sim.stats
        self.scope = (
            _scope_for(sim)
            if (
                sim.fast_path
                and not stats.record_ops
                and not stats.record_assignment
                and not stats.record_bandwidth
            )
            else None
        )
        self.chain_ok = self.scope is not None
        self.node: Optional[_ChainNode] = None
        self.rem_me: List[float] = []
        self.rem_ve: List[float] = []
        self.epochs = 0
        self.check_finish = True
        self.done = False
        self.result: Optional[SimResult] = None
        self.array_epochs = 0
        self.object_epochs = 0
        self.stats = stats
        self.tenants = sim.tenants
        self.blocked_map = stats.blocked_cycles_per_tenant
        self.me_map = stats.me_busy_per_tenant
        self.ve_map = stats.ve_busy_per_tenant
        self.harv_map = stats.harvested_me_integral
        self.arrival_watch: List = []
        self.horizon = sim.horizon if sim.horizon != math.inf else None

    def sync_arrival_watch(self) -> None:
        """(position, tenant) pairs that still hold undelivered
        arrivals.  Arrival deques only drain, so the watch list shrinks
        monotonically between syncs (re-synced whenever the lane enters
        array mode)."""
        self.arrival_watch = [
            (tpos, t)
            for tpos, t in enumerate(self.tenants)
            if t.pending_arrivals
        ]

    @property
    def in_array_mode(self) -> bool:
        return self.node is not None


def _cursors_of(sim: Simulator) -> Tuple:
    return tuple(
        (t.op_cursor, t.group_cursor) if t.active_units else None
        for t in sim.tenants
    )


# ----------------------------------------------------------------------
# The batch engine
# ----------------------------------------------------------------------
class MegaBatchEngine:
    """Co-step a batch of independent simulators to completion.

    ``run()`` returns one :class:`SimResult` per input simulator, in
    input order, each bit-identical to what ``sim.run()`` would have
    produced.  Lanes leave the batch as they finish; lanes whose state
    the chain representation cannot express simply step through the
    scalar engine's own ``_next_plan``/``_finish_step`` -- correctness
    never depends on a lane being accelerated.
    """

    def __init__(
        self,
        sims: Sequence[Simulator],
        numpy_min_lanes: Optional[int] = _NUMPY_MIN_LANES,
    ) -> None:
        self.sims = list(sims)
        if numpy_min_lanes is not None and _np is None:
            numpy_min_lanes = None
        self.numpy_min_lanes = numpy_min_lanes
        self.group_stats: Dict[str, int] = {}

    def run(self) -> List[SimResult]:
        lanes = [_Lane(sim) for sim in self.sims]
        for lane in lanes:
            lane.sim.start()
        active = [lane for lane in lanes]
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while active:
                active = self._round(active)
        finally:
            if gc_was_enabled:
                gc.enable()
        self.group_stats = {
            "lanes": len(lanes),
            "array_epochs": sum(l.array_epochs for l in lanes),
            "object_epochs": sum(l.object_epochs for l in lanes),
        }
        return [lane.result for lane in lanes]

    # ------------------------------------------------------------------
    def _check(self, lane: _Lane) -> bool:
        """Pre-epoch stop check, mirroring Simulator.run's loop
        condition.  Returns False (and finishes the lane) when the lane
        is done; the per-epoch livelock guard lives in the steppers."""
        sim = lane.sim
        if lane.check_finish and sim._finished():
            self._finish(lane)
            return False
        lane.check_finish = False
        if sim.now >= sim.horizon:
            self._finish(lane)
            return False
        return True

    def _round(self, active: List[_Lane]) -> List[_Lane]:
        """Advance every active lane by at least one epoch.

        Array-mode lanes *burst* -- they keep stepping until they leave
        array mode, finish, or (for numpy buckets) the bucket disperses
        -- so the scheduling overhead of this method is off the hot
        path.  Object-mode lanes step one epoch per round, giving each
        a promotion attempt."""
        object_lanes: List[_Lane] = []
        buckets: Dict[int, List[_Lane]] = {}
        nodes: Dict[int, _ChainNode] = {}
        for lane in active:
            if not self._check(lane):
                continue
            if lane.in_array_mode:
                key = id(lane.node)
                nodes[key] = lane.node
                buckets.setdefault(key, []).append(lane)
            else:
                object_lanes.append(lane)

        for lane in object_lanes:
            self._object_epoch(lane)
        min_lanes = self.numpy_min_lanes
        for key, group in buckets.items():
            if min_lanes is not None and len(group) >= min_lanes:
                # Lanes marching through the same structural state:
                # vectorised epochs across the whole bucket for as long
                # as it holds together.
                self._bucket_burst(nodes[key], group)
            else:
                # Too few co-located lanes to amortise the numpy kernel:
                # burst each lane through consecutive array epochs
                # instead (lanes are independent, so nothing requires
                # them to stay in lockstep).
                for lane in group:
                    self._array_burst(lane)
        return [lane for lane in active if not lane.done]

    def _finish(self, lane: _Lane) -> None:
        # No materialisation needed: stats and request bookkeeping are
        # maintained on the real objects in both modes.
        lane.result = lane.sim._build_result()
        lane.done = True

    def _array_burst(self, lane: _Lane) -> None:
        """Keep stepping an array-mode lane (including across chain
        transitions) until it finishes, hits the horizon, or drops back
        to object mode.  The caller has already vetted the first epoch
        via _check (whose logic is inlined in the loop below)."""
        sim = lane.sim
        _array_epoch(lane)
        while lane.node is not None:
            if lane.check_finish and sim._finished():
                self._finish(lane)
                return
            lane.check_finish = False
            if sim.now >= sim.horizon:
                self._finish(lane)
                return
            _array_epoch(lane)

    def _bucket_burst(self, node: _ChainNode, group: List[_Lane]) -> None:
        """Run vectorised epochs over a same-node bucket until it
        disperses (transitions diverge, lanes finish or materialise) or
        shrinks below the numpy threshold.  Dispersed lanes return to
        the next round untouched -- every lane stepped here advanced by
        whole epochs only."""
        min_lanes = self.numpy_min_lanes
        while True:
            _bucket_epoch(node, group)
            # Lockstep check: lanes that transitioned to the same
            # successor keep bursting together.
            node = group[0].node
            if node is None:
                return
            keep = [lane for lane in group if lane.node is node]
            if len(keep) < min_lanes:
                return
            group = [lane for lane in keep if self._check(lane)]
            if len(group) < min_lanes:
                for lane in group:
                    self._array_burst(lane)
                return

    # ------------------------------------------------------------------
    def _object_epoch(self, lane: _Lane) -> None:
        """One scalar-engine epoch, promoting the lane onto a chain node
        whenever the plan just came out of the decision memo."""
        sim = lane.sim
        lane.epochs += 1
        if lane.epochs > sim.max_epochs:
            raise SimulationError(
                f"exceeded {sim.max_epochs} epochs at cycle "
                f"{sim.now:.0f}; likely a scheduling livelock"
            )
        lane.object_epochs += 1
        lane.check_finish = True
        plan, had_preempt = sim._next_plan()
        if (
            lane.chain_ok
            and not had_preempt
            and not sim.reclaims
            and sim._plan_key is not None
        ):
            node = lane.scope.node(sim._plan_key, _cursors_of(sim))
            fp_units = sim._fp_units
            if node is not None and fp_units is not None and len(fp_units) == node.n_slots:
                lane.node = node
                lane.rem_me = [u.remaining_me for u in fp_units]
                lane.rem_ve = [u.remaining_ve for u in fp_units]
                lane.sync_arrival_watch()
                lane.object_epochs -= 1
                lane.check_finish = False
                _array_epoch(lane)
                return
        sim._finish_step(plan, had_preempt)


# ----------------------------------------------------------------------
# Array-mode epoch (scalar lane)
# ----------------------------------------------------------------------
def _array_epoch(lane: _Lane) -> None:
    """One epoch for a lane bound to a chain node (pure Python path).

    Fully fused -- delta scan, work advance, accounting, completion
    transition, and arrival admission in one frame -- because this is
    the per-epoch cost everything else amortises down to.  Every float
    expression replicates the scalar engine's grouping and accumulation
    order exactly (see `_pick_delta`, `_advance`, `on_unit_done`)."""
    node = lane.node
    sim = lane.sim
    lane.epochs += 1
    if lane.epochs > sim.max_epochs:
        _materialize(lane)
        raise SimulationError(
            f"exceeded {sim.max_epochs} epochs at cycle "
            f"{sim.now:.0f}; likely a scheduling livelock"
        )
    rem_me = lane.rem_me
    rem_ve = lane.rem_ve

    # -- delta: exactly Simulator._pick_delta over the node's plan ------
    best = math.inf
    for i, rate in node.delta_me:
        c = rem_me[i] / rate
        if EPS < c < best:
            best = c
    for i, rate in node.delta_ve:
        c = rem_ve[i] / rate
        if EPS < c < best:
            best = c
    now = sim.now
    watch = lane.arrival_watch
    next_arr = math.inf
    if watch:
        for _tpos, tenant in watch:
            pending = tenant.pending_arrivals
            if pending:
                a = pending[0]
                if a < next_arr:
                    next_arr = a
                c = a - now
                if EPS < c < best:
                    best = c
    horizon = lane.horizon
    if horizon is not None:
        c = horizon - now
        if EPS < c < best:
            best = c
    if best == math.inf:
        _materialize(lane)
        sim._raise_deadlock()
    delta = best if best > MIN_DELTA else MIN_DELTA

    # -- advance: exactly Simulator._advance's work updates -------------
    winners = None
    for i, rate, ve_rate, granted in node.me_adv:
        progress = rate * delta
        remaining = rem_me[i] - progress
        rem_me[i] = remaining if remaining > 0.0 else 0.0
        if remaining <= EPS:
            if winners is None:
                winners = [i]
            else:
                winners.append(i)
        if ve_rate > 0:
            rv = rem_ve[i] - progress * ve_rate * granted
            rem_ve[i] = rv if rv > 0.0 else 0.0
    for i, rate in node.ve_adv:
        remaining = rem_ve[i] - rate * delta
        rem_ve[i] = remaining if remaining > 0.0 else 0.0
        if remaining <= EPS:
            if winners is None:
                winners = [i]
            else:
                winners.append(i)

    # -- accounting: the scalar _advance's record-flags-off branch ------
    stats = lane.stats
    tenants = lane.tenants
    blocked = lane.blocked_map
    for tid in node.blocked_tids:
        blocked[tid] += delta
    for tpos in node.serving_pos:
        tenants[tpos].active_service_cycles += delta
    stats.total_cycles += delta
    integral = stats.me_busy_integral
    per_tenant = lane.me_map
    for owner, mes in node.me_busy_items:
        v = mes * delta
        integral += v
        per_tenant[owner] += v
    stats.me_busy_integral = integral
    integral = stats.ve_busy_integral
    per_tenant = lane.ve_map
    for owner, ves in node.ve_busy_items:
        v = ves * delta
        integral += v
        per_tenant[owner] += v
    stats.ve_busy_integral = integral
    harv = node.harv_items
    if harv:
        per_tenant = lane.harv_map
        for owner, mes in harv:
            per_tenant[owner] += mes * delta

    now = sim.now = now + delta
    lane.array_epochs += 1

    # -- completions: structural transition along the chain -------------
    if winners is not None:
        wkey = tuple(winners)
        completers = node.completers_cache.get(wkey)
        if completers is None:
            completers = node.request_completers(wkey)
        if completers:
            flags = tuple(
                tenants[tpos].closed_loop or bool(tenants[tpos].queued_requests)
                for tpos in completers
            )
        else:
            flags = ()
        trans = node.trans.get((wkey, flags))
        if trans is None:
            trans = node.transition(wkey, flags)
            if trans is None:
                _fallback_complete(lane, winners)
                return
        # Request-completion effects on the real tenant objects
        # (identical to on_unit_done's request tail, minus unit spawns
        # which are encoded in the successor node).
        for k, tpos in enumerate(trans.completers):
            tenant = tenants[tpos]
            request = tenant.current_request
            request.finish_cycle = now
            tenant.completed.append(request)
            tenant.current_request = None
            if tenant.closed_loop:
                tenant.queued_requests.append(
                    Request(request_id=tenant._take_id(), issue_cycle=now)
                )
            if flags[k]:
                nxt = tenant.queued_requests.popleft()
                nxt.start_cycle = now
                tenant.current_request = nxt
            lane.check_finish = True
        new_me = trans.me_base.copy()
        new_ve = trans.ve_base.copy()
        for new_slot, old_slot in trans.carry:
            new_me[new_slot] = rem_me[old_slot]
            new_ve[new_slot] = rem_ve[old_slot]
        lane.node = trans.next_node
        lane.rem_me = new_me
        lane.rem_ve = new_ve

    # -- arrivals: the scalar pre_step's admission at the same clock ----
    # Gated on the minimum arrival time read during the delta scan, so
    # epochs with nothing due skip the admission pass entirely.
    if next_arr <= now + EPS:
        _admit_arrivals(lane, now)


def _admit_arrivals(lane: _Lane, now: float) -> None:
    """Deliver due arrivals exactly as the scalar ``activate_arrivals``
    would at the next epoch's pre-step: admit (in tenant order) onto
    every watched queue, then start idle tenants' requests through an
    arrival-start chain transition.  Falls back to materialisation only
    when the successor structure is not in the memo yet."""
    threshold = now + EPS
    drained = False
    starters = None
    for tpos, tenant in lane.arrival_watch:
        pending = tenant.pending_arrivals
        if pending and pending[0] <= threshold:
            take_id = tenant._take_id
            queue = tenant.queued_requests
            while pending and pending[0] <= threshold:
                issue = pending.popleft()
                queue.append(Request(request_id=take_id(), issue_cycle=issue))
            if tenant.current_request is None:
                if starters is None:
                    starters = [tpos]
                else:
                    starters.append(tpos)
            if not pending:
                drained = True
    if starters is not None:
        node = lane.node
        trans = node.start_trans.get(tuple(starters))
        if trans is None:
            trans = node.start_transition(tuple(starters))
            if trans is None:
                _materialize(lane)
                return
        tenants = lane.tenants
        for tpos in starters:
            tenant = tenants[tpos]
            request = tenant.queued_requests.popleft()
            request.start_cycle = now
            tenant.current_request = request
        rem_me = lane.rem_me
        rem_ve = lane.rem_ve
        new_me = trans.me_base.copy()
        new_ve = trans.ve_base.copy()
        for new_slot, old_slot in trans.carry:
            new_me[new_slot] = rem_me[old_slot]
            new_ve[new_slot] = rem_ve[old_slot]
        lane.node = trans.next_node
        lane.rem_me = new_me
        lane.rem_ve = new_ve
    if drained:
        lane.sync_arrival_watch()


def _finish_delta(lane: _Lane, best: float) -> float:
    """Fold in the per-lane event candidates (arrivals, horizon) and
    clamp -- the non-unit half of ``_pick_delta``."""
    now = lane.sim.now
    for _tpos, tenant in lane.arrival_watch:
        pending = tenant.pending_arrivals
        if pending:
            c = pending[0] - now
            if EPS < c < best:
                best = c
    horizon = lane.horizon
    if horizon is not None:
        c = horizon - now
        if EPS < c < best:
            best = c
    if best == math.inf:
        _materialize(lane)
        lane.sim._raise_deadlock()
    return best if best > MIN_DELTA else MIN_DELTA


def _epoch_tail(lane: _Lane, delta: float, winners: List[int]) -> None:
    """Accounting, clock, completions, and arrival admission for one
    array-mode epoch -- same accumulation order as the scalar engine."""
    node = lane.node
    sim = lane.sim
    stats = lane.stats
    tenants = lane.tenants

    blocked = lane.blocked_map
    for tid in node.blocked_tids:
        blocked[tid] += delta
    for tpos in node.serving_pos:
        tenants[tpos].active_service_cycles += delta
    stats.total_cycles += delta
    integral = stats.me_busy_integral
    per_tenant = lane.me_map
    for owner, mes in node.me_busy_items:
        v = mes * delta
        integral += v
        per_tenant[owner] += v
    stats.me_busy_integral = integral
    integral = stats.ve_busy_integral
    per_tenant = lane.ve_map
    for owner, ves in node.ve_busy_items:
        v = ves * delta
        integral += v
        per_tenant[owner] += v
    stats.ve_busy_integral = integral
    harv = node.harv_items
    if harv:
        per_tenant = lane.harv_map
        for owner, mes in harv:
            per_tenant[owner] += mes * delta

    sim.now += delta
    lane.array_epochs += 1
    now = sim.now

    if winners:
        wkey = tuple(winners)
        completers = node.request_completers(wkey)
        if completers:
            flags = tuple(
                tenants[tpos].closed_loop or bool(tenants[tpos].queued_requests)
                for tpos in completers
            )
        else:
            flags = ()
        trans = node.transition(wkey, flags)
        if trans is None:
            _fallback_complete(lane, winners)
            return
        # Request-completion effects on the real tenant objects
        # (identical to on_unit_done's request tail, minus unit spawns
        # which are encoded in the successor node).
        for k, tpos in enumerate(trans.completers):
            tenant = tenants[tpos]
            request = tenant.current_request
            request.finish_cycle = now
            tenant.completed.append(request)
            tenant.current_request = None
            if tenant.closed_loop:
                tenant.queued_requests.append(
                    Request(request_id=tenant._take_id(), issue_cycle=now)
                )
            if flags[k]:
                nxt = tenant.queued_requests.popleft()
                nxt.start_cycle = now
                tenant.current_request = nxt
            lane.check_finish = True
        nxt_node = trans.next_node
        rem_me = lane.rem_me
        rem_ve = lane.rem_ve
        new_me = trans.me_base.copy()
        new_ve = trans.ve_base.copy()
        for new_slot, old_slot in trans.carry:
            new_me[new_slot] = rem_me[old_slot]
            new_ve[new_slot] = rem_ve[old_slot]
        lane.node = nxt_node
        lane.rem_me = new_me
        lane.rem_ve = new_ve
        node = nxt_node

    # Arrival admission (scalar pre_step runs this at the same clock
    # value next epoch).
    if lane.arrival_watch:
        _admit_arrivals(lane, now)


def _fallback_complete(lane: _Lane, winners: List[int]) -> None:
    """Unknown transition (cold memo for the successor): rebuild unit
    objects and drive the engine's own completion handler, which also
    repopulates the memo for the next time this transition occurs."""
    units = _materialize(lane)
    sim = lane.sim
    fin = sim._finished_units
    fin.clear()
    for slot in winners:
        fin.append(units[slot])
    sim._handle_completions()
    sim._dirty = True
    lane.check_finish = True


def _materialize(lane: _Lane) -> List[ExecUnit]:
    """Array mode -> object mode: stamp unit objects back out of the
    node structure and the lane's remaining-work arrays.

    Fresh unit ids are taken in the recorded creation order, preserving
    the cross-tenant FIFO rank permutation the fingerprint (and the
    schedulers' tie-breaks) depend on."""
    node = lane.node
    sim = lane.sim
    n = node.n_slots
    units: List[Optional[ExecUnit]] = [None] * n
    from_template = ExecUnit.from_template
    rem_me = lane.rem_me
    rem_ve = lane.rem_ve
    tenants = sim.tenants
    for slot in node.creation_order:
        tenant = tenants[node.slot_tenant[slot]]
        unit = from_template(
            node.slot_templates[slot],
            tenant.tenant_id,
            tenant.current_request.request_id,
            None,
        )
        d = node.dense[slot]
        unit.granted_me = d[0]
        unit.granted_ve = d[1]
        unit.harvesting = d[2]
        unit.state = d[3]
        unit.remaining_me = rem_me[slot]
        unit.remaining_ve = rem_ve[slot]
        units[slot] = unit
    for tpos, tenant in enumerate(tenants):
        start, end = node.tenant_slots[tpos]
        tenant.active_units = [units[s] for s in range(start, end)]
        cur = node.cursors[tpos]
        if cur is not None:
            tenant.op_cursor, tenant.group_cursor = cur
        else:
            tenant.op_cursor = 0
            tenant.group_cursor = 0
        tenant._units_mutated = False
    sim._dirty = True
    sim._reusable = False
    lane.node = None
    lane.rem_me = []
    lane.rem_ve = []
    lane.check_finish = True
    return units


# ----------------------------------------------------------------------
# Array-mode epoch (numpy bucket)
# ----------------------------------------------------------------------
def _bucket_epoch(node: _ChainNode, lanes: List[_Lane]) -> None:
    """One epoch for every lane sharing ``node``, with the delta scan
    and work advance vectorised across lanes.

    Elementwise float64 numpy ops are IEEE-identical to the scalar
    expressions (same operands, same grouping), so this path produces
    the same bits as `_array_epoch` -- the differential tests cover
    both by varying batch size."""
    node.ensure_numpy()
    L = len(lanes)
    for lane in lanes:
        lane.epochs += 1
        if lane.epochs > lane.sim.max_epochs:
            _materialize(lane)
            raise SimulationError(
                f"exceeded {lane.sim.max_epochs} epochs at cycle "
                f"{lane.sim.now:.0f}; likely a scheduling livelock"
            )
    R_me = _np.array([lane.rem_me for lane in lanes])
    R_ve = _np.array([lane.rem_ve for lane in lanes])

    best = _np.full(L, _np.inf)
    if node.np_d_me.size:
        C = R_me[:, node.np_d_me] / node.np_d_me_rates
        C[C <= EPS] = _np.inf
        _np.minimum(best, C.min(axis=1), out=best)
    if node.np_d_ve.size:
        C = R_ve[:, node.np_d_ve] / node.np_d_ve_rates
        C[C <= EPS] = _np.inf
        _np.minimum(best, C.min(axis=1), out=best)
    deltas = [
        _finish_delta(lane, b) for lane, b in zip(lanes, best.tolist())
    ]
    delta_col = _np.asarray(deltas)[:, None]

    me_win = None
    if node.np_a_me.size:
        P = node.np_a_me_rates * delta_col
        new_me = R_me[:, node.np_a_me] - P
        R_me[:, node.np_a_me] = _np.where(new_me > 0.0, new_me, 0.0)
        me_win = (new_me <= EPS).tolist()
        if node.np_emb_idx.size:
            new_ve = R_ve[:, node.np_emb_slots] - (
                (P[:, node.np_emb_idx] * node.np_emb_ve) * node.np_emb_granted
            )
            R_ve[:, node.np_emb_slots] = _np.where(new_ve > 0.0, new_ve, 0.0)
    ve_win = None
    if node.np_a_ve.size:
        new_ve2 = R_ve[:, node.np_a_ve] - node.np_a_ve_rates * delta_col
        R_ve[:, node.np_a_ve] = _np.where(new_ve2 > 0.0, new_ve2, 0.0)
        ve_win = (new_ve2 <= EPS).tolist()

    me_rows = R_me.tolist()
    ve_rows = R_ve.tolist()
    me_slots = node.me_slot_list
    ve_slots = node.ve_slot_list
    for k, lane in enumerate(lanes):
        lane.rem_me = me_rows[k]
        lane.rem_ve = ve_rows[k]
        winners: List[int] = []
        if me_win is not None:
            for s, w in zip(me_slots, me_win[k]):
                if w:
                    winners.append(s)
        if ve_win is not None:
            for s, w in zip(ve_slots, ve_win[k]):
                if w:
                    winners.append(s)
        _epoch_tail(lane, deltas[k], winners)


# ----------------------------------------------------------------------
# Convenience entry point
# ----------------------------------------------------------------------
def run_simulators(sims: Sequence[Simulator]) -> List[SimResult]:
    """Run a batch of freshly constructed simulators to completion."""
    if not sims:
        return []
    return MegaBatchEngine(sims).run()
