"""Mega-batch vectorized engine core.

Steps many independent :class:`repro.sim.engine.Simulator` instances
("lanes") together through one struct-of-arrays epoch loop.  Lanes in
memoised steady state are bound to shared *chain nodes* (interned
structural states) and advance through per-unit remaining-work arrays
-- vectorised with numpy across every lane sharing a node -- instead of
re-fingerprinting and re-planning per epoch.  Results are bit-identical
to running each simulator alone.

Escape hatch: ``REPRO_SIM_MEGABATCH=0`` disables the batched call sites
(``api.runner.sweep_scenario`` and the cluster host-segment fan-out),
restoring the one-simulation-per-job paths exactly.
"""

from repro.megabatch.engine import (
    MEGABATCH_ENV,
    MegaBatchEngine,
    megabatch_default,
    run_simulators,
)

__all__ = [
    "MEGABATCH_ENV",
    "MegaBatchEngine",
    "megabatch_default",
    "run_simulators",
]
