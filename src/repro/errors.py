"""Exception hierarchy for the Neu10 reproduction.

Every error raised by this library derives from :class:`Neu10Error`, so
callers can catch one type at an API boundary.  Subsystems define narrower
types below so tests and users can distinguish configuration mistakes from
runtime faults (for example an IOMMU DMA fault versus an invalid vNPU
request).
"""

from __future__ import annotations


class Neu10Error(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(Neu10Error):
    """An invalid hardware or vNPU configuration was supplied."""


class ValidationError(ConfigError):
    """A user-supplied field failed validation.

    Carries the offending ``field`` name and ``value`` so callers (and
    error messages) can point at exactly what to fix, rather than
    guessing from a free-form string.
    """

    def __init__(self, field: str, value: object, message: str) -> None:
        super().__init__(f"{field}={value!r}: {message}")
        self.field = field
        self.value = value


class CheckpointError(Neu10Error):
    """A simulation checkpoint is corrupt, stale, or mismatched.

    Raised when a :class:`repro.traffic.stepper.ClusterCheckpoint`
    fails its digest/version verification or was taken under a
    different scenario configuration than the one restoring it.
    """


class AllocationError(Neu10Error):
    """The vNPU allocator or manager could not satisfy a request."""


class MappingError(Neu10Error):
    """No feasible vNPU-to-pNPU mapping exists for a request."""


class IsaError(Neu10Error):
    """Malformed NeuISA or VLIW program or instruction."""


class CompileError(Neu10Error):
    """The compiler substrate could not lower a graph."""


class SimulationError(Neu10Error):
    """Internal inconsistency detected by the simulator."""


class SchedulerError(SimulationError):
    """A scheduling policy violated one of its invariants."""


class ExecError(Neu10Error):
    """A fan-out executor task failed permanently (retries exhausted)."""


class VirtualizationError(Neu10Error):
    """Control-plane failure in the hypervisor/driver substrate."""


class HypercallError(VirtualizationError):
    """A guest hypercall was rejected by the hypervisor."""


class DmaFault(VirtualizationError):
    """The IOMMU rejected a DMA access (invalid segment or bounds)."""


class MmioError(VirtualizationError):
    """An MMIO access hit an unmapped or read-only register."""


class SegmentationFault(Neu10Error):
    """An NPU-side memory access fell outside the vNPU's segments."""


class CommandRingError(VirtualizationError):
    """Command ring misuse (overflow, bad opcode, double completion)."""


class LifecycleError(Neu10Error):
    """A vNPU lifecycle transition was attempted out of order."""
