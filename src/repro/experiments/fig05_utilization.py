"""Fig. 5: ME/VE utilization over time for a solo inference request.

Runs one request of each model alone on the full core and buckets the
simulator's busy-integral into time windows.  The paper's takeaway:
even "ME-intensive" models leave VEs mostly idle and vice versa, and
neither engine class is fully utilised across a request.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.serving.server import ServingConfig, WorkloadSpec, run_solo
from repro.sim.engine import Simulator, Tenant
from repro.sim.sched_static import StaticPartitionScheduler
from repro.workloads.traces import build_trace

FIG5_MODELS = ["BERT", "TFMR", "DLRM", "NCF", "RsNt", "MRCNN"]


@dataclass
class UtilizationTrace:
    model: str
    batch: int
    #: (window_start_us, window_end_us, me_util, ve_util) buckets.
    windows: List[Tuple[float, float, float, float]]
    overall_me: float
    overall_ve: float


def run(
    model: str,
    batch: int = 8,
    core: NpuCoreConfig = DEFAULT_CORE,
    num_windows: int = 40,
) -> UtilizationTrace:
    trace = build_trace(model, batch, core=core)
    tenant = Tenant(
        tenant_id=0,
        name=trace.abbrev,
        graph=trace.neuisa,
        alloc_mes=core.num_mes,
        alloc_ves=core.num_ves,
        target_requests=1,
    )
    sim = Simulator(
        core,
        StaticPartitionScheduler(),
        [tenant],
        record_assignment=True,
        record_ops=False,
    )
    result = sim.run()
    samples = result.stats.assignment_trace
    if not samples:
        return UtilizationTrace(trace.abbrev, batch, [], 0.0, 0.0)
    end = samples[-1].end_cycle
    width = end / num_windows
    windows: List[Tuple[float, float, float, float]] = []
    for w in range(num_windows):
        lo, hi = w * width, (w + 1) * width
        me_integral = ve_integral = 0.0
        for s in samples:
            overlap = min(hi, s.end_cycle) - max(lo, s.start_cycle)
            if overlap <= 0:
                continue
            me_integral += overlap * sum(s.mes_per_tenant.values())
            ve_integral += overlap * sum(s.ves_per_tenant.values())
        windows.append(
            (
                core.cycles_to_us(lo),
                core.cycles_to_us(hi),
                me_integral / (width * core.num_mes),
                ve_integral / (width * core.num_ves),
            )
        )
    return UtilizationTrace(
        model=trace.abbrev,
        batch=batch,
        windows=windows,
        overall_me=result.stats.me_utilization(),
        overall_ve=result.stats.ve_utilization(),
    )


def main() -> None:
    print("Fig. 5: solo ME/VE utilization (one request, full core)")
    for model in FIG5_MODELS:
        tr = run(model, batch=8)
        print(
            f"  {tr.model:6s} overall ME={tr.overall_me*100:5.1f}%  "
            f"VE={tr.overall_ve*100:5.1f}%  "
            f"(neither engine class is fully utilised)"
        )


def run_result(batch: int = 8, models=None):
    """Structured Fig. 5 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    models = list(models) if models is not None else list(FIG5_MODELS)
    per_model = {}
    for model in models:
        trace = run(model, batch=batch)
        per_model[trace.model] = {
            "overall_me_utilization": trace.overall_me,
            "overall_ve_utilization": trace.overall_ve,
        }
    return figure_result("fig05", {"models": per_model}, {"batch": batch})


if __name__ == "__main__":
    main()
