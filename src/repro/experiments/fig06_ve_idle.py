"""Fig. 6: VE under-utilisation inside a fused ME-intensive operator.

Lowers a fused MatMul+ReLU to actual VLIW instruction words and counts
the cycles in which every VE slot is idle.  In the paper's example each
``pop`` occupies the MEs for 8 cycles while the ReLU post-processing
needs only 1 VE cycle, leaving the VEs idle ~87% of the time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.lowering import (
    lower_matmul_instructions_neuisa,
    lower_matmul_instructions_vliw,
    vliw_ve_idle_fraction,
)
from repro.compiler.operators import ElementwiseKind, MatMul
from repro.isa.interpreter import NeuIsaInterpreter


@dataclass
class VeIdleResult:
    vliw_ve_idle_fraction: float
    vliw_instructions: int
    neuisa_utops: int
    neuisa_dynamic_instructions: int


def run(num_mes: int = 2, num_ves: int = 2, pops: int = 16) -> VeIdleResult:
    matmul = MatMul(
        "fused_matmul_relu", m=256, k=256, n=256,
        epilogue=[ElementwiseKind.RELU],
    )
    vliw = lower_matmul_instructions_vliw(matmul, num_mes, num_ves, pops_per_tile=pops)
    neuisa = lower_matmul_instructions_neuisa(matmul, num_mes, num_ves, pops_per_tile=pops)
    interp = NeuIsaInterpreter(neuisa)
    result = interp.run()
    return VeIdleResult(
        vliw_ve_idle_fraction=vliw_ve_idle_fraction(vliw),
        vliw_instructions=len(vliw),
        neuisa_utops=neuisa.num_utops,
        neuisa_dynamic_instructions=result.total_instructions,
    )


def main() -> None:
    res = run()
    print("Fig. 6: VE idleness in a fused MatMul+ReLU (VLIW lowering)")
    print(f"  VE slots idle {res.vliw_ve_idle_fraction*100:.1f}% of issue cycles")
    print(f"  (paper: pop=8 cycles vs ReLU=1 cycle -> ~87% idle)")
    print(
        f"  NeuISA lowering: {res.neuisa_utops} uTOps sharing one snippet, "
        f"{res.neuisa_dynamic_instructions} dynamic instructions"
    )


def run_result(num_mes: int = 2, num_ves: int = 2, pops: int = 16):
    """Structured Fig. 6 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    res = run(num_mes=num_mes, num_ves=num_ves, pops=pops)
    return figure_result(
        "fig06",
        {
            "vliw_ve_idle_fraction": res.vliw_ve_idle_fraction,
            "vliw_instructions": res.vliw_instructions,
            "neuisa_utops": res.neuisa_utops,
            "neuisa_dynamic_instructions": res.neuisa_dynamic_instructions,
        },
        {"num_mes": num_mes, "num_ves": num_ves, "pops": pops},
    )


if __name__ == "__main__":
    main()
