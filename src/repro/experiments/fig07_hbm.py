"""Fig. 7: HBM bandwidth utilization over time.

Runs one request of a workload alone with bandwidth recording enabled
and reports the peak/average consumed bandwidth.  The paper's points:
peaks approach the 1.2 TB/s hardware limit while averages sit at
176-498 GB/s, and BERT's average *drops* with batch size (ME operators
become more compute-intensive) while DLRM's stays flat (VE gathers have
low compute intensity regardless of batch).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.experiments.expected import FIG7_AVG_BANDWIDTH_GBPS
from repro.sim.engine import Simulator, Tenant
from repro.sim.sched_static import StaticPartitionScheduler
from repro.workloads.traces import build_trace

FIG7_CASES = [("BERT", 8), ("BERT", 32), ("DLRM", 8), ("DLRM", 32)]


@dataclass
class BandwidthTrace:
    model: str
    batch: int
    average_gbps: float
    peak_gbps: float
    #: (start_us, end_us, GB/s) samples.
    series: List[Tuple[float, float, float]]


def run(model: str, batch: int, core: NpuCoreConfig = DEFAULT_CORE) -> BandwidthTrace:
    trace = build_trace(model, batch, core=core)
    tenant = Tenant(
        tenant_id=0,
        name=trace.abbrev,
        graph=trace.neuisa,
        alloc_mes=core.num_mes,
        alloc_ves=core.num_ves,
        target_requests=1,
    )
    sim = Simulator(
        core,
        StaticPartitionScheduler(),
        [tenant],
        record_ops=False,
        record_bandwidth=True,
    )
    result = sim.run()
    to_gbps = core.frequency_hz / 1e9
    series = [
        (core.cycles_to_us(s), core.cycles_to_us(e), bw * to_gbps)
        for s, e, bw in result.stats.bandwidth_trace
    ]
    peak = max((bw for _s, _e, bw in series), default=0.0)
    return BandwidthTrace(
        model=trace.abbrev,
        batch=batch,
        average_gbps=result.stats.average_bandwidth() * to_gbps,
        peak_gbps=peak,
        series=series,
    )


def main() -> None:
    print("Fig. 7: HBM bandwidth utilization (paper avg in parentheses)")
    for model, batch in FIG7_CASES:
        tr = run(model, batch)
        paper = FIG7_AVG_BANDWIDTH_GBPS.get((model, batch))
        paper_s = f"(paper {paper:.0f})" if paper else ""
        print(
            f"  {tr.model:5s} b{batch:<3d} avg={tr.average_gbps:6.1f} GB/s "
            f"{paper_s:14s} peak={tr.peak_gbps:6.1f} GB/s"
        )


def run_result(cases=None):
    """Structured Fig. 7 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    cases = [tuple(c) for c in cases] if cases is not None else list(FIG7_CASES)
    per_case = {}
    for model, batch in cases:
        tr = run(model, batch)
        per_case[f"{tr.model}:b{batch}"] = {
            "average_gbps": tr.average_gbps,
            "peak_gbps": tr.peak_gbps,
        }
    return figure_result("fig07", {"cases": per_case}, {"n_cases": len(cases)})


if __name__ == "__main__":
    main()
