"""Fig. 27: collocating a memory-bound LLM with compute-bound models.

LLaMA2-13B decode (batch 8) is HBM-bandwidth bound: under V10 it
periodically occupies every ME while stalled on weight streaming, and
the collocated compute-intensive workload cannot use them (temporal
sharing).  Under Neu10 the collocated workload harvests the spare
MEs/VEs -- "throughput improvement by up to 1.6x" -- while LLaMA suffers
negligible slowdown.

The LLaMA tenant here is the parameterized
:func:`repro.workloads.llm.build_llama` at its defaults (``context=512``,
``decode_steps=4``), i.e. the paper's fixed-batch closed-loop framing;
:mod:`repro.llmserve` reuses the same builder at other sequence
geometries for continuous-batching serving under KV-cache pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.experiments.common import DEFAULT_TARGET_REQUESTS, specs_for_pair
from repro.serving.server import (
    SCHEME_NEU10,
    SCHEME_V10,
    ServingConfig,
    run_collocation,
)

FIG27_PAIRS = [("LLaMA", "BERT"), ("LLaMA", "RsNt"), ("LLaMA", "RtNt")]


@dataclass
class LlmCollocationResult:
    pair: str
    #: scheme -> (LLaMA throughput rps, collocated throughput rps)
    throughput: Dict[str, Tuple[float, float]]
    #: scheme -> (total ME utilization, total VE utilization)
    utilization: Dict[str, Tuple[float, float]]

    def collocated_gain(self) -> float:
        """Collocated workload's Neu10 throughput over V10."""
        v10 = self.throughput[SCHEME_V10][1]
        neu = self.throughput[SCHEME_NEU10][1]
        return neu / v10 if v10 > 0 else 0.0

    def llm_slowdown(self) -> float:
        """LLaMA throughput ratio Neu10/V10 (close to 1 = negligible)."""
        v10 = self.throughput[SCHEME_V10][0]
        neu = self.throughput[SCHEME_NEU10][0]
        return neu / v10 if v10 > 0 else 0.0


def run(
    collocated: str,
    target_requests: int = 2,
    collocated_requests: Optional[int] = None,
    core: NpuCoreConfig = DEFAULT_CORE,
) -> LlmCollocationResult:
    """LLaMA + ``collocated`` under V10 and Neu10.

    ``target_requests`` applies to LLaMA (long requests); the collocated
    model inherits the same target, completing many more requests while
    LLaMA runs (closed loop).  Each LLaMA request is one default-geometry
    ``build_llama(batch)`` graph (512-token context, 4 decode steps).
    """
    del collocated_requests  # both tenants share one target (closed loop)
    cfg = ServingConfig(core=core, target_requests=target_requests)
    specs = specs_for_pair("LLaMA", collocated, core)
    throughput: Dict[str, Tuple[float, float]] = {}
    utilization: Dict[str, Tuple[float, float]] = {}
    pair_label = ""
    for scheme in (SCHEME_V10, SCHEME_NEU10):
        result = run_collocation(specs, scheme, cfg)
        pair_label = result.pair
        throughput[scheme] = (
            result.tenants[0].throughput_rps,
            result.tenants[1].throughput_rps,
        )
        utilization[scheme] = (
            result.total_me_utilization,
            result.total_ve_utilization,
        )
    return LlmCollocationResult(
        pair=pair_label, throughput=throughput, utilization=utilization
    )


def main() -> None:
    print("Fig. 27: LLaMA2-13B collocation (V10 vs Neu10)")
    for _llm, collocated in FIG27_PAIRS:
        result = run(collocated)
        print(
            f"  {result.pair:14s} collocated gain {result.collocated_gain():.2f}x "
            f"(paper: up to 1.6x), LLaMA slowdown "
            f"{(1 - min(1.0, result.llm_slowdown()))*100:.1f}% "
            f"ME util {result.utilization[SCHEME_V10][0]*100:.0f}%->"
            f"{result.utilization[SCHEME_NEU10][0]*100:.0f}%"
        )


def run_result(collocated_models=None, target_requests: int = 2):
    """Structured Fig. 27 metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    models = (
        list(collocated_models)
        if collocated_models is not None
        else [c for _llm, c in FIG27_PAIRS]
    )
    per_pair = {}
    for collocated in models:
        result = run(collocated, target_requests=target_requests)
        per_pair[result.pair] = {
            "collocated_gain": result.collocated_gain(),
            "llm_slowdown": result.llm_slowdown(),
            "me_utilization": {
                scheme: util[0] for scheme, util in result.utilization.items()
            },
        }
    return figure_result(
        "fig27", {"pairs": per_pair}, {"target_requests": target_requests}
    )


if __name__ == "__main__":
    main()
