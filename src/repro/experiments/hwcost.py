"""SectionIII-G: hardware area overhead of the NeuISA scheduler.

The paper synthesises the scheduler with FreePDK-15nm and reports 0.04%
of a TPUv4 die.  We reproduce the structure-size accounting.
"""

from __future__ import annotations

from repro.config import DEFAULT_CORE, NpuCoreConfig
from repro.experiments.expected import CLAIMS
from repro.sim.hw_cost import SchedulerCost, scheduler_cost


def run(core: NpuCoreConfig = DEFAULT_CORE) -> SchedulerCost:
    return scheduler_cost(core)


def main() -> None:
    cost = run()
    print("SectionIII-G: uTOp scheduler hardware cost")
    print(f"  contexts: {cost.context_bytes} B, queues: {cost.queue_bytes} B, "
          f"table: {cost.table_bytes} B")
    print(f"  total storage: {cost.total_bytes} B -> {cost.area_mm2:.4f} mm^2")
    print(f"  die fraction: {cost.die_percent:.4f}% "
          f"(paper: {CLAIMS.scheduler_area_fraction*100:.2f}%)")


def run_result():
    """Structured scheduler-cost metrics (see :mod:`repro.api`)."""
    from repro.api.result import figure_result

    cost = run()
    return figure_result(
        "hwcost",
        {
            "context_bytes": cost.context_bytes,
            "queue_bytes": cost.queue_bytes,
            "table_bytes": cost.table_bytes,
            "total_bytes": cost.total_bytes,
            "area_mm2": cost.area_mm2,
            "die_percent": cost.die_percent,
        },
        {"paper_die_percent": CLAIMS.scheduler_area_fraction * 100},
    )


if __name__ == "__main__":
    main()
